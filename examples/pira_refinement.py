#!/usr/bin/env python
"""Automatic instrumentation refinement (PIRA-style) + XRay accounting.

Starts from a one-function IC on the openfoam-like solver and lets the
:class:`~repro.core.refinement.PiraRefiner` close the measure → score →
adjust loop automatically: hot regions are drilled into, overhead
offenders are dropped, and every adjustment is applied by re-patching —
never by recompiling.  The final IC is then measured once more with
XRay's accounting mode to print an ``llvm-xray account``-style table.

Run:  python examples/pira_refinement.py
"""

from repro.apps import build_openfoam
from repro.core.ic import InstrumentationConfig
from repro.core.refinement import PiraRefiner
from repro.execution.workload import Workload
from repro.workflow import build_app, run_app

program = build_openfoam(target_nodes=5000)
app = build_app(program)

refiner = PiraRefiner(
    app=app,
    graph=app.graph,
    max_overhead_ratio=0.5,
    hotspot_share=0.10,
    workload=Workload(site_cap=2, event_budget=60_000),
)

initial = InstrumentationConfig(functions=frozenset({"main"}))
result = refiner.refine(initial, iterations=5)

print("refinement session:")
for step in result.steps:
    print(
        f"  iter {step.iteration}: IC={step.ic_size:<4} "
        f"Ttotal={step.t_total:6.3f}s  "
        f"+{len(step.expanded)} hot callees, -{len(step.excluded)} offenders"
    )
print(f"converged: {result.converged}, final IC: {len(result.ic)} functions")
print(f"total virtual turnaround: {result.total_turnaround_seconds:.2f}s "
      f"(every adjustment was a re-patch, not a rebuild)\n")

# -- measure the final IC with XRay accounting mode ---------------------------
from repro.execution.clock import VirtualClock  # noqa: E402
from repro.dyncapi.runtime import DynCapi  # noqa: E402
from repro.program.loader import DynamicLoader  # noqa: E402
from repro.xray.modes import AccountingMode  # noqa: E402
from repro.xray.runtime import XRayRuntime  # noqa: E402
from repro.execution.engine import ExecutionEngine  # noqa: E402
from repro.simmpi.comm import SimComm  # noqa: E402
from repro.simmpi.pmpi import PmpiLayer  # noqa: E402
from repro.simmpi.world import MpiWorld  # noqa: E402

loader = DynamicLoader()
loaded = loader.load_program(app.linked)
clock = VirtualClock()
dyn = DynCapi(xray=XRayRuntime(loader.image), loader=loader, clock=clock)
dyn.startup(ic=result.ic)
accounting = AccountingMode(clock=clock)
dyn.xray.set_handler(accounting.handler)

engine = ExecutionEngine(
    linked=app.linked,
    loaded=loaded,
    tool="none",
    xray_runtime=dyn.xray,
    pmpi=PmpiLayer(SimComm(MpiWorld(size=4))),
    workload=Workload(site_cap=2, event_budget=60_000),
    clock=clock,
)
engine.run(config_name="accounting")

print("xray accounting (top functions by inclusive latency):")
print(accounting.report(resolve=dyn.id_names.name_of))
