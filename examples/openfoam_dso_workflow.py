#!/usr/bin/env python
"""The paper's headline scenario: DSO instrumentation without rebuilds.

The openfoam-like solver links six shared objects.  This example:

1. builds it once (with XRay sleds everywhere),
2. runs the ``mpi`` selection, patches at startup and measures with
   Score-P — demonstrating that functions living in DSOs (e.g. ``Amul``
   in liblduSolvers.so) are resolved via symbol injection,
3. *refines* the IC twice — excluding the most expensive regions found
   in the previous profile, scorep-score style — by re-patching only:
   no recompilation, exactly the turnaround improvement of §VII-A,
4. compares the accumulated turnaround cost against the static
   (recompile-per-change) workflow.

Run:  python examples/openfoam_dso_workflow.py
"""

from repro.apps import PAPER_SPECS, build_openfoam
from repro.core import Capi, StaticInstrumenter
from repro.core.ic import InstrumentationConfig
from repro.execution.clock import CYCLES_PER_SECOND
from repro.execution.workload import Workload
from repro.scorep.score_tool import score_profile
from repro.scorep.regions import flatten
from repro.workflow import build_app, run_app

WORKLOAD = Workload(site_cap=2, event_budget=100_000)

program = build_openfoam(target_nodes=8000)
app = build_app(program)
print(f"built {app.name}: {len(app.graph)} CG nodes, "
      f"{len(app.linked.dsos)} patchable DSOs:")
for dso in app.linked.dsos:
    print(f"  {dso.name:<24} {len(dso.function_ids):>5} XRay function ids")

# -- initial selection -------------------------------------------------------
capi = Capi(graph=app.graph, app_name=app.name)
outcome = capi.select(PAPER_SPECS["mpi"], spec_name="mpi", linked=app.linked)
ic = outcome.ic
print(f"\nmpi IC: {len(ic)} functions "
      f"({outcome.selected_pre} pre, {outcome.added} added by inlining "
      f"compensation)")

# -- measurement + two refinement iterations ----------------------------------
static = StaticInstrumenter(program=program)
static.build(ic)  # what the legacy workflow would have to do
dynamic_turnaround = 0.0

for iteration in range(3):
    run = run_app(app, mode="ic", ic=ic, tool="scorep", workload=WORKLOAD)
    result = run.result
    dynamic_turnaround += result.t_init
    flat = flatten(run.scorep_profile)
    print(f"\niteration {iteration}: Tinit={result.t_init:.3f}s "
          f"Ttotal={result.t_total:.3f}s, profile has {len(flat)} regions "
          f"({run.bridge.unresolved_events} unresolved DSO events)")

    entries = score_profile(flat)
    offenders = [e.name for e in entries[:25] if e.overhead_ratio > 0.02]
    if not offenders:
        print("  no high-overhead regions left — selection is stable")
        break
    print(f"  excluding {len(offenders)} high-overhead regions, e.g. "
          f"{offenders[:4]}")
    ic = InstrumentationConfig(
        functions=ic.functions - set(offenders), provenance=ic.provenance
    )
    static.build(ic)  # the legacy workflow recompiles...

print("\nturnaround comparison (virtual time):")
print(f"  dynamic (DynCaPI re-patching) : {dynamic_turnaround:9.2f} s")
print(f"  static  ({static.builds} full rebuilds)   : "
      f"{static.total_rebuild_seconds:9.2f} s")
print(f"  speedup                       : "
      f"{static.total_rebuild_seconds / max(dynamic_turnaround, 1e-9):9.0f}x")
