#!/usr/bin/env python
"""Quickstart: select, instrument and profile a small application.

Walks the paper's Fig. 1 loop once:

1. build a small synthetic application (compile + link + MetaCG),
2. write a CaPI selection specification,
3. evaluate it into an instrumentation configuration (IC),
4. run the application with DynCaPI patching the IC at startup and
   Score-P recording a call-path profile,
5. print the profile.

Run:  python examples/quickstart.py
"""

from repro.core import Capi
from repro.program import ProgramBuilder
from repro.workflow import build_app, run_app

# -- 1. model a small application ------------------------------------------
b = ProgramBuilder("miniapp")
b.tu("main.cpp")
b.mpi_function("MPI_Init")
b.mpi_function("MPI_Finalize")
b.mpi_function("MPI_Allreduce")
b.function("main", statements=10)
b.function("timestep", statements=8)
b.function("compute_forces", statements=30, flops=400, loop_depth=2)
b.function("reduce_dt", statements=4)
b.function("log_line", statements=2, in_system_header=True)
b.call("main", "MPI_Init")
b.call("main", "timestep", count=10)
b.call("timestep", "compute_forces", count=4)
b.call("timestep", "reduce_dt")
b.call("reduce_dt", "MPI_Allreduce")
b.call("timestep", "log_line", count=50)
b.call("main", "MPI_Finalize")
program = b.build()

app = build_app(program)
print(f"built {app.name}: {len(app.graph)} call-graph nodes, "
      f"{app.linked.total_sled_count()} XRay sleds\n")

# -- 2./3. selection specification -> IC -------------------------------------
SPEC = """
# everything on a call path to a flop-heavy loop, minus system headers
excluded = inSystemHeader(%%)
kernels  = flops(">=", 10, loopDepth(">=", 1, %%))
subtract(onCallPathTo(%kernels), %excluded)
"""
capi = Capi(graph=app.graph, app_name=app.name)
outcome = capi.select(SPEC, spec_name="quickstart", linked=app.linked)
print(f"selection: {sorted(outcome.ic.functions)}")
print(f"  ({outcome.selected_pre} pre, {outcome.selected_final} after "
      f"inlining post-processing, {outcome.added} added)\n")

# -- 4. run with DynCaPI + Score-P ---------------------------------------------
run = run_app(app, mode="ic", ic=outcome.ic, tool="scorep", ranks=4)
result = run.result
print(f"Tinit  = {result.t_init:.6f} virtual s (patching + tool init)")
print(f"Tapp   = {result.t_total - result.t_init:.6f} virtual s")
print(f"Ttotal = {result.t_total:.6f} virtual s, "
      f"{result.entry_events + result.charged_only_calls} dynamic calls\n")

# -- 5. the call-path profile ----------------------------------------------------
print("Score-P call-path profile:")
for node in sorted(
    run.scorep_profile.walk(), key=lambda n: n.path()
):
    if node.name == "ROOT":
        continue
    indent = "  " * node.path().count("/")
    seconds = node.inclusive_cycles / result.frequency
    print(f"  {indent}{node.name:<30} visits={node.visits:<6} "
          f"inclusive={seconds:.6f}s")
