#!/usr/bin/env python
"""MetaCG tooling walkthrough: construction, serialisation, validation.

Demonstrates the call-graph substrate on its own:

1. per-translation-unit local call graphs and the whole-program merge
   (virtual-call over-approximation, static function-pointer edges),
2. MetaCG-style JSON round trip,
3. profile-based validation: a function pointer that static analysis
   cannot resolve is observed in a Score-P profile and the missing edge
   is inserted automatically — after which the CaPI selection changes.

Run:  python examples/callgraph_tools.py
"""

import tempfile
from pathlib import Path

from repro.cg import (
    build_local_cg,
    build_whole_program_cg,
    validate_with_profile,
)
from repro.cg.io import load, save
from repro.core import Capi
from repro.program import ProgramBuilder

# -- a program with a virtual call and an opaque function pointer -----------
b = ProgramBuilder("plugin_host")
b.tu("host.cpp")
b.function("main", statements=10)
b.function("dispatch", statements=4)
b.function("Model_eval", statements=3, overrides="Model_eval")
b.call("main", "dispatch")
b.virtual_call("dispatch", "Model_eval", count=10)
b.tu("models.cpp")
b.function("LinearModel_eval", statements=20, flops=60, loop_depth=1,
           overrides="Model_eval")
b.function("NeuralModel_eval", statements=40, flops=400, loop_depth=3,
           overrides="Model_eval")
b.tu("plugin.cpp")
b.function("registered_callback", statements=15, flops=90, loop_depth=2)
# the host calls plugins through a pointer that static analysis cannot see
b.pointer_call("main", "plugin_slot", ["registered_callback"],
               static_resolvable=False, count=3)
program = b.build()

# -- local graphs + merge ----------------------------------------------------
local = build_local_cg(program.translation_units["host.cpp"])
print(f"local CG of host.cpp: {len(local.graph)} nodes, "
      f"{len(local.virtual_calls)} unresolved virtual call(s), "
      f"{len(local.pointer_calls)} unresolved pointer call(s)")

graph = build_whole_program_cg(program)
print(f"whole-program CG: {len(graph)} nodes, {graph.edge_count()} edges")
print(f"virtual over-approximation: dispatch -> "
      f"{sorted(graph.callees_of('dispatch'))}")

# -- JSON round trip -----------------------------------------------------------
with tempfile.TemporaryDirectory() as tmp:
    path = Path(tmp) / "plugin_host.mcg.json"
    save(graph, path)
    graph = load(path)
    print(f"serialised + reloaded: {path.name} "
          f"({path.stat().st_size} bytes)\n")

# -- selection before validation: the plugin is invisible ----------------------
# (select flop-heavy functions on a call path from main — the pointer
# target is unreachable from main until the profile proves the edge)
capi = Capi(graph=graph, app_name="plugin_host")
SPEC = 'callPath(byName("main", %%), flops(">=", 50, %%))'
before = capi.select(SPEC, spec_name="kernels")
print(f"selection before profile validation: {sorted(before.ic.functions)}")
assert "registered_callback" not in before.ic.functions

# -- run once, observe the edge, validate, re-select -----------------------------
# (stand-in for the Score-P profile utility described in §III-A)
observed = [("main", "registered_callback")]
report = validate_with_profile(graph, observed)
print(f"profile validation inserted {len(report.inserted)} edge(s): "
      f"{report.inserted}")

after = capi.select(SPEC, spec_name="kernels")
print(f"selection after  profile validation: {sorted(after.ic.functions)}")
assert "registered_callback" in after.ic.functions
print("\nthe plugin callback is now instrumentable — no source changes.")
