#!/usr/bin/env python
"""TALP coarse region monitoring with POP parallel-efficiency metrics.

The paper's §V-D use case: instead of a fine-grained profile, produce a
*sparse* set of monitoring regions — major hotspots only — and let TALP
report POP efficiency metrics per region.  The coarse selector collapses
the pass-through solver chain of Listing 3 while the critical-function
input keeps the hot kernels.

Run:  python examples/talp_regions.py
"""

from repro.apps import build_openfoam
from repro.core import Capi
from repro.execution.workload import Workload

from repro.workflow import build_app, run_app

program = build_openfoam(target_nodes=6000)
app = build_app(program)
capi = Capi(graph=app.graph, app_name=app.name)

# without the coarse selector: every function on the kernel call paths
plain = capi.select(
    """
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
subtract(onCallPathTo(%kernels), %excluded)
""",
    spec_name="kernels",
    linked=app.linked,
)

# with the coarse selector + critical kernels retained (paper §V-D)
coarse = capi.select(
    """
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
critical = flops(">=", 100, loopDepth(">=", 1, %%))
coarse(subtract(onCallPathTo(%kernels), %excluded), %critical)
""",
    spec_name="kernels coarse",
    linked=app.linked,
)

print(f"plain kernel IC : {len(plain.ic)} regions")
print(f"coarse IC       : {len(coarse.ic)} regions "
      f"-> {sorted(coarse.ic.functions)}\n")

# Listing 3's chain collapses: solveSegregated & friends disappear
dropped = sorted(plain.ic.functions - coarse.ic.functions)[:8]
print(f"examples of collapsed pass-through wrappers: {dropped}\n")

run = run_app(
    app,
    mode="ic",
    ic=coarse.ic,
    tool="talp",
    ranks=8,
    workload=Workload(site_cap=2, event_budget=100_000),
)

print(run.talp_report.render())

print("\nper-region interpretation:")
for m in sorted(run.talp_report.metrics, key=lambda m: m.parallel_efficiency):
    if m.visits == 0:
        continue
    verdict = (
        "well balanced" if m.load_balance > 0.9 else "load imbalance!"
    )
    print(f"  {m.region:<28} PE={m.parallel_efficiency:6.1%}  "
          f"LB={m.load_balance:6.1%}  CommEff="
          f"{m.communication_efficiency:6.1%}  -> {verdict}")
