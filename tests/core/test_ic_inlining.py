"""Tests for ICs, inlining compensation, the Capi driver and static workflow."""

import pytest

from repro.cg.merge import build_whole_program_cg
from repro.core.capi import Capi
from repro.core.ic import ICProvenance, InstrumentationConfig
from repro.core.inlining import (
    approximate_inlined,
    available_symbols,
    compensate_inlining,
)
from repro.core.static_inst import StaticInstrumenter
from repro.errors import CapiError
from repro.program.builder import ProgramBuilder
from repro.program.compiler import Compiler
from repro.program.linker import Linker
from tests.conftest import make_demo_builder


class TestIc:
    def test_filter_roundtrip(self, tmp_path):
        ic = InstrumentationConfig(functions=frozenset({"a", "b"}))
        path = tmp_path / "ic.filter"
        ic.dump_filter(path)
        loaded = InstrumentationConfig.load_filter(path)
        assert loaded.functions == ic.functions

    def test_json_roundtrip_with_provenance(self, tmp_path):
        ic = InstrumentationConfig(
            functions=frozenset({"x"}),
            provenance=ICProvenance(
                spec_name="mpi", app_name="demo", selected_pre=5,
                removed_inlined=2, added_compensation=1,
            ),
        )
        path = tmp_path / "ic.json"
        ic.dump_json(path)
        loaded = InstrumentationConfig.load_json(path)
        assert loaded == ic

    def test_membership(self):
        ic = InstrumentationConfig(functions=frozenset({"f"}))
        assert "f" in ic
        assert "g" not in ic
        assert len(ic) == 1


class TestInliningCompensation:
    def test_symbols_across_objects(self, demo_linked):
        symbols = available_symbols(demo_linked)
        assert "main" in symbols
        assert "lib_hidden" in symbols  # nm sees hidden
        assert "tiny" not in symbols  # inlined, symbol dropped

    def test_approximation(self, demo_linked):
        symbols = available_symbols(demo_linked)
        selected = frozenset({"kernel", "tiny"})
        assert approximate_inlined(selected, symbols) == {"tiny"}

    def test_compensation_replaces_inlined_with_caller(self, demo_program, demo_linked):
        graph = build_whole_program_cg(demo_program)
        ic = InstrumentationConfig(functions=frozenset({"tiny"}))
        result = compensate_inlining(ic, graph, demo_linked)
        assert result.removed == {"tiny"}
        # kernel is tiny's first non-inlined caller
        assert result.added == {"kernel"}
        assert result.ic.functions == frozenset({"kernel"})
        assert result.ic.provenance.added_compensation == 1

    def test_caller_already_selected_not_counted_as_added(
        self, demo_program, demo_linked
    ):
        graph = build_whole_program_cg(demo_program)
        ic = InstrumentationConfig(functions=frozenset({"tiny", "kernel"}))
        result = compensate_inlining(ic, graph, demo_linked)
        assert result.added == set()
        assert result.ic.functions == frozenset({"kernel"})

    def test_walks_through_inlined_intermediate_callers(self):
        b = ProgramBuilder("p")
        b.tu("a.cpp")
        b.function("main", statements=20)
        b.function("mid", statements=1)  # auto-inlined
        b.function("leaf", statements=1)  # auto-inlined
        b.call("main", "mid")
        b.call("mid", "leaf")
        program = b.build()
        linked = Linker().link(Compiler().compile(program))
        graph = build_whole_program_cg(program)
        ic = InstrumentationConfig(functions=frozenset({"leaf"}))
        result = compensate_inlining(ic, graph, linked)
        assert result.ic.functions == frozenset({"main"})

    def test_uncovered_function_reported(self):
        b = ProgramBuilder("p")
        b.tu("a.cpp")
        b.function("main", statements=20)
        b.function("orphan", statements=1)  # inlined, no caller at all
        b.call("main", "orphan")
        program = b.build()
        linked = Linker().link(Compiler().compile(program))
        graph = build_whole_program_cg(program)
        # pretend orphan's only caller has no symbol either by selecting
        # a node absent from the graph
        ic = InstrumentationConfig(functions=frozenset({"ghost_fn"}))
        result = compensate_inlining(ic, graph, linked)
        assert result.uncovered == {"ghost_fn"}


class TestCapiDriver:
    def test_outcome_counts_are_consistent(self, demo_program, demo_linked):
        graph = build_whole_program_cg(demo_program)
        capi = Capi(graph=graph, app_name="demo")
        out = capi.select(
            "kernels = flops(\">=\", 10, loopDepth(\">=\", 1, %%))\n"
            "onCallPathTo(%kernels)",
            spec_name="kernels",
            linked=demo_linked,
        )
        prov = out.ic.provenance
        assert prov.selected_pre == len(out.selection.selected)
        assert out.selected_final == len(out.ic.functions) - prov.added_compensation
        assert prov.spec_name == "kernels"
        assert prov.selection_seconds > 0

    def test_select_file(self, demo_program, demo_linked, tmp_path):
        spec_path = tmp_path / "my.capi"
        spec_path.write_text("inSystemHeader(%%)\n")
        graph = build_whole_program_cg(demo_program)
        capi = Capi(graph=graph, app_name="demo")
        out = capi.select_file(spec_path, linked=demo_linked)
        assert out.ic.provenance.spec_name == "my"
        assert "MPI_Init" in out.selection.selected

    def test_select_without_binaries_skips_compensation(self, demo_program):
        graph = build_whole_program_cg(demo_program)
        capi = Capi(graph=graph)
        out = capi.select("inlineSpecified(%%)")
        assert out.compensation is None
        assert "tiny" in out.ic.functions


class TestStaticWorkflow:
    def test_build_restricts_instrumentation(self, demo_program):
        inst = StaticInstrumenter(program=demo_program)
        ic = InstrumentationConfig(functions=frozenset({"kernel"}))
        build = inst.build(ic)
        patchable = build.linked.patchable_function_names()
        assert patchable == {"kernel"}
        assert build.rebuild_seconds > 0

    def test_adjust_requires_rebuild(self, demo_program):
        inst = StaticInstrumenter(program=demo_program)
        b1 = inst.build(InstrumentationConfig(functions=frozenset({"kernel"})))
        b2 = inst.adjust(
            b1, InstrumentationConfig(functions=frozenset({"solve"}))
        )
        assert inst.builds == 2
        assert inst.total_rebuild_seconds == pytest.approx(
            b1.rebuild_seconds + b2.rebuild_seconds
        )

    def test_noop_adjust_rejected(self, demo_program):
        inst = StaticInstrumenter(program=demo_program)
        ic = InstrumentationConfig(functions=frozenset({"kernel"}))
        build = inst.build(ic)
        with pytest.raises(CapiError):
            inst.adjust(build, ic)

    def test_rebuild_cost_scales_with_tus(self, demo_program):
        small = StaticInstrumenter(program=demo_program).rebuild_cost_seconds()
        big_builder = make_demo_builder()
        for i in range(30):
            big_builder.tu(f"extra_{i}.cpp")
            big_builder.function(f"extra_fn_{i}", statements=3)
        big = StaticInstrumenter(program=big_builder.build()).rebuild_cost_seconds()
        assert big > small
