"""Tests for the ``capi`` CLI."""

import pytest

from repro.core.cli import main
from repro.core.ic import InstrumentationConfig


@pytest.fixture
def cg_file(tmp_path):
    path = tmp_path / "lulesh.mcg.json"
    assert main(["cg", "--app", "lulesh", "--nodes", "500", "-o", str(path)]) == 0
    return path


class TestCli:
    def test_cg_command_writes_json(self, cg_file):
        assert cg_file.exists()
        from repro.cg.io import load

        graph = load(cg_file)
        assert "main" in graph

    def test_select_bundled_spec(self, cg_file, tmp_path):
        out = tmp_path / "ic.filter"
        js = tmp_path / "ic.json"
        rc = main(
            [
                "select",
                "--cg", str(cg_file),
                "--spec", "kernels",
                "-o", str(out),
                "--json", str(js),
            ]
        )
        assert rc == 0
        ic = InstrumentationConfig.load_filter(out)
        assert len(ic) > 0
        ic2 = InstrumentationConfig.load_json(js)
        assert ic2.functions == ic.functions

    def test_select_custom_spec_file(self, cg_file, tmp_path):
        spec = tmp_path / "mine.capi"
        spec.write_text('byName("main", %%)\n')
        out = tmp_path / "ic.filter"
        assert main(["select", "--cg", str(cg_file), "--spec", str(spec), "-o", str(out)]) == 0
        ic = InstrumentationConfig.load_filter(out)
        assert ic.functions == frozenset({"main"})

    def test_specs_command(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "mpi" in out and "coarse" in out

    def test_error_reported_as_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.capi"
        bad.write_text("syntax error here !!!")
        cg = tmp_path / "missing.json"
        cg.write_text('{"_MetaCG": {"version": "x"}, "_CG": {}}')
        rc = main(["select", "--cg", str(cg), "--spec", str(bad), "-o", str(tmp_path / "o")])
        assert rc == 1
        assert "error" in capsys.readouterr().err
