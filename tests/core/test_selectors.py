"""Tests for the selector implementations and pipeline evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cg.graph import CallGraph, NodeMeta
from repro.core.pipeline import PipelineBuilder, run_spec
from repro.core.selectors.base import AllSelector, EvalContext
from repro.core.selectors.callpath import CallPath, OnCallPathTo
from repro.core.selectors.coarse import Coarse
from repro.core.selectors.combinators import Join, Subtract
from repro.core.selectors.metrics import MetricThreshold
from repro.core.selectors.structural import ByName
from repro.core.spec.modules import load_spec
from repro.errors import SpecSemanticError


def sample_graph() -> CallGraph:
    g = CallGraph()
    defs = {
        "main": NodeMeta(statements=5, has_body=True),
        "solve": NodeMeta(statements=10, has_body=True),
        "wrapper": NodeMeta(statements=2, has_body=True),
        "kernel": NodeMeta(statements=20, flops=50, loop_depth=2, has_body=True),
        "tiny": NodeMeta(statements=1, inline_marked=True, has_body=True),
        "std_sort": NodeMeta(statements=3, in_system_header=True, has_body=True),
        "MPI_Allreduce": NodeMeta(statements=1, in_system_header=True, is_mpi=True, has_body=True),
        "comm": NodeMeta(statements=4, has_body=True),
    }
    for name, meta in defs.items():
        g.add_node(name, meta)
    g.add_edge("main", "solve")
    g.add_edge("solve", "wrapper")
    g.add_edge("wrapper", "kernel")
    g.add_edge("kernel", "tiny")
    g.add_edge("kernel", "std_sort")
    g.add_edge("main", "comm")
    g.add_edge("comm", "MPI_Allreduce")
    return g


class TestCombinators:
    def test_join_union(self):
        g = sample_graph()
        sel = Join(ByName("main", AllSelector()), ByName("solve", AllSelector()))
        assert sel.evaluate(g) == {"main", "solve"}

    def test_subtract(self):
        g = sample_graph()
        sel = Subtract(AllSelector(), ByName("main", AllSelector()))
        assert "main" not in sel.evaluate(g)
        assert "solve" in sel.evaluate(g)

    def test_metric_threshold(self):
        g = sample_graph()
        sel = MetricThreshold("flops", ">=", 10, AllSelector())
        assert sel.evaluate(g) == {"kernel"}

    def test_unknown_metric_rejected(self):
        with pytest.raises(SpecSemanticError):
            MetricThreshold("bogus", ">=", 1, AllSelector())

    def test_bad_operator_rejected(self):
        with pytest.raises(SpecSemanticError):
            MetricThreshold("flops", "~=", 1, AllSelector())


class TestCallPathSelectors:
    def test_on_call_path_to(self):
        g = sample_graph()
        sel = OnCallPathTo(ByName("kernel", AllSelector()))
        assert sel.evaluate(g) == {"kernel", "wrapper", "solve", "main"}

    def test_call_path_between(self):
        g = sample_graph()
        sel = CallPath(
            ByName("main", AllSelector()), ByName("MPI_.*", AllSelector())
        )
        assert sel.evaluate(g) == {"main", "comm", "MPI_Allreduce"}


class TestCoarse:
    def test_single_caller_chain_collapses(self):
        g = sample_graph()
        base = OnCallPathTo(ByName("kernel", AllSelector()))
        coarse = Coarse(base)
        result = coarse.evaluate(g)
        # solve, wrapper, kernel all have unique callers -> collapsed
        assert result == {"main"}

    def test_critical_functions_retained(self):
        g = sample_graph()
        base = OnCallPathTo(ByName("kernel", AllSelector()))
        coarse = Coarse(base, critical=ByName("kernel", AllSelector()))
        assert coarse.evaluate(g) == {"main", "kernel"}

    def test_multi_caller_nodes_survive(self):
        g = sample_graph()
        g.add_edge("main", "kernel")  # kernel now has two callers
        base = OnCallPathTo(ByName("kernel", AllSelector()))
        assert "kernel" in Coarse(base).evaluate(g)

    def test_coarse_is_subset_of_input(self):
        g = sample_graph()
        base = AllSelector()
        assert Coarse(base).evaluate(g) <= base.evaluate(g)

    def test_rootless_cycle_components_are_swept(self):
        # regression: the old top-down BFS started only from
        # zero-in-degree roots, so components with no such node
        # (top-level call cycles) were never visited and their
        # single-caller pass-throughs never collapsed
        g = CallGraph()
        for name in ("main", "solve", "a", "b", "c", "helper", "leaf"):
            g.add_node(name, NodeMeta(statements=1, has_body=True))
        g.add_edge("main", "solve")
        # 3-cycle with no entry from the rooted part: a -> b -> c -> a,
        # plus a -> c so c keeps two callers inside the cycle
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        g.add_edge("a", "c")
        g.add_edge("c", "helper")
        g.add_edge("helper", "leaf")
        result = Coarse(AllSelector()).evaluate(g)
        # pass-throughs below and inside the cycle collapse now
        assert "helper" not in result and "leaf" not in result
        assert "a" not in result and "b" not in result
        # multi-caller cycle member and the rooted part behave as before
        assert "c" in result and "main" in result
        assert "solve" not in result  # single caller under main, as before

    def test_rootless_cycle_critical_functions_retained(self):
        g = CallGraph()
        for name in ("x", "y", "helper"):
            g.add_node(name, NodeMeta(statements=1, has_body=True))
        g.add_edge("x", "y")
        g.add_edge("y", "x")
        g.add_edge("y", "helper")
        sel = Coarse(AllSelector(), critical=ByName("helper", AllSelector()))
        assert "helper" in sel.evaluate(g)


class TestPipeline:
    def test_paper_listing_semantics(self):
        g = sample_graph()
        spec = load_spec(
            """
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=" 1, %%))
subtract(onCallPathTo(%kernels), %excluded)
"""
        )
        result = run_spec(spec, g)
        assert result.selected == frozenset({"kernel", "wrapper", "solve", "main"})
        assert result.duration_seconds >= 0
        assert result.graph_size == len(g)

    def test_bundled_mpi_module(self):
        g = sample_graph()
        spec = load_spec('!import("mpi.capi")\n%mpi_comm')
        result = run_spec(spec, g)
        assert result.selected == frozenset({"main", "comm", "MPI_Allreduce"})

    def test_undefined_reference_rejected(self):
        spec = load_spec("join(%ghost, %%)", search_paths=[])
        with pytest.raises(SpecSemanticError, match="ghost"):
            PipelineBuilder().build(spec)

    def test_redefinition_rejected(self):
        spec = load_spec("a = inSystemHeader(%%)\na = inlineSpecified(%%)")
        with pytest.raises(SpecSemanticError, match="redefined"):
            PipelineBuilder().build(spec)

    def test_unknown_selector_rejected(self):
        spec = load_spec("frobnicate(%%)")
        with pytest.raises(SpecSemanticError, match="frobnicate"):
            PipelineBuilder().build(spec)

    def test_wrong_arity_rejected(self):
        spec = load_spec("join(%%)")
        with pytest.raises(SpecSemanticError):
            PipelineBuilder().build(spec)

    def test_wrong_argument_type_rejected(self):
        spec = load_spec('inSystemHeader("oops")')
        with pytest.raises(SpecSemanticError):
            PipelineBuilder().build(spec)

    def test_named_instances_cached(self):
        g = sample_graph()
        spec = load_spec(
            "shared = onCallPathTo(flops(\">=\", 10, %%))\n"
            "join(%shared, %shared)"
        )
        result = run_spec(spec, g)
        # the shared instance appears once in the evaluation trace
        shared_evals = [t for t in result.trace if t[0] == "%shared"]
        assert len(shared_evals) == 1


names = st.sampled_from(
    ["main", "solve", "wrapper", "kernel", "tiny", "std_sort", "comm"]
)


@settings(max_examples=40)
@given(a=st.sets(names), b=st.sets(names))
def test_join_subtract_algebra(a, b):
    """Property: join/subtract obey set algebra on arbitrary selections."""
    g = sample_graph()

    class Fixed:
        def __init__(self, s):
            self.s = s

        def select(self, ctx):
            return set(self.s)

        def describe(self):
            return "fixed"

    ctx = EvalContext(g)
    sa, sb = Fixed(a), Fixed(b)
    assert ctx.evaluate(Join(sa, sb)) == a | b
    ctx2 = EvalContext(g)
    assert ctx2.evaluate(Subtract(sa, sb)) == a - b
    ctx3 = EvalContext(g)
    assert ctx3.evaluate(Join(sb, sa)) == ctx3.evaluate(Join(sa, sb))
