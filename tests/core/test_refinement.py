"""Tests for the PIRA-style automatic refinement loop."""

import pytest

from repro.core.ic import InstrumentationConfig
from repro.core.refinement import PiraRefiner
from repro.execution.workload import Workload
from repro.workflow import build_app
from tests.conftest import make_demo_builder


@pytest.fixture(scope="module")
def app():
    return build_app(make_demo_builder().build())


def make_refiner(app, **kwargs):
    defaults = dict(
        app=app,
        graph=app.graph,
        workload=Workload(site_cap=4),
        hotspot_share=0.2,
    )
    defaults.update(kwargs)
    return PiraRefiner(**defaults)


class TestRefinement:
    def test_expands_into_hot_callees(self, app):
        refiner = make_refiner(app, max_overhead_ratio=1e9)  # never exclude
        initial = InstrumentationConfig(functions=frozenset({"main"}))
        result = refiner.refine(initial, iterations=4)
        # main dominates runtime -> its callees get instrumented
        assert "solve" in result.ic.functions
        assert len(result.ic.functions) > 1
        assert result.steps[0].expanded

    def test_excludes_high_overhead_regions(self, app):
        refiner = make_refiner(app, max_overhead_ratio=0.01, hotspot_share=0)
        # wrap2/kernel are hot & tiny: measurement overhead dominates
        initial = InstrumentationConfig(
            functions=frozenset({"main", "solve", "wrap1", "wrap2", "kernel"})
        )
        result = refiner.refine(initial, iterations=3)
        assert len(result.ic.functions) < 5
        assert any(step.excluded for step in result.steps)

    def test_convergence_flag(self, app):
        refiner = make_refiner(app, max_overhead_ratio=1e9, hotspot_share=0)
        initial = InstrumentationConfig(functions=frozenset({"main"}))
        result = refiner.refine(initial, iterations=5)
        assert result.converged
        assert len(result.steps) == 1  # nothing to change after run 1

    def test_steps_recorded(self, app):
        refiner = make_refiner(app)
        initial = InstrumentationConfig(functions=frozenset({"main"}))
        result = refiner.refine(initial, iterations=2)
        assert result.steps[0].iteration == 0
        assert result.steps[0].ic_size == 1
        assert result.steps[0].t_total > 0
        assert result.total_turnaround_seconds > 0

    def test_never_selects_unpatchable_functions(self, app):
        refiner = make_refiner(app, max_overhead_ratio=1e9)
        initial = InstrumentationConfig(functions=frozenset({"main"}))
        result = refiner.refine(initial, iterations=4)
        patchable = app.linked.patchable_function_names()
        assert result.ic.functions <= patchable | initial.functions
