"""Tests for the CaPI DSL lexer, parser and module imports."""

import pytest

from repro.core.spec.ast import AllExpr, Assign, CallExpr, NumLit, RefExpr, StrLit
from repro.core.spec.lexer import tokenize
from repro.core.spec.modules import ModuleResolver, load_spec
from repro.core.spec.parser import parse_spec
from repro.core.spec.tokens import TokenKind
from repro.errors import ImportResolutionError, SpecSyntaxError

PAPER_LISTING_1 = """
!import("mpi.capi")
excluded = join(inSystemHeader(%%),
inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=" 1, %%))
join(subtract(%kernels, %excluded), %mpi_comm)
"""


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('f(%x, %%, "s", 10)')]
        assert kinds == [
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.REF,
            TokenKind.COMMA,
            TokenKind.ALL,
            TokenKind.COMMA,
            TokenKind.STRING,
            TokenKind.COMMA,
            TokenKind.NUMBER,
            TokenKind.RPAREN,
            TokenKind.EOF,
        ]

    def test_comments_skipped(self):
        toks = tokenize("# comment\nx = f(%%) # trailing\n")
        assert all(t.kind is not TokenKind.STRING for t in toks)
        assert toks[0].text == "x"

    def test_string_escapes(self):
        toks = tokenize(r'"a\"b"')
        assert toks[0].text == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(SpecSyntaxError):
            tokenize('"never ends')

    def test_lone_percent_rejected(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("% 5")

    def test_unknown_character(self):
        with pytest.raises(SpecSyntaxError):
            tokenize("f(&)")

    def test_line_numbers(self):
        toks = tokenize("a = f(%%)\nb = g(%%)")
        b_tok = [t for t in toks if t.text == "b"][0]
        assert b_tok.line == 2

    def test_numbers(self):
        toks = tokenize("10 3.5 -2")
        assert [t.text for t in toks[:3]] == ["10", "3.5", "-2"]


class TestParser:
    def test_paper_listing_parses(self):
        """The paper's Listing 1 must parse verbatim — including the
        missing comma in ``loopDepth(">=" 1, %%)``."""
        spec = parse_spec(PAPER_LISTING_1)
        assert spec.imports[0].module == "mpi.capi"
        assert isinstance(spec.statements[0], Assign)
        assert spec.statements[0].name == "excluded"
        entry = spec.entry
        assert isinstance(entry, CallExpr)
        assert entry.selector == "join"

    def test_nested_calls(self):
        spec = parse_spec("subtract(join(f(%%), g(%%)), h(%%))")
        entry = spec.entry
        assert isinstance(entry.args[0], CallExpr)
        assert entry.args[0].selector == "join"

    def test_entry_is_last_statement(self):
        spec = parse_spec("a = f(%%)\nb = g(%%)")
        assert isinstance(spec.entry, CallExpr)
        assert spec.entry.selector == "g"

    def test_ref_and_all(self):
        spec = parse_spec("x = join(%%, %%)\njoin(%x, %x)")
        assert isinstance(spec.entry.args[0], RefExpr)

    def test_arguments_optional_commas(self):
        a = parse_spec('flops(">=", 10, %%)').entry
        b = parse_spec('flops(">=" 10 %%)').entry
        assert a == b

    def test_literal_argument_types(self):
        spec = parse_spec('byName("MPI_.*", %%)')
        assert isinstance(spec.entry.args[0], StrLit)
        spec = parse_spec('statements("<", 3, %%)')
        assert isinstance(spec.entry.args[1], NumLit)
        assert isinstance(spec.entry.args[2], AllExpr)

    def test_missing_paren_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec("f(%%")

    def test_top_level_literal_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec('"just a string"')

    def test_unknown_directive_rejected(self):
        with pytest.raises(SpecSyntaxError):
            parse_spec('!include("x.capi")')

    def test_empty_spec_has_no_entry(self):
        from repro.errors import SpecSemanticError

        with pytest.raises(SpecSemanticError):
            parse_spec("").entry


class TestImports:
    def test_bundled_mpi_module_resolves(self):
        spec = load_spec('!import("mpi.capi")\njoin(%mpi_comm, %mpi_ops)')
        names = [s.name for s in spec.statements if isinstance(s, Assign)]
        assert "mpi_comm" in names
        assert "mpi_ops" in names

    def test_unknown_import_rejected(self):
        with pytest.raises(ImportResolutionError):
            load_spec('!import("nope.capi")\nf(%%)')

    def test_user_search_path_wins(self, tmp_path):
        (tmp_path / "custom.capi").write_text("mine = inSystemHeader(%%)\n")
        spec = load_spec(
            '!import("custom.capi")\njoin(%mine, %mine)',
            search_paths=[tmp_path],
        )
        assert any(
            isinstance(s, Assign) and s.name == "mine" for s in spec.statements
        )

    def test_nested_imports(self, tmp_path):
        (tmp_path / "a.capi").write_text('!import("b.capi")\nfrom_a = join(%from_b, %from_b)\n')
        (tmp_path / "b.capi").write_text("from_b = inSystemHeader(%%)\n")
        spec = load_spec('!import("a.capi")\njoin(%from_a, %from_b)', search_paths=[tmp_path])
        names = [s.name for s in spec.statements if isinstance(s, Assign)]
        assert names.index("from_b") < names.index("from_a")

    def test_circular_import_rejected(self, tmp_path):
        (tmp_path / "a.capi").write_text('!import("b.capi")\nx = inSystemHeader(%%)\n')
        (tmp_path / "b.capi").write_text('!import("a.capi")\ny = inSystemHeader(%%)\n')
        with pytest.raises(ImportResolutionError, match="circular"):
            load_spec('!import("a.capi")\njoin(%x, %y)', search_paths=[tmp_path])

    def test_imported_anonymous_statements_dropped(self, tmp_path):
        (tmp_path / "m.capi").write_text("named = inSystemHeader(%%)\njoin(%named, %named)\n")
        resolver = ModuleResolver(search_paths=[tmp_path])
        spec = resolver.flatten(parse_spec('!import("m.capi")\n%named'))
        # only the import's Assign plus our entry remain
        assert isinstance(spec.statements[0], Assign)
        assert isinstance(spec.statements[-1], RefExpr)
