"""Cross-run selection caching keyed by the call-graph version."""

import pytest

from repro.apps import PAPER_SPECS
from repro.cg.graph import CallGraph, NodeMeta
from repro.core.capi import Capi
from repro.core.pipeline import PipelineBuilder, evaluate_pipeline
from repro.core.selectors.base import CrossRunCache
from repro.core.spec.modules import load_spec


def small_graph() -> CallGraph:
    g = CallGraph()
    g.add_node("main", NodeMeta(statements=10, has_body=True))
    g.add_node("kernel", NodeMeta(statements=20, flops=100, loop_depth=2, has_body=True))
    g.add_node("MPI_Allreduce", NodeMeta(is_mpi=True, in_system_header=True))
    g.add_edge("main", "kernel")
    g.add_edge("kernel", "MPI_Allreduce")
    return g


SPEC = 'onCallPathTo(byName("MPI_.*", %%))'


class TestCrossRunCache:
    def test_second_evaluation_served_from_cache(self):
        graph = small_graph()
        cache = CrossRunCache()
        entry_a = PipelineBuilder().build(load_spec(SPEC))[0]
        first = evaluate_pipeline(entry_a, graph, cross_run=cache)
        assert len(cache) > 0
        assert cache.hits == 0
        # a *fresh* pipeline build of the same source: different selector
        # instances, same structural keys
        entry_b = PipelineBuilder().build(load_spec(SPEC))[0]
        second = evaluate_pipeline(entry_b, graph, cross_run=cache)
        assert cache.hits > 0
        assert second.selected == first.selected

    def test_graph_mutation_invalidates(self):
        graph = small_graph()
        cache = CrossRunCache()
        entry = PipelineBuilder().build(load_spec(SPEC))[0]
        first = evaluate_pipeline(entry, graph, cross_run=cache)
        graph.add_node("helper", NodeMeta(statements=2, has_body=True))
        graph.add_edge("helper", "MPI_Allreduce")
        entry2 = PipelineBuilder().build(load_spec(SPEC))[0]
        second = evaluate_pipeline(entry2, graph, cross_run=cache)
        assert "helper" in second.selected
        assert "helper" not in first.selected

    def test_different_graphs_never_share(self):
        cache = CrossRunCache()
        a, b = small_graph(), CallGraph()
        b.add_node("main", NodeMeta(statements=1, has_body=True))
        entry = PipelineBuilder().build(load_spec(SPEC))[0]
        res_a = evaluate_pipeline(entry, a, cross_run=cache)
        res_b = evaluate_pipeline(entry, b, cross_run=cache)
        assert res_a.selected != res_b.selected or res_b.selected == frozenset()

    def test_off_by_default(self):
        graph = small_graph()
        entry = PipelineBuilder().build(load_spec(SPEC))[0]
        evaluate_pipeline(entry, graph)  # no cache argument: no sharing
        cache = CrossRunCache()
        assert len(cache) == 0

    def test_same_name_different_definitions_do_not_collide(self):
        graph = small_graph()
        cache = CrossRunCache()
        spec_a = 'x = byName("kernel", %%)\n%x'
        spec_b = 'x = byName("main", %%)\n%x'
        res_a = evaluate_pipeline(
            PipelineBuilder().build(load_spec(spec_a))[0], graph, cross_run=cache
        )
        res_b = evaluate_pipeline(
            PipelineBuilder().build(load_spec(spec_b))[0], graph, cross_run=cache
        )
        assert res_a.selected == frozenset({"kernel"})
        assert res_b.selected == frozenset({"main"})

    def test_shared_subexpressions_hit_across_specs(self):
        graph = small_graph()
        cache = CrossRunCache()
        spec_a = 'join(byName("kernel", %%), byName("main", %%))'
        spec_b = 'intersect(byName("kernel", %%), %%)'
        evaluate_pipeline(
            PipelineBuilder().build(load_spec(spec_a))[0], graph, cross_run=cache
        )
        before = cache.hits
        evaluate_pipeline(
            PipelineBuilder().build(load_spec(spec_b))[0], graph, cross_run=cache
        )
        # byName("kernel", %%) is structurally shared between the specs
        assert cache.hits > before


class TestCapiMemo:
    def test_repeated_select_returns_memoised_outcome(self):
        graph = small_graph()
        capi = Capi(graph=graph, app_name="t")
        first = capi.select(SPEC, spec_name="mpi")
        second = capi.select(SPEC, spec_name="mpi")
        assert second is first

    def test_memo_respects_graph_version(self):
        graph = small_graph()
        capi = Capi(graph=graph, app_name="t")
        first = capi.select(SPEC, spec_name="mpi")
        graph.add_node("late", NodeMeta(statements=1, has_body=True))
        graph.add_edge("late", "MPI_Allreduce")
        second = capi.select(SPEC, spec_name="mpi")
        assert second is not first
        assert "late" in second.ic.functions

    def test_select_all_consistency_on_paper_app(self):
        """Cached and uncached sweeps agree on the real paper specs."""
        from repro.experiments.runner import prepare_app

        prepared = prepare_app("lulesh", 300)
        cached = {k: v.ic.functions for k, v in prepared.select_all().items()}
        again = {k: v.ic.functions for k, v in prepared.select_all().items()}
        assert cached == again
        # independent, cache-free evaluation gives the same selections
        for name, source in PAPER_SPECS.items():
            entry = PipelineBuilder().build(load_spec(source))[0]
            res = evaluate_pipeline(entry, prepared.app.graph)
            assert res.selected == frozenset(
                prepared.select(name).selection.selected
            ), name


class TestEdgeMutationInvalidation:
    def test_profile_validated_edge_invalidates_cache(self):
        """add_edge between *existing* nodes must bump the version —
        the callgraph_tools example's validate-then-reselect flow."""
        graph = small_graph()
        graph.add_node("callback", NodeMeta(statements=5, flops=100, has_body=True))
        capi = Capi(graph=graph, app_name="t")
        spec = 'onCallPathFrom(byName("main", %%))'
        before = capi.select(spec, spec_name="s")
        assert "callback" not in before.ic.functions
        v = graph.version
        graph.add_edge("main", "callback")  # both nodes already exist
        assert graph.version > v
        after = capi.select(spec, spec_name="s")
        assert "callback" in after.ic.functions

    def test_readding_existing_edge_keeps_version(self):
        graph = small_graph()
        v = graph.version
        graph.add_edge("main", "kernel")  # already present
        assert graph.version == v


class TestMemoSafety:
    def test_linked_identity_checked_not_id(self):
        """A different linked program object must miss the memo even if
        a previous entry exists for the same spec."""
        from repro.program.compiler import Compiler, CompilerConfig
        from repro.program.linker import Linker
        from tests.conftest import make_demo_builder

        program = make_demo_builder().build()
        linked_a = Linker().link(Compiler(CompilerConfig()).compile(program))
        linked_b = Linker().link(Compiler(CompilerConfig()).compile(program))
        from repro.cg.merge import build_whole_program_cg

        capi = Capi(graph=build_whole_program_cg(program), app_name="demo")
        out_a = capi.select(SPEC, spec_name="s", linked=linked_a)
        out_b = capi.select(SPEC, spec_name="s", linked=linked_b)
        assert out_a is not out_b
        # same linked objects hit their own entries, even alternating
        assert capi.select(SPEC, spec_name="s", linked=linked_a) is out_a
        assert capi.select(SPEC, spec_name="s", linked=linked_b) is out_b
        # the memo pins linked objects: ids cannot be recycled
        assert any(e[0] is linked_a for e in capi._outcomes.values())

    def test_search_paths_disable_outcome_memo(self, tmp_path):
        mod = tmp_path / "custom.capi"
        mod.write_text('byName("kernel", %%)')
        graph = small_graph()
        capi = Capi(graph=graph, search_paths=[tmp_path])
        src = '!import("custom.capi")\nbyName("kernel", %%)'
        first = capi.select(src, spec_name="s")
        second = capi.select(src, spec_name="s")
        assert first is not second  # on-disk module may change: no memo

    def test_memo_evicts_on_version_change(self):
        graph = small_graph()
        capi = Capi(graph=graph)
        for i in range(5):
            capi.select(SPEC, spec_name="s")
            graph.add_node(NodeMeta.__name__ + str(i), NodeMeta(statements=1))
        capi.select(SPEC, spec_name="s")
        assert len(capi._outcomes) == 1  # old versions evicted wholesale

    def test_cross_run_cache_pins_graph(self):
        cache = CrossRunCache()
        g = small_graph()
        entry = PipelineBuilder().build(load_spec(SPEC))[0]
        evaluate_pipeline(entry, g, cross_run=cache)
        assert cache._graph is g  # strong ref: id reuse cannot alias


class TestCachePurity:
    def test_capi_timings_measure_full_evaluations(self):
        """Table I's time column must not be contaminated by cross-spec
        sub-expression sharing: every evaluated selection runs fresh."""
        graph = small_graph()
        capi = Capi(graph=graph)
        a = capi.select('onCallPathTo(byName("MPI_.*", %%))', spec_name="a")
        # a structurally overlapping spec evaluated on the same Capi:
        # its trace must show real (non-cache-hit) sub-evaluations
        b = capi.select(
            'subtract(onCallPathTo(byName("MPI_.*", %%)), byName("main", %%))',
            spec_name="b",
        )
        assert a.selection.trace and b.selection.trace
        # the shared subtree was re-evaluated, not served from a store:
        # both selections carry their own full traces
        assert len(b.selection.trace) >= len(a.selection.trace)

    def test_default_factory_registry_pipelines_are_cached(self):
        """A custom registry whose factories *are* the default ones keys
        selectors exactly like the default registry (no silently lost
        cross-run caching for plain dict copies)."""
        from repro.core.selectors.registry import DEFAULT_REGISTRY

        registry = dict(DEFAULT_REGISTRY)
        graph = small_graph()
        cache = CrossRunCache()
        entry = PipelineBuilder(registry).build(load_spec(SPEC))[0]
        evaluate_pipeline(entry, graph, cross_run=cache)
        reference = CrossRunCache()
        default_entry = PipelineBuilder().build(load_spec(SPEC))[0]
        evaluate_pipeline(default_entry, graph, cross_run=reference)
        assert set(cache._store) == set(reference._store)
        assert len(cache._store) > 1

    def test_non_default_factory_warns_and_stays_uncached(self):
        """A name bound to a different factory warns (once) and keeps its
        selector — and every ancestor — out of the shared store."""
        from repro.core.selectors.registry import DEFAULT_REGISTRY
        from repro.core.selectors.structural import ByName

        registry = dict(DEFAULT_REGISTRY)

        def custom_by_name(pattern, inner):
            return ByName(pattern, inner)  # same behaviour, different factory

        registry["byName"] = custom_by_name
        graph = small_graph()
        cache = CrossRunCache()
        with pytest.warns(RuntimeWarning, match="byName"):
            entry = PipelineBuilder(registry).build(load_spec(SPEC))[0]
        evaluate_pipeline(entry, graph, cross_run=cache)
        # byName and the onCallPathTo built on top of it are unkeyed;
        # %% is builder-internal and stays keyable
        assert set(cache._store) <= {"%%"}

    def test_non_default_factory_warns_once_per_name(self):
        from repro.core.selectors.registry import DEFAULT_REGISTRY
        from repro.core.selectors.structural import ByName

        registry = dict(DEFAULT_REGISTRY)
        registry["byName"] = lambda pattern, inner: ByName(pattern, inner)
        spec = 'join(byName("a", %%), byName("b", %%))'
        builder = PipelineBuilder(registry)
        with pytest.warns(RuntimeWarning) as caught:
            builder.build(load_spec(spec))
        assert len([w for w in caught if w.category is RuntimeWarning]) == 1


class TestCrossRunCacheCap:
    def test_put_beyond_cap_evicts_least_recently_used(self):
        cache = CrossRunCache(max_entries=3)
        cache.store_for(small_graph())
        for key in ("a", "b", "c"):
            cache.put(key, frozenset())
        assert cache.get("a") is not None  # touch: a becomes most recent
        cache.put("d", frozenset())  # b (now oldest) is evicted
        assert set(cache._store) == {"c", "a", "d"}
        assert cache.evictions == 1
        assert cache.get("b") is None

    def test_hits_and_misses_are_counted(self):
        cache = CrossRunCache(max_entries=4)
        cache.store_for(small_graph())
        cache.put("x", frozenset({1}))
        assert cache.get("x") == frozenset({1})
        assert cache.get("nope") is None
        assert cache.hits == 1

    def test_version_drop_is_wholesale_and_uncounted(self):
        graph = small_graph()
        cache = CrossRunCache(max_entries=8)
        cache.store_for(graph)
        cache.put("x", frozenset({1}))
        graph.add_node("more", NodeMeta(statements=1))
        assert cache.store_for(graph) == {}  # version bump: store dropped
        assert cache.evictions == 0  # capacity evictions only

    def test_cap_must_be_positive(self):
        with pytest.raises(ValueError):
            CrossRunCache(max_entries=0)

    def test_capped_cache_stays_correct_under_one_off_spec_stream(self):
        graph = small_graph()
        cache = CrossRunCache(max_entries=2)
        for i in range(6):
            spec = f'join(byName("kernel", %%), byName("k{i}", %%))'
            entry = PipelineBuilder().build(load_spec(spec))[0]
            res = evaluate_pipeline(entry, graph, cross_run=cache)
            assert res.selected == frozenset({"kernel"})
            assert len(cache) <= 2
        assert cache.evictions > 0


class TestCompileEvaluateSplit:
    def test_compile_spec_exposes_structural_cache_key(self):
        from repro.core.pipeline import cache_key, compile_spec
        from repro.core.spec.modules import load_spec as parse

        compiled = compile_spec(SPEC, spec_name="mpi")
        assert compiled.spec_name == "mpi"
        assert compiled.source == SPEC
        spec_ast = parse(SPEC)
        assert compiled.cache_key == cache_key(spec_ast.statements[-1])
        assert compiled.cache_key == 'onCallPathTo(byName(s\'MPI_.*\',%%))'

    def test_public_key_api_is_the_old_private_one(self):
        from repro.core import pipeline

        assert pipeline._canonical_key is pipeline.cache_key
        assert pipeline._attach_cache_key is pipeline.attach_cache_key

    def test_compiled_spec_is_graph_independent(self):
        from repro.core.pipeline import compile_spec

        compiled = compile_spec(SPEC)
        a, b = small_graph(), small_graph()
        b.add_node("extra", NodeMeta(statements=1, has_body=True))
        b.add_edge("extra", "MPI_Allreduce")
        res_a = evaluate_pipeline(compiled.entry, a)
        res_b = evaluate_pipeline(compiled.entry, b)
        assert "extra" in res_b.selected
        assert "extra" not in res_a.selected

    def test_evaluate_compiled_runs_against_supplied_pair(self):
        from repro.core.pipeline import compile_spec, evaluate_compiled

        graph = small_graph()
        compiled = compile_spec(SPEC)
        snapshot = graph.csr()
        cache = CrossRunCache()
        first = evaluate_compiled(compiled, snapshot, cross_run=cache)
        second = evaluate_compiled(compiled, snapshot, cross_run=cache)
        assert first.selected == second.selected
        assert cache.hits > 0
        reference = evaluate_pipeline(
            PipelineBuilder().build(load_spec(SPEC))[0], graph
        )
        assert first.selected == reference.selected

    def test_evaluate_compiled_rejects_stale_snapshots(self):
        from repro.core.pipeline import compile_spec, evaluate_compiled

        graph = small_graph()
        snapshot = graph.csr()
        graph.add_node("mutant", NodeMeta(statements=1))
        with pytest.raises(RuntimeError, match="stale"):
            evaluate_compiled(compile_spec(SPEC), snapshot)

    def test_equal_keys_imply_equal_selections(self):
        from repro.core.pipeline import compile_spec

        graph = small_graph()
        a = compile_spec('subtract(%%, byName("main", %%))')
        b = compile_spec('x = byName("main", %%)\nsubtract(%%, %x)')
        assert a.cache_key == b.cache_key  # %x expands to its definition
        assert (
            evaluate_pipeline(a.entry, graph).selected
            == evaluate_pipeline(b.entry, graph).selected
        )


class TestMemoBounds:
    def test_outcome_memo_is_fifo_capped(self):
        from repro.core.capi import _MEMO_CAP

        graph = small_graph()
        capi = Capi(graph=graph)
        for i in range(_MEMO_CAP + 10):
            capi.select(f'byName("kernel", %%) # {i}'.replace(" # ", " #"),
                        spec_name=str(i))
        assert len(capi._outcomes) <= _MEMO_CAP


def two_region_graph() -> CallGraph:
    """Two disconnected call trees: edits in one cannot affect the other."""
    g = CallGraph()
    g.add_node("main", NodeMeta(statements=10, has_body=True))
    g.add_node("kernel", NodeMeta(statements=20, flops=100, has_body=True))
    g.add_edge("main", "kernel")
    g.add_node("other_root", NodeMeta(statements=3, has_body=True))
    g.add_node("other_leaf", NodeMeta(statements=4, flops=50, has_body=True))
    g.add_edge("other_root", "other_leaf")
    return g


class TestDeltaAwareRetention:
    """Delta-based invalidation: entries whose supports the edit provably
    left alone survive a version bump instead of dropping wholesale."""

    def _evaluate(self, source, graph, cache):
        entry = PipelineBuilder().build(load_spec(source))[0]
        return evaluate_pipeline(entry, graph, cross_run=cache)

    def test_disjoint_edge_add_keeps_untouched_entries(self):
        graph = two_region_graph()
        cache = CrossRunCache()
        main_spec = 'onCallPathFrom(byName("main", %%))'
        other_spec = 'onCallPathFrom(byName("other_root", %%))'
        before_main = self._evaluate(main_spec, graph, cache)
        self._evaluate(other_spec, graph, cache)
        populated = len(cache)
        assert populated > 0
        # edge inside the *other* region: main's entries must survive
        graph.add_edge("other_root", "other_root")
        cache.store_for(graph)
        assert cache.retained > 0
        assert cache.dropped > 0  # the other-region entries had to go
        hits = cache.hits
        again = self._evaluate(main_spec, graph, cache)
        assert cache.hits > hits  # served warm across the edit
        assert again.selected == before_main.selected

    def test_touched_entries_recompute_correctly(self):
        graph = two_region_graph()
        cache = CrossRunCache()
        spec = 'onCallPathFrom(byName("other_root", %%))'
        before = self._evaluate(spec, graph, cache)
        assert "kernel" not in before.selected
        graph.add_edge("other_leaf", "kernel")  # grows the reachable cone
        after = self._evaluate(spec, graph, cache)
        assert "kernel" in after.selected
        # reference: cache-free evaluation agrees exactly
        reference = evaluate_pipeline(
            PipelineBuilder().build(load_spec(spec))[0], graph
        )
        assert after.selected == reference.selected

    def test_meta_merge_drops_metric_entries_only(self):
        graph = two_region_graph()
        graph.add_edge("main", "decl")  # declaration-only node
        cache = CrossRunCache()
        flops_spec = 'flops(">=", 60, onCallPathFrom(byName("main", %%)))'
        other_spec = 'byName("other_.*", %%)'
        self._evaluate(flops_spec, graph, cache)
        other_before = self._evaluate(other_spec, graph, cache)
        # definition arrives for decl: meta merge inside main's cone
        graph.add_node("decl", NodeMeta(statements=2, flops=99, has_body=True))
        cache.store_for(graph)
        assert cache.retained > 0  # the other-region entry survived
        reference = evaluate_pipeline(
            PipelineBuilder().build(load_spec(flops_spec))[0], graph
        )
        assert self._evaluate(flops_spec, graph, cache).selected == (
            reference.selected
        )
        assert self._evaluate(other_spec, graph, cache).selected == (
            other_before.selected
        )

    def test_universe_change_still_drops_wholesale(self):
        graph = two_region_graph()
        cache = CrossRunCache()
        self._evaluate(SPEC, graph, cache)
        assert len(cache) > 0
        graph.add_node("brand_new", NodeMeta(statements=1))
        assert cache.store_for(graph) == {}
        assert cache.retained == 0 and cache.dropped == 0  # uncounted

    def test_truncated_journal_drops_wholesale(self):
        graph = two_region_graph()
        source = graph.copy(max_delta_entries=1)
        cache = CrossRunCache()
        self._evaluate(SPEC, source, cache)
        assert len(cache) > 0
        # more bumps than the journal can hold between binds
        source.add_edge("kernel", "main")
        source.add_edge("other_leaf", "other_root")
        assert source.delta_since(cache._version) is None
        assert cache.store_for(source) == {}
        assert cache.retained == 0

    def test_reason_upgrade_invalidates_dependent_paths(self):
        from repro.cg.graph import EdgeReason

        graph = two_region_graph()
        graph.add_edge("kernel", "other_leaf", EdgeReason.PROFILE)
        cache = CrossRunCache()
        spec = 'onCallPathFrom(byName("main", %%))'
        self._evaluate(spec, graph, cache)
        graph.add_edge("kernel", "other_leaf", EdgeReason.DIRECT)  # upgrade
        cache.store_for(graph)
        # endpoints sit inside the cached cone: the entry must drop even
        # though the adjacency arrays are unchanged
        assert cache.dropped > 0

    def test_unknown_supports_drop_on_any_delta(self):
        graph = two_region_graph()
        cache = CrossRunCache()
        cache.store_for(graph)
        cache.put("mystery", frozenset({1}))  # no supports recorded
        graph.add_edge("other_root", "other_root")
        assert cache.store_for(graph) == {}
        assert cache.dropped == 1


class TestCapiRefine:
    """Satellite: refinement queries ride the compile/evaluate split."""

    def test_refine_matches_select(self):
        graph = small_graph()
        capi = Capi(graph=graph, app_name="t")
        assert capi.refine(SPEC).selected == capi.select(SPEC).selection.selected

    def test_refine_reuses_compiled_spec_and_cache(self):
        graph = small_graph()
        capi = Capi(graph=graph)
        capi.refine(SPEC)
        compiled = capi._refine_compiled[(SPEC, "")]
        assert capi._refine_cache is not None
        hits = capi._refine_cache.hits
        capi.refine(SPEC)
        assert capi._refine_compiled[(SPEC, "")] is compiled
        assert capi._refine_cache.hits > hits

    def test_refine_tracks_graph_edits(self):
        graph = small_graph()
        graph.add_node("callback", NodeMeta(statements=5, has_body=True))
        capi = Capi(graph=graph)
        spec = 'onCallPathFrom(byName("main", %%))'
        assert "callback" not in capi.refine(spec).selected
        graph.add_edge("main", "callback")
        assert "callback" in capi.refine(spec).selected

    def test_refine_leaves_select_timing_semantics_alone(self):
        """Table I's time column: select() still evaluates in a fresh
        context even after refine() warmed the instance's cache."""
        graph = small_graph()
        capi = Capi(graph=graph)
        capi.refine(SPEC)
        outcome = capi.select(SPEC, spec_name="timed")
        # a full trace (every pipeline stage evaluated, none cache-short)
        assert len(outcome.selection.trace) >= 3
        assert outcome.selection.duration_seconds >= 0.0

    def test_refine_with_search_paths_skips_compile_memo(self, tmp_path):
        mod = tmp_path / "custom.capi"
        mod.write_text('byName("kernel", %%)')
        capi = Capi(graph=small_graph(), search_paths=[tmp_path])
        src = '!import("custom.capi")\nbyName("kernel", %%)'
        assert capi.refine(src).selected == frozenset({"kernel"})
        assert capi._refine_compiled == {}


class TestEdgeReasonVersioning:
    def test_reason_upgrade_bumps_version(self):
        from repro.cg.graph import EdgeReason

        graph = small_graph()
        graph.add_edge("main", "MPI_Allreduce", EdgeReason.PROFILE)
        v = graph.version
        # upgrading the same edge to a stronger (static) reason is an
        # observable metadata change
        graph.add_edge("main", "MPI_Allreduce", EdgeReason.DIRECT)
        assert graph.version > v
        # re-adding at equal strength changes nothing
        v2 = graph.version
        graph.add_edge("main", "MPI_Allreduce", EdgeReason.DIRECT)
        assert graph.version == v2
