"""Unit tests for the simulated MPI substrate."""

import numpy as np
import pytest

from repro.errors import SimMpiError
from repro.simmpi.comm import CommCosts, SimComm
from repro.simmpi.pmpi import PmpiLayer
from repro.simmpi.world import MpiWorld


class TestWorld:
    def test_lifecycle(self):
        w = MpiWorld(size=2)
        assert not w.initialized
        w.init()
        assert w.initialized
        w.finalize()
        assert w.finalized

    def test_double_init_rejected(self):
        w = MpiWorld()
        w.init()
        with pytest.raises(SimMpiError):
            w.init()

    def test_finalize_before_init_rejected(self):
        with pytest.raises(SimMpiError):
            MpiWorld().finalize()

    def test_bad_size_rejected(self):
        with pytest.raises(SimMpiError):
            MpiWorld(size=0)
        with pytest.raises(SimMpiError):
            MpiWorld(imbalance=1.5)

    def test_rank0_is_bottleneck(self):
        w = MpiWorld(size=8, imbalance=0.3)
        factors = w.compute_factors
        assert factors[0] == 1.0
        assert factors.max() == 1.0
        assert (factors >= 0.7 - 1e-9).all()

    def test_factors_deterministic(self):
        a = MpiWorld(size=4, seed=9).compute_factors
        b = MpiWorld(size=4, seed=9).compute_factors
        assert np.array_equal(a, b)

    def test_load_balance_bounds(self):
        w = MpiWorld(size=4, imbalance=0.2)
        assert 0.8 <= w.load_balance() <= 1.0


class TestComm:
    def test_collective_costs_more_than_p2p(self):
        comm = SimComm(MpiWorld(size=8))
        assert comm.cost_of("MPI_Allreduce") > comm.cost_of("MPI_Send")

    def test_collective_cost_grows_with_world(self):
        small = SimComm(MpiWorld(size=2)).cost_of("MPI_Bcast")
        big = SimComm(MpiWorld(size=64)).cost_of("MPI_Bcast")
        assert big > small

    def test_message_size_matters(self):
        comm = SimComm(MpiWorld())
        assert comm.cost_of("MPI_Send", message_bytes=1 << 20) > comm.cost_of(
            "MPI_Send", message_bytes=8
        )

    def test_unknown_op_rejected(self):
        with pytest.raises(SimMpiError):
            SimComm(MpiWorld()).cost_of("MPI_Bogus")

    def test_query_ops_cheap(self):
        comm = SimComm(MpiWorld())
        assert comm.cost_of("MPI_Comm_rank") < comm.cost_of("MPI_Send")


class _Recorder:
    def __init__(self):
        self.calls = []

    def on_mpi_call(self, op, cost):
        self.calls.append((op, cost))
        return 5.0


class TestPmpi:
    def test_init_finalize_drive_world(self):
        pmpi = PmpiLayer(SimComm(MpiWorld()))
        pmpi.call("MPI_Init")
        assert pmpi.world.initialized
        pmpi.call("MPI_Finalize")
        assert pmpi.world.finalized

    def test_interceptor_notified_and_charged(self):
        pmpi = PmpiLayer(SimComm(MpiWorld()))
        rec = _Recorder()
        pmpi.register(rec)
        total = pmpi.call("MPI_Allreduce")
        assert len(rec.calls) == 1
        base = rec.calls[0][1]
        assert total == pytest.approx(base + 5.0)

    def test_world_statistics(self):
        pmpi = PmpiLayer(SimComm(MpiWorld()))
        pmpi.call("MPI_Init")
        pmpi.call("MPI_Allreduce")
        assert pmpi.world.mpi_calls == 2
        assert pmpi.world.mpi_cycles > 0

    def test_lifecycle_callbacks(self):
        pmpi = PmpiLayer(SimComm(MpiWorld()))
        seen = []
        pmpi.on_init.append(lambda: seen.append("init"))
        pmpi.on_finalize.append(lambda: seen.append("fin"))
        pmpi.call("MPI_Init")
        pmpi.call("MPI_Finalize")
        assert seen == ["init", "fin"]


class TestCollectiveSemantics:
    """Barrier/allreduce timing attribution used by the cross-rank reducer."""

    def test_barrier_carries_no_payload(self):
        comm = SimComm(MpiWorld(size=8))
        assert comm.cost_of("MPI_Barrier", message_bytes=8) == comm.cost_of(
            "MPI_Barrier", message_bytes=1 << 20
        )

    def test_barrier_cheaper_than_payload_collectives(self):
        comm = SimComm(MpiWorld(size=8))
        assert comm.cost_of("MPI_Barrier") < comm.cost_of("MPI_Allreduce")

    def test_barrier_cost_grows_with_world(self):
        small = SimComm(MpiWorld(size=2)).cost_of("MPI_Barrier")
        big = SimComm(MpiWorld(size=64)).cost_of("MPI_Barrier")
        assert big > small

    def test_synchronizing_classification(self):
        comm = SimComm(MpiWorld(size=4))
        for op in ("MPI_Barrier", "MPI_Allreduce", "MPI_Allgather", "MPI_Alltoall"):
            assert comm.is_synchronizing(op)
        for op in ("MPI_Bcast", "MPI_Reduce", "MPI_Send", "MPI_Wait", "MPI_Init"):
            assert not comm.is_synchronizing(op)


class TestFinalizeWait:
    def test_bottleneck_rank_never_waits(self):
        from repro.simmpi.world import finalize_wait

        waits = finalize_wait([100.0, 80.0, 60.0, 100.0])
        assert waits[0] == 0.0
        assert waits[3] == 0.0
        assert waits[1] == 20.0
        assert waits[2] == 40.0

    def test_uniform_ranks_have_zero_wait(self):
        from repro.simmpi.world import finalize_wait

        assert (finalize_wait([50.0] * 8) == 0.0).all()

    def test_accounting_closes(self):
        from repro.simmpi.world import finalize_wait

        totals = [120.0, 90.0, 75.0]
        waits = finalize_wait(totals)
        elapsed = max(totals)
        for t, w in zip(totals, waits):
            assert t + w == elapsed

    def test_empty_and_negative(self):
        from repro.simmpi.world import finalize_wait

        assert finalize_wait([]).size == 0
        with pytest.raises(SimMpiError):
            finalize_wait([-1.0])
