"""Tests for the virtual clock and cost model."""

import pytest

from repro.execution.clock import CYCLES_PER_SECOND, VirtualClock
from repro.execution.costs import CostModel


class TestClock:
    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(100)
        clock.advance(50)
        assert clock.cycles == 150
        assert clock.now() == 150

    def test_seconds_conversion(self):
        clock = VirtualClock()
        clock.advance(CYCLES_PER_SECOND)
        assert clock.seconds == pytest.approx(1.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)


class TestCostModel:
    def test_handler_costs_ordered(self):
        """Score-P events cost more than TALP events (call-path tree vs
        region counters) — the relation behind Table II's full rows."""
        cm = CostModel()
        assert cm.handler_cost("scorep") > cm.handler_cost("talp")
        assert cm.handler_cost("talp") > cm.handler_cost("none")

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError):
            CostModel().handler_cost("vtune")

    def test_nop_sled_near_zero(self):
        """xray inactive ≈ vanilla requires NOP sleds to cost ~nothing
        relative to a patched dispatch."""
        cm = CostModel()
        assert cm.nop_sled < cm.patched_dispatch / 10

    def test_tool_init_ordering(self):
        """Score-P's startup is heavier than TALP's (paper Tinit)."""
        cm = CostModel()
        assert cm.scorep_init_base > cm.talp_init_base

    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(AttributeError):
            cm.nop_sled = 5.0  # type: ignore[misc]
