"""Unit tests for the virtual-clock execution engine."""

import pytest

from repro.errors import ExecutionError
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.execution.engine import ExecutionEngine
from repro.execution.workload import Workload
from repro.program.builder import ProgramBuilder
from repro.program.compiler import Compiler
from repro.program.linker import Linker
from repro.program.loader import DynamicLoader
from repro.simmpi.comm import SimComm
from repro.simmpi.pmpi import PmpiLayer
from repro.simmpi.world import MpiWorld
from repro.xray.runtime import XRayRuntime
from tests.conftest import make_demo_builder


def build_and_load(builder):
    linked = Linker().link(Compiler().compile(builder.build()))
    loader = DynamicLoader()
    objs = loader.load_program(linked)
    return linked, loader, objs


def make_engine(builder=None, *, with_xray=False, patch_all=False, **kwargs):
    linked, loader, objs = build_and_load(builder or make_demo_builder())
    xray_rt = None
    if with_xray:
        xray_rt = XRayRuntime(loader.image)
        exe = objs[0]
        xray_rt.init_main_executable(
            exe.binary.name, exe.base, exe.binary.sled_records, exe.binary.function_ids
        )
        from repro.xray.dso import XRayDsoRuntime

        dso_rt = XRayDsoRuntime(xray_rt)
        for lo in objs[1:]:
            dso_rt.on_load(lo)
        if patch_all:
            xray_rt.patch_all()
    pmpi = PmpiLayer(SimComm(MpiWorld(size=4)))
    return ExecutionEngine(
        linked=linked, loaded=objs, xray_runtime=xray_rt, pmpi=pmpi, **kwargs
    ), xray_rt


class TestBasicExecution:
    def test_run_produces_events_and_time(self):
        engine, _ = make_engine()
        result = engine.run()
        assert result.entry_events > 0
        assert result.t_total > 0
        assert result.useful_cycles > 0

    def test_engine_single_use(self):
        engine, _ = make_engine()
        engine.run()
        with pytest.raises(ExecutionError):
            engine.run()

    def test_determinism(self):
        r1 = make_engine()[0].run()
        r2 = make_engine()[0].run()
        assert r1.t_total == r2.t_total
        assert r1.per_function_calls == r2.per_function_calls

    def test_mpi_calls_counted(self):
        engine, _ = make_engine()
        result = engine.run()
        assert result.mpi_calls >= 2  # at least Init + Finalize
        assert result.mpi_cycles > 0

    def test_call_multiplicities_respected(self):
        engine, _ = make_engine(workload=Workload(site_cap=100))
        result = engine.run()
        # main calls solve 5 times
        assert result.per_function_calls["solve"] == 5
        # solve -> wrap1 -> wrap2 -> kernel x20
        assert result.per_function_calls["kernel"] == 100


class TestWorkloadShaping:
    def test_site_cap_charges_remainder(self):
        capped, _ = make_engine(workload=Workload(site_cap=1))
        r_capped = capped.run()
        assert r_capped.charged_only_calls > 0
        # kernel only walked once per wrap2 invocation
        assert r_capped.per_function_calls["kernel"] == 1

    def test_total_time_first_order_independent_of_cap(self):
        full = make_engine(workload=Workload(site_cap=1000))[0].run()
        capped = make_engine(workload=Workload(site_cap=1))[0].run()
        assert capped.t_total == pytest.approx(full.t_total, rel=0.05)

    def test_scale_increases_time(self):
        small = make_engine(workload=Workload(scale=1.0))[0].run()
        big = make_engine(workload=Workload(scale=4.0))[0].run()
        assert big.t_total > small.t_total * 2

    def test_event_budget_stops_walking(self):
        unbounded = make_engine(workload=Workload(site_cap=1000))[0].run()
        engine, _ = make_engine(workload=Workload(site_cap=1000, event_budget=10))
        result = engine.run()
        # the budget is soft (in-flight frames finish) but must bite
        assert result.entry_events < unbounded.entry_events
        assert result.charged_only_calls > 0
        # total virtual time is preserved through analytic charging
        assert result.t_total == pytest.approx(unbounded.t_total, rel=0.05)

    def test_workload_validation(self):
        with pytest.raises(ExecutionError):
            Workload(scale=0)
        with pytest.raises(ExecutionError):
            Workload(site_cap=0)
        with pytest.raises(ExecutionError):
            Workload(max_depth=1)


class TestSledIntegration:
    def test_unpatched_sleds_near_zero_cost(self):
        vanilla = make_engine(with_xray=False)[0].run()
        inactive = make_engine(with_xray=True, patch_all=False)[0].run()
        assert inactive.t_total == pytest.approx(vanilla.t_total, rel=0.01)

    def test_patched_run_slower_and_fires_handler(self):
        engine, rt = make_engine(with_xray=True, patch_all=True, tool="none")
        events = []
        rt.set_handler(lambda pid, et: events.append(pid))
        inactive = make_engine(with_xray=True, patch_all=False)[0].run()
        result = engine.run()
        assert events
        assert result.t_total > inactive.t_total

    def test_handler_cost_attribution(self):
        cm = CostModel()
        engine, rt = make_engine(with_xray=True, patch_all=True, tool="none")
        clock_costs = []
        rt.set_handler(
            lambda pid, et: clock_costs.append(engine.clock.advance(cm.cyg_shim))
        )
        result = engine.run()
        assert result.patched_functions > 0
        assert result.patched_sleds == 2 * result.patched_functions


class TestSledCacheInvalidation:
    """Regression: ``_patched_cache``/``_analytic_memo`` must be keyed
    to the XRay patch epoch — repatching mid-run invalidates them."""

    def test_is_patched_tracks_repatching(self):
        engine, rt = make_engine(with_xray=True, patch_all=False)
        assert engine._is_patched("kernel") is False
        rt.patch_all()
        assert engine._is_patched("kernel") is True
        rt.unpatch_all()
        assert engine._is_patched("kernel") is False

    def test_analytic_memo_tracks_repatching(self):
        engine, rt = make_engine(with_xray=True, patch_all=False)
        unpatched_cycles = engine._analytic("solve").cycles
        rt.patch_all()
        patched_cycles = engine._analytic("solve").cycles
        # patched sleds dispatch to the handler: strictly more expensive
        assert patched_cycles > unpatched_cycles
        rt.unpatch_all()
        assert engine._analytic("solve").cycles == unpatched_cycles

    def test_memoization_defeat_is_equivalent(self):
        memoised = make_engine(with_xray=True, patch_all=True)[0].run()
        engine, _ = make_engine(with_xray=True, patch_all=True)
        engine.defeat_memoization()
        recomputed = engine.run()
        assert memoised == recomputed


class TestHandlerExtra:
    """Regression: analytic charging must mirror handler-internal costs
    (the event tracer advances the clock inside the handler)."""

    def test_analytic_includes_handler_extra_per_sled_fire(self):
        from repro.program.builder import ProgramBuilder

        def leaf_builder():
            b = ProgramBuilder("leafapp")
            b.tu("t.cpp")
            b.function("main", statements=5)
            b.function("leaf", flops=50, statements=12)
            b.call("main", "leaf", count=10)
            return b

        plain, _ = make_engine(
            leaf_builder(), with_xray=True, patch_all=True, tool="scorep"
        )
        traced, _ = make_engine(
            leaf_builder(), with_xray=True, patch_all=True, tool="scorep",
            handler_extra=110.0,
        )
        delta = traced._analytic("leaf").cycles - plain._analytic("leaf").cycles
        # one entry + one exit sled fire per invocation
        assert delta == pytest.approx(2 * 110.0)

    def test_unpatched_sleds_unaffected(self):
        plain, _ = make_engine(with_xray=True, patch_all=False)
        extra, _ = make_engine(
            with_xray=True, patch_all=False, handler_extra=110.0
        )
        assert extra._analytic("solve").cycles == plain._analytic("solve").cycles


class TestStaticInitializers:
    def test_initializers_run_before_main(self):
        b = make_demo_builder()
        engine, rt = make_engine(b, with_xray=True, patch_all=True)
        order = []
        rt.set_handler(lambda pid, et: order.append(rt.function_name(pid)))
        engine.run()
        # lib_init is a static initializer: its events precede main's
        assert "lib_init" in order
        assert order.index("lib_init") < order.index("main")


class TestVirtualDispatch:
    def test_virtual_calls_rotate_targets(self):
        b = ProgramBuilder("v")
        b.tu("a.cpp")
        b.function("main", statements=2)
        b.function("vbase", statements=4, overrides="vbase")
        b.function("impl_a", statements=4, overrides="vbase")
        b.function("impl_b", statements=4, overrides="vbase")
        b.virtual_call("main", "vbase", count=6)
        engine, _ = make_engine(b, workload=Workload(site_cap=6))
        result = engine.run()
        executed = {
            n for n in ("vbase", "impl_a", "impl_b")
            if result.per_function_calls.get(n)
        }
        assert len(executed) == 3  # rotation touches every override


class TestDeepCallChains:
    """The explicit work-stack walker lifts the interpreter recursion limit."""

    def _chain_builder(self, length: int) -> ProgramBuilder:
        b = ProgramBuilder("deep")
        b.tu("deep.cpp")
        names = ["main"] + [f"link_{i:05d}" for i in range(length)]
        for name in names:
            # big enough to dodge the compiler's auto-inlining
            b.function(name, statements=12)
        b.chain(names)
        return b

    def test_chain_deeper_than_recursion_limit(self):
        import sys

        length = sys.getrecursionlimit() + 500
        engine, _ = make_engine(
            self._chain_builder(length),
            workload=Workload(max_depth=length + 10),
        )
        result = engine.run()
        # every link is entered exactly once, far beyond the former
        # recursive walker's ceiling
        assert result.entry_events == length + 1
        assert result.exit_events == length + 1
        assert result.per_function_calls[f"link_{length - 1:05d}"] == 1

    def test_depth_cap_still_applies(self):
        engine, _ = make_engine(
            self._chain_builder(50), workload=Workload(max_depth=10)
        )
        result = engine.run()
        # main at depth 0 plus links at depths 1..10; deeper links are
        # neither walked nor charged (sites beyond the cap are skipped)
        assert result.entry_events == 11
