"""Unit tests for TALP monitoring regions and POP metrics."""

import pytest

from repro.errors import MpiNotInitializedError, TalpError
from repro.execution.clock import VirtualClock
from repro.simmpi.world import MpiWorld
from repro.talp.dlb import DLB_INVALID_HANDLE, DLB_SUCCESS, DlbLibrary
from repro.talp.monitor import REGION_BUG_THRESHOLD, TalpMonitor
from repro.talp.pop import compute_pop
from repro.talp.report import build_report


@pytest.fixture
def monitor():
    world = MpiWorld(size=4)
    world.init()
    return TalpMonitor(clock=VirtualClock(), world=world)


class TestRegistration:
    def test_register_before_mpi_init_rejected(self):
        world = MpiWorld()
        mon = TalpMonitor(clock=VirtualClock(), world=world)
        with pytest.raises(MpiNotInitializedError):
            mon.register("region")

    def test_register_idempotent_by_name(self, monitor):
        h1 = monitor.register("r")
        h2 = monitor.register("r")
        assert h1 == h2
        assert monitor.registered_count() == 1

    def test_unknown_handle_rejected(self, monitor):
        with pytest.raises(TalpError):
            monitor.start(999)


class TestStartStop:
    def test_elapsed_accumulates(self, monitor):
        h = monitor.register("r")
        monitor.start(h)
        monitor.clock.advance(500)
        monitor.stop(h)
        region = monitor.regions[h]
        assert region.elapsed_cycles == 500
        assert region.visits == 1

    def test_nested_self_entry(self, monitor):
        h = monitor.register("rec")
        monitor.start(h)
        monitor.start(h)  # recursive re-entry
        monitor.clock.advance(100)
        monitor.stop(h)
        assert monitor.regions[h].elapsed_cycles == 0  # still open
        monitor.stop(h)
        assert monitor.regions[h].elapsed_cycles == 100
        assert monitor.regions[h].visits == 2

    def test_stop_without_start_rejected(self, monitor):
        h = monitor.register("r")
        with pytest.raises(TalpError):
            monitor.stop(h)

    def test_overlapping_regions(self, monitor):
        a = monitor.register("a")
        b = monitor.register("b")
        monitor.start(a)
        monitor.clock.advance(10)
        monitor.start(b)
        monitor.clock.advance(10)
        monitor.stop(a)
        monitor.clock.advance(10)
        monitor.stop(b)
        assert monitor.regions[a].elapsed_cycles == 20
        assert monitor.regions[b].elapsed_cycles == 20

    def test_stop_all_open(self, monitor):
        h1 = monitor.register("x")
        h2 = monitor.register("y")
        monitor.start(h1)
        monitor.start(h2)
        monitor.clock.advance(50)
        monitor.stop_all_open()
        assert monitor.open_region_count() == 0
        assert monitor.regions[h1].elapsed_cycles == 50


class TestMpiAttribution:
    def test_mpi_time_attributed_to_open_regions(self, monitor):
        h = monitor.register("r")
        monitor.start(h)
        monitor.on_mpi_call("MPI_Allreduce", 400.0)
        monitor.clock.advance(1000)
        monitor.stop(h)
        region = monitor.regions[h]
        assert region.mpi_cycles == 400.0
        assert region.useful_cycles == pytest.approx(region.elapsed_cycles - 400.0)

    def test_mpi_outside_region_not_attributed(self, monitor):
        monitor.on_mpi_call("MPI_Allreduce", 400.0)
        h = monitor.register("r")
        monitor.start(h)
        monitor.clock.advance(100)
        monitor.stop(h)
        assert monitor.regions[h].mpi_cycles == 0.0

    def test_interceptor_cost_scales_with_open_regions(self, monitor):
        base = monitor.on_mpi_call("MPI_Send", 1.0)
        h1 = monitor.register("a")
        h2 = monitor.register("b")
        monitor.start(h1)
        monitor.start(h2)
        with_open = monitor.on_mpi_call("MPI_Send", 1.0)
        assert with_open > base
        assert monitor.estimate_extra() == with_open

    def test_exit_pop_update_charged_when_region_saw_mpi(self, monitor):
        h = monitor.register("r")
        monitor.start(h)
        monitor.on_mpi_call("MPI_Allreduce", 10.0)
        before = monitor.clock.cycles
        monitor.stop(h)
        charged = monitor.clock.cycles - before
        assert charged >= monitor.cost_model.talp_mpi_region_update

    def test_no_pop_update_without_mpi(self, monitor):
        h = monitor.register("r")
        monitor.start(h)
        before = monitor.clock.cycles
        monitor.stop(h)
        assert monitor.clock.cycles == before


class TestRegionBug:
    def test_bug_only_beyond_threshold(self, monitor):
        h = monitor.register("victim")
        monitor.start(h)  # fine below threshold
        monitor.stop(h)

    def test_bug_triggers_at_high_region_count(self):
        world = MpiWorld()
        world.init()
        mon = TalpMonitor(clock=VirtualClock(), world=world)
        # fill past the threshold
        handles = [mon.register(f"r{i}") for i in range(REGION_BUG_THRESHOLD + 300)]
        failed = 0
        for h in handles:
            try:
                mon.start(h)
                mon.stop(h)
            except TalpError:
                failed += 1
        assert failed == len(mon.failed_starts) > 0
        # only a tiny fraction is affected, like the paper's 24/16956
        assert failed < len(handles) // 100

    def test_bug_can_be_disabled(self):
        world = MpiWorld()
        world.init()
        mon = TalpMonitor(
            clock=VirtualClock(), world=world, emulate_region_bug=False
        )
        for i in range(REGION_BUG_THRESHOLD + 300):
            h = mon.register(f"r{i}")
            mon.start(h)
            mon.stop(h)
        assert not mon.failed_starts


class TestDlbFacade:
    def test_register_returns_invalid_before_init(self):
        world = MpiWorld()
        dlb = DlbLibrary(TalpMonitor(clock=VirtualClock(), world=world))
        assert dlb.MonitoringRegionRegister("r") == DLB_INVALID_HANDLE

    def test_listing2_sequence(self, monitor):
        dlb = DlbLibrary(monitor)
        handle = dlb.MonitoringRegionRegister("foo")
        assert handle != DLB_INVALID_HANDLE
        assert dlb.MonitoringRegionStart(handle) == DLB_SUCCESS
        assert dlb.MonitoringRegionStop(handle) == DLB_SUCCESS

    def test_stop_error_reported_as_code(self, monitor):
        dlb = DlbLibrary(monitor)
        handle = dlb.MonitoringRegionRegister("foo")
        assert dlb.MonitoringRegionStop(handle) != DLB_SUCCESS


class TestPop:
    def test_pop_metrics_bounds(self, monitor):
        h = monitor.register("r")
        monitor.start(h)
        monitor.on_mpi_call("MPI_Allreduce", 200.0)
        monitor.clock.advance(1000)
        monitor.stop(h)
        pop = compute_pop(
            monitor.regions[h], monitor.world, frequency=monitor.clock.frequency
        )
        assert 0 < pop.load_balance <= 1
        assert 0 < pop.communication_efficiency <= 1
        assert pop.parallel_efficiency == pytest.approx(
            pop.load_balance * pop.communication_efficiency
        )

    def test_perfect_world_perfect_efficiency(self):
        world = MpiWorld(size=1, imbalance=0.0)
        world.init()
        mon = TalpMonitor(clock=VirtualClock(), world=world)
        h = mon.register("r")
        mon.start(h)
        mon.clock.advance(1000)
        mon.stop(h)
        pop = compute_pop(mon.regions[h], world, frequency=1.0)
        assert pop.load_balance == pytest.approx(1.0)
        assert pop.parallel_efficiency == pytest.approx(1.0)

    def test_report_renders(self, monitor):
        h = monitor.register("compute")
        monitor.start(h)
        monitor.clock.advance(5000)
        monitor.stop(h)
        report = build_report(monitor, monitor.world)
        text = report.render()
        assert "compute" in text
        assert "Parallel efficiency" in text
