"""Tests for the TALP runtime metrics API."""

import pytest

from repro.errors import TalpError
from repro.execution.clock import VirtualClock
from repro.simmpi.world import MpiWorld
from repro.talp.api import TalpRuntimeApi
from repro.talp.monitor import TalpMonitor


@pytest.fixture
def api():
    world = MpiWorld(size=4)
    world.init()
    monitor = TalpMonitor(clock=VirtualClock(), world=world)
    return TalpRuntimeApi(monitor=monitor, world=world), monitor


class TestSnapshots:
    def test_closed_region_snapshot(self, api):
        api_, mon = api
        h = mon.register("solver")
        mon.start(h)
        mon.clock.advance(1000)
        mon.stop(h)
        snap = api_.snapshot(h)
        assert snap.name == "solver"
        assert not snap.open_now
        assert snap.elapsed_cycles == 1000

    def test_open_region_includes_live_interval(self, api):
        """A scheduler polling mid-run sees elapsed-so-far numbers."""
        api_, mon = api
        h = mon.register("solver")
        mon.start(h)
        mon.clock.advance(500)
        snap = api_.snapshot(h)
        assert snap.open_now
        assert snap.elapsed_cycles == 500
        # snapshot is non-destructive
        mon.clock.advance(500)
        mon.stop(h)
        assert mon.regions[h].elapsed_cycles == 1000

    def test_live_mpi_attribution(self, api):
        api_, mon = api
        h = mon.register("solver")
        mon.start(h)
        mon.on_mpi_call("MPI_Allreduce", 200.0)
        mon.clock.advance(800)
        snap = api_.snapshot(h)
        assert snap.mpi_cycles == 200.0
        assert snap.useful_cycles == pytest.approx(600.0)

    def test_snapshot_by_name_and_unknowns(self, api):
        api_, mon = api
        h = mon.register("r")
        assert api_.snapshot_by_name("r").name == "r"
        with pytest.raises(TalpError):
            api_.snapshot(999)
        with pytest.raises(TalpError):
            api_.snapshot_by_name("ghost")

    def test_snapshot_all(self, api):
        api_, mon = api
        for name in ("a", "b", "c"):
            h = mon.register(name)
            mon.start(h)
            mon.clock.advance(10)
            mon.stop(h)
        assert [s.name for s in api_.snapshot_all()] == ["a", "b", "c"]


class TestGlobalEfficiency:
    def test_weighted_aggregate(self, api):
        api_, mon = api
        h = mon.register("compute")
        mon.start(h)
        mon.clock.advance(10_000)
        mon.stop(h)
        pe = api_.global_parallel_efficiency()
        assert 0.0 < pe <= 1.0
        # matches the single region's PE when only one region exists
        assert pe == pytest.approx(
            api_.snapshot(h).pop.parallel_efficiency
        )

    def test_empty_monitor(self, api):
        api_, _ = api
        assert api_.global_parallel_efficiency() == 1.0
