"""DLB C-API surface: return-code matrix and the LeWI CPU pool."""

import pytest

from repro.errors import MpiNotInitializedError, TalpError
from repro.execution.clock import VirtualClock
from repro.simmpi.world import MpiWorld
from repro.talp.dlb import (
    DLB_ERR_INIT,
    DLB_ERR_NOINIT,
    DLB_ERR_PERM,
    DLB_ERR_UNKNOWN,
    DLB_INVALID_HANDLE,
    DLB_NOUPDT,
    DLB_SUCCESS,
    CpuPool,
    DlbLibrary,
)
from repro.talp.monitor import TalpMonitor


def make_library(*, mpi_initialized: bool, pool: CpuPool | None = None, rank: int = 0):
    world = MpiWorld(size=4)
    if mpi_initialized:
        world.init()
    monitor = TalpMonitor(clock=VirtualClock(), world=world)
    return DlbLibrary(talp=monitor, pool=pool, rank=rank)


class TestReturnCodeMatrix:
    """NOINIT vs UNKNOWN vs SUCCESS, per entry point (ISSUE 3 satellite)."""

    def test_pre_mpi_init_register_returns_invalid_handle(self):
        lib = make_library(mpi_initialized=False)
        assert lib.MonitoringRegionRegister("solver") == DLB_INVALID_HANDLE

    def test_pre_mpi_init_start_stop_return_noinit_not_unknown(self):
        """Regression: MpiNotInitializedError subclasses TalpError, so the
        generic handler used to eat it and report DLB_ERR_UNKNOWN."""
        lib = make_library(mpi_initialized=False)
        assert lib.MonitoringRegionStart(1) == DLB_ERR_NOINIT
        assert lib.MonitoringRegionStop(1) == DLB_ERR_NOINIT

    def test_pre_mpi_init_lewi_calls_return_noinit(self):
        lib = make_library(mpi_initialized=False)
        assert lib.Init() == DLB_ERR_NOINIT
        assert lib.Lend(0.5) == DLB_ERR_NOINIT
        assert lib.Borrow(0.5) == DLB_ERR_NOINIT
        assert lib.Reclaim() == DLB_ERR_NOINIT
        assert lib.Finalize() == DLB_ERR_NOINIT
        assert lib.PollDROM() == (DLB_ERR_NOINIT, 0.0)

    def test_post_init_success_path(self):
        lib = make_library(mpi_initialized=True)
        handle = lib.MonitoringRegionRegister("solver")
        assert handle != DLB_INVALID_HANDLE
        assert lib.MonitoringRegionStart(handle) == DLB_SUCCESS
        assert lib.MonitoringRegionStop(handle) == DLB_SUCCESS

    def test_invalid_handle_is_unknown_not_noinit(self):
        lib = make_library(mpi_initialized=True)
        assert lib.MonitoringRegionStart(999) == DLB_ERR_UNKNOWN
        assert lib.MonitoringRegionStop(999) == DLB_ERR_UNKNOWN

    def test_stop_before_start_is_unknown(self):
        lib = make_library(mpi_initialized=True)
        handle = lib.MonitoringRegionRegister("solver")
        assert lib.MonitoringRegionStop(handle) == DLB_ERR_UNKNOWN

    def test_monitor_raises_distinct_exception_types(self):
        lib = make_library(mpi_initialized=False)
        with pytest.raises(MpiNotInitializedError):
            lib.talp.start(1)
        with pytest.raises(MpiNotInitializedError):
            lib.talp.stop(1)

    def test_double_init_is_err_init(self):
        lib = make_library(mpi_initialized=True)
        assert lib.Init() == DLB_SUCCESS
        assert lib.Init() == DLB_ERR_INIT

    def test_finalize_reclaims_and_allows_reinit(self):
        lib = make_library(mpi_initialized=True)
        assert lib.Init() == DLB_SUCCESS
        assert lib.Lend(0.25) == DLB_SUCCESS
        assert lib.Finalize() == DLB_SUCCESS
        assert lib.Init() == DLB_SUCCESS
        # the lent capacity came back on Finalize (nobody had borrowed)
        assert lib.PollDROM() == (DLB_SUCCESS, 1.0)

    def test_lend_overdraw_and_nonpositive_are_perm(self):
        lib = make_library(mpi_initialized=True)
        lib.Init()
        assert lib.Lend(1.5) == DLB_ERR_PERM
        assert lib.Lend(0.0) == DLB_ERR_PERM
        assert lib.Lend(-0.1) == DLB_ERR_PERM
        assert lib.Borrow(0.0) == DLB_ERR_PERM

    def test_borrow_from_empty_pool_is_noupdt(self):
        lib = make_library(mpi_initialized=True)
        lib.Init()
        assert lib.Borrow(0.5) == DLB_NOUPDT

    def test_rank_outside_pool_cannot_init(self):
        pool = CpuPool.of_world(2)
        lib = make_library(mpi_initialized=True, pool=pool, rank=7)
        assert lib.Init() == DLB_ERR_PERM


class TestCpuPool:
    def test_lend_borrow_roundtrip(self):
        pool = CpuPool.of_world(4)
        pool.lend(1, 0.25)
        pool.lend(2, 0.5)
        assert pool.available == pytest.approx(0.75)
        assert pool.capacity_of(1) == 0.75
        granted = pool.borrow(0, 0.6)
        assert granted == pytest.approx(0.6)
        assert pool.capacity_of(0) == pytest.approx(1.6)

    def test_borrow_drains_lenders_in_rank_order(self):
        pool = CpuPool.of_world(3)
        pool.lend(2, 0.4)
        pool.lend(1, 0.4)
        pool.borrow(0, 0.5)
        # lender 1 drained fully first, lender 2 keeps the remainder
        assert pool.outstanding == pytest.approx({2: 0.3})

    def test_partial_grant_when_pool_short(self):
        pool = CpuPool.of_world(2)
        pool.lend(1, 0.3)
        assert pool.borrow(0, 1.0) == pytest.approx(0.3)

    def test_reclaim_returns_only_own_unborrowed_capacity(self):
        pool = CpuPool.of_world(2)
        pool.lend(1, 0.4)
        assert pool.reclaim(0) == 0.0
        assert pool.reclaim(1) == pytest.approx(0.4)
        assert pool.capacity_of(1) == pytest.approx(1.0)

    def test_conservation_through_arbitrary_ops(self):
        pool = CpuPool.of_world(5)
        pool.lend(1, 0.5)
        pool.lend(3, 0.2)
        pool.borrow(0, 0.3)
        pool.lend(4, 0.45)
        pool.borrow(2, 10.0)
        pool.reclaim(3)
        total = sum(pool.capacities.values()) + pool.available
        assert total == pytest.approx(5.0, abs=1e-12)

    def test_misuse_raises(self):
        pool = CpuPool.of_world(2)
        with pytest.raises(TalpError):
            pool.lend(0, 2.0)
        with pytest.raises(TalpError):
            pool.lend(9, 0.1)
        with pytest.raises(TalpError):
            pool.borrow(9, 0.1)
        with pytest.raises(TalpError):
            CpuPool.of_world(0)
