"""Supervision: shard routing, fault specs, quarantine, chaos healing."""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cg.graph import NodeMeta
from repro.core.pipeline import compile_spec, evaluate_pipeline
from repro.errors import (
    QuarantinedSpecError,
    ReproError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.service import (
    SERVICE_FAULT_SCENARIOS,
    GraphStore,
    QuarantineBreaker,
    SelectionService,
    ServiceFaultInjector,
    ServiceFaultSpec,
    resolve_service_faults,
    shard_of,
)
from repro.service.faults import FAULT_KINDS

from tests.service.test_graph_store import SPECS, make_graph

#: chaos-scale supervision knobs: tight deadlines so a drill finishes in
#: well under a second of wedge time, cooldowns short enough to probe
FAST = dict(
    window_seconds=0.0,
    max_batch=4,
    shard_deadline_seconds=0.15,
    supervise_interval=0.02,
    quarantine_cooldown_seconds=0.05,
)


def make_service(keys=("g",), shards=1, **kwargs):
    store = GraphStore()
    for i, key in enumerate(keys):
        store.admit(key, make_graph(seed=11 + i, nodes=18))
    return SelectionService(store, shards=shards, **kwargs)


def direct(service, key, source):
    compiled = compile_spec(source)
    return frozenset(
        evaluate_pipeline(compiled.entry, service.store.graph(key)).selected
    )


class TestShardRouting:
    @given(
        key=st.text(max_size=64),
        shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_in_range_and_deterministic(self, key, shards):
        index = shard_of(key, shards)
        assert 0 <= index < shards
        assert shard_of(key, shards) == index

    @given(
        keys=st.lists(st.text(max_size=32), unique=True, max_size=24),
        shards=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_stable_partition(self, keys, shards):
        # every key lands in exactly one slice, and re-routing the same
        # keys reproduces the same partition
        assignment = {key: shard_of(key, shards) for key in keys}
        slices = [
            {key for key, owner in assignment.items() if owner == i}
            for i in range(shards)
        ]
        assert set().union(*slices) == set(keys)
        assert sum(len(s) for s in slices) == len(keys)
        assert {key: shard_of(key, shards) for key in keys} == assignment

    def test_single_shard_owns_everything(self):
        assert shard_of("anything", 1) == 0
        assert shard_of("", 1) == 0

    def test_invalid_shard_count_raises(self):
        with pytest.raises(ServiceError):
            shard_of("g", 0)


class TestFaultSpec:
    def test_plan_is_deterministic_and_counts_match(self):
        spec = ServiceFaultSpec(
            seed=3, compile_errors=4, eval_crashes=2, hangs=1, deaths=2
        )
        for shard in range(3):
            plan = spec.plan(shard)
            assert plan == ServiceFaultSpec(
                seed=3, compile_errors=4, eval_crashes=2, hangs=1, deaths=2
            ).plan(shard)
            assert len(plan["compile"]) == 4
            assert len(plan["eval"]) == 2
            assert len(plan["hang"]) == 1
            assert len(plan["death"]) == 2
            assert len(plan["cancel"]) == 0
            assert all(i < spec.window for i in plan["compile"])
            assert all(i < spec.disrupt_window for i in plan["death"])

    def test_only_shards_excludes_everything_elsewhere(self):
        spec = ServiceFaultSpec(
            compile_errors=2, deaths=1, poison_specs=("p",), only_shards=(1,)
        )
        assert spec.plan(0) == {kind: frozenset() for kind in FAULT_KINDS}
        assert len(spec.plan(1)["compile"]) == 2
        excluded = ServiceFaultInjector(spec, 0)
        assert excluded.poison_marker("p-spec", "src") is None
        afflicted = ServiceFaultInjector(spec, 1)
        assert afflicted.poison_marker("p-spec", "src") == "p"

    def test_injector_fires_exactly_count_times(self):
        spec = ServiceFaultSpec(seed=9, compile_errors=3, window=16)
        injector = ServiceFaultInjector(spec, 0)
        fired = sum(injector.fires("compile") for _ in range(spec.window))
        assert fired == 3
        assert injector.injected_so_far()["compile"] == 3
        # past the window nothing fires
        assert not any(injector.fires("compile") for _ in range(16))

    def test_poison_peek_then_consume(self):
        spec = ServiceFaultSpec(poison_specs=("bad",), poison_times=2)
        injector = ServiceFaultInjector(spec, 0)
        assert injector.poison_marker("bad-one", "x") == "bad"
        assert injector.poison_marker("bad-one", "x") == "bad"  # peek only
        injector.consume_poison("bad")
        injector.consume_poison("bad")
        assert injector.poison_marker("bad-one", "x") is None
        assert injector.poison_marker("fine", "flops") is None

    def test_resolve_accepts_instance_name_and_none(self):
        assert resolve_service_faults(None) is None
        spec = ServiceFaultSpec(deaths=1)
        assert resolve_service_faults(spec) is spec
        assert (
            resolve_service_faults("worker-death")
            is SERVICE_FAULT_SCENARIOS["worker-death"]
        )
        with pytest.raises(ServiceError, match="unknown service fault"):
            resolve_service_faults("nope")

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ServiceError):
            ServiceFaultSpec(compile_errors=-1)
        with pytest.raises(ServiceError):
            ServiceFaultSpec(compile_errors=33, window=32)
        with pytest.raises(ServiceError):
            ServiceFaultSpec(deaths=5, disrupt_window=4)
        with pytest.raises(ServiceError):
            ServiceFaultSpec(poison_times=0)
        with pytest.raises(ServiceError):
            ServiceFaultSpec(hang_excess_seconds=0.0)

    def test_unsupervised_service_rejects_noisy_faults(self):
        store = GraphStore()
        store.admit("g", make_graph())
        with pytest.raises(ServiceError, match="supervis"):
            SelectionService(
                store, supervised=False, faults=ServiceFaultSpec(deaths=1)
            )


class TestQuarantineBreaker:
    def test_state_machine_with_fake_clock(self):
        clock = [0.0]
        breaker = QuarantineBreaker(
            threshold=3, cooldown_seconds=10.0, clock=lambda: clock[0]
        )
        key = ("g", "spec")
        # closed: failures accumulate, breaker opens on the third
        assert breaker.admit(*key) == "ok"
        assert breaker.record_failure(*key) is False
        assert breaker.record_failure(*key) is False
        assert breaker.record_failure(*key) is True
        assert breaker.is_open(*key)
        assert breaker.opened_total == 1
        # open: fast-fail until the cooldown elapses
        assert breaker.admit(*key) == "fast_fail"
        assert breaker.fast_fails == 1
        clock[0] = 9.9
        assert breaker.admit(*key) == "fast_fail"
        # half-open: exactly one probe per window
        clock[0] = 10.0
        assert breaker.admit(*key) == "probe"
        assert breaker.admit(*key) == "fast_fail"  # probe in flight
        # failing probe re-opens and restarts the cooldown
        assert breaker.record_failure(*key) is True
        assert breaker.opened_total == 2
        assert breaker.admit(*key) == "fast_fail"
        clock[0] = 20.0
        assert breaker.admit(*key) == "probe"
        # succeeding probe closes and forgets the key entirely
        breaker.record_success(*key)
        assert not breaker.is_open(*key)
        assert breaker.admit(*key) == "ok"
        snapshot = breaker.snapshot()
        assert snapshot["tracked"] == 0
        assert snapshot["opened_total"] == 2
        assert snapshot["open"] == [] and snapshot["half_open"] == []

    def test_success_resets_consecutive_failures(self):
        breaker = QuarantineBreaker(threshold=3, cooldown_seconds=10.0)
        key = ("g", "spec")
        breaker.record_failure(*key)
        breaker.record_failure(*key)
        breaker.record_success(*key)  # streak broken
        breaker.record_failure(*key)
        breaker.record_failure(*key)
        assert not breaker.is_open(*key)
        assert breaker.record_failure(*key) is True

    def test_keys_are_independent(self):
        breaker = QuarantineBreaker(threshold=1, cooldown_seconds=10.0)
        breaker.record_failure("g", "poison")
        assert breaker.admit("g", "poison") == "fast_fail"
        assert breaker.admit("g", "healthy") == "ok"
        assert breaker.admit("other", "poison") == "ok"

    def test_validation(self):
        with pytest.raises(ValueError):
            QuarantineBreaker(threshold=0)
        with pytest.raises(ValueError):
            QuarantineBreaker(cooldown_seconds=-1.0)


class _Blocker:
    """Holds a shard's worker inside an edit until released."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()

    def __call__(self, graph):
        self.entered.set()
        assert self.release.wait(timeout=10.0)


class TestSlotReclamation:
    def test_cancelled_future_releases_its_admission_slot(self):
        with make_service(max_in_flight=1, window_seconds=0.0) as service:
            blocker = _Blocker()
            service.submit_edit("g", blocker)
            assert blocker.entered.wait(timeout=10.0)
            future = service.submit("g", SPECS[0])  # takes the only slot
            assert future.cancel()
            blocker.release.set()
            # would deadlock on admission if the cancelled request leaked
            # its slot; a worker discard must release it
            response = service.select("g", SPECS[1], timeout=10.0)
            assert response.selection.selected
            stats = service.stats_snapshot()
            assert stats["cancelled"] == 1
            assert stats["failures"] == 0

    def test_select_timeout_cancels_and_releases(self):
        with make_service(max_in_flight=1, window_seconds=0.0) as service:
            blocker = _Blocker()
            service.submit_edit("g", blocker)
            assert blocker.entered.wait(timeout=10.0)
            with pytest.raises(ServiceTimeoutError):
                service.select("g", SPECS[0], timeout=0.05)
            blocker.release.set()
            response = service.select("g", SPECS[1], timeout=10.0)
            assert response.selection.selected
            assert service.stats_snapshot()["cancelled"] == 1


def _resolve_all(futures, timeout=30.0):
    """Resolve every future; outcomes are (kind, payload) tuples."""
    outcomes = []
    for future in futures:
        try:
            outcomes.append(("ok", future.result(timeout=timeout)))
        except ReproError as exc:
            outcomes.append(("typed", exc))
        except BaseException as exc:  # CancelledError
            outcomes.append(("cancelled", exc))
    return outcomes


CHAOS_PRESETS = sorted(SERVICE_FAULT_SCENARIOS)


class TestChaosAcceptance:
    """Every preset heals: all futures resolve, the service keeps serving.

    Bit-identity against a fault-free reference run is covered at scale
    by ``repro.experiments.serve --check-faults``; here the contract is
    resolution, containment and post-chaos correctness on tiny graphs.
    """

    @pytest.mark.parametrize("preset", CHAOS_PRESETS)
    def test_preset_heals_under_multi_tenant_load(self, preset):
        keys = ("g0", "g1", "g2")
        service = make_service(
            keys=keys, shards=2, seed=0, faults=preset, **FAST
        )
        spec = SERVICE_FAULT_SCENARIOS[preset]
        outcomes = []
        try:
            # six bursts over three graphs and rotating tenants, one
            # concurrent edit per burst: enough non-empty processing
            # rounds per shard to exhaust every disruptive schedule
            for burst in range(6):
                futures = [
                    service.submit(
                        key,
                        SPECS[(burst + j) % len(SPECS)],
                        tenant=f"t{(burst + j) % 3}",
                    )
                    for j, key in enumerate(keys)
                    for _ in range(2)
                ]
                def graft(graph, burst=burst):
                    graph.add_node(
                        f"grafted_{burst}",
                        NodeMeta(statements=1, has_body=True),
                    )
                    graph.add_edge("main", f"grafted_{burst}")

                service.submit_edit("g1", graft)
                outcomes.extend(_resolve_all(futures))

            kinds = {kind for kind, _ in outcomes}
            if preset == "cancel-race":
                # injected cancellations surface as cancelled futures
                assert kinds <= {"ok", "cancelled"}
            else:
                # transient faults heal via retry/containment: no
                # request may fail, typed or otherwise
                assert kinds == {"ok"}, outcomes

            # post-chaos: the service still answers correctly on every
            # graph, edits included
            for key in keys:
                for source in SPECS:
                    response = service.select(key, source, timeout=30.0)
                    assert (
                        frozenset(response.selection.selected)
                        == direct(service, key, source)
                    )
            assert "grafted_5" in service.select("g1", SPECS[2]).selection.selected

            health = service.stats_snapshot()["health"]
            assert health["lost"] == 0
            if spec.deaths or spec.hangs:
                assert health["restarts"] >= 1
            if spec.hangs:
                assert health["wedges"] >= 1
            stats = service.stats_snapshot()
            if spec.compile_errors:
                assert stats["retried"] >= 1
            if spec.eval_crashes:
                # a group-level injected crash surfaces as containment
                # (isolated re-runs), an isolated-level one as a retry
                assert stats["retried"] + stats["contained_groups"] >= 1
        finally:
            service.close()

    def test_poison_spec_quarantines_then_recovers(self):
        service = make_service(
            keys=("g",),
            seed=0,
            faults=ServiceFaultSpec(poison_specs=("hot",), poison_times=4),
            quarantine_threshold=3,
            **FAST,
        )
        try:
            source = SPECS[2]
            expected = direct(service, "g", source)
            seen: list[type] = []
            answer = None
            for _ in range(40):
                try:
                    answer = service.select(
                        "g", source, spec_name="hot-path", timeout=10.0
                    )
                    break
                except QuarantinedSpecError as exc:
                    seen.append(type(exc))
                    time.sleep(0.06)  # sit out the cooldown, then probe
                except ReproError as exc:
                    seen.append(type(exc))
            assert answer is not None, seen
            assert frozenset(answer.selection.selected) == expected
            # the three strikes were poison failures, then the breaker
            # fast-failed at least once before a probe burned through
            assert seen.count(QuarantinedSpecError) >= 1
            assert len([t for t in seen if t is not QuarantinedSpecError]) == 4
            quarantine = service.stats_snapshot()["health"]["quarantine"]
            assert quarantine["opened_total"] >= 1
            assert quarantine["tracked"] == 0  # probe success closed it
            assert quarantine["fast_fails"] >= 1
            codes = {alert.code for alert in service.health_alerts()}
            assert "service-spec-quarantined" in codes
            # an unrelated spec on the same graph was never gated
            assert service.select("g", SPECS[0]).selection.selected
        finally:
            service.close()

    def test_only_shards_contains_the_blast_radius(self):
        keys = ("g0", "g1", "g2", "g3")
        owners = {key: shard_of(key, 2) for key in keys}
        assert set(owners.values()) == {0, 1}  # both shards occupied
        service = make_service(
            keys=keys,
            shards=2,
            seed=0,
            faults=ServiceFaultSpec(deaths=1, only_shards=(0,)),
            **FAST,
        )
        try:
            # synchronous selects: every request is its own processing
            # round, so shard 0's death schedule is guaranteed to fire
            for _ in range(5):
                for key in keys:
                    response = service.select(key, SPECS[0], timeout=30.0)
                    assert (
                        frozenset(response.selection.selected)
                        == direct(service, key, SPECS[0])
                    )
            health = service.stats_snapshot()["health"]
            by_index = {s["index"]: s for s in health["shards"]}
            assert by_index[0]["restarts"] >= 1
            assert by_index[1]["restarts"] == 0
            assert health["lost"] == 0
        finally:
            service.close()


class TestAlertStream:
    def test_restart_alerts_land_in_jsonl_sink(self, tmp_path):
        from repro.trace.alerts import Alert

        path = tmp_path / "alerts.jsonl"
        service = make_service(
            keys=("g",),
            seed=0,
            faults=ServiceFaultSpec(deaths=1),
            alerts_path=path,
            **FAST,
        )
        try:
            for _ in range(5):
                assert service.select("g", SPECS[0], timeout=30.0)
        finally:
            service.close()
        lines = path.read_text().strip().splitlines()
        assert lines
        alerts = [Alert.from_json(line) for line in lines]
        assert any(alert.code == "service-shard-death" for alert in alerts)
        assert all(alert.severity in ("warning", "critical") for alert in alerts)
