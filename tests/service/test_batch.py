"""BatchEvaluator: bit-identity, whole-query dedup, verify mode."""

import pytest

from repro.cg.graph import NodeMeta
from repro.core.pipeline import compile_spec, evaluate_pipeline
from repro.errors import BatchMismatchError
from repro.service import BatchEvaluator, GraphStore

from tests.service.test_graph_store import SPECS, make_graph


def warm_entry(graph):
    store = GraphStore()
    store.admit("g", graph)
    return store.entry("g")


class TestBitIdentity:
    def test_batched_results_match_sequential(self):
        graph = make_graph(seed=3, nodes=20)
        compiled = [compile_spec(s, spec_name=s) for s in SPECS]
        outcome = BatchEvaluator().evaluate(compiled, warm_entry(graph))
        assert len(outcome.results) == len(compiled)
        for spec, batched in zip(compiled, outcome.results):
            sequential = evaluate_pipeline(spec.entry, graph)
            assert batched.selected == sequential.selected, spec.spec_name
            assert batched.graph_size == sequential.graph_size

    def test_second_batch_served_from_cross_run_cache(self):
        graph = make_graph(seed=3)
        compiled = [compile_spec(s) for s in SPECS]
        entry = warm_entry(graph)
        evaluator = BatchEvaluator()
        first = evaluator.evaluate(compiled, entry)
        second = evaluator.evaluate(compiled, entry)
        assert second.cross_hits >= len(compiled)  # every entry selector hit
        for a, b in zip(first.results, second.results):
            assert a.selected == b.selected


class TestDedup:
    def test_duplicate_queries_evaluate_once(self):
        graph = make_graph(seed=5)
        one = compile_spec(SPECS[0], spec_name="a")
        # a fresh compile of the same source: different selector objects,
        # same structural key — the service's duplicate-tenant case
        two = compile_spec(SPECS[0], spec_name="b")
        other = compile_spec(SPECS[1], spec_name="c")
        outcome = BatchEvaluator().evaluate(
            [one, two, other, one], warm_entry(graph)
        )
        assert outcome.deduped == 2
        assert outcome.unique_evaluated == 2
        assert outcome.results[0].selected == outcome.results[1].selected
        assert outcome.results[0].selected == outcome.results[3].selected
        # deduped copies carry zero duration (no work was done for them)
        assert outcome.results[1].duration_seconds == 0.0
        assert outcome.results[3].duration_seconds == 0.0

    def test_per_query_traces_are_sliced_not_shared(self):
        graph = make_graph(seed=5)
        compiled = [compile_spec(s) for s in SPECS[:2]]
        outcome = BatchEvaluator().evaluate(compiled, warm_entry(graph))
        assert outcome.results[0].trace
        assert outcome.results[1].trace
        # one shared context, but each result sees only its own slice
        assert outcome.results[0].trace != outcome.results[1].trace

    def test_unkeyable_specs_are_never_deduped(self):
        from repro.core.selectors.registry import DEFAULT_REGISTRY
        from repro.core.selectors.structural import ByName

        registry = dict(DEFAULT_REGISTRY)
        registry["byName"] = lambda pattern, inner: ByName(pattern, inner)
        graph = make_graph(seed=5)
        with pytest.warns(RuntimeWarning):
            unkeyed = compile_spec('byName("main", %%)', registry=registry)
        assert unkeyed.cache_key is None
        outcome = BatchEvaluator().evaluate(
            [unkeyed, unkeyed], warm_entry(graph)
        )
        assert outcome.deduped == 0
        assert outcome.unique_evaluated == 2
        assert outcome.results[0].selected == outcome.results[1].selected


class TestStaleness:
    def test_stale_entry_raises_instead_of_mixing_versions(self):
        graph = make_graph(seed=7)
        entry = warm_entry(graph)
        graph.add_node("late", NodeMeta(statements=1, has_body=True))
        with pytest.raises((BatchMismatchError, RuntimeError)):
            BatchEvaluator().evaluate([compile_spec(SPECS[0])], entry)


class TestVerify:
    def test_verify_passes_on_honest_batches(self):
        graph = make_graph(seed=9)
        compiled = [compile_spec(s) for s in SPECS]
        outcome = BatchEvaluator(verify=True).evaluate(
            compiled, warm_entry(graph)
        )
        assert outcome.verified

    def test_verify_catches_key_collisions(self):
        """A forged cache key makes dedup serve the wrong result — the
        sequential re-derivation must catch exactly that."""
        graph = make_graph(seed=9)
        a = compile_spec('byName("main", %%)', spec_name="a")
        b = compile_spec('byName("MPI_.*", %%)', spec_name="b")
        b.entry.cache_key = a.cache_key  # forged: aliases a's semantics
        evaluator = BatchEvaluator(verify=True)
        with pytest.raises(BatchMismatchError, match="differs"):
            evaluator.evaluate([a, b], warm_entry(graph))
        # without verification the forgery goes through silently — which
        # is why keys are only ever attached by the builder
        silent = BatchEvaluator().evaluate([a, b], warm_entry(graph))
        assert silent.results[1].selected == silent.results[0].selected
