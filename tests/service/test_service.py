"""SelectionService: batching, edits, stats, lifecycle, fairness."""

import threading
from collections import deque

import pytest

from repro.cg.graph import NodeMeta
from repro.core.pipeline import compile_spec, evaluate_pipeline
from repro.errors import CapiError, ServiceClosedError, ServiceError
from repro.service import GraphStore, SelectionService

from tests.service.test_graph_store import SPECS, make_graph

REACH = 'onCallPathFrom(byName("main", %%))'


def make_service(**kwargs):
    store = GraphStore()
    store.admit("g", make_graph(seed=11, nodes=18))
    return SelectionService(store, **kwargs)


class TestQueries:
    def test_select_matches_direct_evaluation(self):
        with make_service() as service:
            response = service.select("g", SPECS[0], tenant="t0")
            compiled = compile_spec(SPECS[0])
            direct = evaluate_pipeline(compiled.entry, service.store.graph("g"))
            assert frozenset(response.selection.selected) == frozenset(
                direct.selected
            )
            assert response.graph_key == "g"
            assert response.tenant == "t0"

    def test_concurrent_mixed_tenants_all_answered(self):
        with make_service(window_seconds=0.05) as service:
            futures = [
                service.submit(
                    "g", SPECS[i % len(SPECS)], tenant=f"t{i % 3}"
                )
                for i in range(24)
            ]
            results = [f.result(timeout=30.0) for f in futures]
            assert len(results) == 24
            stats = service.stats_snapshot()
            assert stats["responses"] == 24
            assert stats["failures"] == 0
            assert stats["max_batch_size"] >= 2  # batching engaged
            assert stats["deduped"] > 0  # duplicate specs in the mix
            assert set(stats["per_tenant"]) == {"t0", "t1", "t2"}

    def test_compile_cache_amortises_repeat_sources(self):
        with make_service() as service:
            service.select("g", SPECS[0])
            service.select("g", SPECS[0])
            stats = service.stats_snapshot()
            assert stats["compile_misses"] == 1
            assert stats["compile_hits"] >= 1

    def test_unknown_graph_key_fails_that_request_only(self):
        with make_service() as service:
            bad = service.submit("missing", SPECS[0])
            with pytest.raises(ServiceError, match="unknown graph key"):
                bad.result(timeout=30.0)
            good = service.select("g", SPECS[0])
            assert good.selection.selected
            stats = service.stats_snapshot()
            assert stats["failures"] == 1

    def test_bad_spec_source_fails_that_request_only(self):
        with make_service() as service:
            bad = service.submit("g", "join(")
            with pytest.raises(Exception):
                bad.result(timeout=30.0)
            assert service.select("g", SPECS[0]).selection.selected


class TestEdits:
    def test_edit_bumps_version_and_changes_results(self):
        with make_service() as service:
            before = service.select("g", REACH)

            def graft(graph):
                graph.add_node("grafted", NodeMeta(statements=3, has_body=True))
                graph.add_edge("main", "grafted")

            version = service.edit("g", graft)
            after = service.select("g", REACH)
            assert version > before.graph_version
            assert after.graph_version == version
            assert "grafted" in after.selection.selected
            assert "grafted" not in before.selection.selected
            stats = service.stats_snapshot()
            assert stats["edits"] == 1
            assert stats["store"]["invalidations"] == 1

    def test_failing_edit_propagates_to_its_future(self):
        with make_service() as service:
            def explode(graph):
                raise ValueError("boom")

            with pytest.raises(ValueError, match="boom"):
                service.edit("g", explode)
            # service stays healthy
            assert service.select("g", SPECS[0]).selection.selected

    def test_verify_mode_survives_interleaved_edits(self):
        with make_service(verify=True, window_seconds=0.05) as service:
            futures = [service.submit("g", REACH) for _ in range(6)]
            service.submit_edit(
                "g",
                lambda graph: graph.add_node(
                    "late", NodeMeta(statements=1, has_body=True)
                ),
            )
            futures += [service.submit("g", REACH) for _ in range(6)]
            for future in futures:
                future.result(timeout=30.0)  # verify raises on any mismatch
            assert service.stats_snapshot()["failures"] == 0


class TestLifecycle:
    def test_close_drains_pending_work(self):
        service = make_service(window_seconds=0.2)
        futures = [service.submit("g", SPECS[i % 2]) for i in range(8)]
        service.close()
        for future in futures:
            assert future.result(timeout=1.0) is not None

    def test_submit_after_close_raises(self):
        service = make_service()
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit("g", SPECS[0])
        with pytest.raises(ServiceClosedError):
            service.submit_edit("g", lambda g: None)

    def test_close_is_idempotent(self):
        service = make_service()
        service.close()
        service.close()

    def test_backpressure_bounds_in_flight(self):
        with make_service(max_in_flight=2, window_seconds=0.0) as service:
            # more submissions than the bound, from many threads: all must
            # complete (blocked submitters proceed as responses drain)
            results = []
            lock = threading.Lock()

            def client(i):
                response = service.select("g", SPECS[i % len(SPECS)])
                with lock:
                    results.append(response)

            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(10)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            assert len(results) == 10

    def test_constructor_validates_bounds(self):
        with pytest.raises(ServiceError):
            SelectionService(GraphStore(), max_batch=0)
        with pytest.raises(ServiceError):
            SelectionService(GraphStore(), max_in_flight=0)


class TestFairness:
    def test_drain_round_robin_interleaves_tenants(self):
        service = make_service()
        shard = service._shards[0]
        try:
            chatty = [object() for _ in range(6)]
            quiet = [object()]
            shard_queues = {
                "chatty": deque(chatty),
                "quiet": deque(quiet),
            }
            with shard._cond:
                shard._queues = shard_queues
                drained = list(shard._drain_round_robin(4))
            # round 1 takes one from each tenant: quiet is not starved
            assert drained[0] is chatty[0]
            assert drained[1] is quiet[0]
            assert drained[2:] == chatty[1:3]
        finally:
            with shard._cond:
                shard._queues = {}
            service.close()


class TestServeSelection:
    def test_accepts_single_mapping_and_iterable(self):
        from repro.workflow import build_app, serve_selection
        from tests.conftest import make_demo_builder

        app = build_app(make_demo_builder().build())
        with serve_selection(app) as service:
            assert "demo" in service.store
            assert service.select("demo", REACH).selection.selected

        with serve_selection({"alias": app}) as service:
            assert "alias" in service.store

        with serve_selection([app]) as service:
            assert "demo" in service.store

    def test_empty_input_raises(self):
        from repro.workflow import serve_selection

        with pytest.raises(CapiError, match="at least one"):
            serve_selection({})


class TestAdaptiveWindow:
    def test_solo_traffic_shrinks_window_toward_floor(self):
        with make_service(window_seconds=0.004, max_batch=8) as service:
            for _ in range(10):
                service.select("g", SPECS[0])
            snapshot = service.stats_snapshot()
            window = snapshot["window"]
            assert window["configured_seconds"] == 0.004
            assert window["current_seconds"] < 0.004
            assert window["current_seconds"] >= 0.004 / 64  # floored

    def test_adapt_widens_under_burst_and_caps_at_configured(self):
        with make_service(window_seconds=0.004, max_batch=8) as service:
            shard = service._shards[0]
            shard._window = 0.004 / 64
            for gathered in (4, 8, 8, 8, 8, 8):
                shard._adapt_window(gathered)
            assert shard._window == 0.004  # doubled back, capped
            shard._adapt_window(1)
            assert shard._window == 0.002

    def test_mid_size_batches_leave_window_alone(self):
        with make_service(window_seconds=0.004, max_batch=8) as service:
            shard = service._shards[0]
            shard._window = 0.001
            shard._adapt_window(2)  # below max(2, max_batch // 2) = 4
            assert shard._window == 0.001

    def test_zero_window_never_adapts(self):
        with make_service(window_seconds=0.0) as service:
            for _ in range(3):
                service.select("g", SPECS[0])
            window = service.stats_snapshot()["window"]
            assert window["current_seconds"] == 0.0

    def test_burst_results_unaffected_by_adaptation(self):
        with make_service(window_seconds=0.002, max_batch=4) as service:
            futures = [
                service.submit("g", SPECS[i % len(SPECS)], tenant=f"t{i}")
                for i in range(12)
            ]
            responses = [f.result(timeout=30.0) for f in futures]
            for i, response in enumerate(responses):
                compiled = compile_spec(SPECS[i % len(SPECS)])
                direct = evaluate_pipeline(
                    compiled.entry, service.store.graph("g")
                )
                assert frozenset(response.selection.selected) == frozenset(
                    direct.selected
                )


class TestDeltaEditWarmth:
    def test_submit_edit_reports_surviving_warmth(self):
        with make_service() as service:
            # warm the entry, then edit between existing nodes only
            service.select("g", REACH)
            service.select("g", SPECS[1])

            def rewire(graph):
                graph.add_edge("fn_11_2", "fn_11_9")

            service.edit("g", rewire)
            after = service.select("g", REACH)
            stats = service.stats_snapshot()["store"]
            assert stats["invalidations"] == 1
            assert stats["delta_refreshes"] == 1
            assert stats["cache_retained"] + stats["cache_dropped"] > 0
            compiled = compile_spec(REACH)
            direct = evaluate_pipeline(compiled.entry, service.store.graph("g"))
            assert frozenset(after.selection.selected) == frozenset(
                direct.selected
            )
