"""GraphStore: warm entries, LRU-by-bytes eviction, version invalidation."""

import pytest

from repro.cg.graph import CallGraph, NodeMeta
from repro.core.pipeline import compile_spec, evaluate_pipeline
from repro.errors import ServiceError
from repro.service import BatchEvaluator, GraphStore


def make_graph(seed: int = 0, nodes: int = 12) -> CallGraph:
    """A small app-shaped graph; ``seed`` varies structure and metadata."""
    g = CallGraph()
    g.add_node("main", NodeMeta(statements=5, has_body=True))
    g.add_node("MPI_Allreduce", NodeMeta(is_mpi=True, in_system_header=True))
    for i in range(nodes):
        g.add_node(
            f"fn_{seed}_{i}",
            NodeMeta(
                statements=1 + (i * 7 + seed) % 9,
                flops=(i * 13 + seed * 5) % 40,
                loop_depth=(i + seed) % 3,
                has_body=True,
            ),
        )
        caller = "main" if i % 3 == 0 else f"fn_{seed}_{(i * (seed + 2)) % max(i, 1)}"
        g.add_edge(caller, f"fn_{seed}_{i}")
    g.add_edge(f"fn_{seed}_{nodes - 1}", "MPI_Allreduce")
    return g


SPECS = (
    'onCallPathTo(byName("MPI_.*", %%))',
    'flops(">=", 10, %%)',
    'onCallPathFrom(byName("main", %%))',
    'subtract(onCallPathFrom(byName("main", %%)), flops(">=", 10, %%))',
)


def entry_bytes() -> int:
    store = GraphStore()
    store.admit("probe", make_graph())
    return store.entry("probe").nbytes


class TestAdmission:
    def test_unknown_key_raises(self):
        store = GraphStore()
        with pytest.raises(ServiceError, match="unknown graph key"):
            store.entry("nope")

    def test_admit_is_idempotent_for_same_object(self):
        store = GraphStore()
        g = make_graph()
        store.admit("a", g)
        store.entry("a")
        store.admit("a", g)  # same object: warm state survives
        assert store.peek("a") is not None
        assert store.stats.admitted == 1

    def test_readmitting_different_graph_drops_warm_state(self):
        store = GraphStore()
        store.admit("a", make_graph(seed=1))
        first = store.entry("a")
        replacement = make_graph(seed=2)
        store.admit("a", replacement)
        assert store.peek("a") is None
        entry = store.entry("a")
        assert entry.graph is replacement
        assert entry.cache is not first.cache

    def test_max_bytes_must_be_positive(self):
        with pytest.raises(ServiceError):
            GraphStore(max_bytes=0)


class TestLruEviction:
    def test_mixed_access_keeps_lru_order_and_evicts_oldest(self):
        budget = 2 * entry_bytes()
        store = GraphStore(max_bytes=budget)
        for key, seed in (("a", 1), ("b", 2), ("c", 3)):
            store.admit(key, make_graph(seed=seed))
        store.entry("a")
        store.entry("b")
        assert store.warm_keys() == ["a", "b"]
        store.entry("a")  # touch: a becomes most recent
        assert store.warm_keys() == ["b", "a"]
        store.entry("c")  # over budget: b (now oldest) goes
        assert store.warm_keys() == ["a", "c"]
        assert store.stats.evictions == 1
        store.entry("b")  # cold re-admit evicts a
        assert store.warm_keys() == ["c", "b"]
        assert store.stats.evictions == 2
        assert store.total_bytes() <= budget

    def test_most_recent_entry_is_never_evicted(self):
        store = GraphStore(max_bytes=1)  # below any snapshot size
        store.admit("big", make_graph())
        entry = store.entry("big")
        assert store.warm_keys() == ["big"]
        assert entry.nbytes > 1  # genuinely over budget, still servable

    def test_eviction_only_affects_warm_state_not_admission(self):
        store = GraphStore(max_bytes=entry_bytes())
        store.admit("a", make_graph(seed=1))
        store.admit("b", make_graph(seed=2))
        store.entry("a")
        store.entry("b")
        assert store.warm_keys() == ["b"]
        assert "a" in store and "b" in store  # both still admitted


class TestVersionInvalidation:
    def test_version_bump_drops_only_that_graphs_entries(self):
        store = GraphStore()
        ga, gb = make_graph(seed=1), make_graph(seed=2)
        store.admit("a", ga)
        store.admit("b", gb)
        entry_a = store.entry("a")
        entry_b = store.entry("b")
        compiled = compile_spec(SPECS[0])
        evaluator = BatchEvaluator()
        evaluator.evaluate([compiled], entry_a)
        evaluator.evaluate([compiled], entry_b)
        b_store_before = dict(entry_b.cache._store)
        assert b_store_before  # b has warm results

        ga.add_node("late", NodeMeta(statements=1, has_body=True))
        ga.add_edge("late", "MPI_Allreduce")

        fresh_a = store.entry("a")
        assert store.stats.invalidations == 1
        assert fresh_a.version == ga.version
        assert fresh_a.cache is entry_a.cache  # same object, re-bound
        # b is untouched: same entry object, warm results intact
        assert store.peek("b") is entry_b
        assert dict(entry_b.cache._store) == b_store_before

        result = evaluator.evaluate([compiled], fresh_a).results[0]
        assert "late" in result.selected

    def test_stale_warm_entry_is_rebuilt_not_served(self):
        store = GraphStore()
        g = make_graph()
        store.admit("a", g)
        old = store.entry("a")
        g.add_node("extra", NodeMeta(statements=1, has_body=True))
        fresh = store.entry("a")
        assert fresh is not old
        assert fresh.version == g.version
        assert store.stats.warm_hits == 0
        assert store.stats.cold_builds == 2


class TestEvictedReadmission:
    def test_evicted_graph_readmits_cold_with_identical_results(self):
        """Property: for varied graphs and every spec in the mix, results
        after eviction + cold re-admission are bit-identical to uncached
        evaluation."""
        budget = entry_bytes()  # one warm entry at a time
        for seed in range(4):
            store = GraphStore(max_bytes=budget)
            graph = make_graph(seed=seed, nodes=16)
            other = make_graph(seed=seed + 100, nodes=16)
            store.admit("g", graph)
            store.admit("other", other)
            evaluator = BatchEvaluator()
            compiled = [compile_spec(s, spec_name=s) for s in SPECS]

            warm = evaluator.evaluate(compiled, store.entry("g")).results
            store.entry("other")  # evicts "g"
            assert store.peek("g") is None
            cold_entry = store.entry("g")  # cold rebuild
            assert len(cold_entry.cache._store) == 0
            cold = evaluator.evaluate(compiled, cold_entry).results

            for spec, w, c in zip(compiled, warm, cold):
                uncached = evaluate_pipeline(spec.entry, graph)
                assert w.selected == uncached.selected, (seed, spec.spec_name)
                assert c.selected == uncached.selected, (seed, spec.spec_name)

    def test_hit_rate_reflects_warm_and_cold_accesses(self):
        store = GraphStore()
        store.admit("a", make_graph())
        store.entry("a")
        store.entry("a")
        store.entry("a")
        stats = store.stats
        assert stats.cold_builds == 1
        assert stats.warm_hits == 2
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.as_dict()["hit_rate"] == stats.hit_rate


class TestDeltaWarmth:
    """Warm entries survive small edits through the mutation journal."""

    def test_edge_edit_refreshes_snapshot_through_journal(self):
        store = GraphStore()
        graph = make_graph()
        store.admit("g", graph)
        first = store.entry("g")
        graph.add_edge("fn_0_1", "fn_0_7")  # both already exist
        entry = store.entry("g")
        assert store.stats.invalidations == 1
        assert store.stats.delta_refreshes == 1
        assert entry.snapshot.refreshed_from == first.version
        # the refreshed entry answers exactly like uncached evaluation
        for source in SPECS:
            compiled = compile_spec(source)
            warm = BatchEvaluator().evaluate([compiled], entry).results[0]
            assert warm.selected == evaluate_pipeline(
                compiled.entry, graph
            ).selected, source

    def test_cache_retention_reported_in_stats(self):
        store = GraphStore()
        graph = make_graph()
        # a detached island: edits there cannot touch main's cone
        graph.add_node("island", NodeMeta(statements=2, has_body=True))
        graph.add_node("island_leaf", NodeMeta(statements=2, has_body=True))
        graph.add_edge("island", "island_leaf")
        store.admit("g", graph)
        evaluator = BatchEvaluator()
        compiled = [compile_spec(s, spec_name=s) for s in SPECS]
        warm = evaluator.evaluate(compiled, store.entry("g")).results
        graph.add_edge("island", "island")  # island-only structural edit
        entry = store.entry("g")
        stats = store.stats
        assert stats.delta_refreshes == 1
        assert stats.cache_retained > 0  # main-cone entries survived
        assert stats.as_dict()["cache_retained"] == stats.cache_retained
        again = evaluator.evaluate(compiled, entry)
        assert again.cross_hits > 0  # served from the surviving entries
        for spec, before, after in zip(compiled, warm, again.results):
            assert before.selected == after.selected, spec.spec_name
            assert after.selected == evaluate_pipeline(
                spec.entry, graph
            ).selected, spec.spec_name

    def test_node_add_reports_no_retention(self):
        store = GraphStore()
        graph = make_graph()
        store.admit("g", graph)
        evaluator = BatchEvaluator()
        compiled = [compile_spec(s, spec_name=s) for s in SPECS]
        evaluator.evaluate(compiled, store.entry("g"))
        graph.add_node("fresh", NodeMeta(statements=1, has_body=True))
        store.entry("g")
        # universe change: wholesale drop, nothing retained or counted
        assert store.stats.cache_retained == 0
        assert store.stats.cache_dropped == 0
