"""The synthetic client-mix harness (``python -m repro.experiments.serve``)."""

from repro.experiments import serve


def test_run_service_mix_check_contract():
    report = serve.run_service_mix(
        ("lulesh",),
        scales={"lulesh": 220},
        tenants=3,
        requests_per_tenant=5,
        edit_every=6,
        window_seconds=0.05,
        seed=42,
        verify=True,
    )
    assert serve.check_report(report) == []
    assert report.responses == report.requests
    assert report.result_changed_after_edit
    assert report.invalidations > 0
    assert report.edits > 0


def test_main_check_exits_zero(capsys):
    rc = serve.main(
        [
            "--nodes", "220",
            "--tenants", "2",
            "--requests", "4",
            "--edit-every", "5",
            "--check",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "CHECK OK" in out


def test_check_report_flags_problems():
    report = serve.run_service_mix(
        ("lulesh",),
        scales={"lulesh": 220},
        tenants=2,
        requests_per_tenant=3,
        edit_every=0,  # no interleaved edits; phase 2 still edits
        window_seconds=0.05,
        verify=False,
    )
    problems = serve.check_report(report)
    assert any("verify" in p for p in problems)
