"""On-disk OTF2-shaped store: writer round-trips, truncation detection,
definition tables, and the health record."""

import json

import pytest

from repro.execution.clock import VirtualClock
from repro.multirank.faults import HealthReport, RankHealth
from repro.scorep.tracing import ScorePTracer, TraceEventKind
from repro.trace import (
    TraceStoreError,
    TraceWriter,
    discover_ranks,
    load_location,
    load_location_file,
    location_path,
    read_definitions,
    read_health_record,
    write_definitions,
    write_health_record,
)
from repro.trace.store import count_location_events, iter_location_file
from tests.trace.conftest import E, L, M, ev


def sample_events(n=10):
    out = []
    t = 0.0
    for i in range(n // 2):
        t += 1.5
        out.append(ev(E, f"region{i % 3}", t))
        t += 2.25
        out.append(ev(L, f"region{i % 3}", t))
    return out


class TestWriterRoundTrip:
    def test_events_read_back_bit_identical(self, tmp_path):
        events = sample_events(20)
        writer = TraceWriter(tmp_path, 0)
        writer.write_events(events)
        meta = writer.close()
        assert meta.rank == 0
        assert meta.events == 20
        assert load_location(tmp_path, 0) == events

    def test_float_timestamps_survive_exactly(self, tmp_path):
        """JSON round-trips doubles exactly — the bit-identity bedrock."""
        events = [
            ev(E, "a", 0.1 + 0.2),  # the classic 0.30000000000000004
            ev(M, "MPI_Allreduce", 1e9 / 3.0),
            ev(L, "a", 2**53 - 1.0),
        ]
        writer = TraceWriter(tmp_path, 3)
        writer.write_events(events)
        writer.close()
        loaded = load_location(tmp_path, 3)
        assert [e.timestamp_cycles for e in loaded] == [
            e.timestamp_cycles for e in events
        ]

    def test_message_ids_preserved(self, tmp_path):
        events = [
            ev(M, "MPI_Isend", 5.0, mid=0),
            ev(M, "MPI_Irecv", 6.0, mid=0),
            ev(M, "MPI_Allreduce", 7.0),
        ]
        writer = TraceWriter(tmp_path, 0)
        writer.write_events(events)
        writer.close()
        loaded = load_location(tmp_path, 0)
        assert [e.mid for e in loaded] == [0, 0, None]

    def test_buffer_flush_crossing_trace(self, tmp_path):
        """A trace larger than the write buffer spans several flushes
        and still reads back bit-identical."""
        events = sample_events(100)
        writer = TraceWriter(tmp_path, 1, buffer_events=7)
        writer.write_events(events)
        meta = writer.close()
        assert meta.flushes > 3
        assert load_location(tmp_path, 1) == events

    def test_regions_interned_once(self, tmp_path):
        writer = TraceWriter(tmp_path, 0)
        for _ in range(5):
            writer.write(ev(E, "hot", 1.0))
            writer.write(ev(L, "hot", 2.0))
        meta = writer.close()
        assert meta.regions == ("hot",)
        lines = location_path(tmp_path, 0).read_text().splitlines()
        assert sum(1 for ln in lines if json.loads(ln)[0] == "D") == 1

    def test_writer_spills_from_tracer(self, tmp_path):
        """ScorePTracer with a writer streams events to disk instead of
        accumulating them, and refuses in-memory access."""
        writer = TraceWriter(tmp_path, 0, buffer_events=4)
        tracer = ScorePTracer(clock=VirtualClock(), writer=writer)
        for i in range(10):
            tracer.enter(f"r{i % 2}")
            tracer.leave(f"r{i % 2}")
        with pytest.raises(Exception):
            tracer.all_events()
        meta = tracer.close_writer()
        assert meta.events == 20
        loaded = load_location(tmp_path, 0)
        assert len(loaded) == 20
        assert loaded[0].kind is TraceEventKind.ENTER

    def test_closed_writer_rejects_writes(self, tmp_path):
        writer = TraceWriter(tmp_path, 0)
        writer.close()
        with pytest.raises(TraceStoreError, match="already closed"):
            writer.write(ev(E, "a", 1.0))

    def test_abort_publishes_nothing(self, tmp_path):
        writer = TraceWriter(tmp_path, 4)
        writer.write(ev(E, "a", 1.0))
        writer.abort()
        assert not location_path(tmp_path, 4).exists()
        assert discover_ranks(tmp_path) == []

    def test_discover_ranks_sorted(self, tmp_path):
        for rank in (3, 0, 7):
            w = TraceWriter(tmp_path, rank)
            w.close()
        assert discover_ranks(tmp_path) == [0, 3, 7]


class TestTruncationDetection:
    def _published(self, tmp_path, n=30):
        writer = TraceWriter(tmp_path, 0)
        writer.write_events(sample_events(n))
        writer.close()
        return location_path(tmp_path, 0)

    def test_missing_footer_raises_strict(self, tmp_path):
        path = self._published(tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceStoreError, match="missing footer"):
            load_location_file(path)

    def test_byte_truncation_raises_strict(self, tmp_path):
        path = self._published(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceStoreError):
            load_location_file(path)

    def test_count_mismatch_raises_strict(self, tmp_path):
        path = self._published(tmp_path, n=10)
        lines = path.read_text().splitlines()
        # drop one event line but keep the footer
        event_idx = next(
            i for i, ln in enumerate(lines)
            if isinstance(json.loads(ln)[0], int)
        )
        del lines[event_idx]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceStoreError, match="footer declares"):
            load_location_file(path)

    def test_prefix_salvageable_before_error(self, tmp_path):
        """Strict readers yield the intact prefix first, then raise —
        callers can salvage what survived."""
        path = self._published(tmp_path, n=10)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        salvaged = []
        with pytest.raises(TraceStoreError):
            for event in iter_location_file(path):
                salvaged.append(event)
        assert 0 < len(salvaged) < 10

    def test_lenient_count_of_truncated_file(self, tmp_path):
        path = self._published(tmp_path, n=10)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert 0 < count_location_events(path) < 10

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceStoreError, match="missing location"):
            load_location(tmp_path, 9)


class TestDefinitions:
    def test_round_trip(self, tmp_path):
        metas = []
        for rank in (0, 1):
            w = TraceWriter(tmp_path, rank)
            w.write_events(sample_events(6))
            metas.append(w.close())
        write_definitions(
            tmp_path, world_ranks=2, locations=metas, frequency=2.5e9,
            meta={"app": "demo"},
        )
        defs = read_definitions(tmp_path)
        assert defs.world_ranks == 2
        assert defs.locations == (0, 1)
        assert defs.events_per_location == (6, 6)
        assert defs.frequency == 2.5e9
        assert defs.meta["app"] == "demo"
        assert not defs.degraded

    def test_degraded_when_locations_missing(self, tmp_path):
        w = TraceWriter(tmp_path, 1)
        meta = w.close()
        write_definitions(
            tmp_path, world_ranks=4, locations=[meta], frequency=1e9
        )
        assert read_definitions(tmp_path).degraded

    def test_missing_definitions_raises(self, tmp_path):
        with pytest.raises(TraceStoreError, match="missing definitions.json"):
            read_definitions(tmp_path)


class TestHealthRecord:
    def test_round_trip(self, tmp_path):
        health = HealthReport(
            ranks=3,
            per_rank=(
                RankHealth(rank=0, outcome="ok", attempts=1, latency_seconds=0.5),
                RankHealth(
                    rank=1, outcome="ok", attempts=2, latency_seconds=1.0,
                    failures=("crash",),
                ),
                RankHealth(
                    rank=2, outcome="lost", attempts=3, latency_seconds=2.0,
                    failures=("crash", "crash", "crash"),
                ),
            ),
            missing_ranks=(2,),
        )
        write_health_record(tmp_path, health)
        loaded = read_health_record(tmp_path)
        assert loaded == health

    def test_absent_record_is_none(self, tmp_path):
        assert read_health_record(tmp_path) is None
