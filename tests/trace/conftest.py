"""Shared helpers for the durable trace pipeline tests."""

from __future__ import annotations

from pathlib import Path

from repro.scorep.tracing import TraceEvent, TraceEventKind
from repro.trace import TraceWriter, write_definitions

E, L, M = TraceEventKind.ENTER, TraceEventKind.LEAVE, TraceEventKind.MPI


def ev(kind, region, t, mid=None):
    return TraceEvent(kind, region, float(t), mid)


def write_archive(
    trace_dir: Path,
    streams: "dict[int, list[TraceEvent]]",
    *,
    world_ranks: "int | None" = None,
    frequency: float = 1e9,
    buffer_events: int = 4096,
    definitions: bool = True,
):
    """Publish an OTF2-shaped archive from per-rank event lists."""
    metas = []
    for rank, events in sorted(streams.items()):
        writer = TraceWriter(trace_dir, rank, buffer_events=buffer_events)
        writer.write_events(events)
        metas.append(writer.close())
    if definitions:
        write_definitions(
            trace_dir,
            world_ranks=world_ranks if world_ranks is not None else len(streams),
            locations=metas,
            frequency=frequency,
        )
    return metas
