"""Streaming merge ≡ in-memory merge, bit for bit, on synthetic archives.

The end-to-end backend sweep (serial / multiprocessing / supervised)
lives in ``test_pipeline.py``; here the archives are hand-built so the
edge cases — ragged timelines, degraded rank sets, buffer-flush
crossings, defective streams — are exact and fast.
"""

import pytest

from repro.multirank import merge_rank_traces
from repro.trace import TraceStoreError, load_location, open_merged_trace
from tests.trace.conftest import E, L, M, ev, write_archive


def ring_streams():
    """3 ranks, collectives + matched p2p + nested regions, skewed."""
    streams = {}
    for rank in range(3):
        skew = rank * 7.0
        streams[rank] = [
            ev(M, "MPI_Init", 1.0 + skew),
            ev(E, "main", 2.0 + skew),
            ev(E, "solve", 3.0 + skew),
            ev(M, "MPI_Isend", 4.0 + skew, mid=0),
            ev(M, "MPI_Irecv", 5.0 + skew, mid=0),
            ev(M, "MPI_Allreduce", 10.0 + skew * 2),
            ev(L, "solve", 12.0 + skew * 2),
            ev(M, "MPI_Allreduce", 20.0 + skew * 2),
            ev(L, "main", 21.0 + skew * 2),
            ev(M, "MPI_Finalize", 22.0 + skew * 2),
        ]
    return streams


def assert_equivalent(streamed, merged):
    """The full bit-identity contract between the two merge paths."""
    assert list(streamed.events()) == list(merged.events)
    assert streamed.sync_points == merged.sync_points
    assert streamed.rank_offsets == merged.rank_offsets
    assert streamed.rank_labels == merged.rank_labels
    assert streamed.rank_wait_cycles == merged.rank_wait_cycles
    assert streamed.wait_states() == merged.wait_states()
    assert streamed.critical_path() == merged.critical_path()
    assert streamed.validate() == merged.validate()


class TestBitIdentity:
    def test_basic_archive(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, streams)
        merged = merge_rank_traces([streams[r] for r in sorted(streams)])
        assert_equivalent(open_merged_trace(tmp_path), merged)

    def test_buffer_flush_crossing(self, tmp_path):
        """Tiny write buffers force many flushes per location; the
        merged timeline must not notice."""
        streams = ring_streams()
        write_archive(tmp_path, streams, buffer_events=3)
        merged = merge_rank_traces([streams[r] for r in sorted(streams)])
        assert_equivalent(open_merged_trace(tmp_path), merged)

    def test_ragged_timelines(self, tmp_path):
        """Ranks that stop at different collectives (ragged tails) and
        have unequal event counts."""
        streams = ring_streams()
        streams[1] = streams[1][:6]  # dies after the first allreduce
        streams[2] = streams[2][:4] + [ev(M, "MPI_Allreduce", 50.0)]
        write_archive(tmp_path, streams)
        merged = merge_rank_traces([streams[r] for r in sorted(streams)])
        assert_equivalent(open_merged_trace(tmp_path), merged)

    def test_degraded_rank_set(self, tmp_path):
        """Archive holding only ranks {0, 2} of a 4-rank world: the
        streaming merge must honour non-contiguous rank_ids exactly as
        merge_rank_traces(rank_ids=...) does."""
        streams = ring_streams()
        survivors = {0: streams[0], 2: streams[2]}
        write_archive(tmp_path, survivors, world_ranks=4)
        merged = merge_rank_traces(
            [survivors[0], survivors[2]], rank_ids=[0, 2]
        )
        streamed = open_merged_trace(tmp_path)
        assert streamed.rank_ids == (0, 2)
        assert_equivalent(streamed, merged)

    def test_explicit_rank_ids_subset(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, streams)
        merged = merge_rank_traces(
            [streams[1], streams[2]], rank_ids=[1, 2]
        )
        streamed = open_merged_trace(tmp_path, rank_ids=[1, 2])
        assert_equivalent(streamed, merged)

    def test_defective_streams_validate_identically(self, tmp_path):
        """An unclosed region and a stray leave survive the disk round
        trip and produce the same issue records."""
        streams = {
            0: [ev(E, "a", 1.0), ev(M, "MPI_Finalize", 5.0)],
            1: [ev(L, "ghost", 2.0), ev(M, "MPI_Finalize", 6.0)],
        }
        write_archive(tmp_path, streams)
        merged = merge_rank_traces([streams[0], streams[1]])
        streamed = open_merged_trace(tmp_path)
        assert streamed.validate() == merged.validate()
        codes = sorted(i.code for i in streamed.validate())
        assert codes == ["unbalanced-leave", "unclosed-region"]

    def test_events_generator_is_repeatable(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, streams)
        streamed = open_merged_trace(tmp_path)
        assert list(streamed.events()) == list(streamed.events())

    def test_materialize_matches(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, streams)
        streamed = open_merged_trace(tmp_path)
        merged = merge_rank_traces([streams[r] for r in sorted(streams)])
        assert streamed.materialize().events == merged.events


class TestOpenMergedTrace:
    def test_rank_ids_default_from_definitions(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, {0: streams[0], 2: streams[2]}, world_ranks=3)
        assert open_merged_trace(tmp_path).rank_ids == (0, 2)

    def test_falls_back_to_discovery_without_definitions(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, streams, definitions=False)
        assert open_merged_trace(tmp_path).rank_ids == (0, 1, 2)

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(TraceStoreError, match="no trace locations"):
            open_merged_trace(tmp_path)

    def test_elapsed_and_event_counts(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, streams)
        streamed = open_merged_trace(tmp_path)
        merged = merge_rank_traces([streams[r] for r in sorted(streams)])
        assert streamed.events_per_rank == tuple(
            len(s) for s in merged.per_rank
        )
        assert streamed.elapsed_cycles == max(
            e.timestamp_cycles for e in merged.events
        )

    def test_mids_survive_the_round_trip(self, tmp_path):
        streams = ring_streams()
        write_archive(tmp_path, streams)
        loaded = load_location(tmp_path, 0)
        assert [e.mid for e in loaded if e.mid is not None] == [0, 0]
