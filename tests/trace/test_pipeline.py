"""End-to-end durable pipeline: run_app(trace_dir=...) on every backend,
streaming merge bit-identical to in-memory, faults absorbed on disk."""

import pytest

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.workload import Workload
from repro.multirank import (
    DlbPolicy,
    FaultSpec,
    ImbalanceSpec,
    SupervisedBackend,
)
from repro.trace import (
    open_merged_trace,
    read_definitions,
    read_health_record,
    scan_run,
)
from repro.workflow import build_app, run_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=4)


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic():
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


def traced_run(demo_app, demo_ic, trace_dir=None, *, ranks=3, backend="serial",
               faults=None, degraded="forbid"):
    return run_app(
        demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=ranks,
        workload=WL, imbalance=ImbalanceSpec(stragglers=1, seed=31),
        tracing=True, backend=backend,
        trace_dir=str(trace_dir) if trace_dir else None,
        faults=faults, degraded=degraded,
    )


class TestMultiRankArchive:
    @pytest.fixture(scope="class")
    def archive(self, demo_app, demo_ic, tmp_path_factory):
        td = tmp_path_factory.mktemp("serial-archive")
        out = traced_run(demo_app, demo_ic, td)
        return td, out

    def test_definitions_published(self, archive):
        td, out = archive
        defs = read_definitions(td)
        assert defs.world_ranks == 3
        assert defs.locations == (0, 1, 2)
        assert defs.events_per_location == out.merged_trace.events_per_rank
        assert defs.frequency > 0
        assert not defs.degraded

    def test_streaming_merge_bit_identical(self, archive):
        td, out = archive
        streamed = open_merged_trace(td)
        assert list(streamed.events()) == list(out.merged_trace.events)
        assert streamed.sync_points == out.merged_trace.sync_points
        assert streamed.rank_offsets == out.merged_trace.rank_offsets
        assert streamed.wait_states() == out.merged_trace.wait_states()
        assert streamed.critical_path() == out.merged_trace.critical_path()
        assert streamed.validate() == []

    def test_watchdog_silent_on_healthy_archive(self, archive):
        td, _ = archive
        assert scan_run(td) == []

    @pytest.mark.parametrize("backend", ["multiprocessing", "supervised"])
    def test_other_backends_write_identical_archives(
        self, demo_app, demo_ic, tmp_path, archive, backend
    ):
        _, reference = archive
        resolved = (
            SupervisedBackend("serial", deadline_seconds=30.0)
            if backend == "supervised"
            else backend
        )
        out = traced_run(demo_app, demo_ic, tmp_path, backend=resolved)
        streamed = open_merged_trace(tmp_path)
        assert list(streamed.events()) == list(reference.merged_trace.events)

    def test_single_rank_archive(self, demo_app, demo_ic, tmp_path):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic,
            workload=WL, tracing=True, trace_dir=str(tmp_path),
        )
        defs = read_definitions(tmp_path)
        assert defs.world_ranks == 1
        assert out.trace_meta is not None
        streamed = open_merged_trace(tmp_path)
        assert streamed.events_per_rank == (defs.events_per_location[0],)
        assert list(streamed.events())  # non-empty, readable


class TestFaultsOnDisk:
    def _supervised(self, demo_app, demo_ic, td, faults, degraded="forbid"):
        return traced_run(
            demo_app, demo_ic, td,
            backend=SupervisedBackend("serial", deadline_seconds=30.0),
            faults=faults, degraded=degraded,
        )

    def test_crash_once_heals_bit_identical(
        self, demo_app, demo_ic, tmp_path
    ):
        ref_dir = tmp_path / "ref"
        ref = self._supervised(demo_app, demo_ic, ref_dir, None)
        crash_dir = tmp_path / "crash"
        out = self._supervised(
            demo_app, demo_ic, crash_dir,
            FaultSpec(crashes=1, crash_times=1, seed=43),
        )
        assert out.health.retried_ranks
        assert list(open_merged_trace(crash_dir).events()) == list(
            open_merged_trace(ref_dir).events()
        )
        # retried ranks surface as a watchdog warning, nothing worse
        codes = {(a.code, a.severity) for a in scan_run(crash_dir)}
        assert codes == {("retried", "warning")}

    def test_corrupt_trace_on_disk_detected_and_retried(
        self, demo_app, demo_ic, tmp_path
    ):
        """The corrupt-trace fault byte-truncates the published location
        file; the supervisor's integrity gate catches it from disk and
        the retry republishes a clean archive."""
        out = self._supervised(
            demo_app, demo_ic, tmp_path,
            FaultSpec(corruptions=1, corrupt_times=1,
                      corrupt_target="trace", seed=59),
        )
        assert out.health.retried_ranks
        streamed = open_merged_trace(tmp_path)
        assert list(streamed.events()) == list(out.merged_trace.events)
        assert streamed.validate() == []

    def test_rank_loss_leaves_degraded_archive(
        self, demo_app, demo_ic, tmp_path
    ):
        out = self._supervised(
            demo_app, demo_ic, tmp_path,
            FaultSpec(crashes=1, crash_times=99, seed=71),
            degraded="allow",
        )
        lost = out.health.missing_ranks
        assert len(lost) == 1
        defs = read_definitions(tmp_path)
        assert defs.degraded
        assert lost[0] not in defs.locations
        streamed = open_merged_trace(tmp_path)
        assert streamed.rank_ids == defs.locations
        assert list(streamed.events()) == list(out.merged_trace.events)
        # health.json rode along; the watchdog reports the loss
        health = read_health_record(tmp_path)
        assert health is not None and health.missing_ranks == lost
        codes = [a.code for a in scan_run(tmp_path)]
        assert "lost" in codes and "degraded" in codes


class TestGuards:
    def test_trace_dir_requires_tracing(self, demo_app, demo_ic, tmp_path):
        with pytest.raises(CapiError, match="tracing=True"):
            run_app(
                demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=2,
                workload=WL, imbalance=ImbalanceSpec(),
                trace_dir=str(tmp_path),
            )

    def test_trace_dir_incompatible_with_dlb(
        self, demo_app, demo_ic, tmp_path
    ):
        with pytest.raises(CapiError, match="rewrite the archive"):
            run_app(
                demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=2,
                workload=WL, imbalance=ImbalanceSpec(stragglers=1, seed=3),
                tracing=True, dlb=DlbPolicy(),
                trace_dir=str(tmp_path),
            )
