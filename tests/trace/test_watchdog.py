"""Watchdog rules: healthy archives are silent, damage alerts precisely."""

import io
import json

from repro.multirank.faults import HealthReport, RankHealth
from repro.trace import (
    Alert,
    scan_run,
    write_health_record,
)
from repro.trace.store import location_path
from repro.trace.watchdog import (
    WatchConfig,
    discover_run_dirs,
    watch,
)
from tests.trace.conftest import E, L, M, ev, write_archive


def healthy_streams():
    streams = {}
    for rank in range(2):
        skew = rank * 3.0
        streams[rank] = [
            ev(M, "MPI_Init", 1.0 + skew),
            ev(E, "main", 2.0 + skew),
            ev(M, "MPI_Allreduce", 10.0 + skew),
            ev(L, "main", 12.0 + skew),
            ev(M, "MPI_Finalize", 13.0 + skew),
        ]
    return streams


class TestScanRun:
    def test_healthy_archive_is_silent(self, tmp_path):
        write_archive(tmp_path, healthy_streams())
        assert scan_run(tmp_path) == []

    def test_missing_definitions(self, tmp_path):
        write_archive(tmp_path, healthy_streams(), definitions=False)
        codes = [a.code for a in scan_run(tmp_path)]
        assert "trace-missing-definitions" in codes

    def test_truncated_location(self, tmp_path):
        write_archive(tmp_path, healthy_streams())
        path = location_path(tmp_path, 1)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        alerts = scan_run(tmp_path)
        truncated = [a for a in alerts if a.code == "trace-truncated"]
        assert len(truncated) == 1
        assert truncated[0].rank == 1
        assert truncated[0].severity == "critical"
        # the intact rank still merges without further alerts
        assert not [a for a in alerts if a.code.startswith("trace-un")]

    def test_missing_location(self, tmp_path):
        write_archive(tmp_path, healthy_streams())
        location_path(tmp_path, 0).unlink()
        codes = [a.code for a in scan_run(tmp_path)]
        assert "trace-missing-location" in codes

    def test_orphan_location(self, tmp_path):
        streams = healthy_streams()
        write_archive(tmp_path, {0: streams[0]}, world_ranks=1)
        write_archive(
            tmp_path, {1: streams[1]}, definitions=False
        )  # zombie publish after close
        orphans = [
            a for a in scan_run(tmp_path) if a.code == "trace-orphan-location"
        ]
        assert len(orphans) == 1
        assert orphans[0].rank == 1

    def test_event_count_mismatch(self, tmp_path):
        write_archive(tmp_path, healthy_streams())
        defs_path = tmp_path / "definitions.json"
        payload = json.loads(defs_path.read_text())
        payload["locations"][0]["events"] += 5
        defs_path.write_text(json.dumps(payload))
        mismatches = [
            a for a in scan_run(tmp_path) if a.code == "trace-event-count"
        ]
        assert len(mismatches) == 1
        assert mismatches[0].measured is not None
        assert mismatches[0].threshold == mismatches[0].measured + 5

    def test_merge_defect_surfaces_issue_code(self, tmp_path):
        streams = {
            0: [ev(E, "a", 1.0), ev(M, "MPI_Finalize", 5.0)],
            1: [ev(M, "MPI_Finalize", 6.0)],
        }
        write_archive(tmp_path, streams)
        codes = [a.code for a in scan_run(tmp_path)]
        assert "trace-unclosed-region" in codes

    def test_health_record_alerts_ride_along(self, tmp_path):
        write_archive(tmp_path, healthy_streams())
        write_health_record(
            tmp_path,
            HealthReport(
                ranks=2,
                per_rank=(
                    RankHealth(rank=0, outcome="ok", attempts=2,
                               latency_seconds=1.0, failures=("crash",)),
                    RankHealth(rank=1, outcome="ok", attempts=1,
                               latency_seconds=0.5),
                ),
            ),
        )
        alerts = scan_run(tmp_path)
        assert [a.code for a in alerts] == ["retried"]
        assert alerts[0].source == str(tmp_path)


class TestWaitRegression:
    def _skewed(self, tmp_path, skew):
        streams = {
            0: [ev(M, "MPI_Allreduce", 10.0), ev(M, "MPI_Finalize", 11.0)],
            1: [ev(M, "MPI_Allreduce", 10.0 + skew),
                ev(M, "MPI_Finalize", 11.0 + skew)],
        }
        write_archive(tmp_path, streams)

    def test_absolute_limit_trips_on_hang_shape(self, tmp_path):
        """One rank parked ~forever at the collective: the wait
        fraction approaches 0.5 of 2 ranks — above a tight limit."""
        self._skewed(tmp_path, skew=1000.0)
        alerts = scan_run(
            tmp_path, config=WatchConfig(wait_fraction_limit=0.25)
        )
        regressions = [a for a in alerts if a.code == "wait-regression"]
        assert len(regressions) == 1
        assert regressions[0].measured > regressions[0].threshold

    def test_baseline_scales_the_budget(self, tmp_path):
        baseline = tmp_path / "BENCH_selection.json"
        baseline.write_text(
            json.dumps({"trace_pipeline": {"healthy_wait_fraction": 0.01}})
        )
        run_dir = tmp_path / "run"
        self._skewed(run_dir, skew=1000.0)
        config = WatchConfig(baseline_path=str(baseline), wait_slack=2.0)
        codes = [a.code for a in scan_run(run_dir, config=config)]
        assert "wait-regression" in codes

    def test_healthy_skew_stays_under_budget(self, tmp_path):
        self._skewed(tmp_path, skew=1.0)
        assert scan_run(tmp_path) == []


class TestWatchLoop:
    def test_discovers_nested_runs(self, tmp_path):
        write_archive(tmp_path / "a", healthy_streams())
        write_archive(tmp_path / "b" / "deep", healthy_streams())
        assert discover_run_dirs(tmp_path) == [
            tmp_path / "a", tmp_path / "b" / "deep",
        ]

    def test_once_emits_jsonl_and_counts(self, tmp_path):
        run = tmp_path / "runs" / "bad"
        write_archive(run, healthy_streams())
        path = location_path(run, 0)
        path.write_bytes(path.read_bytes()[:40])
        stdout, stderr = io.StringIO(), io.StringIO()
        alerts_file = tmp_path / "alerts.jsonl"
        total = watch(
            tmp_path / "runs", once=True,
            alerts_file=str(alerts_file), stdout=stdout, stderr=stderr,
        )
        assert total >= 1
        lines = stdout.getvalue().strip().splitlines()
        assert len(lines) == total
        parsed = [Alert.from_json(line) for line in lines]
        assert any(a.code == "trace-truncated" for a in parsed)
        # the sink file mirrors stdout
        assert alerts_file.read_text() == stdout.getvalue()
        # the human view goes to stderr only
        assert "ALERT" in stderr.getvalue()
        assert "watchdog: cycle 1" in stderr.getvalue()

    def test_unchanged_archives_scan_once(self, tmp_path):
        run = tmp_path / "bad"
        write_archive(run, healthy_streams(), definitions=False)
        stdout = io.StringIO()
        total = watch(
            tmp_path, max_cycles=3, interval=0.0,
            stdout=stdout, stderr=io.StringIO(),
        )
        # three cycles, but the unchanged archive alerts exactly once
        assert total == 1

    def test_healthy_tree_returns_zero(self, tmp_path):
        write_archive(tmp_path / "ok", healthy_streams())
        total = watch(
            tmp_path, once=True, stdout=io.StringIO(), stderr=io.StringIO()
        )
        assert total == 0


class TestCli:
    def test_watch_once_healthy_exit_zero(self, tmp_path, capsys):
        from repro.experiments.anomalies import main

        write_archive(tmp_path / "run", healthy_streams())
        code = main(
            ["--watch", str(tmp_path), "--once", "--fail-on-alert"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == ""

    def test_watch_once_damaged_exit_one(self, tmp_path, capsys):
        from repro.experiments.anomalies import main

        run = tmp_path / "run"
        write_archive(run, healthy_streams(), definitions=False)
        code = main(
            ["--watch", str(tmp_path), "--once", "--fail-on-alert"]
        )
        assert code == 1
        lines = capsys.readouterr().out.strip().splitlines()
        assert any(
            json.loads(line)["code"] == "trace-missing-definitions"
            for line in lines
        )
