"""Wait-state classification: the Scalasca taxonomy on merged traces."""

from repro.multirank import merge_rank_traces
from repro.simmpi.messages import (
    RECV_OPS,
    SEND_OPS,
    MessageMatcher,
    ring_partner,
)
from repro.trace import (
    classify_wait_states,
    open_merged_trace,
    render_wait_state_report,
    summarize_by_rank,
    summarize_by_region,
)
from repro.trace.waitstates import (
    COLLECTIVE_IMBALANCE,
    LATE_RECEIVER,
    LATE_SENDER,
)
from tests.trace.conftest import E, L, M, ev, write_archive


class TestRingPairing:
    def test_partner_is_previous_rank(self):
        assert ring_partner(1, 4) == 0
        assert ring_partner(0, 4) == 3

    def test_matcher_numbers_per_direction(self):
        m = MessageMatcher()
        assert m.next_id("MPI_Isend") == 0
        assert m.next_id("MPI_Irecv") == 0
        assert m.next_id("MPI_Isend") == 1
        assert m.next_id("MPI_Allreduce") is None

    def test_op_sets(self):
        assert "MPI_Isend" in SEND_OPS and "MPI_Send" in SEND_OPS
        assert "MPI_Irecv" in RECV_OPS and "MPI_Recv" in RECV_OPS


class TestCollectiveImbalance:
    def test_early_arriver_classified(self):
        fast = [ev(M, "MPI_Allreduce", 20), ev(M, "MPI_Finalize", 30)]
        slow = [ev(M, "MPI_Allreduce", 50), ev(M, "MPI_Finalize", 60)]
        merged = merge_rank_traces([fast, slow])
        waits = classify_wait_states(merged)
        collective = [w for w in waits if w.kind == COLLECTIVE_IMBALANCE]
        assert collective
        top = collective[0]
        assert top.rank == 0
        assert top.op == "MPI_Allreduce"
        assert top.wait_cycles == 30.0
        assert top.sync_index == 0

    def test_enclosing_region_attributed(self):
        fast = [
            ev(E, "solve", 1), ev(M, "MPI_Allreduce", 20), ev(L, "solve", 25),
            ev(M, "MPI_Finalize", 30),
        ]
        slow = [
            ev(E, "solve", 1), ev(M, "MPI_Allreduce", 50), ev(L, "solve", 55),
            ev(M, "MPI_Finalize", 60),
        ]
        merged = merge_rank_traces([fast, slow])
        top = classify_wait_states(merged)[0]
        assert top.kind == COLLECTIVE_IMBALANCE
        assert top.region == "solve"


class TestP2PClassification:
    def _world(self, send_t, recv_t):
        """2 ranks: rank 0 sends message 0 to rank 1 (ring partner)."""
        r0 = [ev(M, "MPI_Isend", send_t, mid=0), ev(M, "MPI_Finalize", 100)]
        r1 = [ev(M, "MPI_Irecv", recv_t, mid=0), ev(M, "MPI_Finalize", 100)]
        return merge_rank_traces([r0, r1])

    def test_late_sender(self):
        """Recv posted at 10, send not until 40: the receiver waits."""
        waits = classify_wait_states(self._world(send_t=40, recv_t=10))
        p2p = [w for w in waits if w.kind == LATE_SENDER]
        assert len(p2p) == 1
        w = p2p[0]
        assert w.rank == 1  # the receiver waits
        assert w.partner_rank == 0
        assert w.message_id == 0
        assert (w.begin_cycles, w.end_cycles) == (10.0, 40.0)
        assert not [x for x in waits if x.kind == LATE_RECEIVER]

    def test_late_receiver(self):
        """Send at 10, recv not posted until 40: the sender waits."""
        waits = classify_wait_states(self._world(send_t=10, recv_t=40))
        p2p = [w for w in waits if w.kind == LATE_RECEIVER]
        assert len(p2p) == 1
        w = p2p[0]
        assert w.rank == 0  # the sender waits
        assert w.partner_rank == 1
        assert (w.begin_cycles, w.end_cycles) == (10.0, 40.0)

    def test_simultaneous_is_no_wait(self):
        waits = classify_wait_states(self._world(send_t=10, recv_t=10))
        assert not [w for w in waits if w.kind != COLLECTIVE_IMBALANCE]

    def test_min_wait_threshold_filters(self):
        waits = classify_wait_states(
            self._world(send_t=15, recv_t=10), min_wait_cycles=10.0
        )
        assert not [w for w in waits if w.kind == LATE_SENDER]

    def test_unmatched_message_skipped(self):
        """Ragged tail: a send whose recv never happened classifies
        nothing (and does not crash)."""
        r0 = [ev(M, "MPI_Isend", 10, mid=0), ev(M, "MPI_Finalize", 50)]
        r1 = [ev(M, "MPI_Finalize", 50)]
        waits = classify_wait_states(merge_rank_traces([r0, r1]))
        assert not [w for w in waits if w.kind != COLLECTIVE_IMBALANCE]

    def test_degraded_world_skips_missing_partner(self):
        """Rank 1's receives point at lost rank 0: no partner trace, no
        classification, no crash.  world_ranks keeps ring arithmetic
        anchored to the original world."""
        r1 = [ev(M, "MPI_Irecv", 10, mid=0), ev(M, "MPI_Finalize", 50)]
        r2 = [ev(M, "MPI_Isend", 40, mid=0), ev(M, "MPI_Finalize", 50)]
        merged = merge_rank_traces([r1, r2], rank_ids=[1, 2])
        waits = classify_wait_states(merged, world_ranks=3)
        # rank 2's send goes to rank 0 (lost) — skipped; rank 1 waits
        # on rank 0's send (lost) — skipped
        assert not [w for w in waits if w.kind != COLLECTIVE_IMBALANCE]

    def test_streaming_trace_classifies_identically(self, tmp_path):
        streams = {
            0: [ev(M, "MPI_Isend", 40, mid=0), ev(M, "MPI_Finalize", 100)],
            1: [ev(M, "MPI_Irecv", 10, mid=0), ev(M, "MPI_Finalize", 100)],
        }
        write_archive(tmp_path, streams)
        merged = merge_rank_traces([streams[0], streams[1]])
        assert classify_wait_states(
            open_merged_trace(tmp_path)
        ) == classify_wait_states(merged)


class TestSummariesAndReport:
    def _waits(self):
        fast = [
            ev(E, "solve", 1), ev(M, "MPI_Allreduce", 20), ev(L, "solve", 25),
            ev(M, "MPI_Finalize", 60),
        ]
        slow = [
            ev(E, "solve", 1), ev(M, "MPI_Allreduce", 50), ev(L, "solve", 55),
            ev(M, "MPI_Finalize", 60),
        ]
        return classify_wait_states(merge_rank_traces([fast, slow]))

    def test_summaries(self):
        waits = self._waits()
        by_rank = summarize_by_rank(waits)
        assert by_rank[0][COLLECTIVE_IMBALANCE] == 30.0
        by_region = summarize_by_region(waits)
        assert COLLECTIVE_IMBALANCE in by_region["solve"]

    def test_report_mentions_kinds_and_totals(self):
        report = render_wait_state_report(self._waits())
        assert COLLECTIVE_IMBALANCE in report
        assert "totals by rank" in report
        assert "totals by region" in report

    def test_sorted_largest_first(self):
        waits = self._waits()
        cycles = [w.wait_cycles for w in waits]
        assert cycles == sorted(cycles, reverse=True)
