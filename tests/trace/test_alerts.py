"""Structured alerts: JSONL schema stability and the legacy text view."""

import json

import pytest

from repro.experiments.anomalies import render_health_alerts
from repro.multirank.faults import HealthReport, RankHealth
from repro.trace import Alert, health_alerts

SCHEMA_KEYS = {
    "code", "severity", "rank", "region", "measured", "threshold",
    "source", "detail",
}


class TestAlertRecord:
    def test_jsonl_round_trip(self):
        alert = Alert(
            code="wait-regression",
            severity="warning",
            detail="fraction over budget",
            rank=2,
            region="solve",
            measured=0.42,
            threshold=0.2,
            source="/runs/a",
        )
        assert Alert.from_json(alert.to_json()) == alert

    def test_every_line_has_every_key(self):
        line = Alert(code="lost", severity="critical", detail="x").to_json()
        record = json.loads(line)
        assert set(record) == SCHEMA_KEYS
        assert record["rank"] is None
        assert record["measured"] is None

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Alert(code="x", severity="fatal", detail="y")

    def test_render_shape(self):
        alert = Alert(
            code="trace-truncated", severity="critical",
            detail="missing footer", rank=3, source="/runs/a",
        )
        assert alert.render() == "ALERT trace-truncated rank=3 missing footer"

    def test_render_with_threshold(self):
        alert = Alert(
            code="wait-regression", severity="warning",
            detail="over budget", measured=0.5, threshold=0.25,
        )
        assert "measured=0.5 threshold=0.25" in alert.render()


def _health():
    return HealthReport(
        ranks=3,
        per_rank=(
            RankHealth(rank=0, outcome="ok", attempts=2,
                       latency_seconds=1.0, failures=("attempt 1: crash",)),
            RankHealth(rank=1, outcome="ok", attempts=1, latency_seconds=0.5),
            RankHealth(rank=2, outcome="lost", attempts=3,
                       latency_seconds=2.0,
                       failures=("a", "b", "attempt 3: crash")),
        ),
        missing_ranks=(2,),
    )


class TestHealthAlerts:
    def test_none_and_healthy_are_silent(self):
        assert health_alerts(None) == []
        healthy = HealthReport(
            ranks=2,
            per_rank=(
                RankHealth(rank=0, outcome="ok", attempts=1, latency_seconds=0.1),
                RankHealth(rank=1, outcome="ok", attempts=1, latency_seconds=0.1),
            ),
        )
        assert health_alerts(healthy) == []

    def test_retried_lost_degraded_records(self):
        alerts = health_alerts(_health())
        assert [a.code for a in alerts] == ["retried", "lost", "degraded"]
        assert [a.severity for a in alerts] == [
            "warning", "critical", "critical",
        ]
        retried, lost, degraded = alerts
        assert retried.rank == 0
        assert lost.rank == 2
        assert degraded.measured == pytest.approx(2 / 3)
        assert degraded.threshold == 1.0

    def test_text_view_is_the_render_of_the_records(self):
        """render_health_alerts is a pure view: line i == record i."""
        alerts = health_alerts(_health())
        assert render_health_alerts(_health()) == [
            a.render() for a in alerts
        ]

    def test_legacy_line_shapes_preserved(self):
        lines = render_health_alerts(_health())
        assert lines[0].startswith("ALERT retried rank=0 attempts=2")
        assert lines[1].startswith("ALERT lost rank=2 attempts=3")
        assert "coverage=66.7%" in lines[2]
        assert "missing_ranks=[2]" in lines[2]

    def test_records_serialise_as_schema_valid_jsonl(self):
        for alert in health_alerts(_health()):
            assert set(json.loads(alert.to_json())) == SCHEMA_KEYS
