"""Backend equivalence: serial and multiprocessing must agree bit-for-bit."""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.workload import Workload
from repro.multirank import (
    ImbalanceSpec,
    MultiprocessingBackend,
    SerialBackend,
    SupervisedBackend,
    flatten_merged,
    resolve_backend,
    run_multirank,
)
from repro.scorep.profile_io import to_dict  # noqa: F401  (import sanity)
from repro.workflow import build_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=3)


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic():
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


def _merged_as_dicts(outcome):
    """Fully materialised comparison view of one multi-rank outcome."""
    flat = None
    if outcome.merged_profile is not None:
        flat = {
            name: (visits, cycles)
            for name, (visits, cycles) in flatten_merged(
                outcome.merged_profile
            ).items()
        }
    return {
        "profiles": [r.profile for r in outcome.per_rank],
        "flat": flat,
        "pop_app": outcome.pop.app,
        "pop_regions": list(outcome.pop.regions),
        "waits": outcome.pop.rank_wait_cycles,
        "totals": [r.result.t_total for r in outcome.per_rank],
    }


class TestBackendResolution:
    def test_names(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("multiprocessing"), MultiprocessingBackend)
        assert isinstance(resolve_backend("mp"), MultiprocessingBackend)
        assert resolve_backend("auto").name in ("serial", "multiprocessing")

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_bogus_rejected(self):
        with pytest.raises(CapiError):
            resolve_backend("threads")
        with pytest.raises(CapiError):
            resolve_backend(object())

    def test_worker_count_suffix(self):
        assert resolve_backend("mp:4").processes == 4
        assert resolve_backend("multiprocessing:2").processes == 2

    def test_processes_kwarg(self):
        assert resolve_backend("mp", processes=3).processes == 3
        # agreeing suffix and kwarg are fine; disagreeing ones are not
        assert resolve_backend("mp:4", processes=4).processes == 4
        with pytest.raises(CapiError):
            resolve_backend("mp:4", processes=2)

    def test_worker_count_misuse_rejected(self):
        with pytest.raises(CapiError):
            resolve_backend("serial", processes=2)
        with pytest.raises(CapiError):
            resolve_backend("mp:2:3")
        with pytest.raises(CapiError):
            resolve_backend(SerialBackend(), processes=2)
        with pytest.raises(CapiError):
            MultiprocessingBackend(processes=0)

    def test_supervised_names(self):
        sup = resolve_backend("supervised")
        assert isinstance(sup, SupervisedBackend) and sup.inner == "serial"
        assert resolve_backend("supervised:mp").inner == "multiprocessing"
        sized = resolve_backend("supervised:mp:4")
        assert sized.inner == "multiprocessing" and sized.processes == 4
        with pytest.raises(CapiError):
            resolve_backend("mp:fast")  # inner suffix is supervised-only


class TestBackendEquivalence:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ranks=st.integers(min_value=1, max_value=4),
        imbalance=st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
        stragglers=st.integers(min_value=0, max_value=1),
        tool=st.sampled_from(["scorep", "talp"]),
    )
    def test_serial_and_multiprocessing_bit_identical(
        self, demo_app, demo_ic, ranks, imbalance, seed, stragglers, tool
    ):
        """Property: for any imbalance spec and tool, both backends
        produce bit-identical merged profiles and POP metrics."""
        spec = ImbalanceSpec(
            imbalance=imbalance, seed=seed, stragglers=stragglers
        )
        kwargs = dict(
            ranks=ranks, imbalance=spec, mode="ic", tool=tool,
            ic=demo_ic, workload=WL,
        )
        serial = run_multirank(demo_app, backend="serial", **kwargs)
        parallel = run_multirank(demo_app, backend="multiprocessing", **kwargs)
        assert _merged_as_dicts(serial) == _merged_as_dicts(parallel)

    def test_empty_task_list_handled(self, demo_app):
        assert MultiprocessingBackend().map_ranks(demo_app, []) == []

    @pytest.mark.parametrize(
        "methods, fallback",
        [
            (["spawn"], "spawn"),
            (["forkserver"], "forkserver"),
            (["spawn", "forkserver"], "spawn"),
        ],
    )
    def test_spawn_fallback_warns(self, monkeypatch, methods, fallback):
        """No silent degradation: whenever 'fork' is unavailable —
        spawn-only, forkserver-only or both — the backend must warn that
        bit-identical-to-serial no longer holds and name the fallback."""
        monkeypatch.setattr(
            "repro.multirank.backends.multiprocessing.get_all_start_methods",
            lambda: methods,
        )
        monkeypatch.setattr(
            "repro.multirank.backends.multiprocessing.get_start_method",
            lambda allow_none=False: fallback,
        )
        with pytest.warns(RuntimeWarning, match="bit-identical") as caught:
            MultiprocessingBackend._context()
        assert any(fallback in str(w.message) for w in caught)

    def test_uninitialised_worker_is_explicit_error(self, demo_app, demo_ic):
        """The worker guard is a real exception (assert would vanish
        under ``python -O``) and names the rank it caught."""
        from repro.multirank.backends import _run_in_worker
        from repro.multirank.scheduler import build_tasks

        task = build_tasks(
            ranks=2, imbalance=ImbalanceSpec(), mode="ic", tool="scorep",
            ic=demo_ic, workload=WL,
        )[1]
        with pytest.raises(CapiError, match="rank 1"):
            _run_in_worker(task)

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="platform has no fork start method",
    )
    def test_fork_context_silent(self):
        """Where fork exists (the CI platform), no warning is raised."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ctx = MultiprocessingBackend._context()
        assert ctx.get_start_method() == "fork"

    def test_explicit_process_count(self, demo_app, demo_ic):
        out = run_multirank(
            demo_app,
            ranks=3,
            imbalance=ImbalanceSpec(imbalance=0.2, seed=4),
            backend=MultiprocessingBackend(processes=2),
            mode="ic",
            tool="scorep",
            ic=demo_ic,
            workload=WL,
        )
        assert out.backend == "multiprocessing"
        assert len(out.per_rank) == 3

    def test_processes_kwarg_end_to_end(self, demo_app, demo_ic):
        """run_multirank(processes=N) pins the pool width via
        resolve_backend, equivalent to backend='mp:N'."""
        kwargs = dict(
            ranks=3,
            imbalance=ImbalanceSpec(imbalance=0.2, seed=4),
            mode="ic",
            tool="scorep",
            ic=demo_ic,
            workload=WL,
        )
        by_kwarg = run_multirank(
            demo_app, backend="mp", processes=2, **kwargs
        )
        by_suffix = run_multirank(demo_app, backend="mp:2", **kwargs)
        assert _merged_as_dicts(by_kwarg) == _merged_as_dicts(by_suffix)
