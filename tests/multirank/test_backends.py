"""Backend equivalence: serial and multiprocessing must agree bit-for-bit."""

import multiprocessing

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.workload import Workload
from repro.multirank import (
    ImbalanceSpec,
    MultiprocessingBackend,
    SerialBackend,
    flatten_merged,
    resolve_backend,
    run_multirank,
)
from repro.scorep.profile_io import to_dict  # noqa: F401  (import sanity)
from repro.workflow import build_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=3)


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic():
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


def _merged_as_dicts(outcome):
    """Fully materialised comparison view of one multi-rank outcome."""
    flat = None
    if outcome.merged_profile is not None:
        flat = {
            name: (visits, cycles)
            for name, (visits, cycles) in flatten_merged(
                outcome.merged_profile
            ).items()
        }
    return {
        "profiles": [r.profile for r in outcome.per_rank],
        "flat": flat,
        "pop_app": outcome.pop.app,
        "pop_regions": list(outcome.pop.regions),
        "waits": outcome.pop.rank_wait_cycles,
        "totals": [r.result.t_total for r in outcome.per_rank],
    }


class TestBackendResolution:
    def test_names(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("multiprocessing"), MultiprocessingBackend)
        assert isinstance(resolve_backend("mp"), MultiprocessingBackend)
        assert resolve_backend("auto").name in ("serial", "multiprocessing")

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_bogus_rejected(self):
        with pytest.raises(CapiError):
            resolve_backend("threads")
        with pytest.raises(CapiError):
            resolve_backend(object())


class TestBackendEquivalence:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        ranks=st.integers(min_value=1, max_value=4),
        imbalance=st.floats(min_value=0.0, max_value=0.6, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
        stragglers=st.integers(min_value=0, max_value=1),
        tool=st.sampled_from(["scorep", "talp"]),
    )
    def test_serial_and_multiprocessing_bit_identical(
        self, demo_app, demo_ic, ranks, imbalance, seed, stragglers, tool
    ):
        """Property: for any imbalance spec and tool, both backends
        produce bit-identical merged profiles and POP metrics."""
        spec = ImbalanceSpec(
            imbalance=imbalance, seed=seed, stragglers=stragglers
        )
        kwargs = dict(
            ranks=ranks, imbalance=spec, mode="ic", tool=tool,
            ic=demo_ic, workload=WL,
        )
        serial = run_multirank(demo_app, backend="serial", **kwargs)
        parallel = run_multirank(demo_app, backend="multiprocessing", **kwargs)
        assert _merged_as_dicts(serial) == _merged_as_dicts(parallel)

    def test_empty_task_list_handled(self, demo_app):
        assert MultiprocessingBackend().map_ranks(demo_app, []) == []

    def test_spawn_fallback_warns(self, monkeypatch):
        """No silent degradation: when 'fork' is unavailable the backend
        must warn that bit-identical-to-serial no longer holds."""
        monkeypatch.setattr(
            "repro.multirank.backends.multiprocessing.get_all_start_methods",
            lambda: ["spawn"],
        )
        with pytest.warns(RuntimeWarning, match="bit-identical"):
            MultiprocessingBackend._context()

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="platform has no fork start method",
    )
    def test_fork_context_silent(self):
        """Where fork exists (the CI platform), no warning is raised."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ctx = MultiprocessingBackend._context()
        assert ctx.get_start_method() == "fork"

    def test_explicit_process_count(self, demo_app, demo_ic):
        out = run_multirank(
            demo_app,
            ranks=3,
            imbalance=ImbalanceSpec(imbalance=0.2, seed=4),
            backend=MultiprocessingBackend(processes=2),
            mode="ic",
            tool="scorep",
            ic=demo_ic,
            workload=WL,
        )
        assert out.backend == "multiprocessing"
        assert len(out.per_rank) == 3
