"""Fault injection, supervised execution and graceful degradation.

The chaos acceptance criteria: a world with a crash-once rank and a
hanging rank completes under the supervisor with *all* results, bit-
identical to the fault-free serial run, on both inner backends; a rank
whose retries exhaust degrades the world under ``degraded="allow"``
(coverage-annotated POP) and raises under ``degraded="forbid"`` — all
deterministic under a fixed fault seed.
"""

import pickle

import pytest

from repro.core.ic import InstrumentationConfig
from repro.errors import (
    CapiError,
    DegradedResultError,
    InjectedFaultError,
    RankExecutionError,
    RankFailedError,
    RankTimeoutError,
    SimMpiError,
)
from repro.execution.workload import Workload
from repro.multirank import (
    FaultSpec,
    ImbalanceSpec,
    SupervisedBackend,
    check_rank_result,
    flatten_merged,
    run_multirank,
)
from repro.multirank.faults import RankFaultPlan
from repro.multirank.scheduler import run_rebalanced
from repro.multirank.dlb import DlbPolicy
from repro.workflow import build_app, run_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=3)
IMB = ImbalanceSpec(imbalance=0.3, seed=11)

#: fast supervision shape for the demo app (per-rank execution is
#: milliseconds; a hung attempt sleeps deadline + excess = ~0.8s)
DEADLINE = 0.75
HANG_EXCESS = 0.05


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic():
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


def _world(app, ic, *, backend="serial", tracing=False, **kwargs):
    return run_multirank(
        app,
        ranks=8,
        imbalance=IMB,
        backend=backend,
        mode="ic",
        tool="scorep",
        ic=ic,
        workload=WL,
        tracing=tracing,
        **kwargs,
    )


def _view(outcome):
    """Materialised comparison view: per-rank artefacts + reductions."""
    return {
        "ranks": [r.rank for r in outcome.per_rank],
        "profiles": [r.profile for r in outcome.per_rank],
        "totals": [r.result.t_total for r in outcome.per_rank],
        "flat": flatten_merged(outcome.merged_profile),
        "pop_app": outcome.pop.app,
    }


def _supervised(inner, **kwargs):
    kwargs.setdefault("deadline_seconds", DEADLINE)
    if inner != "serial":
        kwargs.setdefault("processes", 2)
    return SupervisedBackend(inner, **kwargs)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(SimMpiError):
            FaultSpec(crashes=-1)
        with pytest.raises(SimMpiError):
            FaultSpec(crashes=1, crash_times=0)
        with pytest.raises(SimMpiError):
            FaultSpec(corruptions=1, corrupt_target="stdout")

    def test_quiet(self):
        assert FaultSpec().quiet
        assert not FaultSpec(crashes=1).quiet

    def test_plan_is_deterministic_and_counts_match(self):
        spec = FaultSpec(crashes=2, hangs=1, corruptions=1, seed=5)
        plan = spec.plan(8)
        assert plan == spec.plan(8)
        kinds = [p.active_kind(0) for p in plan.values()]
        assert sorted(kinds) == ["corrupt", "crash", "crash", "hang"]
        # distinct kinds land on distinct ranks while the world is big
        assert len(plan) == 4

    def test_plan_empty_for_quiet_spec(self):
        assert FaultSpec().plan(8) == {}

    def test_oversubscribed_world_wraps(self):
        # more afflicted ranks than ranks: plans compose on the same rank
        spec = FaultSpec(crashes=2, hangs=2, seed=5)
        plan = spec.plan(2)
        assert set(plan) == {0, 1}

    def test_active_kind_windows_serialise(self):
        plan = RankFaultPlan(
            rank=0, die_attempts=1, crash_attempts=2, hang_attempts=1,
            corrupt_attempts=1,
        )
        kinds = [plan.active_kind(a) for a in range(6)]
        assert kinds == ["die", "crash", "crash", "hang", "corrupt", None]


class TestIntegrityGate:
    def test_clean_result_passes(self, demo_app, demo_ic):
        out = _world(demo_app, demo_ic)
        for r in out.per_rank:
            check_rank_result(r)  # must not raise

    def test_nan_profile_detected(self, demo_app, demo_ic):
        out = _world(
            demo_app, demo_ic,
            backend=_supervised("serial", max_attempts=1),
            faults=FaultSpec(corruptions=1, corrupt_target="profile", seed=59),
            degraded="allow",
        )
        # with a single attempt the corrupted rank is rejected outright
        assert len(out.missing_ranks) == 1
        (lost,) = out.health.per_rank[out.missing_ranks[0]].failures
        assert "corrupt profile" in lost

    def test_truncated_trace_detected(self, demo_app, demo_ic):
        out = _world(
            demo_app, demo_ic, tracing=True,
            backend=_supervised("serial", max_attempts=1),
            faults=FaultSpec(corruptions=1, corrupt_target="trace", seed=61),
            degraded="allow",
        )
        assert len(out.missing_ranks) == 1
        (lost,) = out.health.per_rank[out.missing_ranks[0]].failures
        assert "trace" in lost


class TestChaosAcceptance:
    """The ISSUE acceptance scenario, on both inner backends."""

    @pytest.fixture(scope="class")
    def reference(self, demo_app, demo_ic):
        return _world(demo_app, demo_ic, backend="serial")

    @pytest.mark.parametrize("inner", ["serial", "multiprocessing"])
    def test_crash_plus_hang_completes_bit_identical(
        self, demo_app, demo_ic, reference, inner
    ):
        spec = FaultSpec(
            crashes=1, hangs=1, seed=53, hang_excess_seconds=HANG_EXCESS
        )
        backend = _supervised(inner)
        out = _world(
            demo_app, demo_ic, backend=backend, faults=spec
        )
        assert len(out.per_rank) == 8
        assert out.missing_ranks == ()
        assert _view(out) == _view(reference)
        # exactly the two afflicted ranks needed a second attempt
        assert len(out.health.retried_ranks) == 2
        assert set(out.health.retried_ranks) == set(spec.plan(8))

    def test_attempt_accounting_matches_across_backends(
        self, demo_app, demo_ic
    ):
        spec = FaultSpec(
            crashes=1, hangs=1, seed=53, hang_excess_seconds=HANG_EXCESS
        )
        attempts = {}
        for inner in ("serial", "multiprocessing"):
            out = _world(
                demo_app, demo_ic, backend=_supervised(inner), faults=spec
            )
            attempts[inner] = [h.attempts for h in out.health.per_rank]
        assert attempts["serial"] == attempts["multiprocessing"]

    def test_hang_recorded_as_timeout(self, demo_app, demo_ic):
        spec = FaultSpec(hangs=1, seed=47, hang_excess_seconds=HANG_EXCESS)
        out = _world(
            demo_app, demo_ic, backend=_supervised("serial"), faults=spec
        )
        (rank,) = out.health.retried_ranks
        assert "RankTimeoutError" in out.health.per_rank[rank].failures[0]

    def test_corruption_heals_on_retry(self, demo_app, demo_ic, reference):
        out = _world(
            demo_app, demo_ic, backend=_supervised("serial"),
            faults=FaultSpec(corruptions=1, corrupt_target="profile", seed=59),
        )
        assert out.missing_ranks == ()
        assert len(out.health.retried_ranks) == 1
        assert _view(out) == _view(reference)

    def test_worker_death_survived_by_pool_respawn(
        self, demo_app, demo_ic, reference
    ):
        spec = FaultSpec(deaths=1, seed=67)
        out = _world(
            demo_app, demo_ic,
            backend=_supervised("multiprocessing"),
            faults=spec,
        )
        assert len(out.per_rank) == 8
        assert _view(out) == _view(reference)
        # only the culprit is charged the failed attempt
        assert set(out.health.retried_ranks) == set(spec.plan(8))

    def test_unsupervised_backend_crashes_loud(self, demo_app, demo_ic):
        with pytest.raises(InjectedFaultError):
            _world(
                demo_app, demo_ic, backend="serial",
                faults=FaultSpec(crashes=1, seed=43),
            )


#: a rank that fails every attempt any sane retry budget allows
LOST = FaultSpec(crashes=1, crash_times=99, seed=71)


class TestDegradation:
    def test_forbid_raises_with_missing_ranks(self, demo_app, demo_ic):
        with pytest.raises(DegradedResultError) as err:
            _world(
                demo_app, demo_ic, backend=_supervised("serial"), faults=LOST
            )
        assert len(err.value.missing_ranks) == 1

    @pytest.mark.parametrize("inner", ["serial", "multiprocessing"])
    def test_allow_reduces_survivors(self, demo_app, demo_ic, inner):
        out = _world(
            demo_app, demo_ic, backend=_supervised(inner),
            faults=LOST, degraded="allow",
        )
        assert len(out.per_rank) == 7
        assert out.missing_ranks == tuple(LOST.plan(8))
        assert out.degraded and out.coverage == pytest.approx(7 / 8)
        assert out.pop.missing_ranks == out.missing_ranks
        assert "DEGRADED" in out.pop.render()
        assert out.health.lost_ranks == out.missing_ranks
        # survivors keep their true rank identities through the merge
        assert [r.rank for r in out.per_rank] == sorted(
            set(range(8)) - set(out.missing_ranks)
        )

    def test_lost_rank_deterministic_across_backends(self, demo_app, demo_ic):
        missing = [
            _world(
                demo_app, demo_ic, backend=_supervised(inner),
                faults=LOST, degraded="allow",
            ).missing_ranks
            for inner in ("serial", "multiprocessing")
        ]
        assert missing[0] == missing[1]

    def test_degraded_trace_merge_keeps_rank_ids(self, demo_app, demo_ic):
        out = _world(
            demo_app, demo_ic, tracing=True,
            backend=_supervised("serial"), faults=LOST, degraded="allow",
        )
        assert out.merged_trace is not None
        assert out.merged_trace.rank_labels == tuple(
            r.rank for r in out.per_rank
        )
        assert out.merged_trace.validate() == []

    def test_whole_world_lost_always_raises(self, demo_app, demo_ic):
        every = FaultSpec(crashes=8, crash_times=99, seed=71)
        with pytest.raises(DegradedResultError):
            _world(
                demo_app, demo_ic, backend=_supervised("serial"),
                faults=every, degraded="allow",
            )

    def test_bad_policy_rejected(self, demo_app, demo_ic):
        with pytest.raises(CapiError):
            _world(demo_app, demo_ic, degraded="maybe")

    def test_rebalance_stops_on_degraded_baseline(self, demo_app, demo_ic):
        rb = run_rebalanced(
            demo_app,
            ranks=8,
            imbalance=ImbalanceSpec(stragglers=1, straggler_factor=1.6, seed=31),
            dlb=DlbPolicy(),
            backend=_supervised("serial"),
            mode="ic",
            tool="talp",
            ic=demo_ic,
            workload=WL,
            faults=LOST,
            degraded="allow",
        )
        assert not rb.converged
        assert len(rb.history) == 1
        assert rb.baseline.degraded
        # a rebalance computed from partial data is never "the best"
        assert rb.final is rb.history[0]


class TestWorkflowIntegration:
    def test_faults_require_multirank_path(self, demo_app, demo_ic):
        with pytest.raises(CapiError):
            run_app(
                demo_app, mode="ic", tool="scorep", ic=demo_ic,
                workload=WL, faults="crash-once",
            )

    def test_named_preset_and_health_on_outcome(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL,
            ranks=4, imbalance=IMB,
            backend=SupervisedBackend("serial", deadline_seconds=DEADLINE),
            faults="crash-once",
        )
        assert out.health is not None
        assert out.health.coverage == 1.0
        assert len(out.health.retried_ranks) == 1

    def test_unknown_preset_rejected(self, demo_app, demo_ic):
        with pytest.raises(ValueError, match="crash-twice"):
            run_app(
                demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL,
                ranks=4, imbalance=IMB, faults="crash-twice",
            )

    def test_unsupervised_run_has_health_without_records(
        self, demo_app, demo_ic
    ):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL,
            ranks=4, imbalance=IMB,
        )
        assert out.health is not None
        assert out.health.per_rank is None
        assert out.health.coverage == 1.0


class TestErrorTypes:
    def test_hierarchy(self):
        assert issubclass(InjectedFaultError, RankFailedError)
        assert issubclass(RankFailedError, RankExecutionError)
        assert issubclass(RankTimeoutError, RankExecutionError)

    def test_rank_errors_pickle_round_trip(self):
        err = RankFailedError("rank 3 broke", rank=3)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.rank == 3 and str(clone) == str(err)

    def test_degraded_error_carries_missing_ranks(self):
        err = DegradedResultError("partial", missing_ranks=(1, 4))
        clone = pickle.loads(pickle.dumps(err))
        assert clone.missing_ranks == (1, 4)
