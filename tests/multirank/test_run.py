"""End-to-end multi-rank acceptance tests through ``run_app``."""

import pytest

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.workload import Workload
from repro.multirank import ImbalanceSpec, flatten_merged
from repro.workflow import build_app, run_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=4)
IMBALANCED = ImbalanceSpec(imbalance=0.4, seed=11)


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic():
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


class TestRunAppMultiRank:
    def test_returns_merged_profile_and_pop(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=8,
            workload=WL, imbalance=IMBALANCED,
        )
        assert out.multirank is not None
        assert out.multirank.ranks == 8
        assert len(out.multirank.per_rank) == 8
        assert out.merged_profile is not None
        assert out.pop is not None
        # the merged profile spans real per-rank measurements
        flat = flatten_merged(out.merged_profile)
        assert "kernel" in flat
        visits, cycles = flat["kernel"]
        assert visits.sum > 0
        assert cycles.max >= cycles.min >= 0.0

    def test_uniform_world_perfectly_balanced(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=8,
            workload=WL, imbalance=ImbalanceSpec(),
        )
        assert out.pop.app.load_balance == pytest.approx(1.0, abs=1e-12)
        # uniform ranks: nobody waits at the closing barrier
        assert all(w == 0.0 for w in out.pop.rank_wait_cycles)

    def test_imbalanced_world_lb_below_one(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=8,
            workload=WL, imbalance=IMBALANCED,
        )
        assert out.pop.app.load_balance < 1.0
        assert 0.0 < out.pop.app.parallel_efficiency < 1.0
        # some rank finished early and waited for the bottleneck
        assert max(out.pop.rank_wait_cycles) > 0.0

    def test_bottleneck_result_carries_elapsed(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=4,
            workload=WL, imbalance=IMBALANCED,
        )
        per_rank_totals = [r.result.t_total for r in out.multirank.per_rank]
        assert out.result.t_total == max(per_rank_totals)
        assert out.multirank.elapsed_seconds == max(per_rank_totals)

    def test_talp_tool_yields_per_region_pop(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="talp", ic=demo_ic, ranks=4,
            workload=WL, imbalance=IMBALANCED,
        )
        names = {m.region for m in out.pop.regions}
        assert {"kernel", "solve"} <= names
        kernel = out.pop.region("kernel")
        assert kernel.load_balance < 1.0
        rendered = out.pop.render()
        assert "Load balance" in rendered and "kernel" in rendered

    def test_vanilla_mode_runs_multirank(self, demo_app):
        out = run_app(
            demo_app, mode="vanilla", ranks=4, workload=WL, imbalance=IMBALANCED
        )
        assert out.merged_profile is None  # no measurement tool attached
        assert out.pop.app.load_balance < 1.0

    def test_deterministic_across_calls(self, demo_app, demo_ic):
        kwargs = dict(
            mode="ic", tool="scorep", ic=demo_ic, ranks=4,
            workload=WL, imbalance=IMBALANCED,
        )
        a = run_app(demo_app, **kwargs)
        b = run_app(demo_app, **kwargs)
        assert a.pop.app == b.pop.app
        assert [r.result.t_total for r in a.multirank.per_rank] == [
            r.result.t_total for r in b.multirank.per_rank
        ]

    def test_tracing_supported_on_multirank_path(self, demo_app, demo_ic):
        """Regression: tracing=True used to raise CapiError here; it now
        yields the merged rank-tagged timeline (full coverage lives in
        tests/multirank/test_trace_merge.py)."""
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=4,
            workload=WL, tracing=True, imbalance=IMBALANCED,
        )
        assert out.merged_trace is not None
        assert out.merged_trace.validate() == []

    def test_ic_validation_happens_up_front(self, demo_app, demo_ic):
        with pytest.raises(CapiError):
            run_app(demo_app, mode="ic", ic=None, imbalance=IMBALANCED)
        with pytest.raises(CapiError):
            run_app(demo_app, mode="full", ic=demo_ic, imbalance=IMBALANCED)
        with pytest.raises(CapiError):
            run_app(demo_app, mode="full", ranks=0, imbalance=IMBALANCED)

    def test_single_rank_world_degenerates_gracefully(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=1,
            workload=WL, imbalance=IMBALANCED,
        )
        assert out.pop.app.load_balance == 1.0
        assert out.multirank.factors == (1.0,)


class TestTable2MultiRank:
    def test_table2_rows_carry_pop(self):
        from repro.experiments.runner import prepare_app
        from repro.experiments.table2 import compute_table2_app, render_table2

        prepared = prepare_app("lulesh", 300)
        rows = compute_table2_app(
            prepared, ranks=4, imbalance=ImbalanceSpec(imbalance=0.3, seed=7)
        )
        assert all(r.pop is not None for r in rows)
        lb_values = {round(r.pop[0], 6) for r in rows}
        assert all(lb < 1.0 for lb in lb_values)
        rendered = render_table2(rows)
        assert "LB" in rendered and "PE" in rendered

    def test_table2_without_imbalance_unchanged(self):
        from repro.experiments.runner import prepare_app
        from repro.experiments.table2 import compute_table2_app, render_table2

        prepared = prepare_app("lulesh", 300)
        rows = compute_table2_app(prepared, ranks=4)
        assert all(r.pop is None for r in rows)
        assert "LB" not in render_table2(rows)


class TestReviewRegressions:
    def test_talp_bug_knobs_reach_every_rank(self, demo_app, demo_ic):
        """talp_bug_threshold/modulus must survive the multi-rank path."""
        out = run_app(
            demo_app, mode="ic", tool="talp", ic=demo_ic, ranks=2,
            workload=WL, imbalance=IMBALANCED,
            talp_bug_threshold=1, talp_bug_modulus=1,
        )
        # threshold 1 + modulus 1: every region start past the first
        # registration fails on every rank
        for rank in out.multirank.per_rank:
            names = {s.name for s in rank.talp_regions}
            assert len(names) >= 1

    def test_nameless_custom_backend_accepted(self, demo_app, demo_ic):
        from repro.multirank.scheduler import execute_rank

        class Minimal:  # only map_ranks, no .name — the documented contract
            def map_ranks(self, built, tasks):
                return [execute_rank(built, t) for t in tasks]

        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=2,
            workload=WL, imbalance=IMBALANCED, backend=Minimal(),
        )
        assert out.multirank.backend == "Minimal"
