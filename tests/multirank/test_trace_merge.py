"""Multi-rank trace merge: logical-clock alignment, wait states, critical path."""

import pytest

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.workload import Workload
from repro.multirank import ImbalanceSpec, merge_rank_traces, run_multirank
from repro.scorep.tracing import TraceEvent, TraceEventKind
from repro.workflow import build_app, run_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=4)
E, L, M = TraceEventKind.ENTER, TraceEventKind.LEAVE, TraceEventKind.MPI


def ev(kind, region, t):
    return TraceEvent(kind, region, float(t))


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic():
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


class TestAlignment:
    def test_collective_exits_coincide(self):
        """The alignment rule: matching collective events land on the
        latest arriver's clock; earlier ranks absorb the gap as wait."""
        fast = [ev(E, "main", 10), ev(M, "MPI_Allreduce", 20), ev(L, "main", 30)]
        slow = [ev(E, "main", 10), ev(M, "MPI_Allreduce", 50), ev(L, "main", 60)]
        merged = merge_rank_traces([fast, slow])
        [sp] = merged.sync_points
        assert sp.op == "MPI_Allreduce"
        assert sp.aligned_cycles == 50.0
        assert sp.local_cycles == (20.0, 50.0)
        assert sp.wait_cycles == (30.0, 0.0)
        assert sp.bottleneck_rank == 1
        # rank 0's events after the collective shift by its offset
        rank0 = merged.per_rank[0]
        assert [e.timestamp_cycles for e in rank0] == [10.0, 50.0, 60.0]
        # rank 1 (the bottleneck) is untouched
        assert [e.timestamp_cycles for e in merged.per_rank[1]] == [
            10.0, 50.0, 60.0,
        ]

    def test_events_before_sync_keep_local_clock(self):
        fast = [ev(E, "a", 5), ev(M, "MPI_Barrier", 10)]
        slow = [ev(E, "a", 5), ev(M, "MPI_Barrier", 40)]
        merged = merge_rank_traces([fast, slow])
        assert merged.per_rank[0][0].timestamp_cycles == 5.0

    def test_offsets_accumulate_monotonically(self):
        """A rank that trails at every collective accumulates wait; its
        aligned stream stays timestamp-monotone throughout."""
        fast = [ev(M, "MPI_Allreduce", 10), ev(M, "MPI_Allreduce", 20),
                ev(M, "MPI_Finalize", 30)]
        slow = [ev(M, "MPI_Allreduce", 30), ev(M, "MPI_Allreduce", 60),
                ev(M, "MPI_Finalize", 90)]
        merged = merge_rank_traces([fast, slow])
        assert merged.rank_offsets == (60.0, 0.0)
        stamps = [e.timestamp_cycles for e in merged.per_rank[0]]
        assert stamps == sorted(stamps) == [30.0, 60.0, 90.0]
        assert merged.validate() == []

    def test_ragged_collective_counts_still_anchor_finalize(self):
        """Rank-scaled iteration counts mean ragged interior collective
        sequences; the final MPI_Finalize must still align so the total
        wait matches the reducer's finalize_wait attribution."""
        light = [ev(M, "MPI_Allreduce", 10), ev(M, "MPI_Allreduce", 20),
                 ev(M, "MPI_Finalize", 30)]
        heavy = [ev(M, "MPI_Allreduce", 10), ev(M, "MPI_Allreduce", 20),
                 ev(M, "MPI_Allreduce", 30), ev(M, "MPI_Finalize", 40)]
        merged = merge_rank_traces([light, heavy])
        assert merged.sync_points[-1].op == "MPI_Finalize"
        assert merged.sync_points[-1].aligned_cycles == 40.0
        assert merged.rank_offsets == (10.0, 0.0)
        # the heavy rank's third allreduce is unmatched: no sync point
        assert [sp.op for sp in merged.sync_points] == [
            "MPI_Allreduce", "MPI_Allreduce", "MPI_Finalize",
        ]

    def test_divergent_op_names_stop_interior_matching(self):
        a = [ev(M, "MPI_Barrier", 10), ev(M, "MPI_Finalize", 20)]
        b = [ev(M, "MPI_Allreduce", 10), ev(M, "MPI_Finalize", 30)]
        merged = merge_rank_traces([a, b])
        assert [sp.op for sp in merged.sync_points] == ["MPI_Finalize"]
        assert merged.rank_offsets == (10.0, 0.0)

    def test_non_synchronizing_mpi_is_not_an_anchor(self):
        """Point-to-point and non-synchronizing collectives (MPI_Bcast
        completes locally) must not act as synchronisation points."""
        a = [ev(M, "MPI_Send", 10), ev(M, "MPI_Bcast", 20)]
        b = [ev(M, "MPI_Send", 90), ev(M, "MPI_Bcast", 95)]
        merged = merge_rank_traces([a, b])
        assert merged.sync_points == []
        assert merged.rank_offsets == (0.0, 0.0)

    def test_single_rank_world_is_identity(self):
        stream = [ev(E, "main", 1), ev(M, "MPI_Finalize", 5), ev(L, "main", 9)]
        merged = merge_rank_traces([stream])
        assert merged.rank_offsets == (0.0,)
        assert [e.untagged() for e in merged.events] == stream

    def test_empty_input(self):
        merged = merge_rank_traces([])
        assert merged.events == []
        assert merged.elapsed_cycles == 0.0
        assert merged.critical_path() == []

    def test_partially_synchronised_world_rejected(self):
        """A world where only some ranks reach the collectives is
        malformed input (mirrors merge_profiles' all-or-nothing
        contract); silently skipping alignment would present an
        unaligned timeline as one with zero wait everywhere."""
        with_sync = [ev(M, "MPI_Finalize", 10)]
        without = [ev(E, "main", 1), ev(L, "main", 2)]
        with pytest.raises(ValueError, match="every rank or no rank"):
            merge_rank_traces([with_sync, without])


class TestAnalyses:
    def test_wait_states_name_the_blocking_ranks(self):
        fast = [ev(M, "MPI_Allreduce", 20), ev(M, "MPI_Finalize", 40)]
        slow = [ev(M, "MPI_Allreduce", 50), ev(M, "MPI_Finalize", 70)]
        merged = merge_rank_traces([fast, slow])
        waits = merged.wait_states()
        assert all(w.rank == 0 for w in waits)
        assert waits[0].wait_cycles == 30.0
        assert waits[0].begin_cycles == 20.0
        assert waits[0].end_cycles == 50.0

    def test_critical_path_follows_the_slow_rank(self):
        fast = [ev(E, "calc", 1), ev(L, "calc", 19), ev(M, "MPI_Allreduce", 20),
                ev(M, "MPI_Finalize", 40)]
        slow = [ev(E, "calc", 1), ev(L, "calc", 49), ev(M, "MPI_Allreduce", 50),
                ev(M, "MPI_Finalize", 70)]
        merged = merge_rank_traces([fast, slow])
        path = merged.critical_path()
        # segment up to the allreduce: rank 1 worked 50 vs rank 0's 20
        first = path[0]
        assert (first.rank, first.duration_cycles) == (1, 50.0)
        assert first.top_region == "calc"
        # segment durations sum to the aligned makespan
        assert sum(seg.duration_cycles for seg in path) == pytest.approx(
            merged.elapsed_cycles
        )

    def test_wait_free_durations_exclude_blocking(self):
        """The critical-path duration measures work, not wait: the fast
        rank's segment duration is its local 20 cycles even though its
        aligned gap to the collective completion spans 50."""
        fast = [ev(M, "MPI_Allreduce", 20), ev(M, "MPI_Finalize", 30)]
        slow = [ev(M, "MPI_Allreduce", 50), ev(M, "MPI_Finalize", 60)]
        merged = merge_rank_traces([fast, slow])
        seg0 = merged.critical_path()[0]
        assert seg0.rank == 1
        assert seg0.duration_cycles == 50.0

    def test_validate_flags_cross_rank_defects_per_rank(self):
        bad = [ev(E, "a", 1), ev(M, "MPI_Finalize", 5)]  # unclosed 'a'
        good = [ev(E, "b", 1), ev(L, "b", 3), ev(M, "MPI_Finalize", 6)]
        merged = merge_rank_traces([bad, good])
        problems = merged.validate()
        assert [str(p) for p in problems] == ["rank 0: unclosed region a"]
        assert problems[0].code == "unclosed-region"
        assert problems[0].rank == 0

    def test_render_mentions_waits_and_critical_path(self):
        fast = [ev(M, "MPI_Allreduce", 20), ev(M, "MPI_Finalize", 40)]
        slow = [ev(M, "MPI_Allreduce", 50), ev(M, "MPI_Finalize", 70)]
        rendered = merge_rank_traces([fast, slow]).render()
        assert "wait states" in rendered
        assert "critical path" in rendered
        assert "rank 0" in rendered


class TestRunAppTracing:
    """Acceptance: the multi-rank path records, ships and merges traces."""

    @pytest.fixture(scope="class")
    def traced(self, demo_app, demo_ic):
        return run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=4,
            workload=WL, imbalance=ImbalanceSpec(stragglers=1, seed=31),
            tracing=True,
        )

    def test_rejection_is_gone_and_merged_trace_present(self, traced):
        merged = traced.merged_trace
        assert merged is not None
        assert merged.ranks == 4
        assert len(merged.events) == sum(merged.events_per_rank)
        assert {e.rank for e in merged.events} == {0, 1, 2, 3}

    def test_merged_stream_validates_clean(self, traced):
        assert traced.merged_trace.validate() == []

    def test_lifecycle_anchors_present(self, traced):
        ops = [sp.op for sp in traced.merged_trace.sync_points]
        assert ops[0] == "MPI_Init"
        assert ops[-1] == "MPI_Finalize"
        assert "MPI_Allreduce" in ops

    def test_trace_waits_agree_with_reducer_attribution(self, traced):
        """The acceptance criterion: per-rank collective wait from the
        trace matches the reducer's synchronisation-wait attribution —
        same ranks flagged, magnitudes within one collective latency."""
        from repro.experiments.traces import collective_latency

        tol = collective_latency(4)
        trace_waits = traced.merged_trace.rank_wait_cycles
        reducer_waits = traced.pop.rank_wait_cycles
        assert len(trace_waits) == len(reducer_waits) == 4
        for t, p in zip(trace_waits, reducer_waits):
            assert abs(t - p) <= tol
        assert [t > tol for t in trace_waits] == [
            p > tol for p in reducer_waits
        ]

    def test_straggler_owns_the_critical_path_tail(self, traced):
        merged = traced.merged_trace
        straggler = merged.rank_wait_cycles.index(
            min(merged.rank_wait_cycles)
        )
        tail = [
            seg for seg in merged.critical_path() if seg.end_op == "MPI_Finalize"
        ]
        assert tail and tail[0].rank == straggler

    def test_backends_produce_bit_identical_timelines(
        self, demo_app, demo_ic, traced
    ):
        mp = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=4,
            workload=WL, imbalance=ImbalanceSpec(stragglers=1, seed=31),
            tracing=True, backend="multiprocessing",
        )
        assert mp.merged_trace.events == traced.merged_trace.events
        assert mp.merged_trace.rank_offsets == traced.merged_trace.rank_offsets
        assert [
            (sp.op, sp.aligned_cycles, sp.wait_cycles)
            for sp in mp.merged_trace.sync_points
        ] == [
            (sp.op, sp.aligned_cycles, sp.wait_cycles)
            for sp in traced.merged_trace.sync_points
        ]

    def test_tracing_false_leaves_outcome_untouched(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=2,
            workload=WL, imbalance=ImbalanceSpec(),
        )
        assert out.merged_trace is None
        assert all(r.trace is None for r in out.multirank.per_rank)

    def test_tracing_needs_scorep_tool(self, demo_app, demo_ic):
        with pytest.raises(CapiError, match="scorep"):
            run_multirank(
                demo_app, ranks=2, imbalance=ImbalanceSpec(), mode="ic",
                tool="talp", ic=demo_ic, workload=WL, tracing=True,
            )

    def test_uniform_world_has_no_waits(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=3,
            workload=WL, imbalance=ImbalanceSpec(), tracing=True,
        )
        merged = out.merged_trace
        assert merged.rank_offsets == (0.0, 0.0, 0.0)
        assert merged.wait_states() == []
        # identical ranks: the merged stream interleaves at equal stamps
        assert merged.validate() == []


class TestTracesExperiment:
    def test_check_passes_on_demo_scale(self):
        from repro.experiments.traces import main

        assert (
            main(
                [
                    "--app", "lulesh", "--nodes", "300", "--ranks", "4",
                    "--scenario", "trace-straggler", "--check",
                ]
            )
            == 0
        )

    def test_render_table_shape(self):
        from repro.experiments.runner import prepare_app
        from repro.experiments.traces import (
            compute_trace_row,
            render_trace_table,
        )

        prepared = prepare_app("lulesh", 300)
        row, outcome = compute_trace_row(prepared, "straggler", ranks=4)
        assert row.consistent
        assert outcome.merged_trace is not None
        rendered = render_trace_table([row])
        assert "straggler" in rendered and "yes" in rendered
