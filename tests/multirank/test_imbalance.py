"""Unit tests for the rank-heterogeneous perturbation model."""

import pytest

from repro.errors import SimMpiError
from repro.execution.workload import Workload
from repro.multirank.imbalance import ImbalanceSpec


class TestFactors:
    def test_uniform_spec_is_all_ones(self):
        spec = ImbalanceSpec()
        assert spec.uniform
        assert spec.factors(8) == (1.0,) * 8

    def test_deterministic_under_fixed_seed(self):
        a = ImbalanceSpec(imbalance=0.3, seed=42, stragglers=1, ramp=0.2)
        b = ImbalanceSpec(imbalance=0.3, seed=42, stragglers=1, ramp=0.2)
        assert a.factors(16) == b.factors(16)

    def test_different_seeds_decorrelate(self):
        a = ImbalanceSpec(imbalance=0.3, seed=1).factors(8)
        b = ImbalanceSpec(imbalance=0.3, seed=2).factors(8)
        assert a != b

    def test_rank0_is_reference(self):
        spec = ImbalanceSpec(imbalance=0.4, seed=5)
        assert spec.factors(8)[0] == 1.0

    def test_jitter_bounded(self):
        factors = ImbalanceSpec(imbalance=0.25, seed=3).factors(64)
        assert all(0.75 - 1e-9 <= f <= 1.0 for f in factors)

    def test_ramp_monotone_without_jitter(self):
        factors = ImbalanceSpec(ramp=0.5).factors(5)
        assert list(factors) == sorted(factors)
        assert factors[0] == 1.0
        assert factors[-1] == pytest.approx(1.5)

    def test_stragglers_never_hit_rank0(self):
        for seed in range(10):
            spec = ImbalanceSpec(stragglers=2, straggler_factor=2.0, seed=seed)
            assert spec.factors(6)[0] == 1.0

    def test_straggler_count_applied(self):
        spec = ImbalanceSpec(stragglers=2, straggler_factor=2.0, seed=9)
        assert sum(1 for f in spec.factors(8) if f == 2.0) == 2

    def test_single_rank_world(self):
        assert ImbalanceSpec(imbalance=0.5, ramp=1.0, stragglers=3).factors(1) == (1.0,)

    def test_validation(self):
        with pytest.raises(SimMpiError):
            ImbalanceSpec(imbalance=1.0)
        with pytest.raises(SimMpiError):
            ImbalanceSpec(ramp=-0.1)
        with pytest.raises(SimMpiError):
            ImbalanceSpec(stragglers=-1)
        with pytest.raises(SimMpiError):
            ImbalanceSpec(straggler_factor=0.0)
        with pytest.raises(SimMpiError):
            ImbalanceSpec().factors(0)


class TestWorkloads:
    def test_uniform_reuses_base_workload(self):
        base = Workload(site_cap=5)
        workloads = ImbalanceSpec().workloads_for(4, base)
        assert all(w is base for w in workloads)

    def test_factor_lands_in_root_scale(self):
        base = Workload(scale=2.0, root_scale=1.5)
        spec = ImbalanceSpec(ramp=0.5)
        workloads = spec.workloads_for(3, base)
        factors = spec.factors(3)
        for w, f in zip(workloads, factors):
            assert w.root_scale == pytest.approx(1.5 * f)
            # the compounding problem-size knob is never touched
            assert w.scale == 2.0
        # non-scale shaping fields are preserved
        assert workloads[-1].site_cap == base.site_cap
        assert workloads[-1].max_depth == base.max_depth

    def test_root_scale_changes_load_linearly(self):
        """A straggler at 1.5x runs ~1.5x the work, not exponentially more."""
        from repro.workflow import build_app, run_app
        from tests.conftest import make_demo_builder

        app = build_app(make_demo_builder().build(), xray=False)
        base = run_app(app, mode="vanilla", workload=Workload()).result
        heavy = run_app(
            app, mode="vanilla", workload=Workload(root_scale=1.5)
        ).result
        ratio = heavy.useful_cycles / base.useful_cycles
        assert 1.1 < ratio < 1.6


class TestScenarios:
    def test_named_scenarios_resolve(self):
        from repro.apps import SCENARIOS, scenario

        for name in SCENARIOS:
            assert scenario(name) is SCENARIOS[name]
        assert scenario("uniform").uniform
        assert not scenario("lulesh-imbalanced").uniform

    def test_unknown_scenario_rejected(self):
        from repro.apps import scenario

        with pytest.raises(ValueError):
            scenario("nope")


class TestSpineScalingLinearity:
    """root_scale must apply once, never compound along the spine."""

    def _nested_spine_app(self):
        from repro.program.builder import ProgramBuilder
        from repro.workflow import build_app

        b = ProgramBuilder("spine")
        b.tu("spine.cpp")
        # main -> run -> timeLoop is a once-per-run spine chain; the
        # iteration counts live two levels below main
        for name in ("main", "run", "timeLoop"):
            b.function(name, statements=10)
        b.function("kernel", statements=12, flops=500)
        b.chain(["main", "run", "timeLoop"])
        b.call("timeLoop", "kernel", count=20)
        return build_app(b.build(), xray=False)

    def _useful(self, app, root_scale):
        from repro.workflow import run_app

        wl = Workload(site_cap=64, root_scale=root_scale)
        return run_app(app, mode="vanilla", workload=wl).result.useful_cycles

    def test_straggler_factor_scales_linearly(self):
        app = self._nested_spine_app()
        base = self._useful(app, 1.0)
        heavy = self._useful(app, 1.6)
        # 20 kernel calls -> 32: work grows ~1.6x, NOT 1.6^spine-depth
        assert 1.3 < heavy / base < 1.7

    def test_small_factor_does_not_zero_the_run(self):
        app = self._nested_spine_app()
        base = self._useful(app, 1.0)
        light = self._useful(app, 0.4)
        # spine links (count 1) stay walked; only the timestep count shrinks
        assert 0.2 < light / base < 0.6

    def test_linear_under_nonunit_base_scale(self):
        """Spine membership is static: root_scale stays linear even when
        the compounding base scale is not 1."""
        from repro.workflow import run_app

        app = self._nested_spine_app()
        wl = dict(site_cap=64)
        base = run_app(
            app, mode="vanilla", workload=Workload(scale=1.5, **wl)
        ).result.useful_cycles
        light = run_app(
            app, mode="vanilla", workload=Workload(scale=1.5, root_scale=0.7, **wl)
        ).result.useful_cycles
        assert 0.6 < light / base < 0.8

    def test_pure_chain_warns_when_unscalable(self):
        """A program whose every site is a spine link cannot express
        imbalance — the engine says so instead of silently reporting
        LB == 1.0."""
        import warnings

        from repro.program.builder import ProgramBuilder
        from repro.workflow import build_app, run_app

        b = ProgramBuilder("chain")
        b.tu("c.cpp")
        for name in ("main", "a", "b"):
            b.function(name, statements=10)
        b.chain(["main", "a", "b"])
        app = build_app(b.build(), xray=False)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_app(app, mode="vanilla", workload=Workload(root_scale=1.5))
        assert any("root_scale" in str(w.message) for w in caught)
