"""LeWI policy units and the iterative DLB rebalancing loop."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError, TalpError
from repro.execution.workload import Workload
from repro.multirank import (
    DlbPolicy,
    ExplicitFactors,
    ImbalanceSpec,
    apply_step,
    make_lewi_agents,
    run_rebalanced,
)
from repro.simmpi.world import MpiWorld
from repro.workflow import build_app, run_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=4)


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic():
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


def rescue_spec():
    """The acceptance preset: one rank at 2x load on 8 ranks."""
    from repro.apps import scenario

    spec = scenario("straggler-rescue")
    assert spec.stragglers == 1 and spec.straggler_factor == 2.0
    return spec


class TestDlbPolicy:
    def test_knob_validation(self):
        with pytest.raises(TalpError):
            DlbPolicy(lend_limit=1.0)
        with pytest.raises(TalpError):
            DlbPolicy(lend_limit=-0.1)
        with pytest.raises(TalpError):
            DlbPolicy(tolerance=0.0)

    def test_input_validation(self):
        policy = DlbPolicy()
        with pytest.raises(TalpError):
            policy.rebalance([], [])
        with pytest.raises(TalpError):
            policy.rebalance([1.0, 2.0], [1.0])
        with pytest.raises(TalpError):
            policy.rebalance([1.0, -2.0], [1.0, 1.0])
        with pytest.raises(TalpError):
            policy.rebalance([1.0, 2.0], [1.0, 0.0])
        # capacities too small to hold every rank at the lend-limit
        # floor: a clear error, not a ZeroDivisionError in water-filling
        with pytest.raises(TalpError, match="lend-limit floor"):
            DlbPolicy(lend_limit=0.2).rebalance([1.0, 2.0], [0.5, 0.5])

    def test_uniform_world_is_exact_noop(self):
        step = DlbPolicy().rebalance([100.0] * 8, [1.0] * 8)
        assert step.is_noop
        assert step.max_shift == 0.0
        assert step.capacities_after == (1.0,) * 8

    def test_straggler_borrows_from_everyone(self):
        useful = [100.0] * 7 + [200.0]
        step = DlbPolicy().rebalance(useful, [1.0] * 8)
        # work-proportional: straggler target 16/9, the rest 8/9 each
        assert step.capacities_after[7] == pytest.approx(16.0 / 9.0)
        for capacity in step.capacities_after[:7]:
            assert capacity == pytest.approx(8.0 / 9.0)
        assert [rank for rank, _ in step.borrows] == [7]
        assert [rank for rank, _ in step.lends] == list(range(7))

    def test_lend_cap_floors_capacity(self):
        # one extreme bottleneck: without the cap, the others would drop
        # to ~0.03 CPUs; with lend_limit=0.25 they keep at least 0.75
        useful = [1.0, 1.0, 1.0, 100.0]
        step = DlbPolicy(lend_limit=0.25).rebalance(useful, [1.0] * 4)
        for rank, _ in step.lends:
            assert step.capacities_after[rank] == pytest.approx(0.75)
        assert step.capacities_after[3] == pytest.approx(4.0 - 3 * 0.75)

    def test_no_rank_both_lends_and_borrows(self):
        step = DlbPolicy().rebalance([3.0, 1.0, 2.0, 9.0], [1.0] * 4)
        lenders = {rank for rank, _ in step.lends}
        borrowers = {rank for rank, _ in step.borrows}
        assert lenders.isdisjoint(borrowers)

    def test_conservation_of_total_capacity(self):
        step = DlbPolicy(lend_limit=0.4).rebalance(
            [5.0, 0.0, 3.0, 11.0, 2.0], [1.0] * 5
        )
        assert sum(step.capacities_after) == pytest.approx(5.0, abs=1e-12)
        lent = sum(amount for _, amount in step.lends)
        borrowed = sum(amount for _, amount in step.borrows)
        assert lent == pytest.approx(borrowed, abs=1e-12)

    def test_zero_work_ranks_pinned_at_floor(self):
        step = DlbPolicy(lend_limit=0.5).rebalance([0.0, 0.0, 10.0], [1.0] * 3)
        assert step.capacities_after[0] == pytest.approx(0.5)
        assert step.capacities_after[1] == pytest.approx(0.5)
        assert step.capacities_after[2] == pytest.approx(2.0)

    def test_rebalance_from_uneven_capacities(self):
        """Mid-loop: work is useful x capacity, not useful alone."""
        # rank 1 runs on 2 CPUs and reports the same useful time as rank
        # 0 on 0.5 CPUs: rank 1 holds 4x the work, so it keeps more CPUs
        step = DlbPolicy().rebalance([10.0, 10.0], [0.5, 2.0])
        assert step.capacities_after[0] == pytest.approx(0.5)
        assert step.capacities_after[1] == pytest.approx(2.0)
        assert step.is_noop


class TestApplyStepViaApi:
    def test_protocol_matches_policy_targets(self):
        world = MpiWorld(size=4)
        world.init()
        agents = make_lewi_agents(world)
        step = DlbPolicy().rebalance([1.0, 2.0, 3.0, 10.0], [1.0] * 4)
        capacities = apply_step(step, agents)
        assert capacities == pytest.approx(step.capacities_after, abs=1e-9)
        assert sum(capacities) == pytest.approx(4.0, abs=1e-9)
        # the shared pool is drained between steps
        assert agents[0].pool.available == pytest.approx(0.0, abs=1e-12)

    def test_agents_require_initialized_mpi(self):
        with pytest.raises(TalpError):
            make_lewi_agents(MpiWorld(size=2))


class TestRunRebalanced:
    def test_acceptance_straggler_rescue_improves_pe(self, demo_app, demo_ic):
        """ISSUE 3 acceptance: stragglers=1, straggler_factor=2.0 at 8
        ranks — rebalancing improves measured POP parallel efficiency."""
        rb = run_rebalanced(
            demo_app, ranks=8, imbalance=rescue_spec(), dlb=DlbPolicy(),
            max_iterations=6, mode="ic", tool="scorep", ic=demo_ic,
            workload=WL,
        )
        assert rb.converged
        assert rb.iterations >= 1
        assert rb.final.parallel_efficiency > rb.baseline.parallel_efficiency
        assert rb.final.pop.app.load_balance > rb.baseline.pop.app.load_balance
        assert rb.improvement > 0.0
        # baseline ran on one full CPU per rank
        assert rb.baseline.capacities == (1.0,) * 8
        assert rb.baseline.step is None
        # every rebalanced iteration conserves total capacity
        for it in rb.history[1:]:
            assert sum(it.capacities) == pytest.approx(8.0, abs=1e-9)
        assert "DLB LeWI rebalancing" in rb.render()

    def test_deterministic_iteration_history(self, demo_app, demo_ic):
        kwargs = dict(
            ranks=8, imbalance=rescue_spec(), dlb=DlbPolicy(),
            max_iterations=6, mode="ic", tool="scorep", ic=demo_ic,
            workload=WL,
        )
        a = run_rebalanced(demo_app, **kwargs)
        b = run_rebalanced(demo_app, **kwargs)
        assert len(a.history) == len(b.history)
        for it_a, it_b in zip(a.history, b.history):
            assert it_a.capacities == it_b.capacities
            assert it_a.pop.app == it_b.pop.app

    def test_serial_and_multiprocessing_bit_identical(self, demo_app, demo_ic):
        kwargs = dict(
            ranks=8, imbalance=rescue_spec(), dlb=DlbPolicy(),
            max_iterations=6, mode="ic", tool="scorep", ic=demo_ic,
            workload=WL,
        )
        serial = run_rebalanced(demo_app, backend="serial", **kwargs)
        parallel = run_rebalanced(demo_app, backend="multiprocessing", **kwargs)
        assert len(serial.history) == len(parallel.history)
        for it_s, it_p in zip(serial.history, parallel.history):
            assert it_s.capacities == it_p.capacities
            assert it_s.pop.app == it_p.pop.app
            assert [r.result.t_total for r in it_s.outcome.per_rank] == [
                r.result.t_total for r in it_p.outcome.per_rank
            ]

    def test_uniform_world_is_noop(self, demo_app, demo_ic):
        rb = run_rebalanced(
            demo_app, ranks=4, imbalance=ImbalanceSpec(), dlb=DlbPolicy(),
            max_iterations=4, mode="ic", tool="scorep", ic=demo_ic,
            workload=WL,
        )
        assert rb.converged
        assert rb.iterations == 0
        assert rb.final is rb.baseline
        assert rb.improvement == 0.0

    def test_talp_tool_keeps_region_reports_through_loop(self, demo_app, demo_ic):
        rb = run_rebalanced(
            demo_app, ranks=4, imbalance=rescue_spec(), dlb=DlbPolicy(),
            max_iterations=4, mode="ic", tool="talp", ic=demo_ic,
            workload=WL,
        )
        for it in rb.history:
            assert {m.region for m in it.pop.regions} >= {"kernel", "solve"}

    def test_max_iterations_validation(self, demo_app, demo_ic):
        with pytest.raises(CapiError):
            run_rebalanced(
                demo_app, ranks=2, imbalance=rescue_spec(), dlb=DlbPolicy(),
                max_iterations=0, mode="ic", tool="scorep", ic=demo_ic,
            )


class TestRunAppWiring:
    def test_run_app_dlb_carries_rebalance_history(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=8,
            workload=WL, imbalance=rescue_spec(), dlb=DlbPolicy(),
        )
        assert out.rebalance is not None
        final = out.rebalance.final
        assert out.pop is final.pop
        assert out.multirank is final.outcome
        assert out.result.t_total == final.outcome.elapsed_seconds
        assert out.pop.app.parallel_efficiency > (
            out.rebalance.baseline.pop.app.parallel_efficiency
        )

    def test_dlb_without_imbalance_rejected(self, demo_app, demo_ic):
        with pytest.raises(CapiError):
            run_app(demo_app, mode="ic", ic=demo_ic, dlb=DlbPolicy())

    def test_plain_multirank_has_no_rebalance(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, ranks=2,
            workload=WL, imbalance=ImbalanceSpec(),
        )
        assert out.rebalance is None


class TestExplicitFactors:
    def test_spec_surface(self):
        spec = ExplicitFactors((1.0, 0.5, 2.0))
        assert spec.factors(3) == (1.0, 0.5, 2.0)
        assert not spec.uniform
        assert ExplicitFactors((1.0, 1.0)).uniform
        workloads = spec.workloads_for(3, WL)
        assert [w.root_scale for w in workloads] == [1.0, 0.5, 2.0]

    def test_validation(self):
        from repro.errors import SimMpiError

        with pytest.raises(SimMpiError):
            ExplicitFactors(())
        with pytest.raises(SimMpiError):
            ExplicitFactors((1.0, 0.0))
        with pytest.raises(SimMpiError):
            ExplicitFactors((1.0, 2.0)).factors(3)


class TestRebalanceProperties:
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        straggler_factor=st.floats(min_value=1.1, max_value=3.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_never_worsens_pe_on_straggler_presets(
        self, demo_app, demo_ic, straggler_factor, seed
    ):
        """Property: the reported final state never has worse measured
        parallel efficiency than the unbalanced baseline."""
        rb = run_rebalanced(
            demo_app, ranks=4,
            imbalance=ImbalanceSpec(
                stragglers=1, straggler_factor=straggler_factor, seed=seed
            ),
            dlb=DlbPolicy(), max_iterations=3,
            mode="ic", tool="scorep", ic=demo_ic, workload=WL,
        )
        assert (
            rb.final.parallel_efficiency
            >= rb.baseline.parallel_efficiency - 1e-12
        )

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        useful=st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1, max_size=16,
        ),
        lend_limit=st.floats(min_value=0.0, max_value=0.9, allow_nan=False),
    )
    def test_policy_invariants(self, useful, lend_limit):
        """Conservation, the lend cap, and lender/borrower disjointness
        hold for arbitrary measured inputs."""
        size = len(useful)
        step = DlbPolicy(lend_limit=lend_limit).rebalance(useful, [1.0] * size)
        assert sum(step.capacities_after) == pytest.approx(
            float(size), rel=1e-9
        )
        floor = 1.0 - lend_limit
        assert all(c >= floor - 1e-9 for c in step.capacities_after)
        lenders = {rank for rank, _ in step.lends}
        borrowers = {rank for rank, _ in step.borrows}
        assert lenders.isdisjoint(borrowers)
