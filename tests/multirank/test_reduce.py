"""Unit tests for the cross-rank profile reducer and POP computation."""

import pytest

from repro.multirank.reduce import (
    RankStat,
    flatten_merged,
    merge_profiles,
)
from repro.talp.pop import compute_pop_from_ranks


def _profile(name="ROOT", **kwargs):
    """Build a profile dict in ``profile_io.to_dict`` form."""
    node = {"name": name, "visits": kwargs.get("visits", 0),
            "inclusive_cycles": kwargs.get("cycles", 0.0),
            "children": kwargs.get("children", [])}
    return node


class TestRankStat:
    def test_min_max_avg_sum(self):
        s = RankStat.of([1.0, 2.0, 3.0, 10.0])
        assert s.min == 1.0
        assert s.max == 10.0
        assert s.sum == 16.0
        assert s.avg == 4.0

    def test_all_equal_pins_average_exactly(self):
        # 0.1 summed three times then divided is NOT 0.1 in binary fp;
        # the reducer pins the average so uniform worlds stay exact
        s = RankStat.of([0.1, 0.1, 0.1])
        assert s.avg == 0.1
        assert s.min == s.max == 0.1


class TestMergeProfiles:
    def test_empty_and_mixed(self):
        assert merge_profiles([]) is None
        assert merge_profiles([None, None]) is None
        with pytest.raises(ValueError):
            merge_profiles([_profile(), None])

    def test_stats_per_call_path(self):
        ranks = [
            _profile(children=[_profile("main", visits=1, cycles=100.0)]),
            _profile(children=[_profile("main", visits=1, cycles=300.0)]),
            _profile(children=[_profile("main", visits=3, cycles=200.0)]),
        ]
        merged = merge_profiles(ranks)
        main = merged.child("main")
        assert main.inclusive_cycles.min == 100.0
        assert main.inclusive_cycles.max == 300.0
        assert main.inclusive_cycles.sum == 600.0
        assert main.inclusive_cycles.avg == 200.0
        assert main.visits.sum == 5.0
        assert main.visits.max == 3.0

    def test_missing_call_path_counts_as_zero(self):
        ranks = [
            _profile(children=[_profile("main", visits=1, cycles=100.0,
                                        children=[_profile("kernel", visits=4, cycles=50.0)])]),
            _profile(children=[_profile("main", visits=1, cycles=80.0)]),
        ]
        merged = merge_profiles(ranks)
        kernel = merged.child("main").child("kernel")
        assert kernel.visits.min == 0.0
        assert kernel.visits.max == 4.0
        assert kernel.visits.sum == 4.0
        assert kernel.inclusive_cycles.avg == 25.0

    def test_union_of_children_sorted(self):
        ranks = [
            _profile(children=[_profile("b"), _profile("a")]),
            _profile(children=[_profile("c")]),
        ]
        merged = merge_profiles(ranks)
        assert sorted(merged.children) == ["a", "b", "c"]

    def test_flatten_sums_over_paths(self):
        ranks = [
            _profile(children=[
                _profile("main", visits=1, cycles=100.0,
                         children=[_profile("util", visits=2, cycles=10.0)]),
                _profile("init", visits=1, cycles=5.0,
                         children=[_profile("util", visits=1, cycles=3.0)]),
            ]),
        ]
        flat = flatten_merged(merge_profiles(ranks))
        visits, cycles = flat["util"]
        assert visits.sum == 3.0
        assert cycles.sum == 13.0
        assert "main" in flat and "init" in flat


class TestFlattenPerRankFirst:
    def test_opposite_skew_across_call_paths(self):
        """Regression (ISSUE 3): a region on two call paths with opposite
        rank skew.  Per-path stats summed component-wise reported
        min=2/max=20; flattening each rank first gives the true per-rank
        sums (11 on both ranks)."""
        ranks = [
            _profile(children=[
                _profile("a", visits=1, cycles=1.0,
                         children=[_profile("util", visits=10, cycles=10.0)]),
                _profile("b", visits=1, cycles=1.0,
                         children=[_profile("util", visits=1, cycles=1.0)]),
            ]),
            _profile(children=[
                _profile("a", visits=1, cycles=1.0,
                         children=[_profile("util", visits=1, cycles=1.0)]),
                _profile("b", visits=1, cycles=1.0,
                         children=[_profile("util", visits=10, cycles=10.0)]),
            ]),
        ]
        flat = flatten_merged(merge_profiles(ranks))
        visits, cycles = flat["util"]
        assert visits.min == 11.0
        assert visits.max == 11.0
        assert visits.sum == 22.0
        assert visits.avg == 11.0
        assert cycles.min == 11.0
        assert cycles.max == 11.0

    def test_single_path_unchanged(self):
        ranks = [
            _profile(children=[_profile("main", visits=2, cycles=10.0)]),
            _profile(children=[_profile("main", visits=4, cycles=30.0)]),
        ]
        flat = flatten_merged(merge_profiles(ranks))
        visits, cycles = flat["main"]
        assert (visits.min, visits.max, visits.sum) == (2.0, 4.0, 6.0)
        assert (cycles.min, cycles.max, cycles.sum) == (10.0, 30.0, 40.0)


class TestRankStatGuard:
    def test_empty_input_raises_clear_error(self):
        with pytest.raises(ValueError, match="need at least one rank"):
            RankStat.of([])


class TestElapsedBottleneckAgreement:
    def test_same_cycle_based_key(self):
        """``elapsed_seconds`` must be derived from ``bottleneck`` so the
        two can never disagree through per-rank division rounding."""
        from repro.execution.result import RunResult
        from repro.multirank.imbalance import ImbalanceSpec
        from repro.multirank.reduce import build_pop_report
        from repro.multirank.scheduler import MultiRankOutcome, RankResult

        def rank(i, t_init, t_app):
            r = RunResult("app", "none", "c")
            r.t_init_cycles = t_init
            r.t_app_cycles = t_app
            r.useful_cycles = t_app
            return RankResult(rank=i, result=r)

        # identical totals split differently: the tie goes to rank 0 and
        # elapsed_seconds reports exactly that rank's t_total
        per_rank = [rank(0, 100.0, 50.0), rank(1, 50.0, 100.0)]
        outcome = MultiRankOutcome(
            ranks=2, spec=ImbalanceSpec(), factors=(1.0, 1.0),
            backend="serial", per_rank=per_rank, merged_profile=None,
            pop=build_pop_report(per_rank),
        )
        assert outcome.bottleneck.rank == 0
        assert outcome.elapsed_seconds == outcome.bottleneck.result.t_total


class TestPopFromRanks:
    def test_uniform_is_exactly_balanced(self):
        m = compute_pop_from_ranks(
            "r",
            visits=3,
            useful_cycles=[0.1, 0.1, 0.1],
            elapsed_cycles=[1.0, 1.0, 1.0],
            mpi_cycles=[0.0, 0.0, 0.0],
            frequency=1.0,
        )
        assert m.load_balance == 1.0

    def test_imbalance_lowers_lb(self):
        m = compute_pop_from_ranks(
            "r",
            visits=1,
            useful_cycles=[100.0, 50.0],
            elapsed_cycles=[120.0, 120.0],
            mpi_cycles=[0.0, 0.0],
            frequency=1.0,
        )
        assert m.load_balance == pytest.approx(0.75)
        assert m.communication_efficiency == pytest.approx(100.0 / 120.0)
        assert m.parallel_efficiency == pytest.approx(0.625)

    def test_elapsed_is_bottleneck(self):
        m = compute_pop_from_ranks(
            "r",
            visits=1,
            useful_cycles=[1.0, 1.0],
            elapsed_cycles=[10.0, 40.0],
            mpi_cycles=[0.0, 0.0],
            frequency=2.0,
        )
        assert m.elapsed_seconds == 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_pop_from_ranks(
                "r", visits=0, useful_cycles=[], elapsed_cycles=[],
                mpi_cycles=[], frequency=1.0,
            )
        with pytest.raises(ValueError):
            compute_pop_from_ranks(
                "r", visits=0, useful_cycles=[1.0], elapsed_cycles=[1.0, 2.0],
                mpi_cycles=[1.0], frequency=1.0,
            )


class TestRegionWaitAttribution:
    def test_nonvisiting_ranks_get_no_wait(self):
        """A region visited by one rank must not charge the other ranks
        its full elapsed time as MPI wait."""
        from repro.execution.result import RunResult
        from repro.multirank.reduce import build_pop_report
        from repro.multirank.scheduler import RankResult, RegionSample

        def rank(i, regions=()):
            r = RunResult("app", "talp", "c")
            r.t_app_cycles = 100.0
            r.useful_cycles = 50.0
            return RankResult(rank=i, result=r, talp_regions=regions)

        io_region = RegionSample(
            name="io", visits=1, elapsed_cycles=80.0,
            mpi_cycles=5.0, useful_cycles=75.0,
        )
        report = build_pop_report([rank(0, (io_region,)), rank(1), rank(2)])
        io = report.region("io")
        # mean MPI = 5/3 cycles: the two non-visiting ranks contribute 0
        # wait, not 80 cycles each
        assert io.mpi_seconds == pytest.approx((5.0 / 3) / 2.0e9)
