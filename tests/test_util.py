"""Tests for shared helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro._util import COMPARE_OPS, compare, format_table, percent, rng_for, stable_hash


class TestCompare:
    @pytest.mark.parametrize("op", sorted(COMPARE_OPS))
    def test_all_ops_work(self, op):
        assert isinstance(compare(op, 1, 2), bool)

    def test_semantics(self):
        assert compare(">=", 2, 2)
        assert compare("<", 1, 2)
        assert not compare("==", 1, 2)
        assert compare("!=", 1, 2)

    def test_unknown_op(self):
        with pytest.raises(ValueError, match="unknown comparison"):
            compare("~", 1, 2)


class TestRng:
    def test_deterministic_per_stream(self):
        a = rng_for(42, "x").random(4)
        b = rng_for(42, "x").random(4)
        assert np.array_equal(a, b)

    def test_streams_decorrelated(self):
        a = rng_for(42, "x").random(4)
        b = rng_for(42, "y").random(4)
        assert not np.array_equal(a, b)


class TestStableHash:
    @given(st.text())
    def test_stable_and_64bit(self, text):
        h = stable_hash(text)
        assert h == stable_hash(text)
        assert 0 <= h < 2**64

    def test_known_value_stays_fixed(self):
        # a regression anchor: process-independent hashing is what makes
        # the synthetic app generators reproducible across runs
        assert stable_hash("Amul") == stable_hash("Amul")
        assert stable_hash("a") != stable_hash("b")


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_table_title(self):
        text = format_table(["x"], [["1"]], title="TITLE")
        assert text.startswith("TITLE")

    def test_percent(self):
        assert percent(5, 100) == "(5.0%)"
        assert percent(1, 0) == "(0.0%)"
