"""Shared fixtures: small programs, built apps, and runtimes."""

from __future__ import annotations

import pytest

from repro.program.builder import ProgramBuilder
from repro.program.compiler import Compiler, CompilerConfig
from repro.program.linker import Linker
from repro.program.loader import DynamicLoader


def make_demo_builder() -> ProgramBuilder:
    """A small program: exe + one DSO, MPI, a kernel, inline helpers."""
    b = ProgramBuilder("demo")
    b.tu("main.cpp")
    b.mpi_function("MPI_Init")
    b.mpi_function("MPI_Finalize")
    b.mpi_function("MPI_Allreduce")
    b.function("main", statements=5)
    b.function("solve", statements=10)
    b.function("wrap1", statements=4)
    b.function("wrap2", statements=4)
    b.function("kernel", flops=100, loop_depth=2, statements=12)
    b.function("tiny", statements=1, inline_marked=True)
    b.call("main", "MPI_Init")
    b.call("main", "solve", count=5)
    b.call("main", "MPI_Finalize")
    b.call("solve", "wrap1")
    b.call("wrap1", "wrap2")
    b.call("wrap2", "kernel", count=20)
    b.call("solve", "MPI_Allreduce")
    b.call("kernel", "tiny", count=4)
    b.tu("lib.cpp")
    b.function("lib_helper", statements=8)
    b.function("lib_hidden", statements=6, hidden=True)
    b.function("lib_init", statements=2, hidden=True, is_static_initializer=True)
    b.call("solve", "lib_helper", count=2)
    b.call("lib_helper", "lib_hidden")
    b.library("libdemo.so", ["lib.cpp"])
    return b


@pytest.fixture
def demo_program():
    return make_demo_builder().build()


@pytest.fixture
def demo_compiled(demo_program):
    return Compiler(CompilerConfig()).compile(demo_program)


@pytest.fixture
def demo_linked(demo_compiled):
    return Linker().link(demo_compiled)


@pytest.fixture
def demo_loaded(demo_linked):
    loader = DynamicLoader()
    objs = loader.load_program(demo_linked)
    return loader, objs
