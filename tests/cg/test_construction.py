"""Tests for local CG construction, merge, virtual/pointer resolution."""

from repro.cg.graph import EdgeReason
from repro.cg.local import build_local_cg
from repro.cg.merge import build_whole_program_cg, merge_local_graphs
from repro.cg.validation import validate_with_profile
from repro.program.builder import ProgramBuilder


def cross_tu_program():
    b = ProgramBuilder("p")
    b.tu("a.cpp")
    b.function("main", statements=5)
    b.function("base_m", statements=3, overrides="base_m")
    b.virtual_call("main", "base_m")
    b.tu("b.cpp")
    b.function("impl_1", statements=3, overrides="base_m")
    b.function("impl_2", statements=3, overrides="base_m")
    b.function("foreign", statements=8)
    b.call("main", "foreign")
    return b


class TestLocalConstruction:
    def test_foreign_callee_is_declaration_only(self):
        p = cross_tu_program().build()
        local = build_local_cg(p.translation_units["a.cpp"])
        assert "foreign" in local.graph
        assert not local.graph.node("foreign").meta.has_body
        assert local.graph.node("main").meta.has_body

    def test_virtual_sites_recorded_for_merge(self):
        p = cross_tu_program().build()
        local = build_local_cg(p.translation_units["a.cpp"])
        assert len(local.virtual_calls) == 1
        assert local.virtual_calls[0].static_target == "base_m"

    def test_pointer_sites_recorded(self):
        b = ProgramBuilder("p")
        b.tu("a.cpp")
        b.function("main")
        b.function("cb")
        b.pointer_call("main", "fp", ["cb"])
        p = b.build()
        local = build_local_cg(p.translation_units["a.cpp"])
        assert len(local.pointer_calls) == 1
        # pointer edges are NOT in the local graph
        assert not local.graph.has_edge("main", "cb")


class TestMerge:
    def test_merge_resolves_declarations(self):
        p = cross_tu_program().build()
        g = build_whole_program_cg(p)
        assert g.node("foreign").meta.has_body
        assert len(g) == p.function_count()

    def test_virtual_overapproximation_covers_all_overriders(self):
        """Paper §III-A: edges to all known inheriting definitions."""
        p = cross_tu_program().build()
        g = build_whole_program_cg(p)
        for target in ("base_m", "impl_1", "impl_2"):
            assert g.has_edge("main", target)
            assert g.edge_reason("main", target) is EdgeReason.VIRTUAL

    def test_merge_is_idempotent(self):
        p = cross_tu_program().build()
        locals_ = [build_local_cg(tu) for tu in p.translation_units.values()]
        g1 = merge_local_graphs(locals_, p)
        g2 = merge_local_graphs(locals_, p)
        assert g1.node_names() == g2.node_names()
        assert {(e.caller, e.callee) for e in g1.edges()} == {
            (e.caller, e.callee) for e in g2.edges()
        }

    def test_merge_order_invariant(self):
        p = cross_tu_program().build()
        locals_ = [build_local_cg(tu) for tu in p.translation_units.values()]
        g1 = merge_local_graphs(locals_, p)
        g2 = merge_local_graphs(list(reversed(locals_)), p)
        assert g1.node_names() == g2.node_names()
        assert g1.edge_count() == g2.edge_count()

    def test_static_pointer_resolution(self):
        b = ProgramBuilder("p")
        b.tu("a.cpp")
        b.function("main")
        b.function("cb1")
        b.function("cb2")
        b.pointer_call("main", "fp", ["cb1", "cb2"])
        g = build_whole_program_cg(b.build())
        assert g.edge_reason("main", "cb1") is EdgeReason.POINTER
        assert g.edge_reason("main", "cb2") is EdgeReason.POINTER

    def test_dynamic_pointer_left_unresolved(self):
        b = ProgramBuilder("p")
        b.tu("a.cpp")
        b.function("main")
        b.function("cb")
        b.pointer_call("main", "fp", ["cb"], static_resolvable=False)
        g = build_whole_program_cg(b.build())
        assert not g.has_edge("main", "cb")

    def test_tu_subset_merge(self):
        p = cross_tu_program().build()
        g = build_whole_program_cg(p, tus=["a.cpp"])
        assert "main" in g
        assert not g.node("foreign").meta.has_body  # declaration only


class TestProfileValidation:
    def test_missing_edge_inserted(self):
        b = ProgramBuilder("p")
        b.tu("a.cpp")
        b.function("main")
        b.function("cb")
        b.pointer_call("main", "fp", ["cb"], static_resolvable=False)
        g = build_whole_program_cg(b.build())
        report = validate_with_profile(g, [("main", "cb")])
        assert report.inserted == [("main", "cb")]
        assert g.edge_reason("main", "cb") is EdgeReason.PROFILE

    def test_existing_edges_untouched(self):
        g = build_whole_program_cg(cross_tu_program().build())
        before = g.edge_count()
        report = validate_with_profile(g, [("main", "foreign")])
        assert report.already_present == 1
        assert g.edge_count() == before
        assert g.edge_reason("main", "foreign") is EdgeReason.DIRECT

    def test_unknown_nodes_created(self):
        g = build_whole_program_cg(cross_tu_program().build())
        report = validate_with_profile(g, [("main", "dlopened_plugin_fn")])
        assert "dlopened_plugin_fn" in report.new_nodes
        assert g.has_edge("main", "dlopened_plugin_fn")
