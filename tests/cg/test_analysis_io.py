"""Tests for call-graph analyses and JSON round-trip."""

import pytest

from repro.cg.analysis import (
    aggregate_statements,
    call_depths_from,
    call_path_between,
    on_call_path_from,
    on_call_path_to,
    single_caller_nodes,
)
from repro.cg.graph import CallGraph, NodeMeta
from repro.cg.io import from_dict, load, save, to_dict
from repro.cg.merge import build_whole_program_cg
from repro.errors import CallGraphError
from tests.conftest import make_demo_builder


def chain_graph():
    g = CallGraph()
    for name, stmts in (
        ("main", 2), ("a", 3), ("b", 5), ("kernel", 20), ("other", 7)
    ):
        g.add_node(name, NodeMeta(statements=stmts, has_body=True))
    g.add_edge("main", "a")
    g.add_edge("a", "b")
    g.add_edge("b", "kernel")
    g.add_edge("main", "other")
    return g


class TestCallPaths:
    def test_on_call_path_to(self):
        g = chain_graph()
        assert on_call_path_to(g, ["kernel"]) == {"kernel", "b", "a", "main"}

    def test_on_call_path_from(self):
        g = chain_graph()
        assert on_call_path_from(g, ["a"]) == {"a", "b", "kernel"}

    def test_call_path_between(self):
        g = chain_graph()
        assert call_path_between(g, ["main"], ["kernel"]) == {
            "main", "a", "b", "kernel",
        }
        assert "other" not in call_path_between(g, ["main"], ["kernel"])

    def test_call_depths(self):
        g = chain_graph()
        depths = call_depths_from(g, "main")
        assert depths["main"] == 0
        assert depths["kernel"] == 3

    def test_call_depths_unknown_root(self):
        assert call_depths_from(chain_graph(), "ghost") == {}


class TestStatementAggregation:
    def test_aggregation_along_chain(self):
        g = chain_graph()
        agg = aggregate_statements(g, "main")
        assert agg["main"] == 2
        assert agg["a"] == 5
        assert agg["kernel"] == 30  # 2+3+5+20

    def test_aggregation_takes_max_path(self):
        g = CallGraph()
        for name, stmts in (("main", 1), ("big", 50), ("small", 2), ("leaf", 3)):
            g.add_node(name, NodeMeta(statements=stmts, has_body=True))
        g.add_edge("main", "big")
        g.add_edge("main", "small")
        g.add_edge("big", "leaf")
        g.add_edge("small", "leaf")
        assert aggregate_statements(g, "main")["leaf"] == 54  # via big

    def test_aggregation_handles_cycles(self):
        g = CallGraph()
        for name in ("main", "x", "y"):
            g.add_node(name, NodeMeta(statements=4, has_body=True))
        g.add_edge("main", "x")
        g.add_edge("x", "y")
        g.add_edge("y", "x")  # cycle
        agg = aggregate_statements(g, "main")
        assert agg["x"] == agg["y"] == 12  # each SCC counted once


class TestTopoOrder:
    """Regression: the condensation DP must use an explicit topological
    order, not Tarjan's emission order (an implementation detail)."""

    def diamond_cycle_graph(self):
        # diamond (main -> a|b -> join) feeding a 2-cycle (c1 <-> c2)
        # that exits into a leaf
        g = CallGraph()
        for name, stmts in (
            ("main", 1), ("a", 10), ("b", 20), ("join", 5),
            ("c1", 3), ("c2", 4), ("leaf", 7),
        ):
            g.add_node(name, NodeMeta(statements=stmts, has_body=True))
        g.add_edge("main", "a")
        g.add_edge("main", "b")
        g.add_edge("a", "join")
        g.add_edge("b", "join")
        g.add_edge("join", "c1")
        g.add_edge("c1", "c2")
        g.add_edge("c2", "c1")  # cycle
        g.add_edge("c2", "leaf")
        return g

    def test_diamond_plus_cycle_aggregation(self):
        agg = aggregate_statements(self.diamond_cycle_graph(), "main")
        assert agg["main"] == 1
        assert agg["a"] == 11
        assert agg["b"] == 21
        assert agg["join"] == 26  # max path goes via b
        assert agg["c1"] == agg["c2"] == 33  # SCC counted once: 26 + (3+4)
        assert agg["leaf"] == 40

    def test_topo_order_is_edge_driven(self):
        # component 0 calls component 1: any id-based ordering heuristic
        # (the old "iterate comp ids high to low") would process the
        # callee first; Kahn over the edges must not.
        from repro.cg.analysis import _topo_order

        assert _topo_order([{1}, set()]) == [0, 1]
        assert _topo_order([set(), {0}]) == [1, 0]
        # diamond condensation: 0 -> {1, 2} -> 3
        order = _topo_order([{1, 2}, {3}, {3}, set()])
        assert order.index(0) < order.index(1)
        assert order.index(0) < order.index(2)
        assert order.index(3) == 3

    def test_interleaved_ids_still_aggregate_correctly(self):
        # force SCC ids that are NOT reverse-topological by adding the
        # deep nodes first, so any emission-order assumption breaks
        g = CallGraph()
        for name in ("leaf", "mid", "main"):
            g.add_node(name, NodeMeta(statements=2, has_body=True))
        g.add_edge("mid", "leaf")
        g.add_edge("main", "mid")
        agg = aggregate_statements(g, "main")
        assert agg == {"main": 2, "mid": 4, "leaf": 6}


class TestSingleCaller:
    def test_single_caller_detection(self):
        g = chain_graph()
        within = {"main", "a", "b", "kernel"}
        singles = single_caller_nodes(g, within)
        assert {"a", "b", "kernel"} <= singles
        assert "main" not in singles


class TestJsonRoundTrip:
    def test_roundtrip_preserves_graph(self, tmp_path):
        g = build_whole_program_cg(make_demo_builder().build())
        path = tmp_path / "cg.json"
        save(g, path)
        g2 = load(path)
        assert g2.node_names() == g.node_names()
        assert {(e.caller, e.callee, e.reason) for e in g2.edges()} == {
            (e.caller, e.callee, e.reason) for e in g.edges()
        }
        for node in g.nodes():
            assert g2.node(node.name).meta == node.meta

    def test_missing_header_rejected(self):
        with pytest.raises(CallGraphError):
            from_dict({"_CG": {}})

    def test_dict_shape(self):
        g = chain_graph()
        data = to_dict(g)
        assert "_MetaCG" in data
        assert data["_CG"]["b"]["callees"] == {"kernel": "direct"}
        assert data["_CG"]["kernel"]["meta"]["numStatements"] == 20
