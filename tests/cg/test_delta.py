"""Mutation journal and delta CSR refresh: the bit-identity contract.

The hard contract of the incremental path: a snapshot repaired through
:meth:`CsrSnapshot.refresh` must be *bit-identical* — same values, same
dtypes — to a from-scratch build at the same version, for any edit
sequence the journal can express, including cyclic deltas, node
removals with re-adds, and log truncation (where refresh must detect it
cannot answer and fall back to the full rebuild).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cg import csr as csr_kernels
from repro.cg.analysis import (
    _aggregate_statement_ids_dicts,
    aggregate_statement_dense,
    call_depth_dense,
)
from repro.cg.csr import CsrSnapshot
from repro.cg.delta import DeltaEntry, DeltaKind, DeltaLog, summarize
from repro.cg.graph import CallGraph, EdgeReason, NodeMeta

META_ATTRS = ("statements", "flops", "loop_depth", "has_body", "in_system_header")


def assert_bit_identical(actual: CsrSnapshot, expected: CsrSnapshot) -> None:
    assert actual.version == expected.version
    assert actual.n == expected.n
    for attr in (
        "succ_indptr",
        "succ_indices",
        "pred_indptr",
        "pred_indices",
        "alive",
        "live_ids",
    ):
        a, e = getattr(actual, attr), getattr(expected, attr)
        assert a.dtype == e.dtype, attr
        assert np.array_equal(a, e), attr
    for attr in META_ATTRS:
        a, e = actual.meta_column(attr), expected.meta_column(attr)
        assert a.dtype == e.dtype, attr
        assert np.array_equal(a, e), attr


def assert_analyses_valid(graph: CallGraph, snapshot: CsrSnapshot) -> None:
    """Carried-over analysis memos must equal recomputation from scratch."""
    for (kind, root), value in snapshot.analyses.items():
        reach = csr_kernels.sweep(
            snapshot.succ_indptr, snapshot.succ_indices, (root,), snapshot.n
        )
        if kind == "reach":
            assert np.array_equal(value, reach), ("reach", root)
        elif kind == "reachset":
            assert value == frozenset(np.flatnonzero(reach).tolist())
        elif kind == "depth":
            ref = csr_kernels.bfs_depths(
                snapshot.succ_indptr, snapshot.succ_indices, root, snapshot.n
            )
            assert np.array_equal(value, ref), ("depth", root)
        elif kind == "agg":
            dense = np.zeros(snapshot.n, dtype=np.int64)
            for nid, total in _aggregate_statement_ids_dicts(graph, root).items():
                dense[nid] = total
            assert np.array_equal(value, dense), ("agg", root)


class TestDeltaLog:
    def test_one_entry_per_bump_and_window_invariant(self):
        log = DeltaLog(max_entries=8)
        for i in range(5):
            log.record(DeltaEntry(DeltaKind.NODE_ADDED, i))
        assert len(log) == 5
        assert log.base_version == 0
        assert len(log.entries_since(0, 5)) == 5
        assert len(log.entries_since(3, 5)) == 2
        assert log.entries_since(5, 5) == []

    def test_truncation_advances_base_and_answers_none(self):
        log = DeltaLog(max_entries=3)
        for i in range(5):
            log.record(DeltaEntry(DeltaKind.EDGE_ADDED, i, other=i + 1))
        assert log.base_version == 2
        assert log.entries_since(1, 5) is None  # truncated past v1
        assert len(log.entries_since(2, 5)) == 3
        assert log.entries_since(6, 5) is None  # future version: not ours

    def test_summarize_folds_removal_neighbours_into_rows(self):
        entries = [
            DeltaEntry(DeltaKind.NODE_REMOVED, 3, preds=(1, 2), succs=(4,)),
        ]
        delta = summarize(entries, 7, 8)
        assert delta.universe_changed
        assert delta.struct_touched == frozenset({1, 2, 3, 4})
        assert delta.succ_rows == frozenset({1, 2, 3})  # callers lose a target
        assert delta.pred_rows == frozenset({3, 4})  # callee loses a caller

    def test_reason_upgrade_touches_no_rows(self):
        delta = summarize(
            [DeltaEntry(DeltaKind.REASON_UPGRADED, 0, other=1)], 0, 1
        )
        assert delta.row_count == 0
        assert delta.struct_touched == frozenset({0, 1})
        assert not delta.universe_changed


class TestGraphJournal:
    def test_delta_since_current_is_empty(self):
        graph = CallGraph()
        graph.add_edge("a", "b")
        delta = graph.delta_since(graph.version)
        assert delta is not None
        assert delta.row_count == 0 and not delta.universe_changed

    def test_delta_since_folds_edit_gap(self):
        graph = CallGraph()
        graph.add_edge("a", "b")
        v = graph.version
        graph.add_edge("a", "c")  # interns c: node + edge
        delta = graph.delta_since(v)
        assert delta.added == frozenset({graph.id_of("c")})
        assert graph.id_of("a") in delta.succ_rows

    def test_truncated_log_returns_none(self):
        graph = CallGraph(max_delta_entries=2)
        graph.add_edge("a", "b")
        v = graph.version
        for i in range(4):
            graph.add_edge("a", f"x{i}")
        assert graph.delta_since(v) is None

    def test_foreign_version_returns_none(self):
        graph = CallGraph()
        graph.add_edge("a", "b")
        assert graph.delta_since(graph.version + 1) is None


class TestNoOpMergeRegression:
    """Satellite bugfix: a no-op metadata merge must not bump the version."""

    def test_redeclaring_a_definition_keeps_version(self):
        graph = CallGraph()
        graph.add_node("f", NodeMeta(statements=5, has_body=True))
        v = graph.version
        graph.add_node("f")  # bare declaration: merged_with is a no-op
        assert graph.version == v
        graph.add_node("f", NodeMeta(statements=5, has_body=True))  # identical
        assert graph.version == v

    def test_noop_merge_keeps_warm_snapshot_object(self):
        graph = CallGraph()
        graph.add_node("f", NodeMeta(statements=5, has_body=True))
        snapshot = graph.csr()
        graph.add_node("f")
        assert graph.csr() is snapshot  # no invalidation at all

    def test_real_merge_still_bumps(self):
        graph = CallGraph()
        graph.add_edge("main", "f")  # f interned as a declaration
        v = graph.version
        graph.add_node("f", NodeMeta(statements=9, has_body=True))
        assert graph.version == v + 1


# -- the edit-sequence property ----------------------------------------------------

_POOL = [f"f{i}" for i in range(10)]
_REASONS = (EdgeReason.DIRECT, EdgeReason.VIRTUAL, EdgeReason.PROFILE)

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("edge"),
            st.integers(0, len(_POOL) - 1),
            st.integers(0, len(_POOL) - 1),
            st.integers(0, len(_REASONS) - 1),
        ),
        st.tuples(st.just("define"), st.integers(0, len(_POOL) - 1), st.integers(1, 9)),
        st.tuples(st.just("declare"), st.integers(0, len(_POOL) - 1)),
        st.tuples(st.just("remove"), st.integers(0, len(_POOL) - 1)),
    ),
    min_size=1,
    max_size=24,
)


def _apply(graph: CallGraph, op: tuple) -> None:
    if op[0] == "edge":
        _, i, j, r = op
        graph.add_edge(_POOL[i], _POOL[j], _REASONS[r])
    elif op[0] == "define":
        _, i, stmts = op
        name = _POOL[i]
        nid = graph.id_of(name)
        if nid is not None and graph.meta_of(nid).has_body:
            graph.add_node(name, graph.meta_of(nid))  # identical: no-op
        else:
            graph.add_node(name, NodeMeta(statements=stmts, has_body=True))
    elif op[0] == "declare":
        graph.add_node(_POOL[op[1]])
    else:
        name = _POOL[op[1]]
        if name in graph and len(graph) > 1:
            graph.remove_node(name)


class TestRefreshBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops, log_cap=st.sampled_from([1, 2, 4096]))
    def test_random_edit_sequences(self, ops, log_cap):
        """Every step: the graph's (refresh-path) snapshot is bit-identical
        to a from-scratch build — including truncation fallback (tiny log
        caps) and cyclic deltas (random edges make cycles freely)."""
        graph = CallGraph(max_delta_entries=log_cap)
        graph.add_edge("f0", "f1")
        graph.csr()  # warm snapshot the refreshes chain from
        for op in ops:
            _apply(graph, op)
            snapshot = graph.csr()
            assert_bit_identical(snapshot, CsrSnapshot(graph))
            assert_analyses_valid(graph, snapshot)

    @settings(max_examples=40, deadline=None)
    @given(ops=_ops)
    def test_analyses_carry_stays_correct(self, ops):
        """Interleave root-keyed analyses with edits: whatever the delta
        refresh carries over must equal recomputation from scratch."""
        graph = CallGraph()
        graph.add_edge("f0", "f1")
        graph.add_edge("f1", "f2")
        for op in ops:
            root = graph.id_of("f0")
            if root is not None:
                call_depth_dense(graph, root)
                aggregate_statement_dense(graph, root)
            _apply(graph, op)
            snapshot = graph.csr()
            assert_bit_identical(snapshot, CsrSnapshot(graph))
            assert_analyses_valid(graph, snapshot)

    def test_refresh_rebuilds_for_foreign_graph(self):
        a, b = CallGraph(), CallGraph()
        a.add_edge("x", "y")
        b.add_edge("x", "y")
        snapshot = a.csr()
        rebuilt = snapshot.refresh(b)
        assert rebuilt.refreshed_from is None  # full build, not a patch
        assert_bit_identical(rebuilt, CsrSnapshot(b))

    def test_refresh_respects_max_rows(self):
        graph = CallGraph()
        for i in range(8):
            graph.add_edge("hub", f"leaf{i}")
        snapshot = graph.csr()
        for i in range(8):
            graph.add_edge(f"leaf{i}", "hub")
        rebuilt = snapshot.refresh(graph, max_rows=1)
        assert rebuilt.refreshed_from is None  # too wide: full rebuild
        assert_bit_identical(rebuilt, CsrSnapshot(graph))

    def test_unchanged_regions_share_arrays(self):
        """The refresh must patch, not copy: untouched direction arrays
        and meta columns come back as the very same objects."""
        graph = CallGraph()
        graph.add_edge("main", "a")
        graph.add_edge("a", "b")
        base = graph.csr()
        base.meta_column("statements")
        graph.add_edge("main", "a")  # no-op: same snapshot entirely
        assert graph.csr() is base
        graph.add_edge("a", "b", EdgeReason.DIRECT)  # still present: no-op
        assert graph.csr() is base
        graph.add_edge("main", "b")  # touches succ row of main, pred of b
        refreshed = graph.csr()
        assert refreshed is not base
        assert refreshed.refreshed_from == base.version
        # same universe: alive/live/meta shared by reference
        assert refreshed.alive is base.alive
        assert refreshed.live_ids is base.live_ids
        assert refreshed.meta_column("statements") is base.meta_column("statements")


class TestForwardBackwardScc:
    """The vectorised FB-SCC must produce the same *partition* as Tarjan
    (component ids may differ — consumers order via ``topo_order``)."""

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(2, 12),
        edges=st.lists(
            st.tuples(st.integers(0, 11), st.integers(0, 11)), max_size=30
        ),
        seed_count=st.integers(1, 3),
    )
    def test_partition_matches_tarjan(self, n, edges, seed_count):
        graph = CallGraph()
        for i in range(n):
            graph.add_node(f"f{i}", NodeMeta(statements=1, has_body=True))
        for u, v in edges:
            graph.add_edge(f"f{u % n}", f"f{v % n}")
        snapshot = graph.csr()
        seeds = tuple(range(min(seed_count, n)))
        t_of, t_members = csr_kernels.tarjan_scc(
            snapshot.succ_indptr, snapshot.succ_indices, seeds, snapshot.n
        )
        f_of, f_members = csr_kernels.forward_backward_scc(
            snapshot.succ_indptr,
            snapshot.succ_indices,
            snapshot.pred_indptr,
            snapshot.pred_indices,
            seeds,
            snapshot.n,
        )
        assert {frozenset(m) for m in t_members} == {
            frozenset(m) for m in f_members
        }
        # same coverage, and comp_of is consistent with the member lists
        assert np.array_equal(t_of >= 0, f_of >= 0)
        for cid, members in enumerate(f_members):
            assert all(f_of[m] == cid for m in members)

    def test_condense_dispatcher_picks_tarjan_below_threshold(self):
        graph = CallGraph()
        graph.add_edge("a", "b")
        graph.add_edge("b", "a")
        snapshot = graph.csr()
        comp_of, comp_members = csr_kernels.scc_condense(
            snapshot.succ_indptr,
            snapshot.succ_indices,
            snapshot.pred_indptr,
            snapshot.pred_indices,
            (0,),
            snapshot.n,
        )
        assert len(comp_members) == 1
        assert sorted(comp_members[0]) == [0, 1]
        assert comp_of[0] == comp_of[1] == 0
