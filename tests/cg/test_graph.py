"""Unit + property tests for the call-graph data structure."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cg.graph import CallGraph, EdgeReason, NodeMeta
from repro.errors import CallGraphError


def small_graph():
    g = CallGraph()
    g.add_edge("main", "a")
    g.add_edge("main", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "c")
    g.add_edge("c", "leaf")
    return g


class TestStructure:
    def test_add_edge_creates_nodes(self):
        g = CallGraph()
        g.add_edge("x", "y")
        assert "x" in g and "y" in g
        assert g.edge_count() == 1

    def test_callers_and_callees(self):
        g = small_graph()
        assert g.callees_of("main") == {"a", "b"}
        assert g.callers_of("c") == {"a", "b"}

    def test_remove_node_cleans_edges(self):
        g = small_graph()
        g.remove_node("c")
        assert "c" not in g
        assert g.callees_of("a") == set()
        assert g.callers_of("leaf") == set()

    def test_remove_unknown_node_rejected(self):
        with pytest.raises(CallGraphError):
            CallGraph().remove_node("ghost")

    def test_node_lookup_unknown_rejected(self):
        with pytest.raises(CallGraphError):
            small_graph().node("ghost")

    def test_edge_reason_keeps_most_static(self):
        g = CallGraph()
        g.add_edge("a", "b", EdgeReason.PROFILE)
        g.add_edge("a", "b", EdgeReason.DIRECT)
        assert g.edge_reason("a", "b") is EdgeReason.DIRECT
        g.add_edge("a", "b", EdgeReason.VIRTUAL)
        assert g.edge_reason("a", "b") is EdgeReason.DIRECT


class TestMetaMerge:
    def test_definition_wins_over_declaration(self):
        g = CallGraph()
        g.add_node("f")  # declaration (no body)
        g.add_node("f", NodeMeta(statements=5, has_body=True))
        assert g.node("f").meta.statements == 5

    def test_declaration_does_not_overwrite_definition(self):
        g = CallGraph()
        g.add_node("f", NodeMeta(statements=5, has_body=True))
        g.add_node("f", NodeMeta())
        assert g.node("f").meta.statements == 5

    def test_conflicting_definitions_rejected(self):
        g = CallGraph()
        g.add_node("f", NodeMeta(statements=5, has_body=True))
        with pytest.raises(CallGraphError):
            g.add_node("f", NodeMeta(statements=9, has_body=True))


class TestTraversal:
    def test_reachable_from(self):
        g = small_graph()
        assert g.reachable_from(["a"]) == {"a", "c", "leaf"}

    def test_reaching(self):
        g = small_graph()
        assert g.reaching(["c"]) == {"c", "a", "b", "main"}

    def test_unknown_roots_ignored(self):
        g = small_graph()
        assert g.reachable_from(["ghost"]) == set()

    def test_copy_is_deep_for_structure(self):
        g = small_graph()
        g2 = g.copy()
        g2.remove_node("c")
        assert "c" in g
        assert g2.edge_count() < g.edge_count()


names = st.text(alphabet="abcdef", min_size=1, max_size=3)


@settings(max_examples=50)
@given(edges=st.lists(st.tuples(names, names), max_size=30))
def test_reaching_is_inverse_of_reachable(edges):
    """Property: y reachable from x  ⟺  x in reaching({y})."""
    g = CallGraph()
    for a, b in edges:
        g.add_edge(a, b)
    nodes = list(g.node_names())[:5]
    for x in nodes:
        fwd = g.reachable_from([x])
        for y in nodes:
            assert (y in fwd) == (x in g.reaching([y]))


@settings(max_examples=50)
@given(edges=st.lists(st.tuples(names, names), max_size=30))
def test_copy_preserves_everything(edges):
    g = CallGraph()
    for a, b in edges:
        g.add_edge(a, b)
    g2 = g.copy()
    assert g2.node_names() == g.node_names()
    assert {(e.caller, e.callee, e.reason) for e in g2.edges()} == {
        (e.caller, e.callee, e.reason) for e in g.edges()
    }
