"""Property tests for the CSR snapshot layer and flat-array kernels.

The CSR kernels (sweep, Tarjan SCC, condensation edges, topological
order, aggregation DP, BFS depths) are pure performance work: on any
graph — cyclic or acyclic, with self-loops, removed-node tombstones and
multiple roots — they must agree exactly with naive reference
implementations.  Random graphs drive both the vectorised DAG fast path
(wave order cached on the snapshot) and the Tarjan fallback.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cg import csr as csr_kernels
from repro.cg.analysis import (
    _aggregate_statement_ids_dicts,
    _condense,
    _dict_reachable_ids,
    aggregate_statement_dense,
    aggregate_statement_ids,
    call_depth_ids_from,
)
from repro.cg.graph import CallGraph, NodeMeta


@st.composite
def random_graphs(draw) -> CallGraph:
    """Small random call graphs: self-loops, tombstones, multi-root."""
    n = draw(st.integers(min_value=2, max_value=14))
    names = [f"f{i}" for i in range(n)]
    graph = CallGraph()
    for i, name in enumerate(names):
        graph.add_node(
            name,
            NodeMeta(statements=draw(st.integers(0, 9)), has_body=True),
        )
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            max_size=3 * n,
        )
    )
    for caller, callee in edges:
        graph.add_edge(names[caller], names[callee])
    removals = draw(
        st.lists(st.integers(0, n - 1), max_size=2, unique=True)
    )
    for victim in removals:
        if len(graph) > 1 and names[victim] in graph:
            graph.remove_node(names[victim])
    return graph


def _live_ids(graph: CallGraph) -> list[int]:
    return sorted(graph.node_ids())


def _naive_bfs_depths(graph: CallGraph, root_id: int) -> dict[int, int]:
    depths = {root_id: 0}
    queue = deque([root_id])
    while queue:
        nid = queue.popleft()
        base = depths[nid] + 1
        for callee in graph.succ_ids(nid):
            if callee not in depths:
                depths[callee] = base
                queue.append(callee)
    return depths


def _naive_scc_partition(graph: CallGraph, root_id: int) -> set[tuple[int, ...]]:
    """Brute-force SCCs of the reachable subgraph: mutual reachability."""
    reachable = sorted(graph.reachable_ids([root_id]))
    partition = set()
    for nid in reachable:
        forward = graph.reachable_ids([nid])
        backward = graph.reaching_ids([nid])
        partition.add(tuple(sorted((forward & backward) & set(reachable))))
    return partition


class TestSweep:
    @settings(max_examples=60, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_matches_dict_sweep(self, graph, data):
        live = _live_ids(graph)
        seeds = data.draw(
            st.lists(st.sampled_from(live), min_size=1, unique=True)
        )
        reference = _dict_reachable_ids(graph, seeds)
        assert graph.reachable_ids(seeds) == reference
        # the vectorised kernel directly too — the public API routes
        # small graphs through the Python path
        snapshot = graph.csr()
        mask = csr_kernels.sweep(
            snapshot.succ_indptr, snapshot.succ_indices, seeds, snapshot.n
        )
        assert set(np.flatnonzero(mask).tolist()) == reference

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_reverse_sweep_is_forward_of_transpose(self, graph, data):
        live = _live_ids(graph)
        seeds = data.draw(
            st.lists(st.sampled_from(live), min_size=1, unique=True)
        )
        reaching = graph.reaching_ids(seeds)
        # naive: nid reaches a seed iff some seed is forward-reachable
        expected = {
            nid
            for nid in live
            if graph.reachable_ids([nid]) & set(seeds)
        }
        assert reaching == expected

    def test_tombstones_never_visited(self):
        graph = CallGraph()
        for name in ("a", "b", "c"):
            graph.add_node(name, NodeMeta(statements=1, has_body=True))
        graph.add_edge("a", "b")
        graph.add_edge("b", "c")
        victim = graph.id_of("b")
        graph.remove_node("b")
        assert victim not in graph.reachable_ids([graph.id_of("a")])
        snapshot = graph.csr()
        assert not snapshot.alive[victim]


class TestScc:
    @settings(max_examples=60, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_condense_matches_naive_partition(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        _, members = csr_kernels.condense(graph.csr(), root_id)
        assert {tuple(sorted(m)) for m in members} == _naive_scc_partition(
            graph, root_id
        )

    @settings(max_examples=60, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_tarjan_matches_dict_condense(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        snapshot = graph.csr()
        _, members = csr_kernels.tarjan_scc(
            snapshot.succ_indptr, snapshot.succ_indices, (root_id,), snapshot.n
        )
        _, dict_members = _condense(graph, root_id)
        assert sorted(tuple(sorted(m)) for m in members) == sorted(
            tuple(sorted(m)) for m in dict_members
        )

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs())
    def test_multi_root_tarjan_covers_all_live_nodes(self, graph):
        snapshot = graph.csr()
        comp_of, members = csr_kernels.tarjan_scc(
            snapshot.succ_indptr,
            snapshot.succ_indices,
            _live_ids(graph),
            snapshot.n,
        )
        assert sorted(m for ms in members for m in ms) == _live_ids(graph)
        for cid, ms in enumerate(members):
            assert all(comp_of[m] == cid for m in ms)

    def test_self_loop_is_singleton_component(self):
        graph = CallGraph()
        graph.add_node("main", NodeMeta(statements=1, has_body=True))
        graph.add_node("rec", NodeMeta(statements=2, has_body=True))
        graph.add_edge("main", "rec")
        graph.add_edge("rec", "rec")
        _, members = csr_kernels.condense(graph.csr(), graph.id_of("main"))
        assert sorted(len(m) for m in members) == [1, 1]


class TestCondensationOrder:
    @settings(max_examples=60, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_topo_order_respects_condensation_edges(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        snapshot = graph.csr()
        comp_of, members = csr_kernels.tarjan_scc(
            snapshot.succ_indptr, snapshot.succ_indices, (root_id,), snapshot.n
        )
        cindptr, cindices = csr_kernels.condensation_edges(
            comp_of, snapshot.succ_indptr, snapshot.succ_indices, len(members)
        )
        order = csr_kernels.topo_order(cindptr, cindices, len(members))
        assert sorted(order) == list(range(len(members)))
        position = {cid: i for i, cid in enumerate(order)}
        for cid in range(len(members)):
            for offset in range(cindptr[cid], cindptr[cid + 1]):
                assert position[cid] < position[int(cindices[offset])]

    @settings(max_examples=60, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_condensation_edges_match_naive(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        snapshot = graph.csr()
        comp_of, members = csr_kernels.tarjan_scc(
            snapshot.succ_indptr, snapshot.succ_indices, (root_id,), snapshot.n
        )
        cindptr, cindices = csr_kernels.condensation_edges(
            comp_of, snapshot.succ_indptr, snapshot.succ_indices, len(members)
        )
        got = {
            (cid, int(cindices[offset]))
            for cid in range(len(members))
            for offset in range(cindptr[cid], cindptr[cid + 1])
        }
        expected = set()
        for cid, ms in enumerate(members):
            for member in ms:
                for callee in graph.succ_ids(member):
                    tgt = int(comp_of[callee])
                    if tgt >= 0 and tgt != cid:
                        expected.add((cid, tgt))
        assert got == expected


class TestAggregation:
    @settings(max_examples=80, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_matches_dict_baseline(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        assert aggregate_statement_ids(
            graph, root_id
        ) == _aggregate_statement_ids_dicts(graph, root_id)

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_dense_column_matches_dict_baseline(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        dense = aggregate_statement_dense(graph, root_id)
        reference = _aggregate_statement_ids_dicts(graph, root_id)
        for nid in range(graph.id_bound):
            assert dense[nid] == reference.get(nid, 0)

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_custom_metric_matches_dict_baseline(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        metric = lambda nid: 2 * nid + 1  # noqa: E731
        assert aggregate_statement_ids(
            graph, root_id, metric=metric
        ) == _aggregate_statement_ids_dicts(graph, root_id, metric=metric)

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_negative_custom_metric_matches_dict_baseline(self, graph, data):
        # regression: negative metrics can push path sums below the -1
        # unreached sentinel; descendants must drop (or survive) exactly
        # like the dict baseline on both the DAG and cyclic code paths
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        metric = lambda nid: 7 - 5 * nid  # noqa: E731
        assert aggregate_statement_ids(
            graph, root_id, metric=metric
        ) == _aggregate_statement_ids_dicts(graph, root_id, metric=metric)

    def test_huge_custom_metric_is_exact(self):
        # regression: custom metrics route through the Python-int DP, so
        # path sums past the int64 range must not wrap
        graph = CallGraph()
        for name in ("main", "mid", "leaf"):
            graph.add_node(name, NodeMeta(statements=1, has_body=True))
        graph.add_edge("main", "mid")
        graph.add_edge("mid", "leaf")
        metric = lambda nid: 2**62  # noqa: E731
        result = aggregate_statement_ids(
            graph, graph.id_of("main"), metric=metric
        )
        assert result[graph.id_of("leaf")] == 3 * 2**62  # > int64 max
        assert result == _aggregate_statement_ids_dicts(
            graph, graph.id_of("main"), metric=metric
        )


class TestDagLongestPathKernel:
    """Direct kernel coverage: the public API only feeds it the default
    nonnegative statements metric, but the kernel itself must keep the
    dict baseline's sentinel semantics for any int64/float64 metric."""

    def _dag_graph(self):
        graph = CallGraph()
        for name in ("main", "mid", "leaf", "other"):
            graph.add_node(name, NodeMeta(statements=1, has_body=True))
        graph.add_edge("main", "mid")
        graph.add_edge("mid", "leaf")
        graph.add_edge("main", "leaf")
        graph.add_edge("other", "leaf")
        return graph

    def _run(self, graph, metric_values):
        snapshot = graph.csr()
        waves = snapshot.topological_waves()
        assert waves is not None
        metric = np.zeros(snapshot.n, dtype=np.int64)
        for name, value in metric_values.items():
            metric[graph.id_of(name)] = value
        best, reached = csr_kernels.dag_longest_path(
            snapshot.pred_indptr,
            snapshot.pred_indices,
            waves,
            metric,
            graph.id_of("main"),
        )
        id_metric = lambda nid: int(metric[nid])  # noqa: E731
        reference = _aggregate_statement_ids_dicts(
            graph, graph.id_of("main"), metric=id_metric
        )
        got = {
            int(nid): int(best[nid]) for nid in np.flatnonzero(reached)
        }
        return got, reference

    def test_negative_root_still_reaches_descendants(self):
        got, reference = self._run(
            self._dag_graph(), {"main": -10, "mid": 20, "leaf": 5}
        )
        assert got == reference
        # and the value semantics: mid survived (-10+20=10 > -1)
        assert any(value == 10 for value in got.values())

    def test_candidates_below_sentinel_drop_nodes(self):
        got, reference = self._run(
            self._dag_graph(), {"main": -10, "mid": 2, "leaf": 1}
        )
        # main->mid candidate is -8: below the -1 sentinel, dropped —
        # exactly like the dict baseline
        assert got == reference
        assert len(got) == 1  # only the root survives


class TestBfsDepths:
    @settings(max_examples=60, deadline=None)
    @given(graph=random_graphs(), data=st.data())
    def test_matches_naive_bfs(self, graph, data):
        root_id = data.draw(st.sampled_from(_live_ids(graph)))
        reference = _naive_bfs_depths(graph, root_id)
        assert call_depth_ids_from(graph, root_id) == reference
        # the vectorised kernel directly too (public API routes small
        # graphs through the deque BFS)
        snapshot = graph.csr()
        dense = csr_kernels.bfs_depths(
            snapshot.succ_indptr, snapshot.succ_indices, root_id, snapshot.n
        )
        got = {
            int(nid): int(dense[nid])
            for nid in np.flatnonzero(dense >= 0)
        }
        assert got == reference


class TestSnapshot:
    def test_cached_until_mutation(self):
        graph = CallGraph()
        graph.add_node("a", NodeMeta(statements=1, has_body=True))
        graph.add_edge("a", "b")
        first = graph.csr()
        assert graph.csr() is first
        graph.add_edge("a", "c")
        second = graph.csr()
        assert second is not first
        assert second.version == graph.version

    def test_csr_layout_matches_adjacency(self):
        graph = CallGraph()
        for name in ("a", "b", "c"):
            graph.add_node(name, NodeMeta(statements=1, has_body=True))
        graph.add_edge("a", "b")
        graph.add_edge("a", "c")
        graph.add_edge("b", "c")
        snapshot = graph.csr()
        a, b, c = (graph.id_of(n) for n in ("a", "b", "c"))
        row = lambda nid: sorted(  # noqa: E731
            snapshot.succ_indices[
                snapshot.succ_indptr[nid] : snapshot.succ_indptr[nid + 1]
            ].tolist()
        )
        assert row(a) == sorted([b, c])
        assert row(b) == [c]
        prow = lambda nid: sorted(  # noqa: E731
            snapshot.pred_indices[
                snapshot.pred_indptr[nid] : snapshot.pred_indptr[nid + 1]
            ].tolist()
        )
        assert prow(c) == sorted([a, b])
        assert np.array_equal(snapshot.live_ids, [a, b, c])

    def test_meta_column_dense_values(self):
        graph = CallGraph()
        graph.add_node("a", NodeMeta(statements=7, has_body=True))
        graph.add_node("b", NodeMeta(statements=3, has_body=True))
        graph.remove_node("b")
        column = graph.csr().meta_column("statements")
        assert column[graph.id_of("a")] == 7
        assert column[1] == 0  # tombstone slot

    def test_stale_meta_column_rejected(self):
        graph = CallGraph()
        graph.add_node("a", NodeMeta(statements=1, has_body=True))
        snapshot = graph.csr()
        graph.add_edge("a", "b")
        with pytest.raises(RuntimeError):
            snapshot.meta_column("statements")

    @settings(max_examples=40, deadline=None)
    @given(graph=random_graphs())
    def test_topological_waves_are_topological_or_none(self, graph):
        snapshot = graph.csr()
        waves = snapshot.topological_waves()
        has_cycle = any(
            len(m) > 1 or m[0] in graph.succ_ids(m[0])
            for m in csr_kernels.tarjan_scc(
                snapshot.succ_indptr,
                snapshot.succ_indices,
                range(snapshot.n),
                snapshot.n,
            )[1]
        )
        if has_cycle:
            assert waves is None
        else:
            assert waves is not None
            wave_of = {}
            for i, wave in enumerate(waves):
                for nid in wave.tolist():
                    wave_of[nid] = i
            assert len(wave_of) == snapshot.n
            for nid in graph.node_ids():
                for callee in graph.succ_ids(nid):
                    if callee != nid:
                        assert wave_of[nid] < wave_of[callee]
