"""Tests for the synthetic application generators."""

import pytest

from repro.apps.lulesh import PAPER_NODE_COUNT as LULESH_NODES
from repro.apps.lulesh import build_lulesh
from repro.apps.openfoam import DSOS, SOLVER_CHAIN, build_openfoam
from repro.apps.specs import PAPER_SPECS
from repro.cg.merge import build_whole_program_cg


@pytest.fixture(scope="module")
def lulesh():
    return build_lulesh()


@pytest.fixture(scope="module")
def openfoam():
    return build_openfoam(target_nodes=4000)


class TestLulesh:
    def test_paper_node_count(self, lulesh):
        assert lulesh.function_count() == LULESH_NODES == 3360

    def test_no_shared_libraries(self, lulesh):
        assert lulesh.libraries == {}

    def test_validates(self, lulesh):
        lulesh.validate()

    def test_deterministic(self):
        a = build_lulesh(target_nodes=500)
        b = build_lulesh(target_nodes=500)
        assert {f.name for f in a.functions()} == {f.name for f in b.functions()}

    def test_seed_changes_structure(self):
        a = build_lulesh(seed=1, target_nodes=500)
        b = build_lulesh(seed=2, target_nodes=500)
        calls_a = sum(len(f.call_sites) for f in a.functions())
        calls_b = sum(len(f.call_sites) for f in b.functions())
        assert calls_a != calls_b

    def test_has_mpi_and_kernels(self, lulesh):
        names = {f.name for f in lulesh.functions()}
        assert "MPI_Allreduce" in names
        kernels = [
            f for f in lulesh.functions() if f.flops >= 10 and f.loop_depth >= 1
        ]
        assert len(kernels) >= 10

    def test_cg_connects_main_to_kernels(self, lulesh):
        g = build_whole_program_cg(lulesh)
        reachable = g.reachable_from(["main"])
        assert "CalcFBHourglassForceForElems" in reachable
        assert "MPI_Isend" in reachable


class TestOpenfoam:
    def test_six_patchable_dsos(self, openfoam):
        assert set(openfoam.libraries) == set(DSOS)
        assert len(DSOS) == 6

    def test_validates(self, openfoam):
        openfoam.validate()

    def test_target_nodes_respected(self, openfoam):
        assert abs(openfoam.function_count() - 4000) < 400

    def test_solver_chain_matches_listing3(self, openfoam):
        """The deep single-caller chain of paper Listing 3 exists."""
        g = build_whole_program_cg(openfoam)
        for caller, callee in zip(SOLVER_CHAIN, SOLVER_CHAIN[1:]):
            assert g.has_edge(caller, callee)
            assert g.callers_of(callee) == {caller}

    def test_virtual_solver_interface(self, openfoam):
        overriders = openfoam.overriders_of("lduSolver_solve")
        assert len(overriders) >= 3

    def test_hidden_functions_exist_in_dsos_only(self, openfoam):
        hidden = [
            f for f in openfoam.functions()
            if f.visibility.value == "hidden"
        ]
        assert hidden
        exe_tus = set(openfoam.executable_tus())
        for fn in hidden:
            assert openfoam.tu_of(fn.name) not in exe_tus

    def test_hidden_functions_not_on_mpi_paths(self, openfoam):
        """Paper §VI-B(a): none of the unresolvable functions are
        selected by the evaluated ICs."""
        g = build_whole_program_cg(openfoam)
        mpi_reachers = g.reaching(
            [f.name for f in openfoam.functions() if f.is_mpi]
        )
        hidden = {
            f.name for f in openfoam.functions()
            if f.visibility.value == "hidden"
        }
        assert not (hidden & mpi_reachers)

    def test_amul_is_a_kernel(self, openfoam):
        amul = openfoam.function("Amul")
        assert amul.flops >= 10
        assert amul.loop_depth >= 1

    def test_startup_chain_reaches_mpi_init(self, openfoam):
        g = build_whole_program_cg(openfoam)
        assert "MPI_Init" in g.reachable_from(["argList_construct"])


class TestSpecs:
    def test_all_paper_specs_parse_and_run(self, openfoam):
        from repro.core.pipeline import run_spec
        from repro.core.spec.modules import load_spec

        g = build_whole_program_cg(openfoam)
        sizes = {}
        for name, source in PAPER_SPECS.items():
            result = run_spec(load_spec(source), g)
            sizes[name] = len(result.selected)
            assert result.selected, f"spec {name} selected nothing"
        # qualitative Table I orderings
        assert sizes["mpi"] > sizes["kernels"]
        assert sizes["mpi coarse"] < sizes["mpi"]
        assert sizes["kernels coarse"] <= sizes["kernels"]
