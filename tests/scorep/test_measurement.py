"""Unit tests for the Score-P measurement runtime."""

import pytest

from repro.errors import ScorePError
from repro.execution.clock import VirtualClock
from repro.scorep.filter import ScorePFilter
from repro.scorep.measurement import ScorePMeasurement
from repro.scorep.regions import flatten


def run_sequence(measurement, *events):
    for kind, name in events:
        if kind == "in":
            measurement.region_enter(name)
        else:
            measurement.region_exit(name)


@pytest.fixture
def meas():
    return ScorePMeasurement(clock=VirtualClock())


class TestCallTree:
    def test_nested_regions_build_call_paths(self, meas):
        run_sequence(
            meas,
            ("in", "main"), ("in", "solve"), ("out", "solve"), ("out", "main"),
        )
        meas.finalize()
        root = meas.profile()
        assert root.children["main"].children["solve"].visits == 1
        assert root.children["main"].children["solve"].path() == "main/solve"

    def test_inclusive_time_accumulates(self, meas):
        meas.region_enter("main")
        meas.clock.advance(1000)
        meas.region_exit("main")
        meas.finalize()
        assert meas.profile().children["main"].inclusive_cycles >= 1000

    def test_exclusive_excludes_children(self, meas):
        meas.region_enter("main")
        meas.region_enter("child")
        meas.clock.advance(500)
        meas.region_exit("child")
        meas.clock.advance(100)
        meas.region_exit("main")
        meas.finalize()
        main = meas.profile().children["main"]
        assert main.exclusive_cycles < main.inclusive_cycles

    def test_visits_counted_per_path(self, meas):
        for _ in range(3):
            run_sequence(meas, ("in", "main"), ("in", "f"), ("out", "f"), ("out", "main"))
        meas.finalize()
        assert meas.profile().children["main"].children["f"].visits == 3

    def test_unbalanced_exit_tolerated(self, meas):
        meas.region_exit("phantom")
        assert meas.unbalanced_exits == 1

    def test_profile_requires_finalize_when_open(self, meas):
        meas.region_enter("main")
        with pytest.raises(ScorePError):
            meas.profile()
        meas.finalize()
        meas.profile()

    def test_measurement_steals_cycles(self, meas):
        before = meas.clock.cycles
        run_sequence(meas, ("in", "a"), ("out", "a"))
        assert meas.clock.cycles > before


class TestRuntimeFiltering:
    def test_filtered_regions_not_recorded_but_cost_retained(self):
        filt = ScorePFilter.include_only(["keep"])
        m = ScorePMeasurement(clock=VirtualClock(), runtime_filter=filt)
        before = m.clock.cycles
        run_sequence(m, ("in", "drop"), ("out", "drop"), ("in", "keep"), ("out", "keep"))
        m.finalize()
        flat = flatten(m.profile())
        assert "keep" in flat
        assert "drop" not in flat
        assert m.filtered_events == 2
        # paper §II-B: probe + filter check cost retained
        assert m.clock.cycles > before

    def test_nested_under_filter(self):
        filt = ScorePFilter.include_only(["inner"])
        m = ScorePMeasurement(clock=VirtualClock(), runtime_filter=filt)
        run_sequence(
            m, ("in", "outer"), ("in", "inner"), ("out", "inner"), ("out", "outer")
        )
        m.finalize()
        flat = flatten(m.profile())
        assert flat["inner"].visits == 1


class TestFlatten:
    def test_flat_aggregates_across_paths(self, meas):
        run_sequence(
            meas,
            ("in", "a"), ("in", "x"), ("out", "x"), ("out", "a"),
            ("in", "b"), ("in", "x"), ("out", "x"), ("out", "b"),
        )
        meas.finalize()
        flat = flatten(meas.profile())
        assert flat["x"].visits == 2

    def test_recursion_not_double_counted(self, meas):
        meas.region_enter("rec")
        meas.clock.advance(100)
        meas.region_enter("rec")
        meas.clock.advance(100)
        meas.region_exit("rec")
        meas.region_exit("rec")
        meas.finalize()
        flat = flatten(meas.profile())
        outer = meas.profile().children["rec"].inclusive_cycles
        assert flat["rec"].inclusive_cycles == pytest.approx(outer)
        assert flat["rec"].visits == 2


class TestPmpiHook:
    def test_mpi_wrapper_counts(self, meas):
        extra = meas.on_mpi_call("MPI_Allreduce", 500.0)
        assert extra == meas.cost_model.scorep_mpi_wrapper
        assert meas.mpi_calls == 1
        assert meas.mpi_cycles == 500.0
        assert meas.estimate_extra() == extra
