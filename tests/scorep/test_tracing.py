"""Tests for Score-P tracing mode."""

import pytest

from repro.execution.clock import VirtualClock
from repro.scorep.tracing import (
    ScorePTracer,
    TraceEventKind,
    validate_trace,
)


@pytest.fixture
def tracer():
    return ScorePTracer(clock=VirtualClock())


class TestRecording:
    def test_events_timestamped_monotonically(self, tracer):
        tracer.enter("main")
        tracer.clock.advance(100)
        tracer.enter("solve")
        tracer.leave("solve")
        tracer.leave("main")
        events = tracer.all_events()
        stamps = [e.timestamp_cycles for e in events]
        assert stamps == sorted(stamps)
        assert [e.kind for e in events] == [
            TraceEventKind.ENTER,
            TraceEventKind.ENTER,
            TraceEventKind.LEAVE,
            TraceEventKind.LEAVE,
        ]

    def test_recording_costs_cycles(self, tracer):
        before = tracer.clock.cycles
        tracer.enter("x")
        assert tracer.clock.cycles > before

    def test_mpi_markers(self, tracer):
        tracer.enter("comm")
        tracer.mpi("MPI_Allreduce")
        tracer.leave("comm")
        kinds = [e.kind for e in tracer.all_events()]
        assert TraceEventKind.MPI in kinds

    def test_buffer_flushing(self):
        tracer = ScorePTracer(clock=VirtualClock(), buffer_size=4)
        for i in range(10):
            tracer.enter(f"r{i}")
        assert tracer.flush_count >= 2
        assert len(tracer.all_events()) == 10


class TestPersistence:
    def test_save_load_roundtrip(self, tracer, tmp_path):
        tracer.enter("main")
        tracer.mpi("MPI_Barrier")
        tracer.leave("main")
        path = tmp_path / "trace.jsonl"
        assert tracer.save(path) == 3
        loaded = ScorePTracer.load(path)
        assert loaded == tracer.all_events()


class TestValidation:
    def test_clean_trace(self, tracer):
        tracer.enter("a")
        tracer.enter("b")
        tracer.leave("b")
        tracer.leave("a")
        assert validate_trace(tracer.all_events()) == []

    def test_unbalanced_leave_detected(self, tracer):
        tracer.enter("a")
        tracer.leave("b")
        problems = validate_trace(tracer.all_events())
        assert any("unbalanced" in p for p in problems)
        assert any("unclosed" in p for p in problems)
