"""Tests for Score-P tracing mode."""

import pytest

from repro.execution.clock import VirtualClock
from repro.scorep.tracing import (
    RankedTraceEvent,
    ScorePTracer,
    TraceEvent,
    TraceEventKind,
    merge_streams,
    tag_events,
    validate_trace,
)


@pytest.fixture
def tracer():
    return ScorePTracer(clock=VirtualClock())


class TestRecording:
    def test_events_timestamped_monotonically(self, tracer):
        tracer.enter("main")
        tracer.clock.advance(100)
        tracer.enter("solve")
        tracer.leave("solve")
        tracer.leave("main")
        events = tracer.all_events()
        stamps = [e.timestamp_cycles for e in events]
        assert stamps == sorted(stamps)
        assert [e.kind for e in events] == [
            TraceEventKind.ENTER,
            TraceEventKind.ENTER,
            TraceEventKind.LEAVE,
            TraceEventKind.LEAVE,
        ]

    def test_recording_costs_cycles(self, tracer):
        before = tracer.clock.cycles
        tracer.enter("x")
        assert tracer.clock.cycles > before

    def test_mpi_markers(self, tracer):
        tracer.enter("comm")
        tracer.mpi("MPI_Allreduce")
        tracer.leave("comm")
        kinds = [e.kind for e in tracer.all_events()]
        assert TraceEventKind.MPI in kinds

    def test_buffer_flushing(self):
        tracer = ScorePTracer(clock=VirtualClock(), buffer_size=4)
        for i in range(10):
            tracer.enter(f"r{i}")
        assert tracer.flush_count >= 2
        assert len(tracer.all_events()) == 10


class TestPersistence:
    def test_save_load_roundtrip(self, tracer, tmp_path):
        tracer.enter("main")
        tracer.mpi("MPI_Barrier")
        tracer.leave("main")
        path = tmp_path / "trace.jsonl"
        assert tracer.save(path) == 3
        loaded = ScorePTracer.load(path)
        assert loaded == tracer.all_events()

    def test_roundtrip_preserves_kinds_and_timestamps_exactly(
        self, tracer, tmp_path
    ):
        tracer.enter("main")
        tracer.clock.advance(123.456)
        tracer.enter("solve")
        tracer.mpi("MPI_Allreduce")
        tracer.leave("solve")
        tracer.clock.advance(0.25)
        tracer.leave("main")
        path = tmp_path / "trace.jsonl"
        tracer.save(path)
        loaded = ScorePTracer.load(path)
        original = tracer.all_events()
        assert len(loaded) == len(original)
        assert [e.kind for e in loaded] == [e.kind for e in original]
        assert [e.region for e in loaded] == [e.region for e in original]
        # timestamps must survive bit-exactly (JSON floats round-trip)
        assert [e.timestamp_cycles for e in loaded] == [
            e.timestamp_cycles for e in original
        ]

    def test_roundtrip_across_buffer_flush_threshold(self, tmp_path):
        """A trace that flushed mid-run serialises flushed + live events
        in recording order, and the count survives exactly."""
        tracer = ScorePTracer(clock=VirtualClock(), buffer_size=8)
        for i in range(10):
            tracer.enter(f"r{i}")
            tracer.mpi("MPI_Barrier")
            tracer.leave(f"r{i}")
        assert tracer.flush_count >= 3
        assert tracer.events  # live tail not yet flushed
        path = tmp_path / "trace.jsonl"
        count = tracer.save(path)
        assert count == 30
        loaded = ScorePTracer.load(path)
        assert loaded == tracer.all_events()
        stamps = [e.timestamp_cycles for e in loaded]
        assert stamps == sorted(stamps)


class TestValidation:
    def test_clean_trace(self, tracer):
        tracer.enter("a")
        tracer.enter("b")
        tracer.leave("b")
        tracer.leave("a")
        assert validate_trace(tracer.all_events()) == []

    def test_unbalanced_leave_detected(self, tracer):
        tracer.enter("a")
        tracer.leave("b")
        problems = validate_trace(tracer.all_events())
        codes = {p.code for p in problems}
        assert any(code.startswith("unbalanced-leave") for code in codes)
        assert "unclosed-region" in codes

    def test_out_of_order_leave_resyncs_no_cascade(self, tracer):
        """Regression: one LEAVE of an outer region used to leave the
        mismatched frame on the stack forever, flooding the report with
        one spurious 'unclosed region' per open ancestor."""
        tracer.enter("main")
        tracer.enter("solve")
        tracer.enter("kernel")
        tracer.leave("main")  # the single defect: closes over 2 frames
        for i in range(5):  # clean traffic after the defect
            tracer.enter(f"r{i}")
            tracer.leave(f"r{i}")
        problems = validate_trace(tracer.all_events())
        assert len(problems) == 1
        assert problems[0].code == "unbalanced-leave-resync"
        assert problems[0].region == "main"
        assert "unbalanced LEAVE main" in str(problems[0])

    def test_stray_leave_still_single_report(self, tracer):
        """A LEAVE of a never-entered region reports once and does not
        disturb the surrounding balanced nesting."""
        tracer.enter("main")
        tracer.leave("ghost")
        tracer.enter("kernel")
        tracer.leave("kernel")
        tracer.leave("main")
        problems = validate_trace(tracer.all_events())
        assert [str(p) for p in problems] == ["unbalanced LEAVE ghost"]
        assert problems[0].code == "unbalanced-leave"
        assert problems[0].rank is None

    def test_each_unclosed_region_reported_once(self, tracer):
        tracer.enter("a")
        tracer.enter("b")
        problems = validate_trace(tracer.all_events())
        assert sorted(str(p) for p in problems) == [
            "unclosed region a",
            "unclosed region b",
        ]
        assert {p.code for p in problems} == {"unclosed-region"}


class TestRankTaggedStreams:
    def test_tag_events_preserves_payload(self):
        events = [
            TraceEvent(TraceEventKind.ENTER, "main", 1.0),
            TraceEvent(TraceEventKind.LEAVE, "main", 2.0),
        ]
        tagged = tag_events(3, events)
        assert all(ev.rank == 3 for ev in tagged)
        assert [ev.untagged() for ev in tagged] == events

    def test_merge_streams_orders_by_time_then_rank(self):
        a = tag_events(0, [TraceEvent(TraceEventKind.ENTER, "x", 1.0),
                           TraceEvent(TraceEventKind.LEAVE, "x", 5.0)])
        b = tag_events(1, [TraceEvent(TraceEventKind.ENTER, "y", 1.0),
                           TraceEvent(TraceEventKind.LEAVE, "y", 3.0)])
        merged = merge_streams([a, b])
        assert [(ev.timestamp_cycles, ev.rank) for ev in merged] == [
            (1.0, 0), (1.0, 1), (3.0, 1), (5.0, 0),
        ]

    def test_merge_streams_is_input_order_invariant(self):
        a = tag_events(0, [TraceEvent(TraceEventKind.ENTER, "x", 2.0)])
        b = tag_events(1, [TraceEvent(TraceEventKind.ENTER, "y", 1.0)])
        assert merge_streams([a, b]) == merge_streams([b, a])

    def test_ranked_event_is_hashable_value_object(self):
        ev = RankedTraceEvent(0, TraceEventKind.MPI, "MPI_Barrier", 7.0)
        assert ev == RankedTraceEvent(0, TraceEventKind.MPI, "MPI_Barrier", 7.0)
        assert hash(ev) == hash(
            RankedTraceEvent(0, TraceEventKind.MPI, "MPI_Barrier", 7.0)
        )
