"""Tests for filter files, scorep-score, resolution, profile IO."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FilterFormatError
from repro.scorep.filter import ScorePFilter
from repro.scorep.profile_io import from_dict, load, observed_edges, save, to_dict
from repro.scorep.regions import CallTreeNode, FlatRegion
from repro.scorep.score_tool import score_profile, suggest_filter


class TestFilterFormat:
    def test_roundtrip(self):
        filt = ScorePFilter.include_only(["a", "b", "c"])
        parsed = ScorePFilter.loads(filt.dumps())
        for name in ("a", "b", "c", "zzz"):
            assert parsed.is_included(name) == filt.is_included(name)

    def test_include_only_semantics(self):
        filt = ScorePFilter.include_only(["keep_me"])
        assert filt.is_included("keep_me")
        assert not filt.is_included("other")

    def test_last_matching_rule_wins(self):
        filt = ScorePFilter()
        filt.add(include=False, pattern="solve_*")
        filt.add(include=True, pattern="solve_special")
        assert not filt.is_included("solve_x")
        assert filt.is_included("solve_special")

    def test_wildcards(self):
        filt = ScorePFilter()
        filt.add(include=False, pattern="MPI_*")
        assert not filt.is_included("MPI_Send")
        assert filt.is_included("compute")

    def test_default_include(self):
        assert ScorePFilter().is_included("anything")

    def test_bad_header_rejected(self):
        with pytest.raises(FilterFormatError):
            ScorePFilter.loads("INCLUDE foo")

    def test_missing_end_rejected(self):
        with pytest.raises(FilterFormatError):
            ScorePFilter.loads("SCOREP_REGION_NAMES_BEGIN\n INCLUDE a\n")

    def test_bad_line_rejected(self):
        text = "SCOREP_REGION_NAMES_BEGIN\n FROB x\nSCOREP_REGION_NAMES_END"
        with pytest.raises(FilterFormatError):
            ScorePFilter.loads(text)

    def test_comments_and_blanks_ignored(self):
        text = (
            "# a comment\nSCOREP_REGION_NAMES_BEGIN\n\n"
            "  INCLUDE foo\nSCOREP_REGION_NAMES_END\n"
        )
        filt = ScorePFilter.loads(text)
        assert filt.included_names() == ["foo"]

    def test_file_roundtrip(self, tmp_path):
        filt = ScorePFilter.include_only(["x"])
        path = tmp_path / "f.filter"
        filt.dump(path)
        assert ScorePFilter.load(path).is_included("x")


names_st = st.sets(
    st.text(alphabet="abcdefgh_", min_size=1, max_size=8), max_size=12
)


@given(names=names_st)
def test_filter_roundtrip_property(names):
    filt = ScorePFilter.include_only(names)
    parsed = ScorePFilter.loads(filt.dumps())
    assert set(parsed.included_names()) == names
    for n in names:
        assert parsed.is_included(n)
    assert not parsed.is_included("@@not-a-function@@")


class TestScoreTool:
    def make_flat(self):
        return {
            "hot_tiny": FlatRegion("hot_tiny", visits=1_000_000, inclusive_cycles=2e6),
            "big_kernel": FlatRegion("big_kernel", visits=10, inclusive_cycles=1e9),
        }

    def test_scoring_ranks_offenders_first(self):
        entries = score_profile(self.make_flat())
        assert entries[0].name == "hot_tiny"
        assert entries[0].overhead_ratio > entries[1].overhead_ratio

    def test_suggest_filter_excludes_offenders(self):
        filt = suggest_filter(self.make_flat(), max_overhead_ratio=0.1)
        assert not filt.is_included("hot_tiny")
        assert filt.is_included("big_kernel")


class TestProfileIo:
    def make_tree(self):
        root = CallTreeNode("ROOT")
        main = root.child("main")
        main.visits = 1
        main.inclusive_cycles = 1000.0
        solve = main.child("solve")
        solve.visits = 5
        solve.inclusive_cycles = 800.0
        return root

    def test_roundtrip(self, tmp_path):
        root = self.make_tree()
        path = tmp_path / "profile.json"
        save(root, path)
        loaded = load(path)
        assert to_dict(loaded) == to_dict(root)

    def test_observed_edges(self):
        root = self.make_tree()
        assert observed_edges(root) == [("main", "solve")]

    def test_from_dict_parents_wired(self):
        root = from_dict(to_dict(self.make_tree()))
        solve = root.children["main"].children["solve"]
        assert solve.parent.name == "main"
