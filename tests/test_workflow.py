"""Tests for the high-level workflow facade."""

import pytest

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.workload import Workload
from repro.workflow import build_app, run_app
from tests.conftest import make_demo_builder

WL = Workload(site_cap=4)


@pytest.fixture(scope="module")
def demo_app():
    return build_app(make_demo_builder().build())


@pytest.fixture(scope="module")
def demo_ic(demo_app):
    return InstrumentationConfig(functions=frozenset({"kernel", "solve"}))


class TestBuildApp:
    def test_graph_built_automatically(self, demo_app):
        assert len(demo_app.graph) == demo_app.program.function_count()

    def test_vanilla_build_has_no_sleds(self):
        vanilla = build_app(make_demo_builder().build(), xray=False)
        assert vanilla.linked.total_sled_count() == 0

    def test_graph_reuse(self, demo_app):
        again = build_app(demo_app.program, xray=False, graph=demo_app.graph)
        assert again.graph is demo_app.graph


class TestRunAppValidation:
    def test_ic_mode_requires_ic(self, demo_app):
        with pytest.raises(CapiError):
            run_app(demo_app, mode="ic", ic=None)

    def test_other_modes_reject_ic(self, demo_app, demo_ic):
        with pytest.raises(CapiError):
            run_app(demo_app, mode="full", ic=demo_ic)


class TestRunAppModes:
    def test_vanilla_mode(self, demo_ic):
        vanilla = build_app(make_demo_builder().build(), xray=False)
        out = run_app(vanilla, mode="vanilla", workload=WL)
        assert out.startup is None
        assert out.result.t_init == 0.0
        assert out.result.patched_functions == 0

    def test_inactive_mode(self, demo_app):
        out = run_app(demo_app, mode="inactive", workload=WL)
        assert out.startup is not None
        assert out.startup.patched_functions == 0
        assert out.startup.registered_dsos == 1

    def test_full_mode_none_tool(self, demo_app):
        out = run_app(demo_app, mode="full", tool="none", workload=WL)
        assert out.startup.patched_functions > 0
        assert out.bridge is not None
        assert out.scorep_profile is None
        assert out.talp_report is None

    def test_ic_mode_scorep(self, demo_app, demo_ic):
        out = run_app(demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL)
        assert out.scorep_profile is not None
        assert out.startup.patched_functions == 2
        assert out.measurement is not None
        assert out.measurement.mpi_calls > 0  # PMPI interception active

    def test_ic_mode_talp(self, demo_app, demo_ic):
        out = run_app(demo_app, mode="ic", tool="talp", ic=demo_ic, workload=WL)
        assert out.talp_report is not None
        assert out.monitor is not None
        names = {m.region for m in out.talp_report.metrics}
        assert "kernel" in names

    def test_ranks_propagate(self, demo_app, demo_ic):
        out = run_app(demo_app, mode="ic", tool="talp", ic=demo_ic, ranks=8, workload=WL)
        assert out.world.size == 8
        assert out.talp_report.world_size == 8

    def test_deterministic_results(self, demo_app, demo_ic):
        a = run_app(demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL)
        b = run_app(demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL)
        assert a.result.t_total == b.result.t_total
        assert a.result.entry_events == b.result.entry_events

    def test_tracing_mode(self, demo_app, demo_ic, tmp_path):
        from repro.scorep.tracing import TraceEventKind, validate_trace

        out = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL,
            tracing=True,
        )
        assert out.tracer is not None
        events = out.tracer.all_events()
        assert events
        kinds = {e.kind for e in events}
        assert TraceEventKind.ENTER in kinds
        assert TraceEventKind.MPI in kinds
        # traces of instrumented runs are well-formed
        assert validate_trace([e for e in events if e.kind is not TraceEventKind.MPI]) == []
        # tracing costs extra time over plain profiling
        plain = run_app(
            demo_app, mode="ic", tool="scorep", ic=demo_ic, workload=WL
        )
        assert out.result.t_total > plain.result.t_total
        path = tmp_path / "trace.jsonl"
        out.tracer.save(path)
        assert path.exists()

    def test_tracing_needs_scorep_on_every_path(self, demo_app, demo_ic):
        """tracing with a non-scorep tool fails loudly on the single-rank
        path, matching the multi-rank path (it used to be silently
        ignored here but rejected there)."""
        with pytest.raises(CapiError, match="scorep"):
            run_app(
                demo_app, mode="ic", tool="talp", ic=demo_ic, workload=WL,
                tracing=True,
            )

    def test_tracing_rejected_in_toolless_modes(self, demo_app):
        """vanilla/inactive never install a measurement tool, so a
        requested trace could only ever come back empty — reject it
        instead of silently returning tracer=None."""
        for mode in ("vanilla", "inactive"):
            with pytest.raises(CapiError, match="never installs one"):
                run_app(
                    demo_app, mode=mode, tool="scorep", workload=WL,
                    tracing=True,
                )

    def test_mpi_trace_marker_estimate_matches_walked_cost(self):
        """Regression: estimate_extra() returned 0.0 while tracer.mpi()
        really advances the clock by TRACE_EVENT_EXTRA per MPI event, so
        analytic charging undercounted tracing cost."""
        from repro.execution.clock import VirtualClock
        from repro.scorep.tracing import TRACE_EVENT_EXTRA, ScorePTracer
        from repro.workflow import _MpiTraceMarker

        marker = _MpiTraceMarker(ScorePTracer(clock=VirtualClock()))
        before = marker.tracer.clock.now()
        # the walked path: clock advanced in-line, nothing extra reported
        assert marker.on_mpi_call("MPI_Barrier", 100.0) == 0.0
        walked_cost = marker.tracer.clock.now() - before
        assert walked_cost == TRACE_EVENT_EXTRA
        # the analytic estimate must mirror exactly that cost
        assert marker.estimate_extra() == walked_cost

    def test_config_name_recorded(self, demo_app, demo_ic):
        out = run_app(
            demo_app, mode="ic", ic=demo_ic, config_name="my-config", workload=WL
        )
        assert out.result.config_name == "my-config"
