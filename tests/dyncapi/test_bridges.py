"""Unit tests for the Score-P and TALP DynCaPI bridges."""

import pytest

from repro.core.ic import InstrumentationConfig
from repro.dyncapi.handlers import CygProfileDispatcher
from repro.dyncapi.runtime import DynCapi
from repro.dyncapi.scorep_bridge import ScorePBridge
from repro.dyncapi.talp_bridge import TalpBridge
from repro.execution.clock import VirtualClock
from repro.program.loader import DynamicLoader
from repro.scorep.measurement import ScorePMeasurement
from repro.simmpi.world import MpiWorld
from repro.talp.dlb import DlbLibrary
from repro.talp.monitor import TalpMonitor
from repro.xray.runtime import XRayRuntime
from repro.xray.trampoline import EventType


@pytest.fixture
def started(demo_linked):
    loader = DynamicLoader()
    loader.load_program(demo_linked)
    clock = VirtualClock()
    dyn = DynCapi(xray=XRayRuntime(loader.image), loader=loader, clock=clock)
    dyn.startup(ic=None)
    return dyn, loader, clock


def fire_function(dyn, name):
    packed = dyn.id_names.id_of(name)
    if packed is None:  # hidden functions have no nm-derived mapping
        for candidate in dyn.xray.packed_ids():
            if dyn.xray.function_name(candidate) == name:
                packed = candidate
                break
    obj = dyn.xray.object(packed.object_id)
    for sled in obj.sleds_of(packed.function_id):
        dyn.xray.fire_sled(sled.address)


class TestCygDispatcher:
    def test_addresses_delivered(self, started):
        dyn, loader, clock = started
        seen = []
        dispatcher = CygProfileDispatcher(
            runtime=dyn.xray,
            clock=clock,
            on_enter=lambda addr: seen.append(("in", addr)),
            on_exit=lambda addr: seen.append(("out", addr)),
        )
        dyn.xray.set_handler(dispatcher.handler)
        fire_function(dyn, "kernel")
        assert [k for k, _ in seen] == ["in", "out"]
        addr = seen[0][1]
        assert loader.loaded["demo"].region.contains(addr)
        assert dispatcher.events == 2


class TestScorePBridge:
    def make_bridge(self, started, inject=True):
        dyn, loader, clock = started
        measurement = ScorePMeasurement(clock=clock)
        bridge = ScorePBridge(
            runtime=dyn.xray,
            loader=loader,
            measurement=measurement,
            clock=clock,
        )
        if inject:
            bridge.inject_dso_symbols()
        dyn.xray.set_handler(bridge.handler)
        return dyn, bridge, measurement

    def test_exe_functions_always_resolve(self, started):
        dyn, bridge, measurement = self.make_bridge(started, inject=False)
        fire_function(dyn, "kernel")
        measurement.finalize()
        assert "kernel" in measurement.profile().children

    def test_dso_functions_need_injection(self, started):
        dyn, bridge, measurement = self.make_bridge(started, inject=False)
        fire_function(dyn, "lib_helper")
        assert bridge.unresolved_events == 2
        measurement.finalize()
        names = set(measurement.profile().children)
        assert any(n.startswith("UNKNOWN@") for n in names)

    def test_injection_restores_dso_names(self, started):
        dyn, bridge, measurement = self.make_bridge(started, inject=True)
        fire_function(dyn, "lib_helper")
        assert bridge.unresolved_events == 0
        measurement.finalize()
        assert "lib_helper" in measurement.profile().children

    def test_injection_count(self, started):
        dyn, bridge, _ = self.make_bridge(started, inject=False)
        count = bridge.inject_dso_symbols()
        assert count > 0


class TestTalpBridge:
    def make_bridge(self, started, *, init_mpi=True):
        dyn, loader, clock = started
        world = MpiWorld()
        if init_mpi:
            world.init()
        monitor = TalpMonitor(clock=clock, world=world)
        bridge = TalpBridge(
            dlb=DlbLibrary(monitor), id_names=dyn.id_names, clock=clock
        )
        dyn.xray.set_handler(bridge.handler)
        return dyn, bridge, monitor

    def test_regions_registered_lazily(self, started):
        dyn, bridge, monitor = self.make_bridge(started)
        assert bridge.registered_count == 0
        fire_function(dyn, "kernel")
        assert bridge.registered_count == 1
        assert monitor.region_by_name("kernel").visits == 1

    def test_pre_init_entry_not_recorded(self, started):
        dyn, bridge, monitor = self.make_bridge(started, init_mpi=False)
        fire_function(dyn, "kernel")
        assert "kernel" in bridge.failed_registrations
        assert monitor.region_by_name("kernel") is None

    def test_retry_after_mpi_init(self, started):
        dyn, bridge, monitor = self.make_bridge(started, init_mpi=False)
        fire_function(dyn, "kernel")
        monitor.world.init()
        fire_function(dyn, "kernel")
        assert bridge.registered_count == 1
        assert "kernel" not in bridge.failed_registrations

    def test_unnamed_hidden_functions_skipped(self, started):
        """Events for unnameable (hidden) ids are dropped defensively.

        DynCaPI never patches them itself; this simulates a stale id
        map (e.g. after a dlopen raced the mapping rebuild).
        """
        dyn, bridge, monitor = self.make_bridge(started)
        for candidate in dyn.xray.packed_ids():
            if dyn.xray.function_name(candidate) == "lib_hidden":
                if not dyn.xray.is_patched(candidate):
                    dyn.xray.patch_function(candidate)
        fire_function(dyn, "lib_hidden")
        assert bridge.unnamed_events == 2
        assert bridge.registered_count == 0

    def test_region_bug_counted(self, started):
        dyn, bridge, monitor = self.make_bridge(started)
        monitor.bug_threshold = 0
        monitor.bug_modulus = 1  # every region affected
        fire_function(dyn, "kernel")
        assert "kernel" in bridge.failed_entries
