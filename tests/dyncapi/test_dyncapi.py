"""Tests for DynCaPI: symbols, id mapping, startup patching, repatch."""

import os

import pytest

from repro.core.ic import IC_ENV_VAR, InstrumentationConfig
from repro.dyncapi.runtime import DynCapi
from repro.dyncapi.symbols import build_id_name_map, collect_object_symbols
from repro.execution.clock import VirtualClock
from repro.program.loader import DynamicLoader
from repro.xray.runtime import XRayRuntime


@pytest.fixture
def env(demo_linked):
    loader = DynamicLoader()
    loader.load_program(demo_linked)
    clock = VirtualClock()
    xray = XRayRuntime(loader.image)
    return DynCapi(xray=xray, loader=loader, clock=clock), loader, clock


class TestSymbolCollection:
    def test_exe_symbols_include_hidden(self, env):
        dyn, loader, _ = env
        exe = loader.loaded["demo"]
        names = {t.name for t in collect_object_symbols(exe)}
        assert "main" in names

    def test_dso_symbols_exclude_hidden(self, env):
        dyn, loader, _ = env
        dso = loader.loaded["libdemo.so"]
        names = {t.name for t in collect_object_symbols(dso)}
        assert "lib_helper" in names
        assert "lib_hidden" not in names

    def test_addresses_translated_to_load_base(self, env):
        dyn, loader, _ = env
        dso = loader.loaded["libdemo.so"]
        for triple in collect_object_symbols(dso):
            assert dso.region.contains(triple.address)


class TestIdNameMap:
    def test_hidden_dso_functions_unresolved(self, env):
        dyn, loader, _ = env
        report = dyn.startup(ic=None)
        id_map = dyn.id_names
        unresolved_names = set()
        for packed in id_map.unresolved:
            obj = dyn.xray.object(packed.object_id)
            unresolved_names.add(obj.function_names[packed.function_id])
        assert "lib_hidden" in unresolved_names
        assert "lib_init" in unresolved_names
        assert report.unresolved_ids == len(unresolved_names)

    def test_visible_functions_resolve_bidirectionally(self, env):
        dyn, loader, _ = env
        dyn.startup(ic=None)
        packed = dyn.id_names.id_of("lib_helper")
        assert packed is not None
        assert packed.object_id == 1
        assert dyn.id_names.name_of(packed) == "lib_helper"

    def test_standalone_builder(self, env):
        dyn, loader, _ = env
        dyn.startup(ic=None)
        rebuilt = build_id_name_map(dyn.xray, loader)
        assert rebuilt.names == dyn.id_names.names


class TestStartup:
    def test_full_patching(self, env):
        dyn, loader, _ = env
        report = dyn.startup(ic=None)
        assert report.registered_dsos == 1
        # hidden functions cannot be patched (unnameable)
        assert report.patched_functions == len(dyn.id_names.names)
        assert report.patched_sleds == 2 * report.patched_functions

    def test_ic_filtered_patching(self, env):
        dyn, loader, _ = env
        ic = InstrumentationConfig(functions=frozenset({"kernel", "lib_helper"}))
        report = dyn.startup(ic=ic)
        assert report.patched_functions == 2
        assert report.skipped_not_in_ic > 0
        assert dyn.xray.patched_count() == 2

    def test_missing_in_binary_reported(self, env):
        """An IC naming a fully inlined function (or a typo) is flagged."""
        dyn, loader, _ = env
        ic = InstrumentationConfig(functions=frozenset({"tiny", "kernel"}))
        report = dyn.startup(ic=ic)
        assert "tiny" in report.missing_in_binary

    def test_init_cycles_accumulate(self, env):
        dyn, loader, clock = env
        report = dyn.startup(ic=None, tool_init_cycles=12345.0)
        assert report.init_cycles >= 12345.0
        assert clock.cycles == report.init_cycles

    def test_ic_from_environment(self, env, tmp_path):
        dyn, loader, _ = env
        ic = InstrumentationConfig(functions=frozenset({"kernel"}))
        path = tmp_path / "env.filter"
        ic.dump_filter(path)
        os.environ[IC_ENV_VAR] = str(path)
        try:
            report = dyn.startup()
            assert report.patched_functions == 1
        finally:
            del os.environ[IC_ENV_VAR]

    def test_startup_inactive_patches_nothing(self, env):
        dyn, loader, _ = env
        report = dyn.startup_inactive()
        assert report.patched_functions == 0
        assert dyn.xray.patched_count() == 0
        assert report.init_cycles > 0


class TestRepatch:
    def test_repatch_switches_selection_without_rebuild(self, env):
        """The paper's headline: adjust the IC in seconds, no recompile."""
        dyn, loader, _ = env
        dyn.startup(ic=InstrumentationConfig(functions=frozenset({"kernel"})))
        assert dyn.xray.patched_count() == 1
        report = dyn.repatch(InstrumentationConfig(functions=frozenset({"solve", "wrap1"})))
        assert report.patched_functions == 2
        assert dyn.xray.patched_count() == 2
        names_patched = {
            dyn.id_names.name_of(p)
            for p in dyn.xray.packed_ids()
            if dyn.xray.is_patched(p)
        }
        assert names_patched == {"solve", "wrap1"}

    def test_repatch_much_cheaper_than_rebuild(self, env, demo_program):
        from repro.core.static_inst import StaticInstrumenter
        from repro.execution.clock import CYCLES_PER_SECOND

        dyn, loader, clock = env
        dyn.startup(ic=InstrumentationConfig(functions=frozenset({"kernel"})))
        report = dyn.repatch(InstrumentationConfig(functions=frozenset({"solve"})))
        repatch_seconds = report.init_cycles / CYCLES_PER_SECOND
        rebuild_seconds = StaticInstrumenter(
            program=demo_program
        ).rebuild_cost_seconds()
        assert repatch_seconds < rebuild_seconds / 100


class TestDlopen:
    def test_late_loaded_dso_registered_and_patched(self, demo_linked):
        loader = DynamicLoader()
        loader.load(demo_linked.executable)
        clock = VirtualClock()
        dyn = DynCapi(xray=XRayRuntime(loader.image), loader=loader, clock=clock)
        dyn.startup(ic=None)
        before = dyn.xray.patched_count()
        lo = loader.dlopen(demo_linked.dsos[0])
        object_id = dyn.dlopen_dso(lo, None)
        assert object_id == 1
        assert dyn.xray.patched_count() > before
