"""Unit tests for the XRay runtime with multi-object support."""

import pytest

from repro.errors import (
    ObjectRegistrationError,
    PatchingError,
    TrampolineRelocationError,
    XRayError,
)
from repro.program.compiler import Compiler, CompilerConfig
from repro.program.linker import Linker
from repro.program.loader import DynamicLoader
from repro.xray.dso import XRayDsoRuntime
from repro.xray.ids import PackedId
from repro.xray.runtime import XRayRuntime
from repro.xray.sled import SledKind, SledRecord
from repro.xray.trampoline import EventType, TrampolineTable
from tests.conftest import make_demo_builder


@pytest.fixture
def wired(demo_linked):
    loader = DynamicLoader()
    objs = loader.load_program(demo_linked)
    rt = XRayRuntime(loader.image)
    exe = objs[0]
    rt.init_main_executable(
        exe.binary.name, exe.base, exe.binary.sled_records, exe.binary.function_ids
    )
    dso_rt = XRayDsoRuntime(rt)
    for lo in objs[1:]:
        dso_rt.on_load(lo)
    return rt, dso_rt, loader, objs


class TestRegistration:
    def test_main_executable_is_object_zero(self, wired):
        rt, *_ = wired
        assert rt.object_id_of("demo") == 0

    def test_dso_ids_start_at_one(self, wired):
        rt, *_ = wired
        assert rt.object_id_of("libdemo.so") == 1

    def test_double_init_rejected(self, wired):
        rt, _, _, objs = wired
        exe = objs[0]
        with pytest.raises(ObjectRegistrationError):
            rt.init_main_executable(
                exe.binary.name, exe.base, [], {}
            )

    def test_duplicate_dso_rejected(self, wired):
        rt, dso_rt, _, objs = wired
        with pytest.raises(ObjectRegistrationError):
            dso_rt.on_load(objs[1])

    def test_deregister_removes_object(self, wired):
        rt, dso_rt, *_ = wired
        dso_rt.on_unload("libdemo.so")
        with pytest.raises(XRayError):
            rt.object_id_of("libdemo.so")

    def test_deregister_main_rejected(self, wired):
        rt, *_ = wired
        with pytest.raises(ObjectRegistrationError):
            rt.deregister_object(0)

    def test_function_id_over_24_bits_rejected(self, wired):
        rt, *_ = wired
        tramps = rt.trampolines.create_pair("fake.so", pic=True)
        with pytest.raises(ObjectRegistrationError, match="24-bit"):
            rt.register_dso(
                "fake.so",
                0x7000000,
                [],
                {2**24: "too_big"},
                tramps,
            )

    def test_dso_limit_255(self):
        """Registering a 256th DSO must fail (8-bit object id)."""
        img_rt = XRayRuntime(memory=None)  # type: ignore[arg-type]
        for i in range(255):
            tramps = img_rt.trampolines.create_pair(f"lib{i}.so", pic=True)
            img_rt.register_dso(f"lib{i}.so", 0x1000 * (i + 1), [], {}, tramps)
        tramps = img_rt.trampolines.create_pair("lib255.so", pic=True)
        with pytest.raises(ObjectRegistrationError, match="255"):
            img_rt.register_dso("lib255.so", 0xFFFF000, [], {}, tramps)


class TestPatchingApi:
    def test_patch_all_and_counts(self, wired):
        rt, *_ = wired
        sleds = rt.patch_all()
        assert sleds == 2 * len(rt.packed_ids())
        assert rt.patched_count() == len(rt.packed_ids())

    def test_patch_function_in_dso(self, wired):
        rt, *_ = wired
        dso_obj = rt.object(1)
        fid = next(iter(dso_obj.function_names))
        packed = PackedId(1, fid)
        assert rt.patch_function(packed) == 2
        assert rt.is_patched(packed)
        rt.unpatch_function(packed)
        assert not rt.is_patched(packed)

    def test_patch_unknown_function_id(self, wired):
        rt, *_ = wired
        with pytest.raises(PatchingError):
            rt.patch_function(PackedId(0, 9999))

    def test_unpatch_all_roundtrip(self, wired):
        rt, *_ = wired
        rt.patch_all()
        rt.unpatch_all()
        assert rt.patched_count() == 0


class TestEventDispatch:
    def test_fire_unpatched_sled_is_noop(self, wired):
        rt, *_ = wired
        events = []
        rt.set_handler(lambda pid, et: events.append((pid, et)))
        obj = rt.object(0)
        assert rt.fire_sled(obj.sleds[0].address) is False
        assert events == []

    def test_fire_patched_sled_reaches_handler(self, wired):
        rt, *_ = wired
        events = []
        rt.set_handler(lambda pid, et: events.append((pid, et)))
        fid = next(iter(rt.object(0).function_names))
        packed = PackedId(0, fid)
        rt.patch_function(packed)
        for sled in rt.object(0).sleds_of(fid):
            rt.fire_sled(sled.address)
        assert (packed, EventType.ENTRY) in events
        assert (packed, EventType.EXIT) in events

    def test_dso_events_carry_object_id(self, wired):
        rt, *_ = wired
        events = []
        rt.set_handler(lambda pid, et: events.append(pid))
        rt.patch_all()
        fid = next(iter(rt.object(1).function_names))
        for sled in rt.object(1).sleds_of(fid):
            rt.fire_sled(sled.address)
        assert all(pid.object_id == 1 for pid in events)

    def test_function_address_and_name(self, wired):
        rt, _, loader, objs = wired
        fid = next(iter(rt.object(1).function_names))
        packed = PackedId(1, fid)
        addr = rt.function_address(packed)
        assert objs[1].region.contains(addr)
        assert rt.function_name(packed) == rt.object(1).function_names[fid]


class TestPicTrampolines:
    def test_non_pic_dso_faults_on_event(self):
        """Paper §V-B.2: without the GOT-relative fix, relocated DSO
        trampolines crash on first use."""
        program = make_demo_builder().build()
        compiled = Compiler(CompilerConfig(pic=False)).compile(program)
        linked = Linker().link(compiled)
        loader = DynamicLoader()
        objs = loader.load_program(linked)
        rt = XRayRuntime(loader.image)
        exe = objs[0]
        rt.init_main_executable(
            exe.binary.name, exe.base, exe.binary.sled_records, exe.binary.function_ids
        )
        dso_rt = XRayDsoRuntime(rt)
        dso_rt.on_load(objs[1])
        rt.set_handler(lambda pid, et: None)
        rt.patch_all()
        dso_obj = rt.object(1)
        with pytest.raises(TrampolineRelocationError, match="-fPIC"):
            rt.fire_sled(dso_obj.sleds[0].address)

    def test_executable_trampolines_never_fault(self, wired):
        rt, *_ = wired
        rt.set_handler(lambda pid, et: None)
        rt.patch_all()
        for sled in rt.object(0).sleds:
            rt.fire_sled(sled.address)  # must not raise


class TestTrampolineTable:
    def test_pair_creation_and_removal(self):
        table = TrampolineTable()
        e, x = table.create_pair("a.so", pic=True)
        assert len(table) == 2
        assert e.event_type is EventType.ENTRY
        assert x.event_type is EventType.EXIT
        table.remove_object("a.so")
        assert len(table) == 0


def test_sled_record_is_frozen():
    rec = SledRecord(0, SledKind.ENTRY, "f", 1)
    with pytest.raises(AttributeError):
        rec.offset = 5  # type: ignore[misc]
