"""Unit + property tests for packed ids (paper Fig. 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PackedIdError
from repro.xray.ids import (
    MAIN_EXECUTABLE_OBJECT_ID,
    MAX_DSOS,
    MAX_FUNCTION_ID,
    MAX_OBJECT_ID,
    PackedId,
)


class TestLimits:
    def test_paper_limits(self):
        """8 bits → 255 DSOs; 24 bits → ~16.7M functions (paper §V-B.1)."""
        assert MAX_DSOS == 255
        assert MAX_FUNCTION_ID == 16_777_215

    def test_object_id_out_of_range(self):
        with pytest.raises(PackedIdError):
            PackedId(256, 0)
        with pytest.raises(PackedIdError):
            PackedId(-1, 0)

    def test_function_id_out_of_range(self):
        with pytest.raises(PackedIdError):
            PackedId(0, MAX_FUNCTION_ID + 1)

    def test_unpack_too_wide(self):
        with pytest.raises(PackedIdError):
            PackedId.unpack(1 << 32)
        with pytest.raises(PackedIdError):
            PackedId.unpack(-1)


class TestBackwardsCompatibility:
    def test_main_executable_packed_id_equals_function_id(self):
        """Object id 0 keeps packed ids identical to plain function ids —
        the compatibility property the paper calls out explicitly."""
        for fid in (0, 1, 12345, MAX_FUNCTION_ID):
            assert PackedId(MAIN_EXECUTABLE_OBJECT_ID, fid).pack() == fid

    def test_dso_ids_are_distinct_from_executable_ids(self):
        assert PackedId(1, 5).pack() != PackedId(0, 5).pack()


@given(
    object_id=st.integers(0, MAX_OBJECT_ID),
    function_id=st.integers(0, MAX_FUNCTION_ID),
)
def test_pack_unpack_roundtrip(object_id, function_id):
    packed = PackedId(object_id, function_id)
    assert PackedId.unpack(packed.pack()) == packed


@given(value=st.integers(0, (1 << 32) - 1))
def test_unpack_pack_roundtrip(value):
    assert PackedId.unpack(value).pack() == value


@given(
    a=st.tuples(st.integers(0, MAX_OBJECT_ID), st.integers(0, MAX_FUNCTION_ID)),
    b=st.tuples(st.integers(0, MAX_OBJECT_ID), st.integers(0, MAX_FUNCTION_ID)),
)
def test_packing_is_injective(a, b):
    pa, pb = PackedId(*a), PackedId(*b)
    if a != b:
        assert pa.pack() != pb.pack()
    else:
        assert pa.pack() == pb.pack()


def test_int_conversion_and_flags():
    pid = PackedId(3, 7)
    assert int(pid) == (3 << 24) | 7
    assert not pid.is_main_executable
    assert PackedId(0, 7).is_main_executable
