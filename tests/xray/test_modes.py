"""Tests for the XRay built-in modes (basic logging + accounting)."""

import pytest

from repro.execution.clock import VirtualClock
from repro.xray.ids import PackedId
from repro.xray.modes import AccountingMode, BasicMode, TraceRecord
from repro.xray.trampoline import EventType


@pytest.fixture
def clock():
    return VirtualClock()


def feed(mode, clock, *events):
    """events: (object_id, fn_id, 'entry'|'exit', advance_cycles)"""
    for oid, fid, kind, adv in events:
        clock.advance(adv)
        mode.handler(
            PackedId(oid, fid),
            EventType.ENTRY if kind == "entry" else EventType.EXIT,
        )


class TestBasicMode:
    def test_records_in_order(self, clock):
        mode = BasicMode(clock=clock)
        feed(mode, clock, (0, 1, "entry", 10), (0, 1, "exit", 20))
        assert [r.event for r in mode.records] == ["entry", "exit"]
        assert mode.records[0].timestamp_cycles == 10
        assert mode.records[1].timestamp_cycles == 30

    def test_buffer_drops_oldest(self, clock):
        mode = BasicMode(clock=clock, buffer_size=3)
        for i in range(5):
            feed(mode, clock, (0, i + 1, "entry", 1))
        assert len(mode.records) == 3
        assert mode.dropped == 2
        # the oldest were dropped
        assert PackedId.unpack(mode.records[0].packed_id).function_id == 3

    def test_flush_and_load_roundtrip(self, clock, tmp_path):
        mode = BasicMode(clock=clock)
        feed(mode, clock, (1, 2, "entry", 5), (1, 2, "exit", 7))
        path = tmp_path / "xray.log"
        assert mode.flush(path) == 2
        loaded = BasicMode.load(path)
        assert loaded == mode.records
        assert isinstance(loaded[0], TraceRecord)

    def test_installable_as_runtime_handler(self, demo_linked):
        from repro.program.loader import DynamicLoader
        from repro.xray.runtime import XRayRuntime

        loader = DynamicLoader()
        objs = loader.load_program(demo_linked)
        rt = XRayRuntime(loader.image)
        exe = objs[0]
        rt.init_main_executable(
            exe.binary.name, exe.base, exe.binary.sled_records, exe.binary.function_ids
        )
        clock = VirtualClock()
        mode = BasicMode(clock=clock)
        rt.set_handler(mode.handler)
        rt.patch_all()
        for sled in rt.object(0).sleds:
            rt.fire_sled(sled.address)
        assert len(mode.records) == len(rt.object(0).sleds)


class TestAccountingMode:
    def test_latency_attribution(self, clock):
        mode = AccountingMode(clock=clock)
        feed(
            mode, clock,
            (0, 1, "entry", 0),
            (0, 2, "entry", 10),   # nested
            (0, 2, "exit", 50),    # fn2 inclusive = 50
            (0, 1, "exit", 40),    # fn1 inclusive = 100
        )
        acc1 = mode.accounts[PackedId(0, 1).pack()]
        acc2 = mode.accounts[PackedId(0, 2).pack()]
        assert acc2.total_cycles == pytest.approx(50)
        assert acc1.total_cycles == pytest.approx(100)

    def test_statistics(self, clock):
        mode = AccountingMode(clock=clock)
        for latency in (10, 30, 20):
            feed(mode, clock, (0, 7, "entry", 0), (0, 7, "exit", latency))
        acc = mode.accounts[PackedId(0, 7).pack()]
        assert acc.count == 3
        assert acc.min_cycles == 10
        assert acc.max_cycles == 30
        assert acc.mean_cycles == pytest.approx(20)

    def test_unbalanced_exit_counted(self, clock):
        mode = AccountingMode(clock=clock)
        feed(mode, clock, (0, 1, "exit", 5))
        assert mode.unbalanced == 1
        assert not mode.accounts

    def test_top_and_report(self, clock):
        mode = AccountingMode(clock=clock)
        feed(mode, clock, (0, 1, "entry", 0), (0, 1, "exit", 100))
        feed(mode, clock, (0, 2, "entry", 0), (0, 2, "exit", 10))
        top = mode.top(1)
        assert top[0].packed_id == PackedId(0, 1).pack()
        text = mode.report(resolve=lambda pid: f"fn{pid.function_id}")
        assert "fn1" in text
