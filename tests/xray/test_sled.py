"""Unit + property tests for sled byte encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xray.sled import (
    SLED_BYTES,
    UNPATCHED,
    decode_patch,
    encode_patch,
    is_patched,
)


class TestEncoding:
    def test_unpatched_decodes_to_none(self):
        assert decode_patch(UNPATCHED) is None
        assert not is_patched(UNPATCHED)

    def test_encode_size(self):
        assert len(encode_patch(1, 2)) == SLED_BYTES

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            decode_patch(b"\x90" * (SLED_BYTES - 1))

    def test_corrupt_magic_rejected(self):
        blob = b"\x00" + encode_patch(1, 2)[1:]
        with pytest.raises(ValueError):
            decode_patch(blob)


@given(function_id=st.integers(0, 2**32 - 1), trampoline_id=st.integers(0, 2**32 - 1))
def test_encode_decode_roundtrip(function_id, trampoline_id):
    blob = encode_patch(function_id, trampoline_id)
    assert len(blob) == SLED_BYTES
    assert decode_patch(blob) == (function_id, trampoline_id)
    assert is_patched(blob)
