"""Unit + property tests for sled patching through protected memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatchingError
from repro.program.memory import ProcessImage
from repro.xray.patching import SledPatcher
from repro.xray.sled import SLED_BYTES, UNPATCHED


@pytest.fixture
def patcher_and_addr():
    img = ProcessImage()
    region = img.map_region("text", 4096)
    addr = region.base + 64
    img.mprotect(addr, SLED_BYTES, writable=True)
    img.write(addr, UNPATCHED)
    img.mprotect(addr, SLED_BYTES, writable=False)
    return SledPatcher(img), addr, img


class TestPatching:
    def test_patch_writes_encoding(self, patcher_and_addr):
        patcher, addr, img = patcher_and_addr
        patcher.patch(addr, 42, 7)
        assert patcher.read_sled(addr) == (42, 7)
        assert patcher.stats.patched == 1

    def test_patch_restores_protection(self, patcher_and_addr):
        patcher, addr, img = patcher_and_addr
        patcher.patch(addr, 1, 1)
        assert not img.is_writable(addr)

    def test_double_patch_rejected(self, patcher_and_addr):
        patcher, addr, _ = patcher_and_addr
        patcher.patch(addr, 1, 1)
        with pytest.raises(PatchingError, match="already patched"):
            patcher.patch(addr, 2, 2)

    def test_unpatch_restores_nops(self, patcher_and_addr):
        patcher, addr, img = patcher_and_addr
        patcher.patch(addr, 9, 3)
        patcher.unpatch(addr)
        assert img.read(addr, SLED_BYTES) == UNPATCHED
        assert patcher.read_sled(addr) is None

    def test_unpatch_unpatched_rejected(self, patcher_and_addr):
        patcher, addr, _ = patcher_and_addr
        with pytest.raises(PatchingError, match="not patched"):
            patcher.unpatch(addr)

    def test_unmapped_address_raises_patching_error(self):
        patcher = SledPatcher(ProcessImage())
        with pytest.raises(PatchingError):
            patcher.patch(0xDEAD000, 1, 1)

    def test_mprotect_call_counting(self, patcher_and_addr):
        patcher, addr, _ = patcher_and_addr
        patcher.patch(addr, 1, 1)
        patcher.unpatch(addr)
        assert patcher.stats.mprotect_calls == 4


@settings(max_examples=30)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 2**31), st.integers(0, 255)), max_size=8
    )
)
def test_patch_unpatch_always_restores_original_bytes(ops):
    """Property: any patch/unpatch sequence leaves the image unchanged."""
    img = ProcessImage()
    region = img.map_region("text", 4096)
    addr = region.base + 128
    img.mprotect(addr, SLED_BYTES, writable=True)
    img.write(addr, UNPATCHED)
    img.mprotect(addr, SLED_BYTES, writable=False)
    before = img.read(region.base, 4096)
    patcher = SledPatcher(img)
    for fid, tid in ops:
        patcher.patch(addr, fid, tid)
        patcher.unpatch(addr)
    assert img.read(region.base, 4096) == before
