"""Integration tests: the full paper workflows end to end.

These run the complete pipeline — generate → compile/link → MetaCG →
CaPI selection → DynCaPI patching → simulated execution → measurement —
on a small openfoam-like instance, checking the behaviours the paper's
evaluation section reports.
"""

import pytest

from repro.apps import PAPER_SPECS, build_lulesh, build_openfoam
from repro.core import Capi
from repro.execution.workload import Workload
from repro.workflow import build_app, run_app

WL = Workload(site_cap=2, event_budget=50_000)


@pytest.fixture(scope="module")
def foam():
    program = build_openfoam(target_nodes=3000)
    app = build_app(program)
    vanilla = build_app(program, xray=False, graph=app.graph)
    capi = Capi(graph=app.graph, app_name="openfoam")
    ics = {
        name: capi.select(spec, spec_name=name, linked=app.linked).ic
        for name, spec in PAPER_SPECS.items()
    }
    return app, vanilla, ics


class TestDynamicWorkflow:
    def test_vanilla_vs_inactive(self, foam):
        app, vanilla, _ = foam
        v = run_app(vanilla, mode="vanilla", workload=WL).result
        i = run_app(app, mode="inactive", workload=WL).result
        assert i.t_total == pytest.approx(v.t_total, rel=0.05)

    def test_full_instrumentation_much_slower(self, foam):
        app, vanilla, _ = foam
        v = run_app(vanilla, mode="vanilla", workload=WL).result
        f = run_app(app, mode="full", tool="scorep", workload=WL).result
        assert f.t_total > 1.5 * v.t_total

    def test_filtered_cheaper_than_full(self, foam):
        app, _, ics = foam
        for tool in ("talp", "scorep"):
            full = run_app(app, mode="full", tool=tool, workload=WL).result
            filtered = run_app(
                app, mode="ic", tool=tool, ic=ics["kernels"], workload=WL
            ).result
            assert filtered.t_total < full.t_total
            assert filtered.t_init < full.t_init

    def test_scorep_profile_covers_ic(self, foam):
        app, _, ics = foam
        out = run_app(app, mode="ic", tool="scorep", ic=ics["kernels"], workload=WL)
        assert out.scorep_profile is not None
        flat_names = set()
        for node in out.scorep_profile.walk():
            flat_names.add(node.name)
        # the hot kernel is recorded under its real (injected) name
        assert "Amul" in flat_names
        assert out.bridge.unresolved_events == 0

    def test_scorep_without_injection_cannot_name_dso_functions(self, foam):
        """Paper §V-C.1: generic interface can't resolve DSO addresses."""
        app, _, ics = foam
        out = run_app(
            app,
            mode="ic",
            tool="scorep",
            ic=ics["kernels"],
            workload=WL,
            symbol_injection=False,
        )
        assert out.bridge.unresolved_events > 0
        names = {n.name for n in out.scorep_profile.walk()}
        assert any(n.startswith("UNKNOWN@") for n in names)
        assert "Amul" not in names  # Amul lives in liblduSolvers.so

    def test_talp_report_has_pop_metrics(self, foam):
        app, _, ics = foam
        out = run_app(
            app, mode="ic", tool="talp", ic=ics["kernels coarse"], workload=WL
        )
        assert out.talp_report is not None
        assert out.talp_report.metrics
        for m in out.talp_report.metrics:
            assert 0.0 < m.parallel_efficiency <= 1.0
        text = out.talp_report.render()
        assert "Parallel efficiency" in text

    def test_talp_pre_init_regions_not_recorded(self, foam):
        """Paper §VI-B(b): regions entered before MPI_Init fail."""
        app, _, ics = foam
        out = run_app(app, mode="ic", tool="talp", ic=ics["mpi"], workload=WL)
        failed = out.bridge.failed_registrations
        assert "main" in failed
        assert "argList_construct" in failed
        # failed regions are few compared to registered ones
        assert len(failed) < out.bridge.registered_count

    def test_unresolved_hidden_ids_reported(self, foam):
        app, _, ics = foam
        out = run_app(app, mode="full", tool="talp", workload=WL)
        assert out.startup is not None
        assert out.startup.unresolved_ids > 0

    def test_patched_count_matches_resolvable_ic(self, foam):
        app, _, ics = foam
        out = run_app(app, mode="ic", tool="scorep", ic=ics["kernels"], workload=WL)
        assert out.startup.patched_functions <= len(ics["kernels"])
        assert out.startup.patched_functions > 0


class TestOverheadShape:
    """The qualitative Table II relations on a small instance."""

    @pytest.fixture(scope="class")
    def results(self, foam):
        app, vanilla, ics = foam
        res = {"vanilla": run_app(vanilla, mode="vanilla", workload=WL).result}
        for tool in ("talp", "scorep"):
            res[(tool, "full")] = run_app(
                app, mode="full", tool=tool, workload=WL
            ).result
            for spec in ("mpi", "mpi coarse", "kernels"):
                res[(tool, spec)] = run_app(
                    app, mode="ic", tool=tool, ic=ics[spec], workload=WL
                ).result
        return res

    def test_ordering_within_each_tool(self, results):
        for tool in ("talp", "scorep"):
            assert (
                results[(tool, "full")].t_total
                > results[(tool, "mpi")].t_total
                > results[(tool, "kernels")].t_total
                > results["vanilla"].t_total
            )

    def test_coarse_reduces_overhead(self, results):
        for tool in ("talp", "scorep"):
            assert (
                results[(tool, "mpi coarse")].t_total
                <= results[(tool, "mpi")].t_total
            )

    def test_scorep_full_worse_than_talp_full(self, results):
        assert (
            results[("scorep", "full")].t_total
            > results[("talp", "full")].t_total
        )

    def test_talp_mpi_worse_than_scorep_mpi_in_app_time(self, results):
        """§VI-C: TALP's mpi variants cost more (setup time aside)."""
        talp = results[("talp", "mpi")]
        scorep = results[("scorep", "mpi")]
        assert talp.t_app_cycles > scorep.t_app_cycles


class TestStaticVsDynamicTurnaround:
    def test_refinement_iterations_cost(self):
        """§VII-A: static workflow pays a full rebuild per IC change."""
        from repro.core.static_inst import StaticInstrumenter
        from repro.dyncapi.runtime import DynCapi
        from repro.execution.clock import CYCLES_PER_SECOND, VirtualClock
        from repro.program.loader import DynamicLoader
        from repro.xray.runtime import XRayRuntime
        from repro.core.ic import InstrumentationConfig

        program = build_lulesh(target_nodes=400)
        app = build_app(program)
        loader = DynamicLoader()
        loader.load_program(app.linked)
        dyn = DynCapi(
            xray=XRayRuntime(loader.image),
            loader=loader,
            clock=VirtualClock(),
        )
        names = sorted(app.linked.patchable_function_names())
        dyn.startup(ic=InstrumentationConfig(functions=frozenset(names[:3])))
        static = StaticInstrumenter(program=program)
        static.build(InstrumentationConfig(functions=frozenset(names[:3])))

        dynamic_seconds = 0.0
        for i in range(4):
            ic = InstrumentationConfig(functions=frozenset(names[i : i + 3]))
            report = dyn.repatch(ic)
            dynamic_seconds += report.init_cycles / CYCLES_PER_SECOND
            static.build(ic)
        assert dynamic_seconds < static.total_rebuild_seconds / 1000
