"""Equivalence of the interned-id/memoised fast paths with the seed
string-based implementation.

The interning refactor (id-keyed call graph, id-set selector algebra)
and the engine memoisation (per-site target tuples, per-function
records, indexed address resolution) are pure performance work: they
must never change a selected set or a virtual timing.  These tests pin
that down against the seed-reference implementations that the scale
benchmark also uses:

* selection — every paper spec evaluated over lulesh/openfoam/random
  synth graphs must match a string-set evaluation of the same spec;
* execution — ``run_configuration`` must produce field-for-field equal
  :class:`RunResult` values with every cache defeated and the seed's
  linear-scan resolution restored.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from benchmarks.bench_selection_scale import (
    seed_execution_mode,
    seed_reference_select,
)
from repro.apps import PAPER_SPECS, build_lulesh, build_openfoam
from repro.cg.analysis import (
    _aggregate_statement_ids_dicts,
    _dict_reachable_ids,
    aggregate_statement_ids,
    call_depth_ids_from,
)
from repro.cg.merge import build_whole_program_cg
from repro.core.pipeline import run_spec
from repro.core.spec.modules import load_spec
from repro.execution.workload import Workload
from repro.experiments.runner import prepare_app, run_configuration
from tests.integration.test_properties import random_programs

SPECS = sorted(PAPER_SPECS)

#: extra pipelines exercising the selector types the paper specs skip
EXTRA_SPECS = {
    "combinators": """
sys = inSystemHeader(%%)
intersect(complement(%sys), defined(%%))
""",
    "paths+metrics": """
hot = callSites(">=", 2, callers(">=", 1, %%))
join(onCallPathFrom(%hot), byPath("main", %%))
""",
    "mpi-module": '!import("mpi.capi")\njoin(%mpi_comm, %mpi_ops)',
}


def _graphs():
    yield "lulesh", build_whole_program_cg(build_lulesh(target_nodes=500))
    yield "openfoam", build_whole_program_cg(build_openfoam(target_nodes=3000))


class TestSelectionEquivalence:
    @pytest.mark.parametrize("spec_name", SPECS)
    def test_paper_specs_match_seed_reference(self, spec_name):
        source = PAPER_SPECS[spec_name]
        for app, graph in _graphs():
            selected = run_spec(load_spec(source), graph).selected
            reference = seed_reference_select(graph, source)
            assert selected == reference, (app, spec_name)

    @pytest.mark.parametrize("spec_name", sorted(EXTRA_SPECS))
    def test_extra_selector_types_match_seed_reference(self, spec_name):
        source = EXTRA_SPECS[spec_name]
        for app, graph in _graphs():
            selected = run_spec(load_spec(source), graph).selected
            reference = seed_reference_select(graph, source)
            assert selected == reference, (app, spec_name)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(program=random_programs())
    def test_random_synth_programs_match_seed_reference(self, program):
        graph = build_whole_program_cg(program)
        for source in (*PAPER_SPECS.values(), *EXTRA_SPECS.values()):
            selected = run_spec(load_spec(source), graph).selected
            assert selected == seed_reference_select(graph, source)


class TestAnalysisEquivalence:
    """The CSR graph kernels must match the dict-based kernels
    bit-for-bit: same aggregation totals, same reachable sets, same call
    depths — on the app graphs and on random synth programs (which
    exercise both the vectorised DAG fast path and the Tarjan
    fallback)."""

    def test_aggregation_totals_identical_on_app_graphs(self):
        for app, graph in _graphs():
            root_id = graph.id_of("main")
            csr_result = aggregate_statement_ids(graph, root_id)
            dict_result = _aggregate_statement_ids_dicts(graph, root_id)
            assert csr_result == dict_result, app
            assert all(type(v) is int for v in csr_result.values()), app

    def test_sweeps_and_depths_identical_on_app_graphs(self):
        for app, graph in _graphs():
            root_id = graph.id_of("main")
            assert graph.reachable_ids([root_id]) == _dict_reachable_ids(
                graph, [root_id]
            ), app
            depths = call_depth_ids_from(graph, root_id)
            assert depths[root_id] == 0, app
            assert set(depths) == graph.reachable_ids([root_id]), app

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(program=random_programs())
    def test_random_synth_programs_aggregate_identically(self, program):
        graph = build_whole_program_cg(program)
        for root in sorted(graph.node_names()):
            root_id = graph.id_of(root)
            assert aggregate_statement_ids(
                graph, root_id
            ) == _aggregate_statement_ids_dicts(graph, root_id)


class TestExecutionEquivalence:
    """Bit-for-bit RunResult equality, memoised vs cache-defeated."""

    CELLS = (
        dict(mode="vanilla"),
        dict(mode="inactive"),
        dict(mode="full", tool="talp"),
        dict(mode="full", tool="scorep"),
        dict(mode="ic", tool="scorep", ic="mpi"),
        dict(mode="ic", tool="talp", ic="kernels"),
    )

    @pytest.fixture(scope="class")
    def lulesh_prepared(self):
        return prepare_app("lulesh", 400)

    @pytest.fixture(scope="class")
    def lulesh_ics(self, lulesh_prepared):
        return {k: v.ic for k, v in lulesh_prepared.select_all().items()}

    @pytest.mark.parametrize("cell", CELLS, ids=lambda c: "-".join(map(str, c.values())))
    def test_run_results_identical(self, cell, lulesh_prepared, lulesh_ics):
        kwargs = dict(cell)
        ic_name = kwargs.pop("ic", None)
        if ic_name is not None:
            kwargs["ic"] = lulesh_ics[ic_name]
        workload = Workload(site_cap=2, event_budget=50_000)
        memoised = run_configuration(
            lulesh_prepared, workload=workload, **kwargs
        ).result
        with seed_execution_mode():
            reference = run_configuration(
                lulesh_prepared, workload=workload, **kwargs
            ).result
        # full dataclass equality: every counter, cycle total and the
        # per-function call map must agree exactly
        assert memoised == reference
        assert memoised.t_total == reference.t_total
        assert memoised.t_init == reference.t_init
