"""Cross-module property tests: invariants the whole toolchain rests on.

Hypothesis generates small random programs; every invariant must hold
regardless of structure.  These are the properties that make the Table
I/II numbers trustworthy.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cg.merge import build_whole_program_cg
from repro.core.ic import InstrumentationConfig
from repro.core.inlining import available_symbols, compensate_inlining
from repro.core.selectors.base import AllSelector
from repro.core.selectors.coarse import Coarse
from repro.core.selectors.combinators import Join
from repro.program.builder import ProgramBuilder
from repro.program.compiler import Compiler
from repro.program.linker import Linker
from repro.program.loader import DynamicLoader
from repro.xray.runtime import XRayRuntime


@st.composite
def random_programs(draw):
    """Small random layered programs (acyclic, deterministic)."""
    n_layers = draw(st.integers(2, 4))
    per_layer = draw(st.integers(1, 4))
    b = ProgramBuilder("rand")
    b.tu("main.cpp")
    b.function("main", statements=draw(st.integers(1, 20)))
    layers: list[list[str]] = [["main"]]
    idx = 0
    for layer_i in range(n_layers):
        layer = []
        for _ in range(per_layer):
            name = f"f{idx}"
            idx += 1
            b.function(
                name,
                statements=draw(st.integers(1, 30)),
                flops=draw(st.integers(0, 50)),
                loop_depth=draw(st.integers(0, 3)),
                inline_marked=draw(st.booleans()),
                in_system_header=draw(st.booleans()),
            )
            layer.append(name)
        # wire every new function from at least one parent
        for name in layer:
            parent = layers[-1][draw(st.integers(0, len(layers[-1]) - 1))]
            b.call(parent, name, count=draw(st.integers(1, 4)))
        layers.append(layer)
    return b.build()


COMMON = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@settings(**COMMON)
@given(program=random_programs())
def test_machine_functions_partition_the_symbols(program):
    """Every non-inlined function is emitted exactly once; inlined
    functions are gone from the object code."""
    compiled = Compiler().compile(program)
    emitted = set(compiled.machine_functions)
    assert emitted | compiled.inlined == {f.name for f in program.functions()}
    assert not (emitted & compiled.inlined)


@settings(**COMMON)
@given(program=random_programs())
def test_linker_layout_covers_all_emitted_functions(program):
    compiled = Compiler().compile(program)
    linked = Linker().link(compiled)
    placed = set()
    for obj in linked.all_objects():
        for mf in obj.functions.values():
            assert mf.offset >= 0
            placed.add(mf.name)
    assert placed == set(compiled.machine_functions)


@settings(**COMMON)
@given(program=random_programs())
def test_patch_unpatch_restores_every_image(program):
    """Whole-program property of the paper's patching mechanism."""
    compiled = Compiler().compile(program)
    linked = Linker().link(compiled)
    loader = DynamicLoader()
    objs = loader.load_program(linked)
    rt = XRayRuntime(loader.image)
    exe = objs[0]
    rt.init_main_executable(
        exe.binary.name, exe.base, exe.binary.sled_records, exe.binary.function_ids
    )
    before = {
        lo.binary.name: bytes(lo.region.data) for lo in objs
    }
    rt.patch_all()
    rt.unpatch_all()
    after = {lo.binary.name: bytes(lo.region.data) for lo in objs}
    assert before == after


@settings(**COMMON)
@given(program=random_programs())
def test_inlining_compensation_guarantee(program):
    """§V-E guarantee: after compensation, every originally selected
    function is either instrumentable itself or has an instrumentable
    ancestor in the IC (its profile data is retained under the caller's
    name)."""
    compiled = Compiler().compile(program)
    linked = Linker().link(compiled)
    graph = build_whole_program_cg(program)
    selected = frozenset(f.name for f in program.functions())
    result = compensate_inlining(
        InstrumentationConfig(functions=selected), graph, linked
    )
    symbols = available_symbols(linked)
    for name in result.removed - result.uncovered:
        ancestors = graph.reaching([name]) - {name}
        assert ancestors & result.ic.functions & symbols, name


@settings(**COMMON)
@given(program=random_programs())
def test_coarse_selector_invariants(program):
    """coarse(S) ⊆ S, is idempotent, and keeps every multi-caller node."""
    graph = build_whole_program_cg(program)
    base = AllSelector()
    coarse = Coarse(base)
    all_names = base.evaluate(graph)
    once = coarse.evaluate(graph)
    assert once <= all_names
    # multi-caller nodes always survive
    for name in all_names:
        if len(graph.callers_of(name)) > 1:
            assert name in once
    # applying coarse to its own result changes nothing further:
    # every remaining selected single-caller callee kept its caller
    twice = Coarse(Join(*[_Fixed(once)])).evaluate(graph)
    assert twice == once


class _Fixed:
    """Selector returning a fixed set (test helper)."""

    def __init__(self, names):
        self._names = set(names)

    def select(self, ctx):
        return set(self._names)

    def describe(self):
        return "fixed"


@settings(**COMMON)
@given(program=random_programs(), cap=st.integers(1, 8))
def test_analytic_charging_preserves_total_time(program, cap):
    """The workload cap must not change total virtual time (first
    order): walked + analytically-charged == fully walked."""
    from repro.execution.engine import ExecutionEngine
    from repro.execution.workload import Workload

    compiled = Compiler().compile(program)
    linked = Linker().link(compiled)

    def run(site_cap):
        loader = DynamicLoader()
        objs = loader.load_program(linked)
        engine = ExecutionEngine(
            linked=linked, loaded=objs, workload=Workload(site_cap=site_cap)
        )
        return engine.run()

    capped = run(cap)
    full = run(10_000)
    assert capped.t_total == pytest.approx(full.t_total, rel=1e-6)
    assert (
        capped.entry_events + capped.charged_only_calls
        == full.entry_events + full.charged_only_calls
    )
