"""Tests for the paper-experiment harness (table renderers + runners)."""

import pytest

from repro.experiments.anomalies import compute_anomalies, render
from repro.experiments.runner import SPEC_ORDER, prepare_app, run_configuration
from repro.experiments.table1 import compute_table1, render_table1
from repro.experiments.table2 import Table2Row, render_table2
from repro.execution.workload import Workload

SMALL = {"lulesh": 800, "openfoam": 2500}
WL = Workload(site_cap=2, event_budget=30_000)


class TestPreparedApp:
    def test_prepare_app_cached(self):
        a = prepare_app("lulesh", SMALL["lulesh"])
        b = prepare_app("lulesh", SMALL["lulesh"])
        assert a is b

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            prepare_app("gromacs")

    def test_select_all_covers_spec_order(self):
        prepared = prepare_app("lulesh", SMALL["lulesh"])
        outcomes = prepared.select_all()
        assert tuple(outcomes) == SPEC_ORDER


class TestTable1:
    def test_rows_and_rendering(self):
        rows = compute_table1(("lulesh",), scales=SMALL)
        assert len(rows) == len(SPEC_ORDER)
        for row in rows:
            assert row.selected_pre >= row.selected - row.added
            assert row.time_seconds >= 0
        text = render_table1(rows)
        assert "TABLE I" in text
        assert "kernels coarse" in text
        assert "#added" in text


class TestTable2Rendering:
    def test_render_includes_all_sections(self):
        rows = [
            Table2Row("app", "-", "vanilla", None, 10.0, 0.0),
            Table2Row("app", "talp", "xray full", 1.0, 30.0, 2.0),
            Table2Row("app", "scorep", "mpi", 1.5, 15.0, 0.5),
        ]
        text = render_table2(rows)
        assert "TABLE II" in text
        assert "TALP" in text and "Score-P" in text
        assert "+200%" in text
        assert "-" in text  # vanilla has no Tinit


class TestRunConfiguration:
    def test_vanilla_uses_sled_free_build(self):
        prepared = prepare_app("openfoam", SMALL["openfoam"])
        outcome = run_configuration(prepared, mode="vanilla", workload=WL)
        assert outcome.startup is None
        assert outcome.result.patched_functions == 0

    def test_ic_mode(self):
        prepared = prepare_app("openfoam", SMALL["openfoam"])
        ic = prepared.select("kernels").ic
        outcome = run_configuration(
            prepared, mode="ic", tool="talp", ic=ic, workload=WL
        )
        assert outcome.startup.patched_functions > 0
        assert outcome.talp_report is not None


class TestDlbTable:
    def test_rows_improve_and_render(self):
        from repro.experiments.dlb import compute_dlb_table, render_dlb_table

        rows = compute_dlb_table(
            ("lulesh",), scales=SMALL, ranks=4, max_iterations=6
        )
        assert {r.scenario for r in rows} == {"straggler-rescue", "ramp-flatten"}
        for row in rows:
            assert row.converged
            assert row.pe_gain > 0.0
            assert row.after[0] > row.before[0]  # load balance improved
        text = render_dlb_table(rows)
        assert "DLB LeWI REBALANCING" in text
        assert "straggler-rescue" in text

    def test_check_mode_exit_codes(self):
        from repro.experiments.dlb import main

        assert (
            main(
                [
                    "--app", "lulesh", "--nodes", str(SMALL["lulesh"]),
                    "--ranks", "4", "--scenario", "straggler-rescue",
                    "--max-iterations", "6", "--check",
                ]
            )
            == 0
        )


class TestHealthAlerts:
    def test_no_alerts_for_healthy_or_unsupervised_runs(self):
        from repro.experiments.anomalies import render_health_alerts
        from repro.multirank.faults import HealthReport, RankHealth

        assert render_health_alerts(None) == []
        healthy = HealthReport(
            ranks=2,
            per_rank=(
                RankHealth(rank=0, outcome="ok", attempts=1, latency_seconds=0.1),
                RankHealth(rank=1, outcome="ok", attempts=1, latency_seconds=0.1),
            ),
        )
        assert render_health_alerts(healthy) == []
        unsupervised = HealthReport(ranks=4, per_rank=None)
        assert render_health_alerts(unsupervised) == []

    def test_retried_lost_and_degraded_alerts(self):
        from repro.experiments.anomalies import render_health_alerts
        from repro.multirank.faults import HealthReport, RankHealth

        health = HealthReport(
            ranks=3,
            per_rank=(
                RankHealth(
                    rank=0, outcome="ok", attempts=2, latency_seconds=0.2,
                    failures=("attempt 1: InjectedFaultError: boom",),
                ),
                RankHealth(rank=1, outcome="ok", attempts=1, latency_seconds=0.1),
                RankHealth(
                    rank=2, outcome="lost", attempts=3, latency_seconds=0.4,
                    failures=(
                        "attempt 1: InjectedFaultError: boom",
                        "attempt 2: InjectedFaultError: boom",
                        "attempt 3: InjectedFaultError: boom",
                    ),
                ),
            ),
            missing_ranks=(2,),
        )
        alerts = render_health_alerts(health)
        assert len(alerts) == 3
        assert alerts[0].startswith("ALERT retried rank=0 attempts=2")
        assert alerts[1].startswith("ALERT lost rank=2 attempts=3")
        assert "coverage=66.7%" in alerts[2]
        assert "missing_ranks=[2]" in alerts[2]

    def test_check_faults_cli_flags_parse(self):
        from repro.experiments import anomalies

        parser_probe = [
            "--check-faults", "--nodes", "120", "--ranks", "4",
            "--deadline-seconds", "5.0", "--max-lost-fraction", "0.25",
        ]
        # parse-only probe: swap the smoke out so main() stays fast
        recorded = {}

        def fake_check_faults(**kwargs):
            recorded.update(kwargs)
            return 0

        original = anomalies.check_faults
        anomalies.check_faults = fake_check_faults
        try:
            assert anomalies.main(parser_probe) == 0
        finally:
            anomalies.check_faults = original
        assert recorded == {
            "target_nodes": 120,
            "ranks": 4,
            "deadline_seconds": 5.0,
            "max_lost_fraction": 0.25,
        }


class TestAnomalies:
    def test_report_and_rendering(self):
        report = compute_anomalies(
            target_nodes=SMALL["openfoam"],
            talp_bug_threshold=20,
            talp_bug_modulus=8,
        )
        assert report.hidden_functions > 0
        assert report.unresolved_ids == report.hidden_functions
        assert report.unresolved_selected_by_ic == 0
        assert report.talp_failed_registrations > 0
        text = render(report)
        assert "MPI_Init" in text
        assert str(report.hidden_functions) in text
