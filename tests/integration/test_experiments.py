"""Tests for the paper-experiment harness (table renderers + runners)."""

import pytest

from repro.experiments.anomalies import compute_anomalies, render
from repro.experiments.runner import SPEC_ORDER, prepare_app, run_configuration
from repro.experiments.table1 import compute_table1, render_table1
from repro.experiments.table2 import Table2Row, render_table2
from repro.execution.workload import Workload

SMALL = {"lulesh": 800, "openfoam": 2500}
WL = Workload(site_cap=2, event_budget=30_000)


class TestPreparedApp:
    def test_prepare_app_cached(self):
        a = prepare_app("lulesh", SMALL["lulesh"])
        b = prepare_app("lulesh", SMALL["lulesh"])
        assert a is b

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            prepare_app("gromacs")

    def test_select_all_covers_spec_order(self):
        prepared = prepare_app("lulesh", SMALL["lulesh"])
        outcomes = prepared.select_all()
        assert tuple(outcomes) == SPEC_ORDER


class TestTable1:
    def test_rows_and_rendering(self):
        rows = compute_table1(("lulesh",), scales=SMALL)
        assert len(rows) == len(SPEC_ORDER)
        for row in rows:
            assert row.selected_pre >= row.selected - row.added
            assert row.time_seconds >= 0
        text = render_table1(rows)
        assert "TABLE I" in text
        assert "kernels coarse" in text
        assert "#added" in text


class TestTable2Rendering:
    def test_render_includes_all_sections(self):
        rows = [
            Table2Row("app", "-", "vanilla", None, 10.0, 0.0),
            Table2Row("app", "talp", "xray full", 1.0, 30.0, 2.0),
            Table2Row("app", "scorep", "mpi", 1.5, 15.0, 0.5),
        ]
        text = render_table2(rows)
        assert "TABLE II" in text
        assert "TALP" in text and "Score-P" in text
        assert "+200%" in text
        assert "-" in text  # vanilla has no Tinit


class TestRunConfiguration:
    def test_vanilla_uses_sled_free_build(self):
        prepared = prepare_app("openfoam", SMALL["openfoam"])
        outcome = run_configuration(prepared, mode="vanilla", workload=WL)
        assert outcome.startup is None
        assert outcome.result.patched_functions == 0

    def test_ic_mode(self):
        prepared = prepare_app("openfoam", SMALL["openfoam"])
        ic = prepared.select("kernels").ic
        outcome = run_configuration(
            prepared, mode="ic", tool="talp", ic=ic, workload=WL
        )
        assert outcome.startup.patched_functions > 0
        assert outcome.talp_report is not None


class TestDlbTable:
    def test_rows_improve_and_render(self):
        from repro.experiments.dlb import compute_dlb_table, render_dlb_table

        rows = compute_dlb_table(
            ("lulesh",), scales=SMALL, ranks=4, max_iterations=6
        )
        assert {r.scenario for r in rows} == {"straggler-rescue", "ramp-flatten"}
        for row in rows:
            assert row.converged
            assert row.pe_gain > 0.0
            assert row.after[0] > row.before[0]  # load balance improved
        text = render_dlb_table(rows)
        assert "DLB LeWI REBALANCING" in text
        assert "straggler-rescue" in text

    def test_check_mode_exit_codes(self):
        from repro.experiments.dlb import main

        assert (
            main(
                [
                    "--app", "lulesh", "--nodes", str(SMALL["lulesh"]),
                    "--ranks", "4", "--scenario", "straggler-rescue",
                    "--max-iterations", "6", "--check",
                ]
            )
            == 0
        )


class TestAnomalies:
    def test_report_and_rendering(self):
        report = compute_anomalies(
            target_nodes=SMALL["openfoam"],
            talp_bug_threshold=20,
            talp_bug_modulus=8,
        )
        assert report.hidden_functions > 0
        assert report.unresolved_ids == report.hidden_functions
        assert report.unresolved_selected_by_ic == 0
        assert report.talp_failed_registrations > 0
        text = render(report)
        assert "MPI_Init" in text
        assert str(report.hidden_functions) in text
