"""Unit tests for linker layout and the dynamic loader."""

import pytest

from repro.errors import LoaderError
from repro.program.binary import ObjectKind
from repro.program.builder import ProgramBuilder
from repro.program.compiler import Compiler, CompilerConfig
from repro.program.linker import Linker
from repro.program.loader import DynamicLoader
from repro.xray.sled import SLED_BYTES, UNPATCHED, SledKind


class TestLinker:
    def test_layout_groups_by_library(self, demo_linked):
        assert demo_linked.executable.kind is ObjectKind.EXECUTABLE
        assert [d.name for d in demo_linked.dsos] == ["libdemo.so"]
        assert "lib_helper" in demo_linked.dsos[0].functions
        assert "main" in demo_linked.executable.functions

    def test_function_ids_one_based_and_dense(self, demo_linked):
        for obj in demo_linked.all_objects():
            ids = sorted(obj.function_ids)
            assert ids == list(range(1, len(ids) + 1))

    def test_sled_records_entry_and_exit(self, demo_linked):
        exe = demo_linked.executable
        entry = [r for r in exe.sled_records if r.kind is SledKind.ENTRY]
        exits = [r for r in exe.sled_records if r.kind is SledKind.EXIT]
        assert len(entry) == len(exits) == len(exe.function_ids)

    def test_offsets_unique_and_non_overlapping(self, demo_linked):
        for obj in demo_linked.all_objects():
            spans = sorted(
                (mf.offset, mf.offset + mf.size_bytes)
                for mf in obj.functions.values()
            )
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert e1 <= s2

    def test_hidden_symbols_absent_from_dynamic_table(self, demo_linked):
        dso = demo_linked.dsos[0]
        dynamic = {s.name for s in dso.dynamic_symbols()}
        nm = {s.name for s in dso.nm_symbols()}
        assert "lib_hidden" in nm
        assert "lib_hidden" not in dynamic

    def test_mpi_stub_has_no_sleds(self, demo_linked):
        exe = demo_linked.executable
        assert all(r.function_name != "MPI_Init" for r in exe.sled_records)

    def test_dso_pic_follows_config(self, demo_program):
        compiled = Compiler(CompilerConfig(pic=False)).compile(demo_program)
        linked = Linker().link(compiled)
        assert not linked.dsos[0].pic

    def test_patchable_names(self, demo_linked):
        names = demo_linked.patchable_function_names()
        assert "kernel" in names
        assert "MPI_Init" not in names
        assert "tiny" not in names  # inlined


class TestLoader:
    def test_all_objects_mapped(self, demo_loaded):
        loader, objs = demo_loaded
        assert len(objs) == 2
        assert set(loader.loaded) == {"demo", "libdemo.so"}

    def test_sleds_initialised_to_nops(self, demo_loaded):
        loader, objs = demo_loaded
        for lo in objs:
            for rec in lo.binary.sled_records:
                blob = loader.image.read(lo.sled_address(rec), SLED_BYTES)
                assert blob == UNPATCHED

    def test_sled_pages_not_writable_after_load(self, demo_loaded):
        loader, objs = demo_loaded
        rec = objs[0].binary.sled_records[0]
        assert not loader.image.is_writable(objs[0].sled_address(rec))

    def test_double_load_rejected(self, demo_linked):
        loader = DynamicLoader()
        loader.load(demo_linked.executable)
        with pytest.raises(LoaderError):
            loader.load(demo_linked.executable)

    def test_dlopen_requires_dso(self, demo_linked):
        loader = DynamicLoader()
        with pytest.raises(LoaderError):
            loader.dlopen(demo_linked.executable)

    def test_dlclose_unmaps(self, demo_linked):
        loader = DynamicLoader()
        loader.load_program(demo_linked)
        loader.dlclose("libdemo.so")
        assert "libdemo.so" not in loader.loaded
        with pytest.raises(LoaderError):
            loader.dlclose("libdemo.so")

    def test_object_containing(self, demo_loaded):
        loader, objs = demo_loaded
        assert loader.object_containing(objs[1].base + 4).binary.name == "libdemo.so"
        with pytest.raises(LoaderError):
            loader.object_containing(0x10)

    def test_dso_marked_relocated(self, demo_loaded):
        _loader, objs = demo_loaded
        assert not objs[0].relocated  # executable
        assert objs[1].relocated  # DSO


def test_builder_chain_helper():
    b = ProgramBuilder("p")
    b.tu("a.cpp")
    for name in ("main", "x", "y"):
        b.function(name, statements=3)
    b.chain(["main", "x", "y"], count=2)
    p = b.build()
    assert p.function("main").call_sites[0].callee == "x"
    assert p.function("x").call_sites[0].calls_per_invocation == 2
