"""Unit tests for the compiler pipeline (inlining + XRay machine pass)."""

import pytest

from repro.program.builder import ProgramBuilder
from repro.program.compiler import Compiler, CompilerConfig
from repro.program.ir import CallKind


def compile_program(b, **cfg):
    return Compiler(CompilerConfig(**cfg)).compile(b.build())


def simple_builder():
    b = ProgramBuilder("p")
    b.tu("a.cpp")
    b.function("main", statements=5)
    return b


class TestInliningDecisions:
    def test_small_marked_function_inlined(self):
        b = simple_builder()
        b.function("helper", statements=2, inline_marked=True)
        b.call("main", "helper")
        out = compile_program(b)
        assert "helper" in out.inlined
        assert "helper" not in out.machine_functions

    def test_large_marked_function_not_inlined(self):
        b = simple_builder()
        b.function("big", statements=100, inline_marked=True)
        b.call("main", "big")
        out = compile_program(b)
        assert "big" not in out.inlined

    def test_o0_disables_inlining(self):
        b = simple_builder()
        b.function("helper", statements=1, inline_marked=True)
        b.call("main", "helper")
        out = compile_program(b, opt_level=0)
        assert not out.inlined

    def test_entry_never_inlined(self):
        b = ProgramBuilder("p")
        b.tu("a.cpp")
        b.function("main", statements=1)
        out = compile_program(b)
        assert "main" in out.machine_functions

    def test_recursive_function_not_inlined(self):
        b = simple_builder()
        b.function("rec", statements=1)
        b.call("main", "rec")
        b.call("rec", "rec")
        out = compile_program(b)
        assert "rec" not in out.inlined

    def test_mutually_recursive_not_inlined(self):
        b = simple_builder()
        b.function("ping", statements=1)
        b.function("pong", statements=1)
        b.call("main", "ping")
        b.call("ping", "pong")
        b.call("pong", "ping")
        out = compile_program(b)
        assert "ping" not in out.inlined
        assert "pong" not in out.inlined

    def test_address_taken_not_inlined(self):
        b = simple_builder()
        b.function("cb", statements=1, address_taken=True)
        b.call("main", "cb")
        out = compile_program(b)
        assert "cb" not in out.inlined

    def test_virtual_not_inlined(self):
        b = simple_builder()
        b.function("v", statements=1, overrides="v")
        b.virtual_call("main", "v")
        out = compile_program(b)
        assert "v" not in out.inlined

    def test_mpi_stub_not_inlined(self):
        b = simple_builder()
        b.mpi_function("MPI_Init")
        b.call("main", "MPI_Init")
        out = compile_program(b)
        assert "MPI_Init" in out.machine_functions


class TestLowering:
    def test_inlined_cost_folded_into_caller(self):
        b = simple_builder()
        b.function("helper", statements=2, inline_marked=True, base_cost=10.0)
        b.call("main", "helper", count=3)
        out = compile_program(b)
        main = out.machine_functions["main"]
        assert main.base_cost >= 30.0
        assert "helper" in main.absorbed

    def test_inlined_callee_sites_hoisted(self):
        b = simple_builder()
        b.function("helper", statements=1, inline_marked=True)
        b.function("deep", statements=50)
        b.call("main", "helper", count=2)
        b.call("helper", "deep", count=3)
        out = compile_program(b)
        main = out.machine_functions["main"]
        hoisted = [cs for cs in main.call_sites if cs.callee == "deep"]
        assert len(hoisted) == 1
        assert hoisted[0].count == 6  # 2 * 3

    def test_call_site_order_preserved(self):
        b = simple_builder()
        b.function("first", statements=20)
        b.function("second", statements=20)
        b.call("main", "first")
        b.call("main", "second")
        out = compile_program(b)
        callees = [cs.callee for cs in out.machine_functions["main"].call_sites]
        assert callees == ["first", "second"]

    def test_transitive_inlining(self):
        b = simple_builder()
        b.function("h1", statements=1, inline_marked=True)
        b.function("h2", statements=1, inline_marked=True)
        b.call("main", "h1")
        b.call("h1", "h2")
        out = compile_program(b)
        assert {"h1", "h2"} <= out.inlined
        assert set(out.machine_functions["main"].absorbed) >= {"h1", "h2"}


class TestXRayMachinePass:
    def test_threshold_filters_small_functions(self):
        b = simple_builder()
        b.function("small", statements=4)  # big enough to avoid inlining
        b.function("large", statements=100)
        b.call("main", "small")
        b.call("main", "large")
        out = compile_program(b, xray_instruction_threshold=50)
        assert not out.machine_functions["small"].xray_instrumented
        assert out.machine_functions["large"].xray_instrumented

    def test_default_threshold_instruments_everything(self):
        b = simple_builder()
        b.function("small", statements=4)
        b.call("main", "small")
        out = compile_program(b)
        assert out.machine_functions["small"].xray_instrumented

    def test_mpi_stubs_never_instrumented(self):
        b = simple_builder()
        b.mpi_function("MPI_Init")
        b.call("main", "MPI_Init")
        out = compile_program(b)
        assert not out.machine_functions["MPI_Init"].xray_instrumented

    def test_huge_threshold_produces_vanilla_build(self):
        b = simple_builder()
        out = compile_program(b, xray_instruction_threshold=2**31)
        assert not any(
            mf.xray_instrumented for mf in out.machine_functions.values()
        )


class TestSymbolRetention:
    def test_some_inlined_functions_keep_symbols(self):
        """The §V-E caveat: the symbol heuristic is not exact."""
        b = simple_builder()
        names = []
        for i in range(60):
            name = f"inl_{i}"
            b.function(name, statements=1, inline_marked=True)
            b.call("main", name)
            names.append(name)
        out = compile_program(b)
        assert out.inlined >= set(names)
        # with the default modulus of 17, ~1/17 of 60 keep their symbol
        assert 0 < len(out.symbol_retained_inlined) < len(names)


class TestVirtualLowering:
    def test_virtual_site_survives_lowering(self):
        b = simple_builder()
        b.function("v", statements=4, overrides="v")
        b.virtual_call("main", "v", count=2)
        out = compile_program(b)
        sites = out.machine_functions["main"].call_sites
        assert any(s.kind is CallKind.VIRTUAL and s.callee == "v" for s in sites)
