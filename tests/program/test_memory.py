"""Unit tests for the page-protected process memory model."""

import pytest

from repro.errors import LoaderError, SegmentationFault
from repro.program.memory import PAGE_SIZE, ProcessImage, page_of, page_range


class TestPageMath:
    def test_page_of(self):
        assert page_of(0) == 0
        assert page_of(PAGE_SIZE - 1) == 0
        assert page_of(PAGE_SIZE) == 1

    def test_page_range_spanning(self):
        pages = list(page_range(PAGE_SIZE - 1, 2))
        assert pages == [0, 1]

    def test_page_range_empty(self):
        assert list(page_range(100, 0)) == []


class TestMapping:
    def test_map_and_read_back(self):
        img = ProcessImage()
        region = img.map_region("exe", 100)
        assert img.read(region.base, 100) == bytes(100)

    def test_mappings_do_not_overlap(self):
        img = ProcessImage()
        a = img.map_region("a", PAGE_SIZE * 2)
        b = img.map_region("b", PAGE_SIZE)
        assert a.end <= b.base

    def test_empty_region_rejected(self):
        with pytest.raises(LoaderError):
            ProcessImage().map_region("a", 0)

    def test_unmap_then_access_faults(self):
        img = ProcessImage()
        region = img.map_region("a", 64)
        img.unmap(region)
        with pytest.raises(SegmentationFault):
            img.read(region.base, 1)

    def test_unmap_unknown_region_rejected(self):
        img = ProcessImage()
        region = img.map_region("a", 64)
        img.unmap(region)
        with pytest.raises(LoaderError):
            img.unmap(region)


class TestProtection:
    def test_write_without_mprotect_faults(self):
        img = ProcessImage()
        region = img.map_region("a", 64)
        with pytest.raises(SegmentationFault, match="mprotect"):
            img.write(region.base, b"hi")

    def test_write_after_mprotect_succeeds(self):
        img = ProcessImage()
        region = img.map_region("a", 64)
        img.mprotect(region.base, 2, writable=True)
        img.write(region.base, b"hi")
        assert img.read(region.base, 2) == b"hi"

    def test_protection_is_page_granular(self):
        img = ProcessImage()
        region = img.map_region("a", PAGE_SIZE)
        img.mprotect(region.base, 1, writable=True)
        # the whole page becomes writable, like the real syscall
        img.write(region.base + 100, b"x")

    def test_reprotect_readonly_blocks_writes(self):
        img = ProcessImage()
        region = img.map_region("a", 64)
        img.mprotect(region.base, 64, writable=True)
        img.mprotect(region.base, 64, writable=False)
        with pytest.raises(SegmentationFault):
            img.write(region.base, b"x")

    def test_mprotect_unmapped_faults(self):
        img = ProcessImage()
        with pytest.raises(SegmentationFault):
            img.mprotect(0xDEAD0000, 4, writable=True)


class TestBounds:
    def test_read_across_region_end_faults(self):
        img = ProcessImage()
        region = img.map_region("a", 16)
        with pytest.raises(SegmentationFault):
            img.read(region.base + 10, 10)

    def test_write_across_region_end_faults(self):
        img = ProcessImage()
        region = img.map_region("a", 16)
        img.mprotect(region.base, 16, writable=True)
        with pytest.raises(SegmentationFault):
            img.write(region.base + 10, b"0123456789")
