"""Unit tests for the program IR."""

import pytest

from repro.errors import ProgramModelError
from repro.program.builder import ProgramBuilder
from repro.program.ir import (
    CallKind,
    CallSite,
    FunctionDef,
    SourceProgram,
    TranslationUnit,
    resolve_call_targets,
)


class TestCallSite:
    def test_direct_call_requires_callee(self):
        with pytest.raises(ProgramModelError):
            CallSite(callee=None, kind=CallKind.DIRECT)

    def test_pointer_call_requires_pointer_id(self):
        with pytest.raises(ProgramModelError):
            CallSite(callee=None, kind=CallKind.POINTER)

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ProgramModelError):
            CallSite(callee="f", calls_per_invocation=-1)


class TestFunctionDef:
    def test_empty_name_rejected(self):
        with pytest.raises(ProgramModelError):
            FunctionDef(name="")

    def test_negative_metadata_rejected(self):
        with pytest.raises(ProgramModelError):
            FunctionDef(name="f", flops=-1)

    def test_is_mpi_by_prefix(self):
        assert FunctionDef(name="MPI_Allreduce").is_mpi
        assert not FunctionDef(name="compute").is_mpi

    def test_is_virtual_via_overrides(self):
        assert FunctionDef(name="f", overrides="base").is_virtual
        assert not FunctionDef(name="f").is_virtual

    def test_instruction_count_grows_with_metadata(self):
        small = FunctionDef(name="a", statements=1)
        big = FunctionDef(name="b", statements=10, flops=50, loop_depth=2)
        assert big.instruction_count > small.instruction_count


class TestTranslationUnit:
    def test_duplicate_definition_rejected(self):
        tu = TranslationUnit("a.cpp")
        tu.add(FunctionDef(name="f"))
        with pytest.raises(ProgramModelError):
            tu.add(FunctionDef(name="f"))

    def test_source_path_defaults_to_tu_name(self):
        tu = TranslationUnit("a.cpp")
        fn = tu.add(FunctionDef(name="f"))
        assert fn.source_path == "a.cpp"


class TestValidation:
    def test_missing_entry_rejected(self):
        p = SourceProgram(name="x")
        tu = TranslationUnit("a.cpp")
        tu.add(FunctionDef(name="helper"))
        p.add_tu(tu)
        with pytest.raises(ProgramModelError, match="entry"):
            p.validate()

    def test_undefined_callee_rejected(self):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        fn = b.function("main")
        fn.add_call("ghost")
        with pytest.raises(ProgramModelError, match="ghost"):
            b.build()

    def test_tu_linked_twice_rejected(self):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        b.function("main")
        b.tu("b.cpp")
        b.function("f")
        b.library("lib1.so", ["b.cpp"])
        b.library("lib2.so", ["b.cpp"])
        with pytest.raises(ProgramModelError, match="linked into both"):
            b.build()

    def test_entry_must_be_in_executable(self):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        b.function("main")
        b.tu("b.cpp")
        b.function("other")
        b.library("lib.so", ["a.cpp"])
        with pytest.raises(ProgramModelError):
            b.build()


class TestResolveTargets:
    def test_virtual_resolves_to_overriders(self):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        b.function("main")
        b.function("base_m", overrides="base_m")
        b.function("impl_a", overrides="base_m")
        b.function("impl_b", overrides="base_m")
        b.virtual_call("main", "base_m")
        p = b.build()
        site = p.function("main").call_sites[0]
        targets = resolve_call_targets(p, site)
        assert set(targets) == {"base_m", "impl_a", "impl_b"}

    def test_pointer_targets(self):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        b.function("main")
        b.function("cb1")
        b.function("cb2")
        b.pointer_call("main", "fp", ["cb1", "cb2"])
        p = b.build()
        site = p.function("main").call_sites[0]
        assert set(resolve_call_targets(p, site)) == {"cb1", "cb2"}

    def test_dynamic_pointer_excluded_when_asked(self):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        b.function("main")
        b.function("cb")
        b.pointer_call("main", "fp", ["cb"], static_resolvable=False)
        p = b.build()
        site = p.function("main").call_sites[0]
        assert resolve_call_targets(p, site, include_dynamic_pointers=False) == []
        assert resolve_call_targets(p, site) == ["cb"]


class TestProgramQueries:
    def test_executable_tus_excludes_library_tus(self, ):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        b.function("main")
        b.tu("b.cpp")
        b.function("f")
        b.library("lib.so", ["b.cpp"])
        p = b.build()
        assert p.executable_tus() == ["a.cpp"]

    def test_tu_of_and_contains(self):
        b = ProgramBuilder("x")
        b.tu("a.cpp")
        b.function("main")
        p = b.build()
        assert p.tu_of("main") == "a.cpp"
        assert "main" in p
        assert "ghost" not in p
        with pytest.raises(KeyError):
            p.tu_of("ghost")
