"""Ablation benchmarks (DESIGN.md AB1-AB3).

* AB1 — coarse selector on/off: selection size and TALP overhead.
* AB2 — inlining compensation on/off: how much profile data would be
  silently lost without §V-E's post-processing.
* AB3 — static vs dynamic turnaround across refinement iterations
  (§VII-A: a 50-minute rebuild vs seconds of re-patching).
"""

import pytest

from benchmarks.conftest import BENCH_WORKLOAD
from repro.core.ic import InstrumentationConfig
from repro.core.inlining import available_symbols, compensate_inlining
from repro.core.pipeline import run_spec
from repro.core.spec.modules import load_spec
from repro.core.static_inst import StaticInstrumenter
from repro.dyncapi.runtime import DynCapi
from repro.execution.clock import CYCLES_PER_SECOND, VirtualClock
from repro.experiments.runner import run_configuration
from repro.program.loader import DynamicLoader
from repro.xray.runtime import XRayRuntime

COARSE_ON = """
!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
mpi_targets = byName("MPI_.*", %%)
coarse(subtract(onCallPathTo(%mpi_targets), %excluded))
"""
COARSE_OFF = """
!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
mpi_targets = byName("MPI_.*", %%)
subtract(onCallPathTo(%mpi_targets), %excluded)
"""


class TestCoarseAblation:
    @pytest.mark.parametrize("variant", ["on", "off"])
    def test_coarse_selection_cost(self, benchmark, openfoam_prepared, variant):
        spec = load_spec(COARSE_ON if variant == "on" else COARSE_OFF)
        graph = openfoam_prepared.app.graph
        result = benchmark(lambda: run_spec(spec, graph))
        benchmark.extra_info["selected"] = len(result.selected)

    def test_coarse_shrinks_selection_and_overhead(
        self, openfoam_prepared, openfoam_ics
    ):
        graph = openfoam_prepared.app.graph
        on = run_spec(load_spec(COARSE_ON), graph)
        off = run_spec(load_spec(COARSE_OFF), graph)
        assert len(on.selected) < len(off.selected)
        r_on = run_configuration(
            openfoam_prepared,
            mode="ic",
            tool="talp",
            ic=openfoam_ics["mpi coarse"],
            workload=BENCH_WORKLOAD,
        ).result
        r_off = run_configuration(
            openfoam_prepared,
            mode="ic",
            tool="talp",
            ic=openfoam_ics["mpi"],
            workload=BENCH_WORKLOAD,
        ).result
        assert r_on.t_total < r_off.t_total


class TestInliningAblation:
    def test_compensation_cost(self, benchmark, openfoam_prepared):
        """Benchmark the §V-E post-processing pass itself."""
        outcome = openfoam_prepared.capi.select(
            COARSE_OFF, spec_name="mpi-raw"
        )
        result = benchmark(
            lambda: compensate_inlining(
                outcome.ic,
                openfoam_prepared.app.graph,
                openfoam_prepared.app.linked,
            )
        )
        benchmark.extra_info["removed"] = len(result.removed)
        benchmark.extra_info["added"] = len(result.added)

    def test_without_compensation_profile_data_is_lost(self, openfoam_prepared):
        """AB2: selected-but-inlined functions produce no events at all;
        compensation guarantees an instrumented non-inlined ancestor."""
        prepared = openfoam_prepared
        outcome = prepared.capi.select(COARSE_OFF, spec_name="mpi-raw")
        raw_ic = outcome.ic
        symbols = available_symbols(prepared.app.linked)
        lost = {f for f in raw_ic.functions if f not in symbols}
        assert lost, "ablation needs inlined functions in the raw IC"
        comp = compensate_inlining(
            raw_ic, prepared.app.graph, prepared.app.linked
        )
        patchable = prepared.app.linked.patchable_function_names()
        # after compensation every IC entry is actually patchable
        # (up to symbol-retained inlined functions, the §V-E caveat)
        unpatchable = comp.ic.functions - patchable
        assert len(unpatchable) < len(lost) * 0.2


class TestTurnaroundAblation:
    def test_static_vs_dynamic_refinement(self, benchmark, openfoam_prepared, openfoam_ics):
        """AB3: N=3 refinement iterations, cumulative turnaround."""
        prepared = openfoam_prepared
        loader = DynamicLoader()
        loader.load_program(prepared.app.linked)
        dyn = DynCapi(
            xray=XRayRuntime(loader.image), loader=loader, clock=VirtualClock()
        )
        dyn.startup(ic=openfoam_ics["mpi"])
        static = StaticInstrumenter(program=prepared.app.program)
        sequence = [
            openfoam_ics["mpi coarse"],
            openfoam_ics["kernels"],
            openfoam_ics["kernels coarse"],
        ]

        def refine_dynamic():
            total = 0.0
            for ic in sequence:
                total += dyn.repatch(ic).init_cycles / CYCLES_PER_SECOND
            return total

        dynamic_seconds = benchmark.pedantic(refine_dynamic, rounds=1, iterations=1)
        static_seconds = sum(
            static.rebuild_cost_seconds() for _ in sequence
        )
        benchmark.extra_info["dynamic_virtual_s"] = dynamic_seconds
        benchmark.extra_info["static_virtual_s"] = static_seconds
        # the paper's argument: repatching is orders of magnitude faster
        assert dynamic_seconds * 100 < static_seconds
