"""Shared benchmark fixtures: prepared applications, scaled for speed.

The benchmarks regenerate the paper's tables at a reduced default scale
so ``pytest benchmarks/ --benchmark-only`` completes in minutes; the
``repro-table1``/``repro-table2`` CLIs run the full default scale and
accept ``--scale paper``.
"""

from __future__ import annotations

import pytest

from repro.execution.workload import Workload
from repro.experiments.runner import PreparedApp, prepare_app

#: benchmark-scale graphs (structure identical, fewer utility nodes)
BENCH_SCALES = {"lulesh": 3360, "openfoam": 8000}
BENCH_WORKLOAD = Workload(site_cap=2, event_budget=100_000)


@pytest.fixture(scope="session")
def lulesh_prepared() -> PreparedApp:
    return prepare_app("lulesh", BENCH_SCALES["lulesh"])


@pytest.fixture(scope="session")
def openfoam_prepared() -> PreparedApp:
    return prepare_app("openfoam", BENCH_SCALES["openfoam"])


@pytest.fixture(scope="session")
def openfoam_ics(openfoam_prepared):
    return {k: v.ic for k, v in openfoam_prepared.select_all().items()}


@pytest.fixture(scope="session")
def lulesh_ics(lulesh_prepared):
    return {k: v.ic for k, v in lulesh_prepared.select_all().items()}
