"""Table I benchmarks: CaPI selection runtime per spec and application.

Each benchmark measures the wall-clock selection time (the paper's
"Time" column) and asserts the qualitative Table I relations on the
resulting ICs: coarse shrinks the selection, inlining compensation adds
functions back on openfoam, and the kernels specs select far fewer
functions than the mpi specs.
"""

import pytest

from repro.apps import PAPER_SPECS
from repro.core.pipeline import PipelineBuilder, evaluate_pipeline
from repro.core.spec.modules import load_spec

SPECS = list(PAPER_SPECS)


def _pipeline(spec_name):
    return PipelineBuilder().build(load_spec(PAPER_SPECS[spec_name]))[0]


@pytest.mark.parametrize("spec_name", SPECS)
def test_selection_lulesh(benchmark, lulesh_prepared, spec_name):
    entry = _pipeline(spec_name)
    graph = lulesh_prepared.app.graph
    result = benchmark(lambda: evaluate_pipeline(entry, graph))
    assert len(result.selected) > 0
    assert len(result.selected) < len(graph) * 0.05  # well under 5%


@pytest.mark.parametrize("spec_name", SPECS)
def test_selection_openfoam(benchmark, openfoam_prepared, spec_name):
    entry = _pipeline(spec_name)
    graph = openfoam_prepared.app.graph
    result = benchmark(lambda: evaluate_pipeline(entry, graph))
    assert len(result.selected) > 0


def test_table1_shape_lulesh(lulesh_prepared):
    """Qualitative Table I relations for lulesh."""
    outcomes = lulesh_prepared.select_all()
    assert outcomes["mpi coarse"].selected_pre < outcomes["mpi"].selected_pre
    assert (
        outcomes["kernels coarse"].selected_pre
        <= outcomes["kernels"].selected_pre
    )
    # lulesh selections are all well below 2% of the graph (paper: <=1.1%)
    n = len(lulesh_prepared.app.graph)
    for outcome in outcomes.values():
        assert outcome.selected_pre / n < 0.02


def test_table1_shape_openfoam(openfoam_prepared):
    """Qualitative Table I relations for openfoam."""
    outcomes = openfoam_prepared.select_all()
    # the mpi selection is broad (double-digit percentage territory),
    # kernels narrow (paper: 14.6% vs 5.9% pre)
    assert outcomes["mpi"].selected_pre > 5 * outcomes["kernels"].selected_pre
    # coarse removes a significant share (paper: 59,929 -> 42,800)
    assert outcomes["mpi coarse"].selected_pre < 0.9 * outcomes["mpi"].selected_pre
    # inlining compensation adds functions back on the coarse variant
    # (paper: #added grows from 1,366 to 3,177 with coarse)
    assert outcomes["mpi"].added > 0
    assert outcomes["mpi coarse"].added > 0
    # post-processing removes a large share of the raw selection
    # (paper: 59,929 pre -> 16,956 selected)
    assert outcomes["mpi"].selected_final < outcomes["mpi"].selected_pre


def test_selection_time_scales_subquadratically(benchmark):
    """Selection stays usable on much larger graphs (paper: <5 min at
    410k nodes).  Benchmarked at two sizes; the ratio must stay far
    below the quadratic blow-up."""
    import time

    from repro.experiments.runner import prepare_app

    small = prepare_app("openfoam", 4000)
    big = prepare_app("openfoam", 16000)
    entry_small = _pipeline("mpi")
    entry_big = _pipeline("mpi")

    t0 = time.perf_counter()
    evaluate_pipeline(entry_small, small.app.graph)
    t_small = time.perf_counter() - t0
    t0 = time.perf_counter()
    result = evaluate_pipeline(entry_big, big.app.graph)
    t_big = time.perf_counter() - t0
    assert len(result.selected) > 0
    assert t_big < max(t_small, 1e-3) * 64  # 4x nodes, way below 16x^2
    # record the big-graph selection as the benchmark timing
    benchmark(lambda: evaluate_pipeline(entry_big, big.app.graph))
