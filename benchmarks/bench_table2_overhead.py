"""Table II benchmarks: instrumentation overhead per configuration.

Each benchmark executes one Table II cell (a full simulated run) and
records its *virtual* Ttotal as extra info; the pytest-benchmark timing
tracks the harness cost itself.  Shape assertions encode the paper's
qualitative results:

* xray inactive ≈ vanilla,
* xray full ≫ filtered ICs; Score-P full > TALP full,
* overhead ordering full > mpi > mpi coarse ≥ kernels ≥ kernels coarse,
* TALP's mpi variant costs more app time than Score-P's (§VI-C flip).
"""

import pytest

from benchmarks.conftest import BENCH_WORKLOAD
from repro.experiments.runner import run_configuration

CONFIGS = [
    ("vanilla", "none"),
    ("inactive", "none"),
    ("full", "talp"),
    ("full", "scorep"),
    ("mpi", "talp"),
    ("mpi", "scorep"),
    ("mpi coarse", "talp"),
    ("kernels", "talp"),
    ("kernels", "scorep"),
    ("kernels coarse", "scorep"),
]


def _run(prepared, ics, config, tool):
    if config in ("vanilla", "inactive", "full"):
        return run_configuration(
            prepared,
            mode=config,
            tool=tool if config == "full" else "none",
            workload=BENCH_WORKLOAD,
            config_name=config,
        ).result
    return run_configuration(
        prepared,
        mode="ic",
        tool=tool,
        ic=ics[config],
        workload=BENCH_WORKLOAD,
        config_name=config,
    ).result


@pytest.mark.parametrize("config,tool", CONFIGS)
def test_overhead_openfoam(benchmark, openfoam_prepared, openfoam_ics, config, tool):
    result = benchmark.pedantic(
        lambda: _run(openfoam_prepared, openfoam_ics, config, tool),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["virtual_t_total"] = result.t_total
    benchmark.extra_info["virtual_t_init"] = result.t_init
    assert result.t_total > 0


@pytest.mark.parametrize(
    "config,tool", [("vanilla", "none"), ("full", "scorep"), ("kernels", "talp")]
)
def test_overhead_lulesh(benchmark, lulesh_prepared, lulesh_ics, config, tool):
    result = benchmark.pedantic(
        lambda: _run(lulesh_prepared, lulesh_ics, config, tool),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["virtual_t_total"] = result.t_total
    assert result.t_total > 0


class TestTable2Shape:
    """The paper's qualitative overhead relations (openfoam)."""

    @pytest.fixture(scope="class")
    def cells(self, openfoam_prepared, openfoam_ics):
        out = {}
        out["vanilla"] = _run(openfoam_prepared, openfoam_ics, "vanilla", "none")
        out["inactive"] = _run(openfoam_prepared, openfoam_ics, "inactive", "none")
        for tool in ("talp", "scorep"):
            for config in ("full", "mpi", "mpi coarse", "kernels", "kernels coarse"):
                out[(tool, config)] = _run(
                    openfoam_prepared, openfoam_ics, config, tool
                )
        return out

    def test_inactive_near_vanilla(self, cells):
        assert cells["inactive"].t_total == pytest.approx(
            cells["vanilla"].t_total, rel=0.05
        )

    def test_full_dominates_everything(self, cells):
        for tool in ("talp", "scorep"):
            assert cells[(tool, "full")].t_total > 2 * cells["vanilla"].t_total
            assert cells[(tool, "full")].t_total > cells[(tool, "mpi")].t_total

    def test_scorep_full_exceeds_talp_full(self, cells):
        """Paper: 305 s vs 171 s on openfoam."""
        assert (
            cells[("scorep", "full")].t_total > cells[("talp", "full")].t_total
        )

    def test_talp_mpi_exceeds_scorep_mpi(self, cells):
        """Paper: 90.9 s vs 72.8 s — the tool ranking flips for mpi."""
        assert (
            cells[("talp", "mpi")].t_app_cycles
            > cells[("scorep", "mpi")].t_app_cycles
        )

    def test_monotone_ordering_within_tools(self, cells):
        for tool in ("talp", "scorep"):
            assert (
                cells[(tool, "full")].t_total
                > cells[(tool, "mpi")].t_total
                > cells[(tool, "mpi coarse")].t_total
                > cells[(tool, "kernels")].t_total
                >= cells[(tool, "kernels coarse")].t_total
                > cells["vanilla"].t_total
            )

    def test_tinit_scales_with_patched_set(self, cells):
        for tool in ("talp", "scorep"):
            assert (
                cells[(tool, "full")].t_init
                > cells[(tool, "mpi")].t_init
                > cells[(tool, "kernels")].t_init
                > 0
            )

    def test_kernels_overhead_modest(self, cells):
        """Paper: ~16-18% overhead for the kernels ICs."""
        vanilla = cells["vanilla"].t_total
        for tool in ("talp", "scorep"):
            overhead = cells[(tool, "kernels")].t_total / vanilla - 1
            assert overhead < 0.8
