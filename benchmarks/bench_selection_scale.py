"""Selection + engine-walk scale benchmark with a seed-reference baseline.

Times the interned-id selection pipeline and the memoised execution
engine against a faithful re-implementation of the seed (pre-interning)
code paths:

* **selection baseline** — a string-keyed graph (``dict[str, set[str]]``
  adjacency) evaluated with the seed's copying accessors and
  string-set algebra, selector by selector;
* **engine baseline** — the current engine with every pure-structure
  cache replaced by a write-discarding stand-in (per-invocation target
  resolution, exactly the seed behaviour) plus the seed's linear-scan
  address/sled resolution restored via monkeypatching;
* **analysis baseline** — the pre-CSR dict/set graph kernels kept in
  ``repro.cg.analysis`` (dict-based Tarjan condensation, dict DP,
  bytearray sweep), timed against the CSR flat-array kernels.

Both baselines must produce *identical* results (selected sets,
``t_total``/``t_init`` per Table II cell) — the speedup is asserted on
top of that equivalence.  A ``BENCH_selection.json`` record is written
to the repository root so the performance trajectory is tracked:

    PYTHONPATH=src python benchmarks/bench_selection_scale.py
    PYTHONPATH=src python -m pytest benchmarks/bench_selection_scale.py -q
"""

from __future__ import annotations

import json
import re
import time
from contextlib import contextmanager
from pathlib import Path

from repro._util import compare
from repro.apps import PAPER_SPECS
from repro.cg.graph import CallGraph
from repro.core.pipeline import PipelineBuilder, evaluate_pipeline
from repro.core.spec.ast import AllExpr, Assign, CallExpr, RefExpr
from repro.core.spec.modules import load_spec
from repro.execution.engine import ExecutionEngine
from repro.experiments.runner import prepare_app, run_configuration

REPO_ROOT = Path(__file__).resolve().parent.parent
RECORD_PATH = REPO_ROOT / "BENCH_selection.json"

#: the 8k-node bench graph of benchmarks/conftest.py
BENCH_SCALE = 8000

#: acceptance floors (ISSUE 1): selection >=3x, engine walk >=2x
SELECTION_FLOOR = 3.0
ENGINE_FLOOR = 2.0

#: acceptance floor (ISSUE 5): CSR condensation + statement aggregation
#: >=5x over the dict-based kernels at the 8k-node bench graph
ANALYSIS_FLOOR = 5.0

#: acceptance floor (ISSUE 8): batched evaluation of >= SERVICE_BATCH
#: mixed specs over one warm snapshot >= 3x per-query sequential
#: throughput, every batched result bit-identical to sequential
SERVICE_FLOOR = 3.0
SERVICE_BATCH = 32

#: acceptance ceiling (ISSUE 10): the sharded, supervised service —
#: heartbeats, deadline checks, quarantine admission, health accounting
#: — must cost < 10% wall time over the unsupervised single-worker
#: service when no fault fires; the request wave driven per variant
#: (large enough that a run lasts tens of milliseconds — scheduler
#: noise on shorter runs swamps a sub-10% ratio)
SERVICE_SUPERVISION_REQUESTS = 32 * SERVICE_BATCH
SERVICE_SUPERVISION_REPS = 7

#: acceptance floor (ISSUE 9): re-selection after an
#: ``INCREMENTAL_EDITS``-edge delta through the mutation-journal path
#: (delta CSR refresh + support-set cache retention) >= 3x the same
#: edit replayed on a journal-less twin (from-scratch rebuild +
#: wholesale cache drop), results bit-identical
INCREMENTAL_FLOOR = 3.0
INCREMENTAL_EDITS = 16

#: multi-rank engine benchmark shape (serial vs multiprocessing backend)
MULTIRANK_RANKS = 8

#: acceptance ceiling: supervision (deadlines, integrity checks, health
#: accounting) must cost < 10% wall time over the raw multiprocessing
#: backend when no fault fires
SUPERVISED_OVERHEAD_CEILING = 0.10

#: acceptance ceiling: consuming the streaming merge must peak below
#: half the traced memory of loading every rank and merging in memory
TRACE_MEMORY_RATIO_CEILING = 0.5

#: Table II cells exercised for the engine comparison (config kwargs)
ENGINE_CELLS = (
    ("vanilla/-", dict(mode="vanilla")),
    ("inactive/-", dict(mode="inactive")),
    ("full/talp", dict(mode="full", tool="talp")),
    ("full/scorep", dict(mode="full", tool="scorep")),
    ("ic mpi/talp", dict(mode="ic", tool="talp", ic="mpi")),
    ("ic mpi/scorep", dict(mode="ic", tool="scorep", ic="mpi")),
    ("ic kernels/scorep", dict(mode="ic", tool="scorep", ic="kernels")),
    ("ic kernels coarse/talp", dict(mode="ic", tool="talp", ic="kernels coarse")),
)


# -- seed-reference selection -------------------------------------------------------
#
# A faithful re-implementation of the seed's string-keyed data structure
# and per-selector algorithms, evaluated straight off the spec AST.


class SeedGraph:
    """The seed ``CallGraph`` layout: name-keyed dict-of-set adjacency."""

    def __init__(self, graph: CallGraph):
        self.meta = {node.name: node.meta for node in graph.nodes()}
        self.succ: dict[str, set[str]] = {name: set() for name in self.meta}
        self.pred: dict[str, set[str]] = {name: set() for name in self.meta}
        for edge in graph.edges():
            self.succ[edge.caller].add(edge.callee)
            self.pred[edge.callee].add(edge.caller)

    # the seed's copying accessors
    def callees_of(self, name: str) -> set[str]:
        return set(self.succ.get(name, ()))

    def callers_of(self, name: str) -> set[str]:
        return set(self.pred.get(name, ()))

    def reachable_from(self, roots) -> set[str]:
        seen: set[str] = set()
        stack = [r for r in roots if r in self.meta]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.succ[name] - seen)
        return seen

    def reaching(self, targets) -> set[str]:
        seen: set[str] = set()
        stack = [t for t in targets if t in self.meta]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.pred[name] - seen)
        return seen

    def coarse(self, selected: set[str], critical: set[str]) -> set[str]:
        # the seed's top-down BFS, plus the root-seeding fix the CSR
        # selector ships: components without a zero-in-degree node
        # (top-level cycles) get one representative seeded so their
        # single-caller pass-throughs collapse too
        from collections import deque

        result = set(selected)
        order = sorted(self.meta)
        visited: set[str] = set()
        queue = deque(n for n in order if not self.pred[n])
        cursor = 0
        while True:
            while queue:
                name = queue.popleft()
                if name in visited:
                    continue
                visited.add(name)
                for callee in sorted(self.callees_of(name)):
                    if (
                        callee in result
                        and callee not in critical
                        and self.callers_of(callee) == {name}
                    ):
                        result.discard(callee)
                    queue.append(callee)
            while cursor < len(order) and order[cursor] in visited:
                cursor += 1
            if cursor == len(order):
                return result
            queue.append(order[cursor])


_META_FLAGS = {
    "inSystemHeader": "in_system_header",
    "inlineSpecified": "inline_marked",
    "virtual": "is_virtual",
    "defined": "has_body",
}
_METRICS = {
    "flops": lambda g, n: g.meta[n].flops,
    "loopDepth": lambda g, n: g.meta[n].loop_depth,
    "statements": lambda g, n: g.meta[n].statements,
    "callSites": lambda g, n: len(g.succ[n]),
    "callers": lambda g, n: len(g.pred[n]),
}


def seed_reference_select(graph: CallGraph, spec_source: str) -> frozenset[str]:
    """Evaluate a spec with the seed's string-set algorithms."""
    g = SeedGraph(graph)
    spec = load_spec(spec_source)
    named: dict[str, set[str]] = {}

    def ev(expr) -> set[str]:
        if isinstance(expr, AllExpr):
            return set(g.meta)
        if isinstance(expr, RefExpr):
            return set(named[expr.name])
        assert isinstance(expr, CallExpr)
        sel, args = expr.selector, expr.args
        if sel == "join":
            out: set[str] = set()
            for a in args:
                out |= ev(a)
            return out
        if sel == "subtract":
            out = ev(args[0])
            for a in args[1:]:
                out -= ev(a)
            return out
        if sel == "intersect":
            out = ev(args[0])
            for a in args[1:]:
                out &= ev(a)
            return out
        if sel == "complement":
            return set(g.meta) - ev(args[0])
        if sel in _META_FLAGS:
            attr = _META_FLAGS[sel]
            return {n for n in ev(args[0]) if getattr(g.meta[n], attr)}
        if sel in _METRICS:
            op, threshold = args[0].value, args[1].value
            fn = _METRICS[sel]
            return {
                n for n in ev(args[2]) if compare(op, float(fn(g, n)), threshold)
            }
        if sel == "byName":
            rx = re.compile(args[0].value)
            return {n for n in ev(args[1]) if rx.fullmatch(n)}
        if sel == "byPath":
            rx = re.compile(args[0].value)
            return {n for n in ev(args[1]) if rx.search(g.meta[n].source_path)}
        if sel == "onCallPathTo":
            return g.reaching(ev(args[0]))
        if sel == "onCallPathFrom":
            return g.reachable_from(ev(args[0]))
        if sel == "callPath":
            return g.reachable_from(ev(args[0])) & g.reaching(ev(args[1]))
        if sel == "coarse":
            critical = ev(args[1]) if len(args) > 1 else set()
            return g.coarse(ev(args[0]), critical)
        raise NotImplementedError(f"seed reference lacks selector {sel!r}")

    result: set[str] = set()
    for stmt in spec.statements:
        if isinstance(stmt, Assign):
            named[stmt.name] = ev(stmt.expr)
            result = named[stmt.name]
        else:
            result = ev(stmt)
    return frozenset(result)


# -- seed-reference engine mode ---------------------------------------------------


@contextmanager
def seed_execution_mode():
    """Restore the seed's per-call hot-path behaviour process-wide.

    * every engine resolves call targets and rebuilds function records
      per invocation (``defeat_memoization``),
    * Score-P address resolution scans the executable symbol table and
      all injected DSO symbols linearly per event, and
    * XRay ``sleds_of`` scans the whole sled table per query.
    """
    from repro.scorep import resolution
    from repro.xray import runtime as xray_runtime

    orig_post = ExecutionEngine.__post_init__
    orig_resolve = resolution.AddressResolver.resolve
    orig_sleds_of = xray_runtime.RegisteredObject.sleds_of

    def seed_post(self):
        orig_post(self)
        self.defeat_memoization()

    def seed_resolve(self, address):
        exe = self.loader.loaded.get(self.executable_name)
        if exe is not None and exe.region.contains(address):
            for sym in exe.binary.symtab:
                if sym.offset <= address - exe.base < sym.offset + sym.size:
                    self.resolved_queries += 1
                    return sym.name
        for start, (name, size) in self._injected.items():
            if start <= address < start + max(size, 1):
                self.resolved_queries += 1
                return name
        self.unresolved_queries += 1
        return None

    def seed_sleds_of(self, function_id):
        return [s for s in self.sleds if s.record.function_id == function_id]

    ExecutionEngine.__post_init__ = seed_post
    resolution.AddressResolver.resolve = seed_resolve
    xray_runtime.RegisteredObject.sleds_of = seed_sleds_of
    try:
        yield
    finally:
        ExecutionEngine.__post_init__ = orig_post
        resolution.AddressResolver.resolve = orig_resolve
        xray_runtime.RegisteredObject.sleds_of = orig_sleds_of


# -- measurement ------------------------------------------------------------------


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_selection(prepared) -> dict:
    """Per-spec selection timing: interned-id pipeline vs seed reference."""
    graph = prepared.app.graph
    specs = {}
    for name, source in PAPER_SPECS.items():
        entry = PipelineBuilder().build(load_spec(source))[0]
        new_result = evaluate_pipeline(entry, graph)
        ref_selected = seed_reference_select(graph, source)
        if new_result.selected != ref_selected:
            raise AssertionError(
                f"selection mismatch for {name!r}: interned-id and seed "
                f"reference disagree on {len(new_result.selected ^ ref_selected)}"
                " functions"
            )
        t_new = _best_of(lambda: evaluate_pipeline(entry, graph))
        t_ref = _best_of(lambda: seed_reference_select(graph, source))
        specs[name] = {
            "selected": len(new_result.selected),
            "seconds": t_new,
            "seed_seconds": t_ref,
            "speedup": t_ref / t_new,
        }
    total_new = sum(s["seconds"] for s in specs.values())
    total_ref = sum(s["seed_seconds"] for s in specs.values())
    return {
        "graph_nodes": len(graph),
        "graph_edges": graph.edge_count(),
        "specs": specs,
        "seconds": total_new,
        "seed_seconds": total_ref,
        "speedup": total_ref / total_new,
    }


def measure_selection_service(prepared) -> dict:
    """Batched multi-tenant evaluation vs per-query sequential (ISSUE 8).

    Builds a mixed batch of ``SERVICE_BATCH`` queries (the paper's four
    specifications plus the serve harness variants, cycled), evaluates
    it through the service stack — :class:`GraphStore` warm entry +
    :class:`BatchEvaluator` — and compares against evaluating every
    query independently with no shared state, after asserting each
    batched result is bit-identical to its sequential counterpart.
    Records cold (first batch: snapshot + cache build) and warm
    (steady-state) batch timings plus the store's warm/cold hit rates.
    """
    from repro.core.pipeline import compile_spec
    from repro.experiments.serve import spec_mix
    from repro.service import BatchEvaluator, GraphStore

    graph = prepared.app.graph
    mix = spec_mix()
    names = sorted(mix)
    batch_names = [names[i % len(names)] for i in range(SERVICE_BATCH)]
    specs = [compile_spec(mix[name], spec_name=name) for name in batch_names]

    # sequential reference: every query pays the full evaluation
    def sequential():
        return [evaluate_pipeline(spec.entry, graph) for spec in specs]

    seq_results = sequential()
    t_seq = _best_of(sequential)

    store = GraphStore()
    store.admit("bench", graph)
    evaluator = BatchEvaluator()
    t0 = time.perf_counter()
    cold_entry = store.entry("bench")  # cold: snapshot + cache build
    cold = evaluator.evaluate(specs, cold_entry)
    t_cold = time.perf_counter() - t0
    t_warm = _best_of(lambda: evaluator.evaluate(specs, store.entry("bench")))
    warm = evaluator.evaluate(specs, store.entry("bench"))

    for name, seq, batched in zip(batch_names, seq_results, cold.results):
        if seq.selected != batched.selected:
            raise AssertionError(
                f"cold batched result for {name!r} differs from sequential on "
                f"{len(seq.selected ^ batched.selected)} functions"
            )
    for name, seq, batched in zip(batch_names, seq_results, warm.results):
        if seq.selected != batched.selected:
            raise AssertionError(
                f"warm batched result for {name!r} differs from sequential on "
                f"{len(seq.selected ^ batched.selected)} functions"
            )
    return {
        "graph_nodes": len(graph),
        "graph_edges": graph.edge_count(),
        "batch_size": SERVICE_BATCH,
        "unique_specs": len(set(batch_names)),
        "deduped": cold.deduped,
        "cross_hits_cold": cold.cross_hits,
        "cross_hits_warm": warm.cross_hits,
        "sequential_seconds": t_seq,
        "sequential_requests_per_second": SERVICE_BATCH / t_seq,
        "cold_batch_seconds": t_cold,
        "warm_batch_seconds": t_warm,
        "batched_requests_per_second": SERVICE_BATCH / t_warm,
        "speedup": t_seq / t_warm,
        "store": store.stats.as_dict(),
        "bit_identical": True,
    }


def measure_service_supervision(prepared, scale: int = BENCH_SCALE) -> dict:
    """Healthy-path cost of service supervision + sharding (ISSUE 10).

    Drives the same ``SERVICE_SUPERVISION_REQUESTS`` mixed-spec wave
    through an unsupervised single-worker :class:`SelectionService` and
    through the supervised one (heartbeats, deadline checks, quarantine
    admission, health accounting — no fault injected), asserts the
    answers are bit-identical and the supervised health snapshot is
    clean (no restarts, no wedges, no lost requests, nothing
    quarantined), and records the wall-time overhead against
    ``SUPERVISED_OVERHEAD_CEILING``.  Interleaved best-of-
    ``SERVICE_SUPERVISION_REPS`` per variant: the warm per-request cost
    is small, so the ratio needs the scheduler noise squeezed out.

    Also records (no floor) multi-graph shard scaling: four independent
    graphs driven through ``shards=1`` vs ``shards=4``, answers
    asserted identical across shard counts.
    """
    from repro.experiments.runner import prepare_app as _prepare
    from repro.experiments.serve import spec_mix
    from repro.service import GraphStore, SelectionService, shard_of

    graph = prepared.app.graph
    mix = spec_mix()
    names = sorted(mix)
    plan = [names[i % len(names)] for i in range(SERVICE_SUPERVISION_REQUESTS)]

    def drive(service, keys):
        futures = [
            service.submit(
                keys[i % len(keys)],
                mix[name],
                tenant=f"t{i % 4}",
                spec_name=name,
            )
            for i, name in enumerate(plan)
        ]
        return [
            frozenset(f.result(timeout=120.0).selection.selected)
            for f in futures
        ]

    def run_once(supervised: bool):
        store = GraphStore()
        store.admit("bench", graph)
        service = SelectionService(
            store,
            window_seconds=0.0,
            max_batch=SERVICE_BATCH,
            supervised=supervised,
        )
        try:
            t0 = time.perf_counter()
            answers = drive(service, ["bench"])
            elapsed = time.perf_counter() - t0
            return elapsed, answers, service.stats_snapshot()["health"]
        finally:
            service.close()

    t_plain = t_sup = float("inf")
    plain_answers = sup_answers = health = None
    for _ in range(SERVICE_SUPERVISION_REPS):
        elapsed, plain_answers, _ = run_once(False)
        t_plain = min(t_plain, elapsed)
        elapsed, sup_answers, health = run_once(True)
        t_sup = min(t_sup, elapsed)
    if plain_answers != sup_answers:
        raise AssertionError(
            "supervised answers differ from the unsupervised baseline"
        )
    if health["restarts"] or health["wedges"] or health["lost"]:
        raise AssertionError(
            f"healthy supervised run reported faults: {health}"
        )
    quarantine = health["quarantine"]
    if quarantine["opened_total"] or quarantine["tracked"]:
        raise AssertionError(
            f"healthy supervised run quarantined specs: {quarantine}"
        )

    # multi-graph shard scaling: four independent graph objects (a graph
    # is owned by exactly one shard), same wave spread across their keys
    shard_nodes = max(600, scale // 4)
    copies = {
        f"bench-{i}": _prepare.__wrapped__("openfoam", shard_nodes).app.graph
        for i in range(4)
    }
    occupied = len({shard_of(key, 4) for key in copies})

    def run_sharded(shards: int):
        store = GraphStore()
        for key, copy in copies.items():
            store.admit(key, copy)
        service = SelectionService(
            store,
            window_seconds=0.0,
            max_batch=SERVICE_BATCH,
            shards=shards,
            supervised=True,
        )
        try:
            t0 = time.perf_counter()
            answers = drive(service, sorted(copies))
            return time.perf_counter() - t0, answers
        finally:
            service.close()

    t_one = t_four = float("inf")
    one_answers = four_answers = None
    for _ in range(2):
        elapsed, one_answers = run_sharded(1)
        t_one = min(t_one, elapsed)
        elapsed, four_answers = run_sharded(4)
        t_four = min(t_four, elapsed)
    if one_answers != four_answers:
        raise AssertionError("answers changed with the shard count")

    return {
        "requests": SERVICE_SUPERVISION_REQUESTS,
        "max_batch": SERVICE_BATCH,
        "graph_nodes": len(graph),
        "baseline_seconds": t_plain,
        "supervised_seconds": t_sup,
        "overhead": t_sup / t_plain - 1,
        "ceiling": SUPERVISED_OVERHEAD_CEILING,
        "bit_identical": True,
        "healthy": True,
        "shard_scaling": {
            "graphs": len(copies),
            "nodes_per_graph": shard_nodes,
            "requests": SERVICE_SUPERVISION_REQUESTS,
            "occupied_shards": occupied,
            "one_shard_seconds": t_one,
            "four_shard_seconds": t_four,
            "speedup": t_one / t_four,
            "bit_identical": True,
        },
    }


def _fresh_edges(graph):
    """Yield ``(caller, callee)`` pairs absent from ``graph`` — checked
    against the live graph at yield time, so consuming an edge and
    immediately adding it keeps the stream fresh forever.  Deterministic
    (prime-stride pairing), no RNG."""
    names = [node.name for node in graph.nodes()]
    n = len(names)
    stride = 0
    while True:
        stride += 7919  # prime: cycles through all pairings over time
        for i in range(n):
            j = (i + stride) % n
            if i == j:
                continue
            caller_id = graph.id_of(names[i])
            callee_id = graph.id_of(names[j])
            if callee_id in graph.succ_ids(caller_id):
                continue
            yield names[i], names[j]


def measure_incremental(prepared, edits: int = INCREMENTAL_EDITS) -> dict:
    """Delta refresh + re-selection vs full rebuild after a small edit.

    Two identical copies of the bench graph serve the paper's spec mix
    through warm :class:`GraphStore` entries.  Each rep applies the same
    ``edits`` fresh call edges to both copies and re-evaluates every
    spec: the *incremental* copy repairs its snapshot through the
    mutation journal and keeps every cross-run result whose recorded
    support set the delta provably missed; the *full* copy carries a
    zero-capacity journal (``copy(max_delta_entries=0)``), so the same
    edit forces a from-scratch CSR rebuild and a wholesale cache drop —
    the pre-ISSUE-9 behaviour.  Results must be bit-identical per rep
    (and, on the last rep, bit-identical to a cache-free fresh
    evaluation); the speedup floor is ``INCREMENTAL_FLOOR``.
    """
    from repro.core.pipeline import compile_spec
    from repro.experiments.serve import spec_mix
    from repro.service import BatchEvaluator, GraphStore

    inc_graph = prepared.app.graph.copy()
    full_graph = prepared.app.graph.copy(max_delta_entries=0)
    mix = spec_mix()
    specs = [compile_spec(mix[name], spec_name=name) for name in sorted(mix)]

    inc_store, full_store = GraphStore(), GraphStore()
    inc_store.admit("bench", inc_graph)
    full_store.admit("bench", full_graph)
    evaluator = BatchEvaluator()
    # warm both stores: snapshot built, cross-run caches populated
    evaluator.evaluate(specs, inc_store.entry("bench"))
    evaluator.evaluate(specs, full_store.entry("bench"))

    stream = _fresh_edges(inc_graph)
    reps = 3
    t_inc = t_full = float("inf")
    inc_batch = full_batch = None
    for _ in range(reps):
        for caller, callee in (next(stream) for _ in range(edits)):
            inc_graph.add_edge(caller, callee)
            full_graph.add_edge(caller, callee)
        t0 = time.perf_counter()
        inc_batch = evaluator.evaluate(specs, inc_store.entry("bench"))
        t_inc = min(t_inc, time.perf_counter() - t0)
        t0 = time.perf_counter()
        full_batch = evaluator.evaluate(specs, full_store.entry("bench"))
        t_full = min(t_full, time.perf_counter() - t0)
        for spec, inc_res, full_res in zip(
            specs, inc_batch.results, full_batch.results
        ):
            if inc_res.selected != full_res.selected:
                raise AssertionError(
                    f"incremental result for {spec.spec_name!r} differs from "
                    f"full rebuild on "
                    f"{len(inc_res.selected ^ full_res.selected)} functions"
                )
    # the delta paths must actually have engaged: every stale access on
    # the incremental store repaired through the journal, never on the
    # journal-less twin
    inc_stats, full_stats = inc_store.stats, full_store.stats
    if inc_stats.delta_refreshes != reps:
        raise AssertionError(
            f"journal answered {inc_stats.delta_refreshes} of {reps} "
            "incremental refreshes"
        )
    if full_stats.delta_refreshes != 0 or full_stats.cache_retained != 0:
        raise AssertionError("zero-capacity journal still served a delta")
    # last rep vs a cache-free fresh evaluation — selector purity gate
    for spec, inc_res in zip(specs, inc_batch.results):
        fresh = evaluate_pipeline(spec.entry, inc_graph)
        if inc_res.selected != fresh.selected:
            raise AssertionError(
                f"incremental result for {spec.spec_name!r} differs from a "
                f"fresh evaluation on "
                f"{len(inc_res.selected ^ fresh.selected)} functions"
            )
    touched = inc_stats.cache_retained + inc_stats.cache_dropped
    return {
        "graph_nodes": len(inc_graph),
        "graph_edges": inc_graph.edge_count(),
        "edits_per_delta": edits,
        "reps": reps,
        "specs": len(specs),
        "incremental_seconds": t_inc,
        "full_rebuild_seconds": t_full,
        "speedup": t_full / t_inc,
        "delta_refreshes": inc_stats.delta_refreshes,
        "cache_retained": inc_stats.cache_retained,
        "cache_dropped": inc_stats.cache_dropped,
        "retention_rate": inc_stats.cache_retained / touched if touched else 0.0,
        "bit_identical": True,
    }


def measure_analysis(prepared) -> dict:
    """Graph-kernel timing: CSR flat-array kernels vs the dict baseline.

    Times condensation (SCC partition of the subgraph reachable from
    ``main``), the statement-aggregation DP, the reachability sweep and
    BFS call depths, each against the pre-CSR dict/set implementations
    kept in :mod:`repro.cg.analysis` — after asserting the results are
    bit-for-bit identical.  The acceptance floor applies to the combined
    condensation + aggregation speedup (``ANALYSIS_FLOOR``).
    """
    from collections import deque

    from repro.cg import analysis
    from repro.cg import csr as csr_kernels

    graph = prepared.app.graph
    root_id = graph.id_of("main")
    snapshot = graph.csr()
    snapshot.topological_waves()  # structural caches warm, like meta columns

    # equality gates: aggregation totals, partition, depths, sweep
    dict_agg = analysis._aggregate_statement_ids_dicts(graph, root_id)
    csr_agg = analysis.aggregate_statement_ids(graph, root_id)
    if dict_agg != csr_agg:
        raise AssertionError(
            "CSR aggregation differs from the dict baseline on "
            f"{len(set(dict_agg.items()) ^ set(csr_agg.items()))} entries"
        )
    dict_comp, dict_members = analysis._condense(graph, root_id)
    _, csr_members = csr_kernels.condense(snapshot, root_id)
    if sorted(tuple(sorted(m)) for m in dict_members) != sorted(
        tuple(sorted(m)) for m in csr_members
    ):
        raise AssertionError("CSR condensation partition differs from baseline")

    def dict_depths() -> dict[int, int]:
        depths = {root_id: 0}
        queue = deque([root_id])
        succ = graph.succ_ids
        while queue:
            nid = queue.popleft()
            base = depths[nid] + 1
            for callee in succ(nid):
                if callee not in depths:
                    depths[callee] = base
                    queue.append(callee)
        return depths

    if dict_depths() != analysis.call_depth_ids_from(graph, root_id):
        raise AssertionError("CSR call depths differ from baseline")
    if analysis._dict_reachable_ids(graph, [root_id]) != graph.reachable_ids(
        [root_id]
    ):
        raise AssertionError("CSR reachability sweep differs from baseline")

    def dict_condensation():
        comp_of, members = analysis._condense(graph, root_id)
        comp_succ = analysis._condensation_edges(graph, comp_of, members)
        analysis._topo_order(comp_succ)

    entries = {
        "condensation": (
            lambda: csr_kernels.condense(snapshot, root_id),
            dict_condensation,
        ),
        "aggregate_statement_ids": (
            lambda: analysis.aggregate_statement_ids(graph, root_id),
            lambda: analysis._aggregate_statement_ids_dicts(graph, root_id),
        ),
        "reachability_sweep": (
            lambda: graph.reachable_ids([root_id]),
            lambda: analysis._dict_reachable_ids(graph, [root_id]),
        ),
        "call_depths": (
            lambda: analysis.call_depth_ids_from(graph, root_id),
            dict_depths,
        ),
    }
    kernels = {}
    for name, (csr_fn, dict_fn) in entries.items():
        t_csr = _best_of(csr_fn)
        t_dict = _best_of(dict_fn)
        kernels[name] = {
            "seconds": t_csr,
            "seed_seconds": t_dict,
            "speedup": t_dict / t_csr,
        }
    floored = ("condensation", "aggregate_statement_ids")
    total_csr = sum(kernels[name]["seconds"] for name in floored)
    total_dict = sum(kernels[name]["seed_seconds"] for name in floored)
    return {
        "graph_nodes": len(graph),
        "graph_edges": graph.edge_count(),
        "reachable_from_main": len(graph.reachable_ids([root_id])),
        "kernels": kernels,
        "seconds": total_csr,
        "seed_seconds": total_dict,
        "speedup": total_dict / total_csr,
        "results_identical": True,
    }


def measure_engine(prepared) -> dict:
    """Table II cell timing: memoised engine vs seed-mode engine."""
    ics = {k: v.ic for k, v in prepared.select_all().items()}

    def run_cell(spec):
        kwargs = dict(spec)
        ic_name = kwargs.pop("ic", None)
        if ic_name is not None:
            kwargs["ic"] = ics[ic_name]
        return run_configuration(prepared, **kwargs).result

    cells = {}
    for cell_name, spec in ENGINE_CELLS:
        t0 = time.perf_counter()
        new_result = run_cell(spec)
        t_new = time.perf_counter() - t0
        with seed_execution_mode():
            t0 = time.perf_counter()
            ref_result = run_cell(spec)
            t_ref = time.perf_counter() - t0
        for field_name in ("t_total", "t_init", "entry_events", "mpi_calls"):
            new_v = getattr(new_result, field_name)
            ref_v = getattr(ref_result, field_name)
            if new_v != ref_v:
                raise AssertionError(
                    f"engine mismatch in cell {cell_name!r}: {field_name} "
                    f"memoised={new_v!r} seed={ref_v!r}"
                )
        cells[cell_name] = {
            "t_total_virtual": new_result.t_total,
            "t_init_virtual": new_result.t_init,
            "seconds": t_new,
            "seed_seconds": t_ref,
            "speedup": t_ref / t_new,
        }
    total_new = sum(c["seconds"] for c in cells.values())
    total_ref = sum(c["seed_seconds"] for c in cells.values())
    return {
        "cells": cells,
        "seconds": total_new,
        "seed_seconds": total_ref,
        "speedup": total_ref / total_new,
    }


def measure_multirank(prepared, ranks: int = MULTIRANK_RANKS) -> dict:
    """Multi-rank engine benchmark: serial vs multiprocessing backend.

    Runs one imbalanced ``ic mpi/scorep`` configuration across ``ranks``
    simulated ranks with both backends, asserts the merged profile and
    the POP metrics are bit-identical, and records both wall times.  On
    a single-core container the pool adds overhead instead of speedup —
    the record keeps both numbers so the trajectory is visible once the
    bench runs on real cores; equality is the hard requirement.
    """
    from repro.multirank import ImbalanceSpec, flatten_merged
    from repro.workflow import run_app

    ic = prepared.select_all()["mpi"].ic
    spec = ImbalanceSpec(imbalance=0.3, seed=17)

    def run_cell(backend: str):
        return run_app(
            prepared.app,
            mode="ic",
            tool="scorep",
            ic=ic,
            ranks=ranks,
            imbalance=spec,
            backend=backend,
            config_name="bench-multirank",
        )

    t0 = time.perf_counter()
    serial = run_cell("serial")
    t_serial = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_cell("multiprocessing")
    t_parallel = time.perf_counter() - t0
    if serial.pop.app != parallel.pop.app:
        raise AssertionError("serial and multiprocessing POP metrics differ")
    if flatten_merged(serial.merged_profile) != flatten_merged(
        parallel.merged_profile
    ):
        raise AssertionError("serial and multiprocessing merged profiles differ")
    pop = serial.pop.app
    return {
        "ranks": ranks,
        "serial_seconds": t_serial,
        "multiprocessing_seconds": t_parallel,
        "speedup": t_serial / t_parallel,
        "elapsed_virtual": serial.result.t_total,
        "pop": {
            "load_balance": pop.load_balance,
            "communication_efficiency": pop.communication_efficiency,
            "parallel_efficiency": pop.parallel_efficiency,
        },
        "backends_identical": True,
    }


def measure_supervised_overhead(prepared, ranks: int = MULTIRANK_RANKS) -> dict:
    """Healthy-path cost of supervision over the raw mp backend.

    Runs the multi-rank bench cell with the plain multiprocessing
    backend and with ``SupervisedBackend`` wrapping it (same pool shape,
    no fault injected), asserts the POP metrics and merged profiles are
    bit-identical and that every rank reports a clean single-attempt
    health record, then records the wall-time overhead.  Best-of-2 per
    backend to keep scheduler noise out of the ratio; the acceptance
    ceiling is ``SUPERVISED_OVERHEAD_CEILING``.
    """
    from repro.multirank import ImbalanceSpec, flatten_merged
    from repro.workflow import run_app

    ic = prepared.select_all()["mpi"].ic
    spec = ImbalanceSpec(imbalance=0.3, seed=17)

    def run_cell(backend: str):
        return run_app(
            prepared.app,
            mode="ic",
            tool="scorep",
            ic=ic,
            ranks=ranks,
            imbalance=spec,
            backend=backend,
            config_name="bench-supervised",
        )

    t_raw = float("inf")
    t_sup = float("inf")
    for _ in range(2):
        t0 = time.perf_counter()
        raw = run_cell("multiprocessing")
        t_raw = min(t_raw, time.perf_counter() - t0)
        t0 = time.perf_counter()
        supervised = run_cell("supervised:multiprocessing")
        t_sup = min(t_sup, time.perf_counter() - t0)
    if raw.pop.app != supervised.pop.app:
        raise AssertionError("supervised and raw mp POP metrics differ")
    if flatten_merged(raw.merged_profile) != flatten_merged(
        supervised.merged_profile
    ):
        raise AssertionError("supervised and raw mp merged profiles differ")
    health = supervised.health
    if health.per_rank is None or any(
        h.lost or h.retried for h in health.per_rank
    ):
        raise AssertionError(
            f"healthy supervised run reported failures: {health.render()}"
        )
    return {
        "ranks": ranks,
        "raw_mp_seconds": t_raw,
        "supervised_seconds": t_sup,
        "overhead": t_sup / t_raw - 1,
        "ceiling": SUPERVISED_OVERHEAD_CEILING,
        "results_identical": True,
        "all_ranks_healthy": True,
    }


def measure_dlb_rebalance(prepared, ranks: int = MULTIRANK_RANKS) -> dict:
    """DLB feedback-loop benchmark: convergence speed and POP gain.

    Runs the ``straggler-rescue`` scenario (one rank at 2× load) through
    ``run_rebalanced`` and records the iterations the LeWI loop took to
    converge plus the before/after POP metrics.  Improvement is the
    hard requirement; iteration count and wall time are the trajectory.
    """
    from repro.apps import scenario
    from repro.multirank.dlb import DlbPolicy
    from repro.multirank.scheduler import run_rebalanced

    ic = prepared.select_all()["mpi"].ic
    t0 = time.perf_counter()
    rebalanced = run_rebalanced(
        prepared.app,
        ranks=ranks,
        imbalance=scenario("straggler-rescue"),
        dlb=DlbPolicy(),
        max_iterations=6,
        mode="ic",
        tool="talp",
        ic=ic,
        config_name="bench-dlb",
    )
    seconds = time.perf_counter() - t0
    before = rebalanced.baseline.pop.app
    after = rebalanced.final.pop.app
    if after.parallel_efficiency <= before.parallel_efficiency:
        raise AssertionError(
            "DLB rebalancing failed to improve parallel efficiency: "
            f"{before.parallel_efficiency} -> {after.parallel_efficiency}"
        )
    if not rebalanced.converged:
        raise AssertionError("DLB rebalancing did not converge in 6 iterations")
    return {
        "ranks": ranks,
        "scenario": "straggler-rescue",
        "iterations": rebalanced.iterations,
        "converged": rebalanced.converged,
        "seconds": seconds,
        "pop_before": {
            "load_balance": before.load_balance,
            "communication_efficiency": before.communication_efficiency,
            "parallel_efficiency": before.parallel_efficiency,
        },
        "pop_after": {
            "load_balance": after.load_balance,
            "communication_efficiency": after.communication_efficiency,
            "parallel_efficiency": after.parallel_efficiency,
        },
    }


def measure_trace_pipeline(prepared, ranks: int = MULTIRANK_RANKS) -> dict:
    """Durable trace pipeline: write throughput, streaming-merge memory.

    Runs one traced multi-rank cell with ``trace_dir=`` persistence,
    asserts the streamed-from-disk timeline is bit-identical to the
    in-memory merge and that the watchdog stays silent on the healthy
    archive, then measures (a) location-write throughput (events/s
    through :class:`TraceWriter`) and (b) peak traced memory of
    consuming the streaming merge vs. loading + merging in memory —
    the bounded-memory claim, asserted as a ratio ceiling.  The
    archive's collective-wait fraction is recorded as
    ``healthy_wait_fraction``: the watchdog's regression baseline.
    """
    import tempfile
    import tracemalloc

    from repro.multirank import ImbalanceSpec, merge_rank_traces
    from repro.trace import load_location, open_merged_trace, scan_run
    from repro.trace.store import TraceWriter
    from repro.workflow import run_app

    ic = prepared.select_all()["mpi"].ic
    spec = ImbalanceSpec(imbalance=0.3, seed=17)
    with tempfile.TemporaryDirectory() as td:
        t0 = time.perf_counter()
        out = run_app(
            prepared.app,
            mode="ic",
            tool="scorep",
            ic=ic,
            ranks=ranks,
            imbalance=spec,
            backend="serial",
            tracing=True,
            trace_dir=td,
            config_name="bench-trace",
        )
        run_seconds = time.perf_counter() - t0
        streamed = open_merged_trace(td)
        if list(streamed.events()) != list(out.merged_trace.events):
            raise AssertionError(
                "streamed-from-disk merge differs from the in-memory timeline"
            )
        if scan_run(td):
            raise AssertionError("watchdog alerted on a healthy bench archive")
        total_events = sum(streamed.events_per_rank)
        wait_fraction = (
            sum(streamed.rank_offsets)
            / (streamed.ranks * streamed.elapsed_cycles)
            if streamed.elapsed_cycles > 0
            else 0.0
        )

        # write throughput: stream rank 0's events through a fresh writer
        events = load_location(td, 0)
        with tempfile.TemporaryDirectory() as wtd:
            def rewrite():
                writer = TraceWriter(wtd, 0)
                writer.write_events(events)
                writer.close()

            write_seconds = _best_of(rewrite)
        write_throughput = len(events) / write_seconds

        # peak traced memory: load-everything-and-merge vs streaming
        rank_ids = streamed.rank_ids
        del out, streamed, events
        tracemalloc.start()
        streams = [load_location(td, rank) for rank in rank_ids]
        merged = merge_rank_traces(streams, rank_ids=rank_ids)
        _, in_memory_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del merged, streams
        tracemalloc.start()
        consumed = 0
        for _ in open_merged_trace(td).events():
            consumed += 1
        _, streaming_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if consumed != total_events:
            raise AssertionError(
                f"streaming merge yielded {consumed} of {total_events} events"
            )
    memory_ratio = streaming_peak / in_memory_peak
    return {
        "ranks": ranks,
        "events": total_events,
        "run_seconds": run_seconds,
        "write_events_per_second": write_throughput,
        "in_memory_peak_bytes": in_memory_peak,
        "streaming_peak_bytes": streaming_peak,
        "memory_ratio": memory_ratio,
        "memory_ratio_ceiling": TRACE_MEMORY_RATIO_CEILING,
        "healthy_wait_fraction": wait_fraction,
        "bit_identical": True,
        "watchdog_silent": True,
    }


def collect_record(scale: int = BENCH_SCALE, ranks: int = MULTIRANK_RANKS) -> dict:
    prepared = prepare_app("openfoam", scale)
    selection = measure_selection(prepared)
    selection_service = measure_selection_service(prepared)
    service_supervision = measure_service_supervision(prepared, scale)
    incremental = measure_incremental(prepared)
    analysis = measure_analysis(prepared)
    engine = measure_engine(prepared)
    multirank = measure_multirank(prepared, ranks)
    supervised = measure_supervised_overhead(prepared, ranks)
    dlb_rebalance = measure_dlb_rebalance(prepared, ranks)
    trace_pipeline = measure_trace_pipeline(prepared, ranks)
    return {
        "benchmark": "bench_selection_scale",
        "app": "openfoam",
        "scale": scale,
        "selection": selection,
        "selection_service": selection_service,
        "service_supervision": service_supervision,
        "incremental": incremental,
        "analysis": analysis,
        "engine": engine,
        "multirank": multirank,
        "supervised_overhead": supervised,
        "dlb_rebalance": dlb_rebalance,
        "trace_pipeline": trace_pipeline,
        "floors": {
            "selection": SELECTION_FLOOR,
            "selection_service": SERVICE_FLOOR,
            "incremental": INCREMENTAL_FLOOR,
            "engine": ENGINE_FLOOR,
            "analysis": ANALYSIS_FLOOR,
            "supervised_overhead_ceiling": SUPERVISED_OVERHEAD_CEILING,
            "service_supervision_overhead_ceiling": SUPERVISED_OVERHEAD_CEILING,
            "trace_memory_ratio_ceiling": TRACE_MEMORY_RATIO_CEILING,
        },
    }


def write_record(record: dict, path: Path = RECORD_PATH) -> Path:
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


# -- pytest entry points ----------------------------------------------------------


def test_selection_scale_speedup_and_record(benchmark, openfoam_prepared):
    """Selection >=3x and engine walk >=2x over the seed implementation,
    identical selected sets and Table II virtual timings; emits the
    BENCH_selection.json perf-trajectory record."""
    record = collect_record(BENCH_SCALE)
    write_record(record)
    assert record["selection"]["speedup"] >= SELECTION_FLOOR, record["selection"]
    svc = record["selection_service"]
    assert svc["bit_identical"], svc
    assert svc["batch_size"] >= SERVICE_BATCH, svc
    assert svc["speedup"] >= SERVICE_FLOOR, svc
    ssup = record["service_supervision"]
    assert ssup["bit_identical"] and ssup["healthy"], ssup
    assert ssup["overhead"] < SUPERVISED_OVERHEAD_CEILING, ssup
    assert ssup["shard_scaling"]["bit_identical"], ssup
    inc = record["incremental"]
    assert inc["bit_identical"], inc
    assert inc["delta_refreshes"] == inc["reps"], inc
    assert inc["speedup"] >= INCREMENTAL_FLOOR, inc
    assert record["engine"]["speedup"] >= ENGINE_FLOOR, record["engine"]
    assert record["analysis"]["speedup"] >= ANALYSIS_FLOOR, record["analysis"]
    assert record["analysis"]["results_identical"], record["analysis"]
    assert record["multirank"]["backends_identical"], record["multirank"]
    assert record["multirank"]["pop"]["load_balance"] < 1.0
    sup = record["supervised_overhead"]
    assert sup["results_identical"] and sup["all_ranks_healthy"], sup
    assert sup["overhead"] < SUPERVISED_OVERHEAD_CEILING, sup
    dlb = record["dlb_rebalance"]
    assert dlb["converged"], dlb
    assert (
        dlb["pop_after"]["parallel_efficiency"]
        > dlb["pop_before"]["parallel_efficiency"]
    ), dlb
    tp = record["trace_pipeline"]
    assert tp["bit_identical"] and tp["watchdog_silent"], tp
    assert tp["memory_ratio"] < TRACE_MEMORY_RATIO_CEILING, tp
    graph = openfoam_prepared.app.graph
    entry = PipelineBuilder().build(load_spec(PAPER_SPECS["mpi"]))[0]
    result = benchmark(lambda: evaluate_pipeline(entry, graph))
    assert len(result.selected) > 0


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=int,
        default=BENCH_SCALE,
        help=f"openfoam graph size (default {BENCH_SCALE}; paper scale 410666)",
    )
    parser.add_argument("--output", type=Path, default=RECORD_PATH)
    parser.add_argument(
        "--ranks",
        type=int,
        default=MULTIRANK_RANKS,
        help=f"multi-rank bench world size (default {MULTIRANK_RANKS})",
    )
    args = parser.parse_args()
    record = collect_record(args.scale, args.ranks)
    path = write_record(record, args.output)
    sel, eng, mr = record["selection"], record["engine"], record["multirank"]
    ana = record["analysis"]
    print(f"selection: {sel['seed_seconds']:.3f}s -> {sel['seconds']:.3f}s "
          f"({sel['speedup']:.1f}x, floor {SELECTION_FLOOR}x)")
    svc = record["selection_service"]
    print(f"service:   batch of {svc['batch_size']} mixed specs "
          f"({svc['unique_specs']} unique): sequential "
          f"{svc['sequential_requests_per_second']:,.0f} req/s -> batched "
          f"{svc['batched_requests_per_second']:,.0f} req/s "
          f"({svc['speedup']:.1f}x, floor {SERVICE_FLOOR}x), warm hit rate "
          f"{100 * svc['store']['hit_rate']:.0f}%, bit-identical")
    ssup = record["service_supervision"]
    sscale = ssup["shard_scaling"]
    print(f"service supervision: {ssup['requests']} requests, unsupervised "
          f"{ssup['baseline_seconds']:.3f}s -> supervised "
          f"{ssup['supervised_seconds']:.3f}s ({100 * ssup['overhead']:+.1f}%, "
          f"ceiling +{100 * SUPERVISED_OVERHEAD_CEILING:.0f}%); "
          f"{sscale['graphs']} graphs on {sscale['occupied_shards']} shards "
          f"{sscale['one_shard_seconds']:.3f}s -> "
          f"{sscale['four_shard_seconds']:.3f}s "
          f"({sscale['speedup']:.2f}x, recorded), bit-identical")
    inc = record["incremental"]
    print(f"incremental: {inc['edits_per_delta']}-edge delta, re-selection "
          f"{inc['full_rebuild_seconds'] * 1e3:.2f}ms full -> "
          f"{inc['incremental_seconds'] * 1e3:.2f}ms journal "
          f"({inc['speedup']:.1f}x, floor {INCREMENTAL_FLOOR}x), "
          f"{100 * inc['retention_rate']:.0f}% cache retained, bit-identical")
    print(f"analysis:  {ana['seed_seconds']:.3f}s -> {ana['seconds']:.3f}s "
          f"({ana['speedup']:.1f}x, floor {ANALYSIS_FLOOR}x; "
          f"{ana['reachable_from_main']} nodes reachable from main)")
    print(f"engine:    {eng['seed_seconds']:.3f}s -> {eng['seconds']:.3f}s "
          f"({eng['speedup']:.1f}x, floor {ENGINE_FLOOR}x)")
    print(f"multirank: {mr['ranks']} ranks, serial {mr['serial_seconds']:.3f}s, "
          f"mp {mr['multiprocessing_seconds']:.3f}s ({mr['speedup']:.2f}x), "
          f"LB {mr['pop']['load_balance']:.3f}, backends identical")
    sup = record["supervised_overhead"]
    print(f"supervised: raw mp {sup['raw_mp_seconds']:.3f}s, supervised "
          f"{sup['supervised_seconds']:.3f}s ({100 * sup['overhead']:+.1f}%, "
          f"ceiling +{100 * SUPERVISED_OVERHEAD_CEILING:.0f}%), "
          f"results identical, all ranks healthy")
    dlb = record["dlb_rebalance"]
    print(f"dlb:       {dlb['scenario']}, PE "
          f"{dlb['pop_before']['parallel_efficiency']:.3f} -> "
          f"{dlb['pop_after']['parallel_efficiency']:.3f} in "
          f"{dlb['iterations']} iteration(s) ({dlb['seconds']:.3f}s)")
    tp = record["trace_pipeline"]
    print(f"trace:     {tp['events']} events, write "
          f"{tp['write_events_per_second']:,.0f} ev/s, streaming peak "
          f"{tp['streaming_peak_bytes'] / 1e6:.1f}MB vs in-memory "
          f"{tp['in_memory_peak_bytes'] / 1e6:.1f}MB "
          f"(ratio {tp['memory_ratio']:.2f}, ceiling "
          f"{TRACE_MEMORY_RATIO_CEILING}), wait fraction "
          f"{tp['healthy_wait_fraction']:.4f}, bit-identical")
    print(f"record written to {path}")
    ok = (
        sel["speedup"] >= SELECTION_FLOOR
        and svc["speedup"] >= SERVICE_FLOOR
        and svc["bit_identical"]
        and ssup["overhead"] < SUPERVISED_OVERHEAD_CEILING
        and ssup["bit_identical"]
        and ssup["healthy"]
        and inc["speedup"] >= INCREMENTAL_FLOOR
        and inc["bit_identical"]
        and eng["speedup"] >= ENGINE_FLOOR
        and ana["speedup"] >= ANALYSIS_FLOOR
        and sup["overhead"] < SUPERVISED_OVERHEAD_CEILING
        and tp["memory_ratio"] < TRACE_MEMORY_RATIO_CEILING
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
