"""Patching and packed-id microbenchmarks (Tinit mechanics + Fig. 4).

Covers the runtime mechanics behind the Tinit column: sled patching
throughput, startup symbol collection/id mapping, and the packed-id
encoding of Fig. 4.
"""

import pytest

from repro.dyncapi.runtime import DynCapi
from repro.dyncapi.symbols import build_id_name_map
from repro.execution.clock import VirtualClock
from repro.program.loader import DynamicLoader
from repro.xray.ids import PackedId
from repro.xray.runtime import XRayRuntime


@pytest.fixture
def wired_openfoam(openfoam_prepared):
    loader = DynamicLoader()
    loader.load_program(openfoam_prepared.app.linked)
    xray = XRayRuntime(loader.image)
    dyn = DynCapi(xray=xray, loader=loader, clock=VirtualClock())
    return dyn, loader


def test_patch_all_throughput(benchmark, wired_openfoam):
    """Patch every sled of the openfoam build (the 'xray full' Tinit)."""
    dyn, loader = wired_openfoam
    report = dyn.startup_inactive()

    def patch_unpatch():
        n = dyn.xray.patch_all()
        dyn.xray.unpatch_all()
        return n

    sleds = benchmark(patch_unpatch)
    assert sleds == 2 * len(dyn.xray.packed_ids())


def test_id_name_mapping(benchmark, wired_openfoam):
    """Symbol collection + __xray_function_address cross-check."""
    dyn, loader = wired_openfoam
    dyn.startup_inactive()
    id_map = benchmark(lambda: build_id_name_map(dyn.xray, loader))
    assert len(id_map.names) > 0
    assert id_map.unresolved_count > 0  # hidden DSO functions


def test_startup_full_sequence(benchmark, openfoam_prepared, openfoam_ics):
    """Complete DynCaPI startup with the mpi IC (one Tinit)."""

    def startup():
        loader = DynamicLoader()
        loader.load_program(openfoam_prepared.app.linked)
        dyn = DynCapi(
            xray=XRayRuntime(loader.image), loader=loader, clock=VirtualClock()
        )
        return dyn.startup(ic=openfoam_ics["mpi"])

    report = benchmark.pedantic(startup, rounds=2, iterations=1)
    assert report.patched_functions > 0
    assert report.init_cycles > 0


def test_packed_id_roundtrip_throughput(benchmark):
    """Fig. 4 encoding: pack/unpack one million ids."""
    ids = [PackedId(i % 256, i % (1 << 24)) for i in range(0, 1 << 16, 7)]

    def roundtrip():
        total = 0
        for pid in ids:
            total += PackedId.unpack(pid.pack()).function_id
        return total

    assert benchmark(roundtrip) > 0


def test_repatch_turnaround(benchmark, openfoam_prepared, openfoam_ics):
    """IC adjustment without recompilation — the headline feature."""
    loader = DynamicLoader()
    loader.load_program(openfoam_prepared.app.linked)
    dyn = DynCapi(
        xray=XRayRuntime(loader.image), loader=loader, clock=VirtualClock()
    )
    dyn.startup(ic=openfoam_ics["mpi"])
    ics = [openfoam_ics["kernels"], openfoam_ics["mpi coarse"]]
    state = {"i": 0}

    def repatch():
        state["i"] += 1
        return dyn.repatch(ics[state["i"] % 2])

    report = benchmark(repatch)
    assert report.patched_functions > 0
