"""The rank scheduler: one BuiltApp executed across N simulated ranks.

Each rank is an independent, fully deterministic single-rank execution
(`repro.workflow.run_app`) over the *shared immutable* program, linked
image and call graph — only the rank's :class:`Workload` differs, as
perturbed by the :class:`~repro.multirank.imbalance.ImbalanceSpec`.
Ranks are therefore embarrassingly parallel; the
:mod:`~repro.multirank.backends` decide whether they run in-process or
across a process pool.

The scheduler collects one :class:`RankResult` per rank — the engine's
:class:`~repro.execution.result.RunResult` plus the rank's Score-P
profile (as a plain dict), TALP region samples and (``tracing=True``)
the rank's event-trace stream, all picklable so the multiprocessing
backend can ship them back — and hands the list to the cross-rank
reducers for the merged profile, the POP report and the merged
rank-tagged timeline (:mod:`repro.multirank.tracing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError, DegradedResultError
from repro.execution.costs import CostModel
from repro.execution.result import RunResult
from repro.execution.workload import Workload
from repro.multirank.faults import (
    FaultSpec,
    HealthReport,
    RankFaultPlan,
    corrupt_result,
    inject_pre_execution,
)
from repro.multirank.imbalance import ImbalanceSpec
from repro.multirank.reduce import (
    MergedProfileNode,
    PopReport,
    build_pop_report,
    merge_profiles,
)
from repro.multirank.tracing import (
    MergedTrace,
    merge_rank_traces,
    validate_tracing,
)
from repro.scorep.tracing import TraceEvent


@dataclass(frozen=True)
class RegionSample:
    """Picklable snapshot of one TALP monitoring region on one rank."""

    name: str
    visits: int
    elapsed_cycles: float
    mpi_cycles: float
    useful_cycles: float


@dataclass(frozen=True)
class RankTask:
    """Everything one rank's execution needs beyond the BuiltApp."""

    rank: int
    ranks: int
    mode: str
    tool: str
    ic: InstrumentationConfig | None
    workload: Workload
    cost_model: CostModel | None
    symbol_injection: bool
    emulate_talp_bug: bool
    talp_bug_threshold: int | None
    talp_bug_modulus: int | None
    config_name: str
    tracing: bool = False
    #: chaos-injection schedule for this rank (None: run clean)
    fault: RankFaultPlan | None = None
    #: which execution attempt this is (0 = first try); only the
    #: supervised backend ever re-dispatches with attempt > 0
    attempt: int = 0
    #: True when the task runs in a sacrificial worker process — an
    #: injected "die" fault may really ``os._exit``; in-process backends
    #: leave this False and the death degrades to a raised crash
    in_child: bool = False
    #: the supervisor's per-rank deadline (None: unsupervised)
    deadline_seconds: float | None = None
    #: OTF2-shaped archive directory: the rank writes its own location
    #: file there (inside the worker — trace payloads never ride the
    #: result pickle) instead of returning events in ``trace``
    trace_dir: str | None = None


@dataclass(frozen=True)
class RankResult:
    """One rank's execution artefacts (picklable)."""

    rank: int
    result: RunResult
    #: Score-P call-path profile in ``profile_io.to_dict`` form
    profile: dict | None = None
    talp_regions: tuple[RegionSample, ...] = ()
    #: the rank's event-trace stream (``tracing=True`` + scorep tool);
    #: ``None`` when the trace went to disk instead (``trace_dir``)
    trace: tuple[TraceEvent, ...] | None = None
    #: on-disk location summary (LocationMeta) when ``trace_dir`` was set
    trace_meta: "object | None" = None


@dataclass
class MultiRankOutcome:
    """Aggregated result of one N-rank execution."""

    ranks: int
    #: ImbalanceSpec or ExplicitFactors — whatever perturbed the ranks
    spec: "ImbalanceSpec | object"
    factors: tuple[float, ...]
    backend: str
    per_rank: list[RankResult]
    merged_profile: MergedProfileNode | None
    pop: PopReport
    #: rank-tagged, collective-aligned timeline (``tracing=True`` runs)
    merged_trace: MergedTrace | None = None
    #: ranks that produced no result (retries exhausted under
    #: supervision); non-empty only when ``degraded="allow"``
    missing_ranks: tuple[int, ...] = ()
    #: per-rank supervision records + world coverage
    health: HealthReport | None = None

    @property
    def degraded(self) -> bool:
        """True when the outcome covers only part of the world."""
        return bool(self.missing_ranks)

    @property
    def coverage(self) -> float:
        """Fraction of the world's ranks that produced a result."""
        return (self.ranks - len(self.missing_ranks)) / self.ranks

    @property
    def elapsed_seconds(self) -> float:
        """Synchronised wall time: the slowest rank's ``t_total``.

        Includes startup (``t_init``); the POP report's ``application``
        region deliberately covers only the main phase.  Derived from
        :attr:`bottleneck` so the two can never disagree — both pick the
        slowest rank by exact cycle counts, before any division rounds.
        """
        return self.bottleneck.result.t_total

    @property
    def bottleneck(self) -> RankResult:
        """The rank setting the elapsed time (ties: lowest rank wins)."""
        return max(
            self.per_rank,
            key=lambda r: (r.result.t_init_cycles + r.result.t_app_cycles, -r.rank),
        )


def build_tasks(
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    mode: str,
    tool: str,
    ic: InstrumentationConfig | None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
    tracing: bool = False,
    faults: FaultSpec | None = None,
    trace_dir: str | None = None,
) -> list[RankTask]:
    """One task per rank, workloads perturbed by the imbalance spec."""
    workloads = imbalance.workloads_for(ranks, workload)
    fault_plan = faults.plan(ranks) if faults is not None else {}
    return [
        RankTask(
            rank=rank,
            ranks=ranks,
            mode=mode,
            tool=tool,
            ic=ic,
            workload=workloads[rank],
            cost_model=cost_model,
            symbol_injection=symbol_injection,
            emulate_talp_bug=emulate_talp_bug,
            talp_bug_threshold=talp_bug_threshold,
            talp_bug_modulus=talp_bug_modulus,
            config_name=config_name,
            tracing=tracing,
            fault=fault_plan.get(rank),
            trace_dir=trace_dir,
        )
        for rank in range(ranks)
    ]


def execute_rank(built, task: RankTask) -> RankResult:
    """Run one rank; the unit of work every backend dispatches.

    Chaos injection hooks in here — *inside* the unit of work, exactly
    where a real crash or hang would strike — so crashes/hangs/deaths
    fire before the engine runs and payload corruption afterwards,
    identically on every backend (see :mod:`repro.multirank.faults`).
    """
    from repro.scorep.profile_io import to_dict
    from repro.workflow import run_app

    inject_pre_execution(task)
    outcome = run_app(
        built,
        mode=task.mode,  # type: ignore[arg-type]
        tool=task.tool,  # type: ignore[arg-type]
        ic=task.ic,
        ranks=task.ranks,
        workload=task.workload,
        cost_model=task.cost_model,
        symbol_injection=task.symbol_injection,
        emulate_talp_bug=task.emulate_talp_bug,
        talp_bug_threshold=task.talp_bug_threshold,
        talp_bug_modulus=task.talp_bug_modulus,
        config_name=task.config_name,
        tracing=task.tracing,
        trace_dir=task.trace_dir,
        trace_location=task.rank,
        trace_standalone=False,
    )
    profile = (
        to_dict(outcome.scorep_profile) if outcome.scorep_profile is not None else None
    )
    regions: tuple[RegionSample, ...] = ()
    if outcome.monitor is not None:
        regions = tuple(
            RegionSample(
                name=region.name,
                visits=region.visits,
                elapsed_cycles=region.elapsed_cycles,
                mpi_cycles=region.mpi_cycles,
                useful_cycles=region.useful_cycles,
            )
            for region in outcome.monitor.regions.values()
        )
    trace: tuple[TraceEvent, ...] | None = None
    if outcome.tracer is not None and task.trace_dir is None:
        trace = tuple(outcome.tracer.all_events())
    return corrupt_result(
        task,
        RankResult(
            rank=task.rank,
            result=outcome.result,
            profile=profile,
            talp_regions=regions,
            trace=trace,
            trace_meta=outcome.trace_meta,
        ),
    )


def run_multirank(
    built,
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    backend: "str | object" = "serial",
    mode: str = "ic",
    tool: str = "none",
    ic: InstrumentationConfig | None = None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
    tracing: bool = False,
    faults: FaultSpec | None = None,
    degraded: str = "forbid",
    processes: int | None = None,
    trace_dir: str | None = None,
) -> MultiRankOutcome:
    """Execute ``built`` across ``ranks`` simulated ranks and reduce.

    ``tracing=True`` (scorep tool only) additionally records one event
    trace per rank and merges them into a rank-tagged,
    collective-aligned timeline (``outcome.merged_trace``).

    ``trace_dir=`` (with ``tracing=True``) makes the traces *durable*:
    every rank writes its own OTF2-shaped location file from inside its
    worker (no trace payloads in result pickles), and the parent
    publishes the archive's global definitions plus a ``health.json``
    supervision record once the world completes.  The merged timeline
    is then built from the on-disk streams — bit-identical to the
    in-memory path on every backend.

    ``faults`` injects a deterministic chaos scenario
    (:class:`~repro.multirank.faults.FaultSpec`); surviving it needs a
    :class:`~repro.multirank.backends.SupervisedBackend` — on a raw
    backend an injected crash propagates out of ``map_ranks`` unhandled,
    which is exactly the pre-supervision failure mode, made loud.

    ``degraded`` is the partial-result policy when supervision exhausts
    its retries on some ranks: ``"forbid"`` (default) raises
    :class:`~repro.errors.DegradedResultError`; ``"allow"`` reduces the
    surviving ranks, marks the missing ones in
    ``outcome.missing_ranks``/``outcome.health`` and coverage-annotates
    the POP report.

    Validation of the mode/IC combination happens up front so a bad
    configuration fails in the caller, not inside a worker process.
    """
    from repro.multirank.backends import resolve_backend

    if mode == "ic" and ic is None:
        raise CapiError("mode='ic' requires an instrumentation configuration")
    if mode != "ic" and ic is not None:
        raise CapiError(f"mode={mode!r} does not take an IC")
    if ranks < 1:
        raise CapiError(f"ranks must be >= 1, got {ranks}")
    if degraded not in ("forbid", "allow"):
        raise CapiError(
            f"degraded must be 'forbid' or 'allow', got {degraded!r}"
        )
    if tracing:
        validate_tracing(tool, mode)
    if trace_dir is not None and not tracing:
        raise CapiError("trace_dir= requires tracing=True")
    tasks = build_tasks(
        ranks=ranks,
        imbalance=imbalance,
        mode=mode,
        tool=tool,
        ic=ic,
        workload=workload,
        cost_model=cost_model,
        symbol_injection=symbol_injection,
        emulate_talp_bug=emulate_talp_bug,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name=config_name,
        tracing=tracing,
        faults=faults,
        trace_dir=trace_dir,
    )
    resolved = resolve_backend(backend, processes=processes)
    per_rank = resolved.map_ranks(built, tasks)
    per_rank.sort(key=lambda r: r.rank)

    missing_ranks = tuple(
        sorted(set(range(ranks)) - {r.rank for r in per_rank})
    )
    if missing_ranks:
        if not per_rank:
            raise DegradedResultError(
                f"every rank of the {ranks}-rank world was lost; nothing "
                f"to reduce",
                missing_ranks=missing_ranks,
            )
        if degraded != "allow":
            raise DegradedResultError(
                f"rank(s) {list(missing_ranks)} of the {ranks}-rank world "
                f"produced no result and degraded='forbid'; pass "
                f"degraded='allow' to accept a partial reduction",
                missing_ranks=missing_ranks,
            )
    health = HealthReport(
        ranks=ranks,
        per_rank=getattr(resolved, "last_health", None),
        missing_ranks=missing_ranks,
    )

    merged = merge_profiles([r.profile for r in per_rank])
    pop = build_pop_report(
        per_rank,
        frequency=per_rank[0].result.frequency,
        missing_ranks=missing_ranks,
    )
    merged_trace = None
    if tracing and trace_dir is not None:
        from repro.trace.store import (
            load_location,
            write_definitions,
            write_health_record,
        )

        metaless = [r.rank for r in per_rank if r.trace_meta is None]
        if metaless:
            raise CapiError(
                f"trace_dir={trace_dir!r} but rank(s) {metaless} published "
                f"no location file"
            )
        write_definitions(
            trace_dir,
            world_ranks=ranks,
            locations=[r.trace_meta for r in per_rank],
            frequency=per_rank[0].result.frequency,
            meta={
                "app": getattr(built, "name", ""),
                "config": config_name,
                "tool": tool,
                "backend": getattr(resolved, "name", type(resolved).__name__),
            },
        )
        write_health_record(trace_dir, health)
        merged_trace = merge_rank_traces(
            [load_location(trace_dir, r.rank) for r in per_rank],
            rank_ids=[r.rank for r in per_rank],
        )
    elif tracing:
        traceless = [r.rank for r in per_rank if r.trace is None]
        if traceless:
            # unreachable today (validate_tracing guarantees a tracer on
            # every rank) — but a silent merged_trace=None would be the
            # exact degradation this PR exists to remove, so fail loudly
            raise CapiError(
                f"tracing=True but rank(s) {traceless} produced no trace"
            )
        merged_trace = merge_rank_traces(
            [r.trace for r in per_rank],
            rank_ids=[r.rank for r in per_rank],
        )
    return MultiRankOutcome(
        ranks=ranks,
        spec=imbalance,
        factors=imbalance.factors(ranks),
        backend=getattr(resolved, "name", type(resolved).__name__),
        per_rank=per_rank,
        merged_profile=merged,
        pop=pop,
        merged_trace=merged_trace,
        missing_ranks=missing_ranks,
        health=health,
    )


# -- DLB rebalancing driver ---------------------------------------------------


@dataclass(frozen=True)
class RebalanceIteration:
    """One point of the DLB feedback loop's trajectory.

    ``index`` 0 is the unbalanced baseline (all capacities 1.0, no
    step); iteration k > 0 ran the world after applying ``step``.
    """

    index: int
    #: per-rank CPU capacity the iteration ran on
    capacities: tuple[float, ...]
    #: the LeWI transfers that produced these capacities (None at index 0)
    step: "object | None"
    outcome: MultiRankOutcome

    @property
    def pop(self):
        return self.outcome.pop

    @property
    def parallel_efficiency(self) -> float:
        return self.outcome.pop.app.parallel_efficiency

    @property
    def degraded(self) -> bool:
        """True when this iteration measured only part of the world.

        A degraded measurement is unusable for rebalancing decisions —
        its POP metrics describe the survivors, not the world — so the
        loop neither steps from it nor reports it as an improvement.
        """
        return bool(self.outcome.missing_ranks)


@dataclass
class RebalanceOutcome:
    """Full before/after history of one DLB rebalancing loop."""

    policy: "object"
    ranks: int
    #: the imbalance spec of the original, unbalanced world
    spec: ImbalanceSpec
    history: list[RebalanceIteration]
    converged: bool

    @property
    def baseline(self) -> RebalanceIteration:
        """The unbalanced run the loop started from."""
        return self.history[0]

    @property
    def final(self) -> RebalanceIteration:
        """The best iteration by parallel efficiency (ties: earliest).

        Picking the best rather than the last guarantees rebalancing
        never *worsens* the measured POP efficiency: the baseline is in
        the history, so the final PE is at least the unbalanced PE.
        Degraded iterations are never candidates — a PE computed from a
        partial world is not comparable to a full measurement, so a
        rebalance "improvement" is never reported from partial data.
        """
        candidates = [it for it in self.history if not it.degraded]
        if not candidates:
            return self.history[0]
        return max(candidates, key=lambda it: (it.parallel_efficiency, -it.index))

    @property
    def iterations(self) -> int:
        """Number of rebalanced re-runs performed (baseline excluded)."""
        return len(self.history) - 1

    @property
    def pop_history(self) -> list[PopReport]:
        return [it.pop for it in self.history]

    @property
    def improvement(self) -> float:
        """Parallel-efficiency gain of the final state over the baseline."""
        return self.final.parallel_efficiency - self.baseline.parallel_efficiency

    def render(self) -> str:
        lines = [
            "=" * 64,
            f"DLB LeWI rebalancing — {self.ranks} MPI ranks, "
            f"{self.iterations} iteration(s), "
            f"{'converged' if self.converged else 'iteration cap hit'}",
            "=" * 64,
        ]
        for it in self.history:
            m = it.pop.app
            caps = ", ".join(f"{c:.3f}" for c in it.capacities)
            lines.append(
                f"  iter {it.index}: LB {m.load_balance:6.2%}  "
                f"CommEff {m.communication_efficiency:6.2%}  "
                f"PE {m.parallel_efficiency:6.2%}  cpus [{caps}]"
            )
        lines.append(
            f"  final (iter {self.final.index}): "
            f"PE {self.final.parallel_efficiency:6.2%} "
            f"({self.improvement:+.2%} vs unbalanced)"
        )
        return "\n".join(lines)


def run_rebalanced(
    built,
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    dlb,
    max_iterations: int = 8,
    backend: "str | object" = "serial",
    mode: str = "ic",
    tool: str = "none",
    ic: InstrumentationConfig | None = None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
    tracing: bool = False,
    faults: FaultSpec | None = None,
    degraded: str = "forbid",
    processes: int | None = None,
    trace_dir: str | None = None,
) -> RebalanceOutcome:
    """Close the DLB loop: measure, lend/borrow, re-run until balanced.

    Runs the unbalanced world once, then iterates: the LeWI policy
    (``dlb``, a :class:`~repro.multirank.dlb.DlbPolicy`) turns the
    measured per-rank useful times into a lend/borrow step, the step is
    executed through the DLB C-API (one ``DLB_Init``-ed agent per rank
    over a shared CPU pool), and the world re-runs with each rank's
    imbalance factor divided by its new capacity — lending ranks slow
    down, the borrowing bottleneck speeds up, folded into the next
    iteration's ``Workload.root_scale`` exactly like the imbalance
    itself.  Stops when the policy has nothing left to move (capacity
    shift below ``dlb.tolerance``), when parallel efficiency stops
    improving, or after ``max_iterations`` re-runs.

    Everything is deterministic: the same seed reproduces the same
    iteration history, and serial/multiprocessing backends produce
    bit-identical trajectories (the policy only ever sees reducer
    outputs, which are backend-invariant).

    Under ``degraded="allow"`` with lost ranks the loop degrades
    gracefully instead of crashing: a degraded *baseline* yields no
    rebalancing at all (there is no full measurement to step from), and
    a degraded *iteration* ends the loop — its partial measurement is
    recorded in the history but never used to compute the next DLB step
    and never reported as the final/improved state.
    """
    import numpy as np

    from repro.multirank.dlb import apply_step, make_lewi_agents
    from repro.multirank.imbalance import ExplicitFactors
    from repro.simmpi.world import MpiWorld

    if max_iterations < 1:
        raise CapiError(f"max_iterations must be >= 1, got {max_iterations}")
    if trace_dir is not None:
        raise CapiError(
            "trace_dir= cannot be combined with dlb rebalancing: every "
            "iteration re-runs the world and would rewrite the archive"
        )
    common = dict(
        ranks=ranks,
        backend=backend,
        mode=mode,
        tool=tool,
        ic=ic,
        workload=workload,
        cost_model=cost_model,
        symbol_injection=symbol_injection,
        emulate_talp_bug=emulate_talp_bug,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name=config_name,
        tracing=tracing,
        faults=faults,
        degraded=degraded,
        processes=processes,
    )
    base_factors = imbalance.factors(ranks)
    current = run_multirank(built, imbalance=imbalance, **common)

    dlb_world = MpiWorld(size=ranks)
    dlb_world.init()
    agents = make_lewi_agents(dlb_world)
    capacities = tuple(agent.PollDROM()[1] for agent in agents)
    history = [
        RebalanceIteration(
            index=0, capacities=capacities, step=None, outcome=current
        )
    ]
    if current.missing_ranks:
        # degraded baseline: a partial measurement cannot seed a
        # lend/borrow step — skip rebalancing entirely rather than
        # redistributing CPUs based on whoever happened to survive
        return RebalanceOutcome(
            policy=dlb,
            ranks=ranks,
            spec=imbalance,
            history=history,
            converged=False,
        )
    converged = False
    for index in range(1, max_iterations + 1):
        useful = np.array(
            [r.result.useful_cycles for r in current.per_rank], dtype=float
        )
        step = dlb.rebalance(useful, capacities)
        if step.is_noop or step.max_shift < dlb.tolerance:
            converged = True
            break
        capacities = apply_step(step, agents)
        spec = ExplicitFactors(
            tuple(
                float(factor / capacity)
                for factor, capacity in zip(base_factors, capacities)
            )
        )
        current = run_multirank(built, imbalance=spec, **common)
        previous_pe = history[-1].parallel_efficiency
        history.append(
            RebalanceIteration(
                index=index, capacities=capacities, step=step, outcome=current
            )
        )
        if current.missing_ranks:
            # degraded re-run: record it for the post-mortem but stop —
            # the next DLB step must not be computed from partial data
            # (and `final` never reports a degraded iteration)
            break
        if current.pop.app.parallel_efficiency <= previous_pe + dlb.tolerance:
            # no further measurable gain — the loop has converged (the
            # final state is the best iteration, so a last overshooting
            # step can never make the reported result worse)
            converged = True
            break
    return RebalanceOutcome(
        policy=dlb,
        ranks=ranks,
        spec=imbalance,
        history=history,
        converged=converged,
    )
