"""The rank scheduler: one BuiltApp executed across N simulated ranks.

Each rank is an independent, fully deterministic single-rank execution
(`repro.workflow.run_app`) over the *shared immutable* program, linked
image and call graph — only the rank's :class:`Workload` differs, as
perturbed by the :class:`~repro.multirank.imbalance.ImbalanceSpec`.
Ranks are therefore embarrassingly parallel; the
:mod:`~repro.multirank.backends` decide whether they run in-process or
across a process pool.

The scheduler collects one :class:`RankResult` per rank — the engine's
:class:`~repro.execution.result.RunResult` plus the rank's Score-P
profile (as a plain dict) and TALP region samples, all picklable so the
multiprocessing backend can ship them back — and hands the list to the
cross-rank reducer for the merged profile and the POP report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.costs import CostModel
from repro.execution.result import RunResult
from repro.execution.workload import Workload
from repro.multirank.imbalance import ImbalanceSpec
from repro.multirank.reduce import (
    MergedProfileNode,
    PopReport,
    build_pop_report,
    merge_profiles,
)


@dataclass(frozen=True)
class RegionSample:
    """Picklable snapshot of one TALP monitoring region on one rank."""

    name: str
    visits: int
    elapsed_cycles: float
    mpi_cycles: float
    useful_cycles: float


@dataclass(frozen=True)
class RankTask:
    """Everything one rank's execution needs beyond the BuiltApp."""

    rank: int
    ranks: int
    mode: str
    tool: str
    ic: InstrumentationConfig | None
    workload: Workload
    cost_model: CostModel | None
    symbol_injection: bool
    emulate_talp_bug: bool
    talp_bug_threshold: int | None
    talp_bug_modulus: int | None
    config_name: str


@dataclass(frozen=True)
class RankResult:
    """One rank's execution artefacts (picklable)."""

    rank: int
    result: RunResult
    #: Score-P call-path profile in ``profile_io.to_dict`` form
    profile: dict | None = None
    talp_regions: tuple[RegionSample, ...] = ()


@dataclass
class MultiRankOutcome:
    """Aggregated result of one N-rank execution."""

    ranks: int
    spec: ImbalanceSpec
    factors: tuple[float, ...]
    backend: str
    per_rank: list[RankResult]
    merged_profile: MergedProfileNode | None
    pop: PopReport

    @property
    def elapsed_seconds(self) -> float:
        """Synchronised wall time: the slowest rank's ``t_total``.

        Includes startup (``t_init``); the POP report's ``application``
        region deliberately covers only the main phase.
        """
        return max(r.result.t_total for r in self.per_rank)

    @property
    def bottleneck(self) -> RankResult:
        """The rank setting the elapsed time (ties: lowest rank wins)."""
        return max(
            self.per_rank,
            key=lambda r: (r.result.t_init_cycles + r.result.t_app_cycles, -r.rank),
        )


def build_tasks(
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    mode: str,
    tool: str,
    ic: InstrumentationConfig | None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
) -> list[RankTask]:
    """One task per rank, workloads perturbed by the imbalance spec."""
    workloads = imbalance.workloads_for(ranks, workload)
    return [
        RankTask(
            rank=rank,
            ranks=ranks,
            mode=mode,
            tool=tool,
            ic=ic,
            workload=workloads[rank],
            cost_model=cost_model,
            symbol_injection=symbol_injection,
            emulate_talp_bug=emulate_talp_bug,
            talp_bug_threshold=talp_bug_threshold,
            talp_bug_modulus=talp_bug_modulus,
            config_name=config_name,
        )
        for rank in range(ranks)
    ]


def execute_rank(built, task: RankTask) -> RankResult:
    """Run one rank; the unit of work both backends dispatch."""
    from repro.scorep.profile_io import to_dict
    from repro.workflow import run_app

    outcome = run_app(
        built,
        mode=task.mode,  # type: ignore[arg-type]
        tool=task.tool,  # type: ignore[arg-type]
        ic=task.ic,
        ranks=task.ranks,
        workload=task.workload,
        cost_model=task.cost_model,
        symbol_injection=task.symbol_injection,
        emulate_talp_bug=task.emulate_talp_bug,
        talp_bug_threshold=task.talp_bug_threshold,
        talp_bug_modulus=task.talp_bug_modulus,
        config_name=task.config_name,
    )
    profile = (
        to_dict(outcome.scorep_profile) if outcome.scorep_profile is not None else None
    )
    regions: tuple[RegionSample, ...] = ()
    if outcome.monitor is not None:
        regions = tuple(
            RegionSample(
                name=region.name,
                visits=region.visits,
                elapsed_cycles=region.elapsed_cycles,
                mpi_cycles=region.mpi_cycles,
                useful_cycles=region.useful_cycles,
            )
            for region in outcome.monitor.regions.values()
        )
    return RankResult(
        rank=task.rank,
        result=outcome.result,
        profile=profile,
        talp_regions=regions,
    )


def run_multirank(
    built,
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    backend: "str | object" = "serial",
    mode: str = "ic",
    tool: str = "none",
    ic: InstrumentationConfig | None = None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
) -> MultiRankOutcome:
    """Execute ``built`` across ``ranks`` simulated ranks and reduce.

    Validation of the mode/IC combination happens up front so a bad
    configuration fails in the caller, not inside a worker process.
    """
    from repro.multirank.backends import resolve_backend

    if mode == "ic" and ic is None:
        raise CapiError("mode='ic' requires an instrumentation configuration")
    if mode != "ic" and ic is not None:
        raise CapiError(f"mode={mode!r} does not take an IC")
    if ranks < 1:
        raise CapiError(f"ranks must be >= 1, got {ranks}")
    tasks = build_tasks(
        ranks=ranks,
        imbalance=imbalance,
        mode=mode,
        tool=tool,
        ic=ic,
        workload=workload,
        cost_model=cost_model,
        symbol_injection=symbol_injection,
        emulate_talp_bug=emulate_talp_bug,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name=config_name,
    )
    resolved = resolve_backend(backend)
    per_rank = resolved.map_ranks(built, tasks)
    per_rank.sort(key=lambda r: r.rank)
    merged = merge_profiles([r.profile for r in per_rank])
    pop = build_pop_report(
        per_rank, frequency=per_rank[0].result.frequency
    )
    return MultiRankOutcome(
        ranks=ranks,
        spec=imbalance,
        factors=imbalance.factors(ranks),
        backend=getattr(resolved, "name", type(resolved).__name__),
        per_rank=per_rank,
        merged_profile=merged,
        pop=pop,
    )
