"""The rank scheduler: one BuiltApp executed across N simulated ranks.

Each rank is an independent, fully deterministic single-rank execution
(`repro.workflow.run_app`) over the *shared immutable* program, linked
image and call graph — only the rank's :class:`Workload` differs, as
perturbed by the :class:`~repro.multirank.imbalance.ImbalanceSpec`.
Ranks are therefore embarrassingly parallel; the
:mod:`~repro.multirank.backends` decide whether they run in-process or
across a process pool.

The scheduler collects one :class:`RankResult` per rank — the engine's
:class:`~repro.execution.result.RunResult` plus the rank's Score-P
profile (as a plain dict), TALP region samples and (``tracing=True``)
the rank's event-trace stream, all picklable so the multiprocessing
backend can ship them back — and hands the list to the cross-rank
reducers for the merged profile, the POP report and the merged
rank-tagged timeline (:mod:`repro.multirank.tracing`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ic import InstrumentationConfig
from repro.errors import CapiError
from repro.execution.costs import CostModel
from repro.execution.result import RunResult
from repro.execution.workload import Workload
from repro.multirank.imbalance import ImbalanceSpec
from repro.multirank.reduce import (
    MergedProfileNode,
    PopReport,
    build_pop_report,
    merge_profiles,
)
from repro.multirank.tracing import (
    MergedTrace,
    merge_rank_traces,
    validate_tracing,
)
from repro.scorep.tracing import TraceEvent


@dataclass(frozen=True)
class RegionSample:
    """Picklable snapshot of one TALP monitoring region on one rank."""

    name: str
    visits: int
    elapsed_cycles: float
    mpi_cycles: float
    useful_cycles: float


@dataclass(frozen=True)
class RankTask:
    """Everything one rank's execution needs beyond the BuiltApp."""

    rank: int
    ranks: int
    mode: str
    tool: str
    ic: InstrumentationConfig | None
    workload: Workload
    cost_model: CostModel | None
    symbol_injection: bool
    emulate_talp_bug: bool
    talp_bug_threshold: int | None
    talp_bug_modulus: int | None
    config_name: str
    tracing: bool = False


@dataclass(frozen=True)
class RankResult:
    """One rank's execution artefacts (picklable)."""

    rank: int
    result: RunResult
    #: Score-P call-path profile in ``profile_io.to_dict`` form
    profile: dict | None = None
    talp_regions: tuple[RegionSample, ...] = ()
    #: the rank's event-trace stream (``tracing=True`` + scorep tool)
    trace: tuple[TraceEvent, ...] | None = None


@dataclass
class MultiRankOutcome:
    """Aggregated result of one N-rank execution."""

    ranks: int
    #: ImbalanceSpec or ExplicitFactors — whatever perturbed the ranks
    spec: "ImbalanceSpec | object"
    factors: tuple[float, ...]
    backend: str
    per_rank: list[RankResult]
    merged_profile: MergedProfileNode | None
    pop: PopReport
    #: rank-tagged, collective-aligned timeline (``tracing=True`` runs)
    merged_trace: MergedTrace | None = None

    @property
    def elapsed_seconds(self) -> float:
        """Synchronised wall time: the slowest rank's ``t_total``.

        Includes startup (``t_init``); the POP report's ``application``
        region deliberately covers only the main phase.  Derived from
        :attr:`bottleneck` so the two can never disagree — both pick the
        slowest rank by exact cycle counts, before any division rounds.
        """
        return self.bottleneck.result.t_total

    @property
    def bottleneck(self) -> RankResult:
        """The rank setting the elapsed time (ties: lowest rank wins)."""
        return max(
            self.per_rank,
            key=lambda r: (r.result.t_init_cycles + r.result.t_app_cycles, -r.rank),
        )


def build_tasks(
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    mode: str,
    tool: str,
    ic: InstrumentationConfig | None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
    tracing: bool = False,
) -> list[RankTask]:
    """One task per rank, workloads perturbed by the imbalance spec."""
    workloads = imbalance.workloads_for(ranks, workload)
    return [
        RankTask(
            rank=rank,
            ranks=ranks,
            mode=mode,
            tool=tool,
            ic=ic,
            workload=workloads[rank],
            cost_model=cost_model,
            symbol_injection=symbol_injection,
            emulate_talp_bug=emulate_talp_bug,
            talp_bug_threshold=talp_bug_threshold,
            talp_bug_modulus=talp_bug_modulus,
            config_name=config_name,
            tracing=tracing,
        )
        for rank in range(ranks)
    ]


def execute_rank(built, task: RankTask) -> RankResult:
    """Run one rank; the unit of work both backends dispatch."""
    from repro.scorep.profile_io import to_dict
    from repro.workflow import run_app

    outcome = run_app(
        built,
        mode=task.mode,  # type: ignore[arg-type]
        tool=task.tool,  # type: ignore[arg-type]
        ic=task.ic,
        ranks=task.ranks,
        workload=task.workload,
        cost_model=task.cost_model,
        symbol_injection=task.symbol_injection,
        emulate_talp_bug=task.emulate_talp_bug,
        talp_bug_threshold=task.talp_bug_threshold,
        talp_bug_modulus=task.talp_bug_modulus,
        config_name=task.config_name,
        tracing=task.tracing,
    )
    profile = (
        to_dict(outcome.scorep_profile) if outcome.scorep_profile is not None else None
    )
    regions: tuple[RegionSample, ...] = ()
    if outcome.monitor is not None:
        regions = tuple(
            RegionSample(
                name=region.name,
                visits=region.visits,
                elapsed_cycles=region.elapsed_cycles,
                mpi_cycles=region.mpi_cycles,
                useful_cycles=region.useful_cycles,
            )
            for region in outcome.monitor.regions.values()
        )
    trace: tuple[TraceEvent, ...] | None = None
    if outcome.tracer is not None:
        trace = tuple(outcome.tracer.all_events())
    return RankResult(
        rank=task.rank,
        result=outcome.result,
        profile=profile,
        talp_regions=regions,
        trace=trace,
    )


def run_multirank(
    built,
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    backend: "str | object" = "serial",
    mode: str = "ic",
    tool: str = "none",
    ic: InstrumentationConfig | None = None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
    tracing: bool = False,
) -> MultiRankOutcome:
    """Execute ``built`` across ``ranks`` simulated ranks and reduce.

    ``tracing=True`` (scorep tool only) additionally records one event
    trace per rank and merges them into a rank-tagged,
    collective-aligned timeline (``outcome.merged_trace``).

    Validation of the mode/IC combination happens up front so a bad
    configuration fails in the caller, not inside a worker process.
    """
    from repro.multirank.backends import resolve_backend

    if mode == "ic" and ic is None:
        raise CapiError("mode='ic' requires an instrumentation configuration")
    if mode != "ic" and ic is not None:
        raise CapiError(f"mode={mode!r} does not take an IC")
    if ranks < 1:
        raise CapiError(f"ranks must be >= 1, got {ranks}")
    if tracing:
        validate_tracing(tool, mode)
    tasks = build_tasks(
        ranks=ranks,
        imbalance=imbalance,
        mode=mode,
        tool=tool,
        ic=ic,
        workload=workload,
        cost_model=cost_model,
        symbol_injection=symbol_injection,
        emulate_talp_bug=emulate_talp_bug,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name=config_name,
        tracing=tracing,
    )
    resolved = resolve_backend(backend)
    per_rank = resolved.map_ranks(built, tasks)
    per_rank.sort(key=lambda r: r.rank)
    merged = merge_profiles([r.profile for r in per_rank])
    pop = build_pop_report(
        per_rank, frequency=per_rank[0].result.frequency
    )
    merged_trace = None
    if tracing:
        missing = [r.rank for r in per_rank if r.trace is None]
        if missing:
            # unreachable today (validate_tracing guarantees a tracer on
            # every rank) — but a silent merged_trace=None would be the
            # exact degradation this PR exists to remove, so fail loudly
            raise CapiError(
                f"tracing=True but rank(s) {missing} produced no trace"
            )
        merged_trace = merge_rank_traces([r.trace for r in per_rank])
    return MultiRankOutcome(
        ranks=ranks,
        spec=imbalance,
        factors=imbalance.factors(ranks),
        backend=getattr(resolved, "name", type(resolved).__name__),
        per_rank=per_rank,
        merged_profile=merged,
        pop=pop,
        merged_trace=merged_trace,
    )


# -- DLB rebalancing driver ---------------------------------------------------


@dataclass(frozen=True)
class RebalanceIteration:
    """One point of the DLB feedback loop's trajectory.

    ``index`` 0 is the unbalanced baseline (all capacities 1.0, no
    step); iteration k > 0 ran the world after applying ``step``.
    """

    index: int
    #: per-rank CPU capacity the iteration ran on
    capacities: tuple[float, ...]
    #: the LeWI transfers that produced these capacities (None at index 0)
    step: "object | None"
    outcome: MultiRankOutcome

    @property
    def pop(self):
        return self.outcome.pop

    @property
    def parallel_efficiency(self) -> float:
        return self.outcome.pop.app.parallel_efficiency


@dataclass
class RebalanceOutcome:
    """Full before/after history of one DLB rebalancing loop."""

    policy: "object"
    ranks: int
    #: the imbalance spec of the original, unbalanced world
    spec: ImbalanceSpec
    history: list[RebalanceIteration]
    converged: bool

    @property
    def baseline(self) -> RebalanceIteration:
        """The unbalanced run the loop started from."""
        return self.history[0]

    @property
    def final(self) -> RebalanceIteration:
        """The best iteration by parallel efficiency (ties: earliest).

        Picking the best rather than the last guarantees rebalancing
        never *worsens* the measured POP efficiency: the baseline is in
        the history, so the final PE is at least the unbalanced PE.
        """
        return max(self.history, key=lambda it: (it.parallel_efficiency, -it.index))

    @property
    def iterations(self) -> int:
        """Number of rebalanced re-runs performed (baseline excluded)."""
        return len(self.history) - 1

    @property
    def pop_history(self) -> list[PopReport]:
        return [it.pop for it in self.history]

    @property
    def improvement(self) -> float:
        """Parallel-efficiency gain of the final state over the baseline."""
        return self.final.parallel_efficiency - self.baseline.parallel_efficiency

    def render(self) -> str:
        lines = [
            "=" * 64,
            f"DLB LeWI rebalancing — {self.ranks} MPI ranks, "
            f"{self.iterations} iteration(s), "
            f"{'converged' if self.converged else 'iteration cap hit'}",
            "=" * 64,
        ]
        for it in self.history:
            m = it.pop.app
            caps = ", ".join(f"{c:.3f}" for c in it.capacities)
            lines.append(
                f"  iter {it.index}: LB {m.load_balance:6.2%}  "
                f"CommEff {m.communication_efficiency:6.2%}  "
                f"PE {m.parallel_efficiency:6.2%}  cpus [{caps}]"
            )
        lines.append(
            f"  final (iter {self.final.index}): "
            f"PE {self.final.parallel_efficiency:6.2%} "
            f"({self.improvement:+.2%} vs unbalanced)"
        )
        return "\n".join(lines)


def run_rebalanced(
    built,
    *,
    ranks: int,
    imbalance: ImbalanceSpec,
    dlb,
    max_iterations: int = 8,
    backend: "str | object" = "serial",
    mode: str = "ic",
    tool: str = "none",
    ic: InstrumentationConfig | None = None,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    config_name: str = "",
    tracing: bool = False,
) -> RebalanceOutcome:
    """Close the DLB loop: measure, lend/borrow, re-run until balanced.

    Runs the unbalanced world once, then iterates: the LeWI policy
    (``dlb``, a :class:`~repro.multirank.dlb.DlbPolicy`) turns the
    measured per-rank useful times into a lend/borrow step, the step is
    executed through the DLB C-API (one ``DLB_Init``-ed agent per rank
    over a shared CPU pool), and the world re-runs with each rank's
    imbalance factor divided by its new capacity — lending ranks slow
    down, the borrowing bottleneck speeds up, folded into the next
    iteration's ``Workload.root_scale`` exactly like the imbalance
    itself.  Stops when the policy has nothing left to move (capacity
    shift below ``dlb.tolerance``), when parallel efficiency stops
    improving, or after ``max_iterations`` re-runs.

    Everything is deterministic: the same seed reproduces the same
    iteration history, and serial/multiprocessing backends produce
    bit-identical trajectories (the policy only ever sees reducer
    outputs, which are backend-invariant).
    """
    import numpy as np

    from repro.multirank.dlb import apply_step, make_lewi_agents
    from repro.multirank.imbalance import ExplicitFactors
    from repro.simmpi.world import MpiWorld

    if max_iterations < 1:
        raise CapiError(f"max_iterations must be >= 1, got {max_iterations}")
    common = dict(
        ranks=ranks,
        backend=backend,
        mode=mode,
        tool=tool,
        ic=ic,
        workload=workload,
        cost_model=cost_model,
        symbol_injection=symbol_injection,
        emulate_talp_bug=emulate_talp_bug,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name=config_name,
        tracing=tracing,
    )
    base_factors = imbalance.factors(ranks)
    current = run_multirank(built, imbalance=imbalance, **common)

    dlb_world = MpiWorld(size=ranks)
    dlb_world.init()
    agents = make_lewi_agents(dlb_world)
    capacities = tuple(agent.PollDROM()[1] for agent in agents)
    history = [
        RebalanceIteration(
            index=0, capacities=capacities, step=None, outcome=current
        )
    ]
    converged = False
    for index in range(1, max_iterations + 1):
        useful = np.array(
            [r.result.useful_cycles for r in current.per_rank], dtype=float
        )
        step = dlb.rebalance(useful, capacities)
        if step.is_noop or step.max_shift < dlb.tolerance:
            converged = True
            break
        capacities = apply_step(step, agents)
        spec = ExplicitFactors(
            tuple(
                float(factor / capacity)
                for factor, capacity in zip(base_factors, capacities)
            )
        )
        current = run_multirank(built, imbalance=spec, **common)
        previous_pe = history[-1].parallel_efficiency
        history.append(
            RebalanceIteration(
                index=index, capacities=capacities, step=step, outcome=current
            )
        )
        if current.pop.app.parallel_efficiency <= previous_pe + dlb.tolerance:
            # no further measurable gain — the loop has converged (the
            # final state is the best iteration, so a last overshooting
            # step can never make the reported result worse)
            converged = True
            break
    return RebalanceOutcome(
        policy=dlb,
        ranks=ranks,
        spec=imbalance,
        history=history,
        converged=converged,
    )
