"""LeWI lend/borrow rebalancing policy (paper §VI: TALP + DLB).

The source paper positions DynCaPI + TALP as the *measurement* half of
a DLB deployment: TALP quantifies the load imbalance so DLB's LeWI
module can lend idle CPUs from waiting ranks to the bottleneck.  The
multi-rank reducer measures each rank's useful time and its
synchronisation wait at the closing barrier; this module turns those
measurements into a CPU reallocation:

* :class:`DlbPolicy` computes target per-rank capacities proportional
  to each rank's *work* (measured useful time × current capacity — the
  quantity invariant under reallocation), clamped so no rank lends more
  than ``lend_limit`` of its own CPU, and emits a :class:`LewiStep`
  listing who lends and who borrows how much.
* :func:`make_lewi_agents` / :func:`apply_step` execute a step through
  the DLB C-API surface (``DLB_Lend`` → ``DLB_Borrow`` → ``DLB_Reclaim``
  → ``DLB_PollDROM`` on :class:`~repro.talp.dlb.DlbLibrary` instances
  sharing one :class:`~repro.talp.dlb.CpuPool`), so the protocol the
  paper names is what actually moves the capacity.

The policy is pure arithmetic over measured values — deterministic, and
a no-op on a uniform world.  Total capacity is conserved (one CPU per
rank overall), and a rank never lends and borrows in the same step.

The iterative driver lives in
:func:`repro.multirank.scheduler.run_rebalanced`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TalpError
from repro.execution.clock import VirtualClock
from repro.simmpi.world import MpiWorld
from repro.talp.dlb import DLB_NOUPDT, DLB_SUCCESS, CpuPool, DlbLibrary
from repro.talp.monitor import TalpMonitor

#: capacity shifts below this are dropped from a step outright
_SHIFT_EPS = 1e-12


@dataclass(frozen=True)
class LewiStep:
    """One round of LeWI transfers: who lends / borrows how much."""

    capacities_before: tuple[float, ...]
    capacities_after: tuple[float, ...]
    #: ``(rank, amount)`` pairs, ascending rank — waiting ranks lending
    lends: tuple[tuple[int, float], ...]
    #: ``(rank, amount)`` pairs, ascending rank — bottleneck ranks borrowing
    borrows: tuple[tuple[int, float], ...]

    @property
    def is_noop(self) -> bool:
        return not self.lends and not self.borrows

    @property
    def max_shift(self) -> float:
        """Largest per-rank capacity change this step performs."""
        return max(
            (
                abs(after - before)
                for before, after in zip(
                    self.capacities_before, self.capacities_after
                )
            ),
            default=0.0,
        )


@dataclass(frozen=True)
class DlbPolicy:
    """LeWI rebalancing knobs.

    ``lend_limit`` is the largest fraction of its own CPU a rank may
    lend (so every rank keeps at least ``1 - lend_limit`` capacity and
    keeps making progress); ``tolerance`` is the convergence threshold —
    a step whose largest capacity shift falls below it is not worth
    re-running the world for.
    """

    lend_limit: float = 0.5
    tolerance: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 <= self.lend_limit < 1.0:
            raise TalpError("lend_limit must be in [0, 1)")
        if self.tolerance <= 0.0:
            raise TalpError("tolerance must be positive")

    def rebalance(
        self,
        useful_cycles: "np.ndarray | list[float]",
        capacities: "np.ndarray | list[float]",
    ) -> LewiStep:
        """One policy step from measured per-rank useful times.

        ``useful_cycles[r]`` is rank r's measured useful (wall) time in
        the last run and ``capacities[r]`` the CPU share it ran on, so
        ``useful × capacity`` recovers the rank's *work* — invariant
        under reallocation.  Targets are work-proportional capacities
        (equalising completion times), floored at ``1 - lend_limit``.
        """
        useful = np.asarray(useful_cycles, dtype=float)
        caps = np.asarray(capacities, dtype=float)
        if useful.size == 0 or useful.size != caps.size:
            raise TalpError("need matching non-empty useful/capacity arrays")
        if (useful < 0.0).any() or (caps <= 0.0).any():
            raise TalpError("useful times must be >= 0 and capacities > 0")
        total = float(caps.sum())
        floor = 1.0 - self.lend_limit
        if total < floor * caps.size:
            # unreachable from run_rebalanced (the pool conserves one CPU
            # per rank), but a direct caller could hand in less capacity
            # than the lend-limit floor reserves
            raise TalpError(
                f"total capacity {total} cannot keep {caps.size} ranks at "
                f"the lend-limit floor {floor}"
            )
        work = useful * caps
        target = _waterfill(work, total, floor)
        lends = []
        borrows = []
        for rank in range(caps.size):
            shift = float(target[rank] - caps[rank])
            if shift < -_SHIFT_EPS:
                lends.append((rank, -shift))
            elif shift > _SHIFT_EPS:
                borrows.append((rank, shift))
        return LewiStep(
            capacities_before=tuple(float(c) for c in caps),
            capacities_after=tuple(float(t) for t in target),
            lends=tuple(lends),
            borrows=tuple(borrows),
        )


def _waterfill(work: np.ndarray, total: float, floor: float) -> np.ndarray:
    """Work-proportional capacities with a per-rank floor.

    Distributes ``total`` capacity proportionally to ``work``; ranks
    whose proportional share falls below ``floor`` are pinned there
    (they lend only up to the limit) and the remainder is redistributed
    among the rest.  Terminates because each round pins at least one
    rank, and the average free share never drops below the floor
    (``total >= floor × size``).  A uniform world short-circuits to
    exactly equal shares, mirroring ``pinned_mean``.
    """
    size = work.size
    if float(work.min()) == float(work.max()):
        return np.full(size, total / size)
    target = np.zeros(size)
    pinned = np.zeros(size, dtype=bool)
    remaining = total
    while True:
        free = np.flatnonzero(~pinned)
        free_work = work[free]
        work_sum = float(free_work.sum())
        if work_sum <= 0.0:
            target[free] = remaining / free.size
            break
        share = remaining * free_work / work_sum
        below = share < floor
        if not below.any():
            target[free] = share
            break
        target[free[below]] = floor
        pinned[free[below]] = True
        remaining -= floor * int(below.sum())
    return target


def make_lewi_agents(
    world: MpiWorld, clock: VirtualClock | None = None
) -> list[DlbLibrary]:
    """One ``DLB_Init``-ed library per rank over a shared CPU pool."""
    clock = clock or VirtualClock()
    pool = CpuPool.of_world(world.size)
    agents = []
    for rank in range(world.size):
        library = DlbLibrary(
            talp=TalpMonitor(clock=clock, world=world), pool=pool, rank=rank
        )
        code = library.Init()
        if code != DLB_SUCCESS:
            raise TalpError(f"DLB_Init failed on rank {rank} (code {code})")
        agents.append(library)
    return agents


def apply_step(step: LewiStep, agents: list[DlbLibrary]) -> tuple[float, ...]:
    """Execute a LeWI step through the DLB C-API; returns new capacities.

    Lends run first (ascending rank), then borrows drain the pool, then
    every rank reclaims any float-residue of its own lent capacity that
    was never borrowed, so the pool is empty between steps.  The final
    capacities are read back via ``DLB_PollDROM`` and verified against
    the step's analytic targets.
    """
    for rank, amount in step.lends:
        code = agents[rank].Lend(amount)
        if code != DLB_SUCCESS:
            raise TalpError(f"DLB_Lend({amount}) failed on rank {rank}: {code}")
    for rank, amount in step.borrows:
        code = agents[rank].Borrow(amount)
        if code not in (DLB_SUCCESS, DLB_NOUPDT):
            raise TalpError(
                f"DLB_Borrow({amount}) failed on rank {rank}: {code}"
            )
    capacities = []
    for rank, agent in enumerate(agents):
        agent.Reclaim()
        code, capacity = agent.PollDROM()
        if code != DLB_SUCCESS:
            raise TalpError(f"DLB_PollDROM failed on rank {rank}: {code}")
        capacities.append(capacity)
    if not np.allclose(capacities, step.capacities_after, atol=1e-9):
        raise TalpError(
            f"LeWI protocol diverged from policy targets: {capacities} != "
            f"{step.capacities_after}"
        )
    return tuple(capacities)
