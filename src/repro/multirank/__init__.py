"""Multi-rank scale-out: parallel per-rank execution and cross-rank reduction.

The seed reproduction executed a single simulated rank and synthesised
the rest analytically.  This subsystem runs one
:class:`~repro.workflow.BuiltApp` across N simulated MPI ranks for real:

* :mod:`~repro.multirank.imbalance` — rank-heterogeneous workload
  perturbation (imbalance factor, iteration ramps, straggler injection),
* :mod:`~repro.multirank.backends` — serial and ``multiprocessing``
  executors behind one interface (ranks are embarrassingly parallel),
* :mod:`~repro.multirank.scheduler` — per-rank task construction and
  collection of picklable rank artefacts,
* :mod:`~repro.multirank.reduce` — merged Score-P-style profiles
  (min/max/avg/sum per call path across ranks) and *measured* POP
  metrics with synchronisation-wait attribution,
* :mod:`~repro.multirank.tracing` — per-rank event traces merged into
  one rank-tagged timeline with logical clocks aligned at MPI
  collectives, plus trace-based wait-state and critical-path analyses,
* :mod:`~repro.multirank.dlb` — the LeWI lend/borrow policy closing the
  paper's §VI DLB loop: waiting ranks lend fractional CPU capacity to
  the bottleneck through the DLB C-API, and
  :func:`run_rebalanced` iterates run → measure → rebalance until the
  POP efficiency converges,
* :mod:`~repro.multirank.faults` — deterministic chaos injection
  (:class:`FaultSpec`: crashes, hangs, corrupt payloads, worker death)
  and the per-rank health records the
  :class:`~repro.multirank.backends.SupervisedBackend` produces while
  surviving them (deadlines, integrity checks, retries with backoff,
  pool respawn, graceful degradation via ``degraded="allow"``).

Entry points: :func:`run_multirank` / :func:`run_rebalanced`, or simply
``repro.workflow.run_app(..., ranks=N, imbalance=ImbalanceSpec(...),
dlb=DlbPolicy(...))``.
"""

from repro.multirank.backends import (
    MultiprocessingBackend,
    SerialBackend,
    SupervisedBackend,
    resolve_backend,
)
from repro.multirank.faults import (
    FaultSpec,
    HealthReport,
    RankFaultPlan,
    RankHealth,
    check_rank_result,
)
from repro.multirank.dlb import (
    DlbPolicy,
    LewiStep,
    apply_step,
    make_lewi_agents,
)
from repro.multirank.imbalance import ExplicitFactors, ImbalanceSpec
from repro.multirank.reduce import (
    MergedProfileNode,
    PopReport,
    RankStat,
    build_pop_report,
    flatten_merged,
    merge_profiles,
)
from repro.multirank.scheduler import (
    MultiRankOutcome,
    RankResult,
    RankTask,
    RebalanceIteration,
    RebalanceOutcome,
    RegionSample,
    build_tasks,
    execute_rank,
    run_multirank,
    run_rebalanced,
)
from repro.multirank.tracing import (
    SYNC_OPS,
    CriticalSegment,
    MergedTrace,
    SyncPoint,
    WaitInterval,
    align_stream,
    compute_alignment,
    merge_rank_traces,
    segment_windows,
    validate_tracing,
)

__all__ = [
    "CriticalSegment",
    "DlbPolicy",
    "ExplicitFactors",
    "FaultSpec",
    "HealthReport",
    "ImbalanceSpec",
    "LewiStep",
    "MergedProfileNode",
    "MergedTrace",
    "MultiRankOutcome",
    "MultiprocessingBackend",
    "PopReport",
    "RankFaultPlan",
    "RankHealth",
    "RankResult",
    "RankStat",
    "RankTask",
    "RebalanceIteration",
    "RebalanceOutcome",
    "RegionSample",
    "SYNC_OPS",
    "SerialBackend",
    "SupervisedBackend",
    "SyncPoint",
    "WaitInterval",
    "align_stream",
    "apply_step",
    "build_pop_report",
    "build_tasks",
    "check_rank_result",
    "compute_alignment",
    "execute_rank",
    "flatten_merged",
    "make_lewi_agents",
    "merge_profiles",
    "merge_rank_traces",
    "resolve_backend",
    "run_multirank",
    "run_rebalanced",
    "segment_windows",
    "validate_tracing",
]
