"""Multi-rank scale-out: parallel per-rank execution and cross-rank reduction.

The seed reproduction executed a single simulated rank and synthesised
the rest analytically.  This subsystem runs one
:class:`~repro.workflow.BuiltApp` across N simulated MPI ranks for real:

* :mod:`~repro.multirank.imbalance` — rank-heterogeneous workload
  perturbation (imbalance factor, iteration ramps, straggler injection),
* :mod:`~repro.multirank.backends` — serial and ``multiprocessing``
  executors behind one interface (ranks are embarrassingly parallel),
* :mod:`~repro.multirank.scheduler` — per-rank task construction and
  collection of picklable rank artefacts,
* :mod:`~repro.multirank.reduce` — merged Score-P-style profiles
  (min/max/avg/sum per call path across ranks) and *measured* POP
  metrics with synchronisation-wait attribution.

Entry points: :func:`run_multirank`, or simply
``repro.workflow.run_app(..., ranks=N, imbalance=ImbalanceSpec(...))``.
"""

from repro.multirank.backends import (
    MultiprocessingBackend,
    SerialBackend,
    resolve_backend,
)
from repro.multirank.imbalance import ImbalanceSpec
from repro.multirank.reduce import (
    MergedProfileNode,
    PopReport,
    RankStat,
    build_pop_report,
    flatten_merged,
    merge_profiles,
)
from repro.multirank.scheduler import (
    MultiRankOutcome,
    RankResult,
    RankTask,
    RegionSample,
    build_tasks,
    execute_rank,
    run_multirank,
)

__all__ = [
    "ImbalanceSpec",
    "MergedProfileNode",
    "MultiRankOutcome",
    "MultiprocessingBackend",
    "PopReport",
    "RankResult",
    "RankStat",
    "RankTask",
    "RegionSample",
    "SerialBackend",
    "build_pop_report",
    "build_tasks",
    "execute_rank",
    "flatten_merged",
    "merge_profiles",
    "resolve_backend",
    "run_multirank",
]
