"""Deterministic fault injection for the multi-rank stack.

A measurement campaign only matters if it survives the machine it runs
on: at paper scale (hundreds of ranks, weekly CI sweeps) workers crash,
hang, die and return garbage.  This module is the chaos-testing half of
the fault-tolerance layer: a :class:`FaultSpec` mirrors
:class:`~repro.multirank.imbalance.ImbalanceSpec` — a pure function of
its fields and a seed — and compiles into one
:class:`RankFaultPlan` per afflicted rank, carried on the
:class:`~repro.multirank.scheduler.RankTask` so both backends (and
every retry) see the identical fault schedule.

Four fault kinds are injected inside
:func:`~repro.multirank.scheduler.execute_rank`:

* **crash** — the attempt raises :class:`~repro.errors.InjectedFaultError`;
* **hang** — the attempt sleeps past the supervisor's per-rank deadline
  (bounded: deadline + ``hang_excess_seconds``), then completes — the
  supervisor must detect the overrun and discard the stale result;
* **corrupt** — the attempt completes but its payload is damaged
  (NaN'd profile cycles or a truncated event trace); the supervisor's
  :func:`check_rank_result` integrity gate must catch it;
* **die** — the worker process exits hard (``os._exit``), killing the
  pool; on an in-process backend the death degrades to a crash so both
  backends see the same failed-attempt count.

Faults are *attempt-scheduled*: a plan with ``crash_attempts=1`` fails
exactly the first attempt and succeeds on the retry, which is what
makes the chaos acceptance test ("crash-once world completes
bit-identical to the fault-free run") meaningful.  Disruptive kinds are
serialised per rank (die, then crash, then hang), corruption overlaps
the tail — see :meth:`RankFaultPlan.active_kind`.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import dataclass

from repro._util import rng_for
from repro.errors import InjectedFaultError, RankFailedError, SimMpiError

#: fault kinds in injection priority order
FAULT_KINDS = ("die", "crash", "hang", "corrupt")


@dataclass(frozen=True)
class RankFaultPlan:
    """The compiled fault schedule of one rank (picklable, immutable).

    ``*_attempts`` counts how many of the rank's earliest attempts each
    kind afflicts.  Disruptive kinds are serialised: attempts
    ``[0, die)`` die, ``[die, die+crash)`` crash, ``[.., +hang)`` hang;
    corruption afflicts the ``corrupt_attempts`` attempts after the
    disruptive window.  An attempt past every window runs clean, so any
    finite schedule is recoverable by a supervisor with enough retries.
    """

    rank: int
    die_attempts: int = 0
    crash_attempts: int = 0
    hang_attempts: int = 0
    corrupt_attempts: int = 0
    corrupt_target: str = "profile"
    #: how far past the supervisor deadline a hung attempt sleeps
    hang_excess_seconds: float = 0.4

    def active_kind(self, attempt: int) -> str | None:
        """The fault kind afflicting ``attempt``, or None (clean run)."""
        edge = self.die_attempts
        if attempt < edge:
            return "die"
        edge += self.crash_attempts
        if attempt < edge:
            return "crash"
        edge += self.hang_attempts
        if attempt < edge:
            return "hang"
        if attempt < edge + self.corrupt_attempts:
            return "corrupt"
        return None


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic per-rank fault assignment, mirroring ImbalanceSpec.

    ``crashes``/``hangs``/``corruptions``/``deaths`` count the ranks
    afflicted by each kind; ``*_times`` how many consecutive early
    attempts each afflicted rank fails that way (``crash_times=99``
    outlives any sane retry budget — the rank-loss scenario).  Afflicted
    ranks are drawn from one seeded permutation, so distinct kinds land
    on distinct ranks while the world is big enough and the whole plan
    is reproducible across runs, machines and backends.
    """

    seed: int = 7
    crashes: int = 0
    crash_times: int = 1
    hangs: int = 0
    hang_times: int = 1
    hang_excess_seconds: float = 0.4
    corruptions: int = 0
    corrupt_times: int = 1
    corrupt_target: str = "profile"
    deaths: int = 0
    death_times: int = 1

    def __post_init__(self) -> None:
        for name in ("crashes", "hangs", "corruptions", "deaths"):
            if getattr(self, name) < 0:
                raise SimMpiError(f"{name} must be non-negative")
        for name in ("crash_times", "hang_times", "corrupt_times", "death_times"):
            if getattr(self, name) < 1:
                raise SimMpiError(f"{name} must be >= 1")
        if self.corrupt_target not in ("profile", "trace"):
            raise SimMpiError(
                f"corrupt_target must be 'profile' or 'trace', "
                f"got {self.corrupt_target!r}"
            )
        if self.hang_excess_seconds <= 0.0:
            raise SimMpiError("hang_excess_seconds must be positive")

    @property
    def quiet(self) -> bool:
        """True when the spec injects nothing at all."""
        return (
            self.crashes == 0
            and self.hangs == 0
            and self.corruptions == 0
            and self.deaths == 0
        )

    def plan(self, size: int) -> dict[int, RankFaultPlan]:
        """Per-rank fault plans, deterministic in ``seed`` and ``size``.

        Ranks are consumed from one seeded permutation in fixed kind
        order (deaths, crashes, hangs, corruptions); when the spec asks
        for more faults than there are ranks the permutation wraps and
        ranks accumulate several kinds, still deterministically.
        """
        if size < 1:
            raise SimMpiError(f"world size must be >= 1, got {size}")
        if self.quiet:
            return {}
        perm = [int(r) for r in rng_for(self.seed, "multirank-faults", size).permutation(size)]
        cursor = 0

        def take() -> int:
            nonlocal cursor
            rank = perm[cursor % size]
            cursor += 1
            return rank

        counts: dict[int, dict[str, int]] = {}
        for kind, ranks, times in (
            ("die", self.deaths, self.death_times),
            ("crash", self.crashes, self.crash_times),
            ("hang", self.hangs, self.hang_times),
            ("corrupt", self.corruptions, self.corrupt_times),
        ):
            for _ in range(ranks):
                counts.setdefault(take(), {})[kind] = times
        return {
            rank: RankFaultPlan(
                rank=rank,
                die_attempts=kinds.get("die", 0),
                crash_attempts=kinds.get("crash", 0),
                hang_attempts=kinds.get("hang", 0),
                corrupt_attempts=kinds.get("corrupt", 0),
                corrupt_target=self.corrupt_target,
                hang_excess_seconds=self.hang_excess_seconds,
            )
            for rank, kinds in sorted(counts.items())
        }


# -- injection (called from execute_rank) -----------------------------------


def inject_pre_execution(task) -> None:
    """Fire the disruptive fault (if any) scheduled for this attempt.

    ``die`` only truly exits when the task runs in a sacrificial child
    process (``task.in_child``, set by the pooled supervisor path); on
    an in-process backend it degrades to a crash so the failed-attempt
    accounting — and therefore the retry schedule and the final results
    — stay identical across backends.
    """
    plan: RankFaultPlan | None = task.fault
    if plan is None:
        return
    kind = plan.active_kind(task.attempt)
    if kind == "die":
        if task.in_child:
            os._exit(3)
        raise RankFailedError(
            f"injected worker death on rank {task.rank} attempt "
            f"{task.attempt} (degraded to a crash on an in-process backend)",
            rank=task.rank,
        )
    if kind == "crash":
        raise InjectedFaultError(
            f"injected crash on rank {task.rank} attempt {task.attempt}",
            rank=task.rank,
        )
    if kind == "hang":
        # bounded sleep past the supervisor's per-rank deadline: long
        # enough to be declared hung, short enough to free the worker
        time.sleep((task.deadline_seconds or 0.0) + plan.hang_excess_seconds)


def corrupt_result(task, result):
    """Damage the attempt's payload if a corrupt fault is scheduled.

    * ``profile`` — the root call path's inclusive cycles become NaN
      (a torn shared-memory read / truncated pickle shape);
    * ``trace`` — the event stream loses its tail, dropping the final
      ``MPI_Finalize`` marker and leaving regions unclosed.  With an
      on-disk trace (``trace_dir``) the published location file itself
      is byte-truncated — a half-written archive, exactly what a real
      mid-write crash leaves behind.

    Both damages are exactly what :func:`check_rank_result` screens
    for, so the supervisor retries instead of poisoning the reduction.
    """
    from dataclasses import replace

    plan: RankFaultPlan | None = task.fault
    if plan is None or plan.active_kind(task.attempt) != "corrupt":
        return result
    if plan.corrupt_target == "profile" and result.profile is not None:
        profile = dict(result.profile)
        profile["inclusive_cycles"] = float("nan")
        return replace(result, profile=profile)
    if plan.corrupt_target == "trace" and result.trace:
        return replace(result, trace=result.trace[: len(result.trace) // 2])
    if plan.corrupt_target == "trace" and result.trace_meta is not None:
        from pathlib import Path

        path = Path(result.trace_meta.path)
        if path.exists():
            data = path.read_bytes()
            path.write_bytes(data[: len(data) // 2])
    return result


# -- payload integrity (the supervisor's acceptance gate) -------------------


def _walk_profile(node: dict):
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.get("children", ()))


def check_rank_result(result, *, tracing: bool = False) -> None:
    """Reject corrupt rank payloads before they reach the reducers.

    Raises :class:`~repro.errors.RankFailedError` when the engine
    timings or the profile carry non-finite values, or when a requested
    trace is missing, loses its closing ``MPI_Finalize`` marker
    (truncation) or fails the single-stream nesting checks.  A payload
    passing this gate is safe to merge — the reducers never see NaNs or
    half a timeline.
    """
    timings = (
        result.result.t_init_cycles,
        result.result.t_app_cycles,
        result.result.useful_cycles,
        float(result.result.mpi_cycles),
    )
    if not all(math.isfinite(v) for v in timings):
        raise RankFailedError(
            f"rank {result.rank} returned non-finite timings {timings}",
            rank=result.rank,
        )
    if result.profile is not None:
        for node in _walk_profile(result.profile):
            cycles = node.get("inclusive_cycles", 0.0)
            visits = node.get("visits", 0)
            if not (math.isfinite(cycles) and math.isfinite(visits)):
                raise RankFailedError(
                    f"rank {result.rank} returned a corrupt profile "
                    f"(non-finite stats at call path {node.get('name')!r})",
                    rank=result.rank,
                )
    if tracing:
        from repro.scorep.tracing import TraceEventKind, validate_trace

        trace = result.trace
        if trace is None and getattr(result, "trace_meta", None) is not None:
            # on-disk trace: read the published location file back under
            # the strict (footer-checked) reader, so byte truncation —
            # the disk flavour of the corrupt fault — fails the gate
            from repro.trace.store import TraceStoreError, load_location_file

            try:
                trace = load_location_file(result.trace_meta.path)
            except TraceStoreError as exc:
                raise RankFailedError(
                    f"rank {result.rank} published an unreadable location "
                    f"file: {exc}",
                    rank=result.rank,
                ) from exc
        if not trace:
            raise RankFailedError(
                f"rank {result.rank} returned no event trace although "
                f"tracing was requested",
                rank=result.rank,
            )
        if not any(
            ev.kind is TraceEventKind.MPI and ev.region == "MPI_Finalize"
            for ev in trace
        ):
            raise RankFailedError(
                f"rank {result.rank} returned a truncated event trace "
                f"(no MPI_Finalize marker)",
                rank=result.rank,
            )
        problems = validate_trace(list(trace))
        if problems:
            raise RankFailedError(
                f"rank {result.rank} returned an inconsistent event trace: "
                f"{problems[0]} (+{len(problems) - 1} more)"
                if len(problems) > 1
                else f"rank {result.rank} returned an inconsistent event "
                f"trace: {problems[0]}",
                rank=result.rank,
            )


# -- health records ---------------------------------------------------------


@dataclass(frozen=True)
class RankHealth:
    """Supervision record of one rank's execution (picklable)."""

    rank: int
    #: "ok" — a valid result was collected; "lost" — retries exhausted
    outcome: str
    #: attempts made (1 = clean first try)
    attempts: int
    #: wall-clock spent on this rank across all attempts (not
    #: deterministic — backoff, pool scheduling and real time feed in)
    latency_seconds: float
    #: one line per failed attempt: "attempt N: Error: ..."
    failures: tuple[str, ...] = ()

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    @property
    def lost(self) -> bool:
        return self.outcome != "ok"


@dataclass(frozen=True)
class HealthReport:
    """World-level health of one multi-rank execution."""

    ranks: int
    #: per-rank supervision records (rank order); None when the run
    #: used an unsupervised backend (no health instrumentation)
    per_rank: tuple[RankHealth, ...] | None
    missing_ranks: tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.missing_ranks)

    @property
    def coverage(self) -> float:
        """Fraction of the world that produced a result."""
        if self.ranks == 0:
            return 0.0
        return (self.ranks - len(self.missing_ranks)) / self.ranks

    @property
    def retried_ranks(self) -> tuple[int, ...]:
        if self.per_rank is None:
            return ()
        return tuple(h.rank for h in self.per_rank if h.retried and not h.lost)

    @property
    def lost_ranks(self) -> tuple[int, ...]:
        if self.per_rank is None:
            return self.missing_ranks
        return tuple(h.rank for h in self.per_rank if h.lost)

    def render(self) -> str:
        lines = [
            f"rank health — {self.ranks} ranks, coverage {self.coverage:.1%}"
            + (" (DEGRADED)" if self.degraded else ""),
        ]
        if self.per_rank is None:
            lines.append("  (unsupervised backend: no per-rank records)")
            return "\n".join(lines)
        for h in self.per_rank:
            state = h.outcome if not h.retried else f"{h.outcome} after retry"
            lines.append(
                f"  rank {h.rank}: {state}, {h.attempts} attempt(s), "
                f"{h.latency_seconds:.3f}s"
            )
            lines.extend(f"    {failure}" for failure in h.failures)
        return "\n".join(lines)
