"""Multi-rank trace merge: rank-tagged timelines with logical clocks.

Score-P is "a widely used profiling **and tracing** infrastructure"
(paper §I); downstream tools (Vampir, Scalasca) consume per-process
OTF2 event streams as *one* experiment.  This module is the reduction
that makes that view exist in the reproduction: it takes the N per-rank
:class:`~repro.scorep.tracing.TraceEvent` streams collected by the rank
scheduler and merges them into a single rank-tagged timeline.

Each rank runs on its own virtual clock, so the raw per-rank timestamps
are *local* times — directly interleaving them would put a fast rank's
tenth iteration next to a slow rank's third.  Real trace unification has
the same problem (unsynchronised node clocks) and solves it with logical
clocks anchored at synchronisation points.  We do exactly that: every
MPI collective with all-to-all completion semantics
(:data:`repro.simmpi.comm.SYNCHRONIZING`, plus ``MPI_Init`` /
``MPI_Finalize``) is a synchronisation point — no rank leaves it before
every rank has arrived — so the merge offsets each rank's clock such
that matching collective events coincide at the latest arriver.  The
per-rank offset accumulated by the final ``MPI_Finalize`` anchor is the
rank's total synchronisation wait, which is exactly the quantity the
profile reducer attributes via
:func:`repro.simmpi.world.finalize_wait`: the two views agree by
construction (acceptance-tested to within one collective latency).

On top of the merged timeline ship the first two trace-based analyses,
Scalasca-style:

* :meth:`MergedTrace.wait_states` — per-rank wait intervals at each
  collective ("Wait at Barrier/NxN"): who blocked, where, for how long;
* :meth:`MergedTrace.critical_path` — a simple critical-path walk over
  the segments between synchronisation points: per segment, the rank
  whose local (wait-free) time is largest is on the critical path, and
  the region with the largest exclusive share of that segment names the
  code to fix.

Entry point: ``run_app(..., ranks=N, imbalance=..., tracing=True)`` →
``RunOutcome.merged_trace``, or :func:`merge_rank_traces` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from dataclasses import replace
from typing import Iterable, Iterator

from repro.errors import CapiError
from repro.scorep.tracing import (
    RankedTraceEvent,
    TraceEvent,
    TraceEventKind,
    TraceIssue,
    merge_streams,
    tag_events,
    validate_trace,
)
from repro.simmpi.comm import SYNCHRONIZING

#: MPI operations that act as logical-clock synchronisation points: the
#: synchronizing collectives (all-to-all completion semantics) plus the
#: lifecycle pair — ``MPI_Init`` starts all ranks together and
#: ``MPI_Finalize`` is the closing barrier the profile reducer already
#: models via ``finalize_wait``.
SYNC_OPS = frozenset(SYNCHRONIZING | {"MPI_Init", "MPI_Finalize"})


def validate_tracing(tool: str, mode: str) -> None:
    """Reject tracing configurations that could never record events.

    Shared by ``workflow.run_app`` and ``run_multirank`` so both entry
    points fail the same way: only the scorep tool attaches a tracer,
    and the vanilla/inactive modes never install a measurement tool at
    all — a requested trace could only ever come back empty.
    """
    if tool != "scorep":
        raise CapiError(
            f"tracing=True needs the scorep measurement tool, got tool={tool!r}"
        )
    if mode in ("vanilla", "inactive"):
        raise CapiError(
            f"tracing=True needs an installed measurement tool; "
            f"mode={mode!r} never installs one"
        )


@dataclass(frozen=True)
class SyncPoint:
    """One matched collective across all ranks, after alignment.

    ``local_cycles[r]`` is rank r's raw clock at its own collective
    event; ``wait_cycles[r]`` is how long rank r blocked there for the
    latest arriver (zero for the arriving bottleneck).  The aligned
    timestamp is the same for every rank — that is the alignment rule:
    collective exits coincide.
    """

    index: int
    op: str
    aligned_cycles: float
    local_cycles: tuple[float, ...]
    wait_cycles: tuple[float, ...]

    @property
    def bottleneck_rank(self) -> int:
        """The last rank to arrive (ties: lowest rank)."""
        return min(
            range(len(self.wait_cycles)), key=lambda r: (self.wait_cycles[r], r)
        )


@dataclass(frozen=True)
class WaitInterval:
    """One rank blocking at one collective (Scalasca's wait-state view)."""

    rank: int
    sync_index: int
    op: str
    #: aligned time the rank arrived at the collective
    begin_cycles: float
    #: aligned time the collective completed (same for all ranks)
    end_cycles: float

    @property
    def wait_cycles(self) -> float:
        return self.end_cycles - self.begin_cycles


@dataclass(frozen=True)
class CriticalSegment:
    """One segment of the critical path between synchronisation points."""

    index: int
    #: the sync op (or "start"/"end") bounding the segment
    begin_op: str
    end_op: str
    #: the rank on the critical path here: largest wait-free local time
    rank: int
    duration_cycles: float
    #: region with the largest exclusive time share on the critical rank
    top_region: str | None


@dataclass
class MergedTrace:
    """One rank-tagged, logically-clocked timeline of an N-rank run."""

    ranks: int
    #: the merged stream: aligned timestamps, ordered by (time, rank)
    events: list[RankedTraceEvent]
    sync_points: list[SyncPoint]
    #: final per-rank logical-clock offset == total synchronisation wait
    rank_offsets: tuple[float, ...]
    #: per-rank event counts (all kinds)
    events_per_rank: tuple[int, ...]
    #: per-rank aligned event streams (rank order), kept for analyses
    per_rank: list[list[RankedTraceEvent]] = field(default_factory=list)
    #: true rank ids of the streams (position -> rank id); set when the
    #: merge covers a partial world (degraded run) so lanes keep their
    #: original identity — empty means positional (rank i at index i)
    rank_ids: tuple[int, ...] = ()

    @property
    def rank_labels(self) -> tuple[int, ...]:
        """Rank id of each stream position (identity when not degraded)."""
        return self.rank_ids if self.rank_ids else tuple(range(self.ranks))

    @property
    def rank_wait_cycles(self) -> tuple[float, ...]:
        """Total collective wait per rank, as derived from the trace.

        This is the trace-side counterpart of the profile reducer's
        ``PopReport.rank_wait_cycles`` (``finalize_wait`` attribution):
        both measure how long each rank trailed the bottleneck.
        """
        return self.rank_offsets

    @property
    def elapsed_cycles(self) -> float:
        """Aligned end of the timeline (0.0 for an empty trace)."""
        return self.events[-1].timestamp_cycles if self.events else 0.0

    # -- consistency -----------------------------------------------------------

    def validate(self) -> list[TraceIssue]:
        """Merged-stream consistency checks, as machine-readable records.

        The global stream must be ``(timestamp, rank)``-ordered, every
        rank's projected substream must stay timestamp-monotone after
        alignment, and each projection must pass the single-stream
        :func:`~repro.scorep.tracing.validate_trace` nesting checks
        (enter/leave balance is a per-rank property; ranks interleave
        freely in the global order).  Each defect is a
        :class:`~repro.scorep.tracing.TraceIssue` with a stable ``code``
        (``merge-order`` for global-order violations, the single-stream
        codes otherwise) and the offending ``rank`` filled in;
        ``str(issue)`` keeps the legacy message text.
        """
        return [
            *validate_merge_order(self.events),
            *(
                issue
                for rank, stream in zip(self.rank_labels, self.per_rank)
                for issue in validate_rank_stream(
                    rank, (ev.untagged() for ev in stream)
                )
            ),
        ]

    # -- analyses --------------------------------------------------------------

    def wait_states(self, *, min_wait_cycles: float = 0.0) -> list[WaitInterval]:
        """Per-rank wait intervals at collectives, largest first.

        A rank arriving at a synchronisation point before the bottleneck
        blocks until the collective completes; the interval spans from
        its (aligned) arrival to the aligned completion.  Intervals not
        exceeding ``min_wait_cycles`` are dropped — the bottleneck rank
        itself never appears.
        """
        labels = self.rank_labels
        intervals = [
            WaitInterval(
                rank=labels[pos],
                sync_index=sp.index,
                op=sp.op,
                begin_cycles=sp.aligned_cycles - wait,
                end_cycles=sp.aligned_cycles,
            )
            for sp in self.sync_points
            for pos, wait in enumerate(sp.wait_cycles)
            if wait > min_wait_cycles
        ]
        intervals.sort(key=lambda w: (-w.wait_cycles, w.sync_index, w.rank))
        return intervals

    def critical_path(self) -> list[CriticalSegment]:
        """Walk the critical path through the segments between collectives.

        Between two synchronisation points no rank can overtake the
        others' progress, so the segment's contribution to the total
        runtime is the *largest* per-rank wait-free duration; the rank
        holding it is on the critical path there.  The sum of segment
        durations is the aligned makespan — shortening any critical
        segment shortens the run, shortening a non-critical one only
        grows someone's wait state (the Scalasca argument).

        Segment windows live in aligned time: rank r works segment k
        from the previous collective's completion (``aligned_{k-1}``)
        until its own arrival at the next one (``aligned_k − wait_{r,k}``)
        — the trailing wait interval is excluded, so durations measure
        work, not blocking.
        """
        if not self.per_rank or not any(self.per_rank):
            return []
        segments: list[CriticalSegment] = []
        ops = ["start", *[sp.op for sp in self.sync_points], "end"]
        windows = self._segment_windows()
        # one forward pass per rank computes every segment's top region
        # (windows are disjoint and ascending), keeping the whole walk
        # linear in the trace length instead of per-segment re-walks
        tops = [
            _top_regions_by_segment(
                self.per_rank[rank],
                [windows[seg][rank] for seg in range(len(windows))],
            )
            for rank in range(self.ranks)
        ]
        labels = self.rank_labels
        for seg in range(len(ops) - 1):
            durations = [end - begin for begin, end in windows[seg]]
            pos = max(range(self.ranks), key=lambda r: (durations[r], -r))
            segments.append(
                CriticalSegment(
                    index=seg,
                    begin_op=ops[seg],
                    end_op=ops[seg + 1],
                    rank=labels[pos],
                    duration_cycles=durations[pos],
                    top_region=tops[pos][seg],
                )
            )
        return segments

    def _segment_windows(self) -> list[list[tuple[float, float]]]:
        return segment_windows(
            self.sync_points,
            [
                self.per_rank[r][-1].timestamp_cycles if self.per_rank[r] else 0.0
                for r in range(self.ranks)
            ],
        )

    # -- rendering -------------------------------------------------------------

    def render(self, *, max_wait_states: int = 8) -> str:
        lines = [
            "=" * 64,
            f"Merged trace — {self.ranks} ranks, {len(self.events)} events, "
            f"{len(self.sync_points)} sync point(s)",
            "=" * 64,
        ]
        for pos, rank in enumerate(self.rank_labels):
            lines.append(
                f"  rank {rank}: {self.events_per_rank[pos]} events, "
                f"collective wait {self.rank_offsets[pos]:.0f} cycles"
            )
        waits = self.wait_states(min_wait_cycles=0.0)[:max_wait_states]
        if waits:
            lines.append("  top wait states:")
            lines.extend(
                f"    rank {w.rank} at {w.op} (sync {w.sync_index}): "
                f"{w.wait_cycles:.0f} cycles"
                for w in waits
            )
        path = self.critical_path()
        if path:
            lines.append("  critical path:")
            lines.extend(
                f"    [{seg.begin_op} -> {seg.end_op}] rank {seg.rank}, "
                f"{seg.duration_cycles:.0f} cycles"
                + (f", top region {seg.top_region}" if seg.top_region else "")
                for seg in path
            )
        return "\n".join(lines)


def _sync_sequence(events: Sequence[TraceEvent]) -> list[tuple[str, float]]:
    """The (op, local timestamp) sequence of a rank's sync-point events."""
    return [
        (ev.region, ev.timestamp_cycles)
        for ev in events
        if ev.kind is TraceEventKind.MPI and ev.region in SYNC_OPS
    ]


def _alignment_anchors(
    seqs: list[list[tuple[str, float]]],
) -> list[tuple[str, list[float]]]:
    """Match sync events across ranks into alignment anchors.

    Ranks run rank-scaled iteration counts, so their collective
    sequences may be *ragged* (a light rank walks fewer loop
    collectives).  Matching is therefore: the common prefix while every
    rank agrees on the op, plus — always — the final ``MPI_Finalize``,
    which every rank issues exactly once as its last sync op and which
    anchors the total wait to the profile reducer's ``finalize_wait``
    attribution.  Unmatched interior collectives simply ride on the
    offset of the preceding anchor.
    """
    if not seqs or all(not s for s in seqs):
        # no rank synchronises (MPI-free app): nothing to align
        return []
    if any(not s for s in seqs):
        # mirrors merge_profiles' contract: an SPMD world where only
        # *some* ranks reach the collectives is malformed input, and
        # silently skipping alignment would present an unaligned
        # timeline as an aligned one with zero wait everywhere
        raise ValueError(
            "either every rank or no rank records synchronisation events"
        )
    finale: tuple[str, list[float]] | None = None
    if all(s[-1][0] == "MPI_Finalize" for s in seqs):
        finale = ("MPI_Finalize", [s[-1][1] for s in seqs])
        seqs = [s[:-1] for s in seqs]
    anchors: list[tuple[str, list[float]]] = []
    for k in range(min(len(s) for s in seqs)):
        ops = {s[k][0] for s in seqs}
        if len(ops) != 1:
            break
        anchors.append((ops.pop(), [s[k][1] for s in seqs]))
    if finale is not None:
        anchors.append(finale)
    return anchors


def compute_alignment(
    sync_seqs: "list[list[tuple[str, float]]]",
) -> tuple[list[SyncPoint], tuple[float, ...], list[list[tuple[float, float]]]]:
    """The full logical-clock solution for N sync sequences.

    Walks the matched synchronisation anchors in order; at each one
    every rank's clock is shifted forward so its collective event
    coincides with the latest arriver's (offsets only ever grow, so
    per-rank timestamp order is preserved).  Returns the sync points,
    the final per-rank offsets (== total collective wait), and the
    per-rank shift *schedule*: ``(local anchor time, offset valid from
    that time on)`` pairs that :func:`align_stream` replays over any
    event source — in-memory lists or on-disk readers alike.
    """
    ranks = len(sync_seqs)
    anchors = _alignment_anchors(sync_seqs)
    offsets = [0.0] * ranks
    sync_points: list[SyncPoint] = []
    schedule: list[list[tuple[float, float]]] = [[] for _ in range(ranks)]
    for index, (op, locals_) in enumerate(anchors):
        aligned = max(t + offsets[r] for r, t in enumerate(locals_))
        waits = tuple(aligned - (t + offsets[r]) for r, t in enumerate(locals_))
        for r, t in enumerate(locals_):
            offsets[r] = aligned - t
            schedule[r].append((t, offsets[r]))
        sync_points.append(
            SyncPoint(
                index=index,
                op=op,
                aligned_cycles=aligned,
                local_cycles=tuple(locals_),
                wait_cycles=waits,
            )
        )
    return sync_points, tuple(offsets), schedule


def align_stream(
    rank: int,
    events: Iterable[TraceEvent],
    plan: "list[tuple[float, float]]",
) -> Iterator[RankedTraceEvent]:
    """Tag and clock-align one rank's event stream, lazily.

    Replays a :func:`compute_alignment` shift schedule over the stream:
    events between two sync anchors carry the offset of the preceding
    one — the wait materialises *at* the collective, exactly where a
    real rank blocks.  Pure generator, so a streaming reader aligns in
    O(1) memory per rank.
    """
    step = 0
    offset = 0.0
    for ev in events:
        while step < len(plan) and ev.timestamp_cycles >= plan[step][0]:
            offset = plan[step][1]
            step += 1
        yield RankedTraceEvent(
            rank, ev.kind, ev.region, ev.timestamp_cycles + offset, ev.mid
        )


def _offset_at(plan: "list[tuple[float, float]]", t: float) -> float:
    """The clock offset in force at local time ``t`` (schedule replay)."""
    offset = 0.0
    for anchor_t, anchor_offset in plan:
        if t >= anchor_t:
            offset = anchor_offset
        else:
            break
    return offset


def validate_merge_order(
    events: Iterable[RankedTraceEvent],
) -> Iterator[TraceIssue]:
    """Check global ``(timestamp, rank)`` order of a merged stream."""
    last_key = (-1.0, -1)
    for ev in events:
        key = (ev.timestamp_cycles, ev.rank)
        if key < last_key:
            yield TraceIssue(
                "merge-order",
                ev.region,
                f"merged stream out of order at rank {ev.rank} {ev.region}",
                rank=ev.rank,
            )
        last_key = key


def validate_rank_stream(
    rank: int, events: Iterable[TraceEvent]
) -> Iterator[TraceIssue]:
    """Single-stream checks with the rank stamped into each issue."""
    for issue in validate_trace(events):
        yield replace(issue, rank=rank, detail=f"rank {rank}: {issue.detail}")


def segment_windows(
    sync_points: Sequence[SyncPoint],
    last_aligned: Sequence[float],
) -> list[list[tuple[float, float]]]:
    """Aligned ``(begin, end)`` work window per segment per rank.

    Within one segment a rank's clock offset is constant, so the
    aligned window bounds are exact shifts of the local ones and window
    durations equal wait-free local durations.  ``last_aligned[r]`` is
    rank r's aligned final-event timestamp, bounding the tail segment.
    """
    ranks = len(last_aligned)
    windows: list[list[tuple[float, float]]] = []
    begin_all = [0.0] * ranks
    for sp in sync_points:
        windows.append(
            [
                (begin_all[r], sp.aligned_cycles - sp.wait_cycles[r])
                for r in range(ranks)
            ]
        )
        begin_all = [sp.aligned_cycles] * ranks
    windows.append(
        [
            (begin_all[r], max(last_aligned[r], begin_all[r]))
            for r in range(ranks)
        ]
    )
    return windows


def merge_rank_traces(
    per_rank_events: Sequence[Sequence[TraceEvent]],
    *,
    rank_ids: "Sequence[int] | None" = None,
) -> MergedTrace:
    """Merge N per-rank event streams into one aligned, rank-tagged timeline.

    Implements the logical-clock rule described in the module docstring
    via :func:`compute_alignment` + :func:`align_stream`.

    ``rank_ids`` names the true rank of each input stream (ascending) —
    a degraded run merges only the surviving ranks, and their timeline
    lanes must keep their original identity instead of being renumbered
    by list position.  Defaults to positional (stream i is rank i).

    The result is deterministic and bit-identical for any backend that
    produced the same per-rank streams (the merge never looks at
    anything but the streams themselves).
    """
    ranks = len(per_rank_events)
    ids = resolve_rank_ids(ranks, rank_ids)
    streams = [list(s) for s in per_rank_events]
    sync_points, offsets, schedule = compute_alignment(
        [_sync_sequence(s) for s in streams]
    )

    aligned_streams = [
        list(align_stream(ids[pos], stream, schedule[pos]))
        for pos, stream in enumerate(streams)
    ]

    return MergedTrace(
        ranks=ranks,
        events=merge_streams(aligned_streams),
        sync_points=sync_points,
        rank_offsets=offsets,
        events_per_rank=tuple(len(s) for s in streams),
        per_rank=aligned_streams,
        rank_ids=ids,
    )


def resolve_rank_ids(
    ranks: int, rank_ids: "Sequence[int] | None"
) -> tuple[int, ...]:
    """Validate a degraded-world rank labelling (ascending true ids)."""
    if rank_ids is None:
        return tuple(range(ranks))
    ids = tuple(int(r) for r in rank_ids)
    if len(ids) != ranks:
        raise ValueError(
            f"rank_ids names {len(ids)} ranks but {ranks} streams given"
        )
    if list(ids) != sorted(set(ids)):
        raise ValueError("rank_ids must be strictly ascending")
    return ids


def _top_regions_by_segment(
    events: Sequence[RankedTraceEvent],
    windows: Sequence[tuple[float, float]],
) -> list["str | None"]:
    """Per window, the region with the largest exclusive time inside it.

    Walks the rank's aligned stream once, attributing each inter-event
    interval to the innermost open region, clipped against the disjoint
    ascending ``(begin, end)`` windows (the per-rank segment work
    windows).  MPI markers are instants: the interval they open (the
    operation's cost) stays attributed to the enclosing region, which
    is the region a flat profile would blame too.  Inter-event
    intervals that straddle an alignment jump contain the rank's wait —
    but work windows end at the rank's arrival (wait excluded), so the
    clip removes it.
    """
    exclusive: list[dict[str, float]] = [{} for _ in windows]
    stack: list[str] = []
    prev_t: float | None = None
    w = 0
    for ev in events:
        t = ev.timestamp_cycles
        if prev_t is not None and stack and w < len(windows):
            top = stack[-1]
            # attribute [prev_t, t] across every window it overlaps;
            # windows fully behind the interval are skipped for good
            while w < len(windows) and windows[w][1] <= prev_t:
                w += 1
            i = w
            while i < len(windows) and windows[i][0] < t:
                lo = max(prev_t, windows[i][0])
                hi = min(t, windows[i][1])
                if hi > lo:
                    acc = exclusive[i]
                    acc[top] = acc.get(top, 0.0) + (hi - lo)
                i += 1
        prev_t = t
        if ev.kind is TraceEventKind.ENTER:
            stack.append(ev.region)
        elif ev.kind is TraceEventKind.LEAVE:
            if stack and stack[-1] == ev.region:
                stack.pop()
            elif ev.region in stack:
                while stack and stack[-1] != ev.region:
                    stack.pop()
                if stack:
                    stack.pop()
    return [
        max(acc.items(), key=lambda kv: (kv[1], kv[0]))[0] if acc else None
        for acc in exclusive
    ]
