"""Rank-heterogeneous workload perturbation.

An :class:`ImbalanceSpec` describes how the *same* application behaves
differently across simulated MPI ranks — the load-imbalance scenarios
(LULESH-style spatial imbalance, stragglers, rank-ramped iteration
counts) that selective instrumentation plus TALP exists to diagnose.

The spec is a pure function of its fields and a seed: ``factors(size)``
returns one deterministic per-rank compute multiplier per rank, and
``workload_for(rank, base)`` folds that multiplier into the rank's
:class:`~repro.execution.workload.Workload` scale.  Rank 0 is always
the reference rank (factor exactly 1.0), matching the bottleneck-rank
convention of :class:`~repro.simmpi.world.MpiWorld`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro._util import rng_for
from repro.errors import SimMpiError
from repro.execution.workload import Workload

#: default workload used when the caller supplies none
_DEFAULT_WORKLOAD = Workload()


def _scaled_workloads(
    base: Workload | None, factors: "tuple[float, ...]"
) -> list[Workload]:
    """Fold per-rank factors into ``Workload.root_scale`` (see below)."""
    base = base or _DEFAULT_WORKLOAD
    return [
        base
        if factor == 1.0
        else replace(base, root_scale=base.root_scale * factor)
        for factor in factors
    ]


@dataclass(frozen=True)
class ImbalanceSpec:
    """Deterministic per-rank workload perturbation.

    * ``imbalance`` — maximum fractional load reduction on the lightest
      rank; ranks 1..P-1 draw a jitter from ``[0, imbalance)`` (rank 0
      stays at 1.0).  ``0.0`` means a perfectly uniform world.
    * ``ramp`` — linear rank-dependent iteration scaling: rank ``r``
      additionally runs ``1 + ramp * r / (P - 1)`` times the iterations
      (domain-decomposition gradients, e.g. boundary-heavy subdomains).
    * ``stragglers`` / ``straggler_factor`` — this many deterministically
      chosen ranks multiply their load by ``straggler_factor`` (a slow
      node or an overloaded NUMA domain).
    """

    imbalance: float = 0.0
    seed: int = 7
    ramp: float = 0.0
    stragglers: int = 0
    straggler_factor: float = 1.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.imbalance < 1.0:
            raise SimMpiError("imbalance must be in [0, 1)")
        if self.ramp < 0.0:
            raise SimMpiError("ramp must be non-negative")
        if self.stragglers < 0:
            raise SimMpiError("stragglers must be non-negative")
        if self.straggler_factor <= 0.0:
            raise SimMpiError("straggler_factor must be positive")

    @property
    def uniform(self) -> bool:
        """True when every rank runs the identical workload."""
        return self.imbalance == 0.0 and self.ramp == 0.0 and self.stragglers == 0

    def factors(self, size: int) -> tuple[float, ...]:
        """Per-rank compute multipliers, deterministic in ``seed``."""
        if size < 1:
            raise SimMpiError(f"world size must be >= 1, got {size}")
        factors = np.ones(size, dtype=float)
        if self.imbalance > 0.0 and size > 1:
            rng = rng_for(self.seed, "multirank-imbalance", size)
            jitter = rng.uniform(0.0, self.imbalance, size=size)
            jitter[0] = 0.0
            factors *= 1.0 - jitter
        if self.ramp > 0.0 and size > 1:
            factors *= 1.0 + self.ramp * np.arange(size) / (size - 1)
        if self.stragglers > 0 and size > 1:
            rng = rng_for(self.seed, "multirank-stragglers", size)
            # rank 0 keeps its reference role; stragglers land elsewhere
            picked = rng.choice(
                np.arange(1, size), size=min(self.stragglers, size - 1), replace=False
            )
            factors[picked] *= self.straggler_factor
        return tuple(float(f) for f in factors)

    def workloads_for(
        self, size: int, base: Workload | None = None
    ) -> list[Workload]:
        """Per-rank workloads: ``base`` with rank-scaled iteration counts.

        The factor lands in :attr:`Workload.root_scale` — the one-shot
        multiplier on the entry function's call sites — so a rank at
        factor 0.7 runs ~30% fewer top-level iterations and its total
        work shrinks *proportionally*.  (Folding the factor into the
        compounding ``scale`` knob instead would amplify it
        exponentially down the call tree.)
        """
        return _scaled_workloads(base, self.factors(size))


@dataclass(frozen=True)
class ExplicitFactors:
    """Pre-computed per-rank compute multipliers (spec-compatible).

    Implements the same ``factors``/``workloads_for``/``uniform``
    surface as :class:`ImbalanceSpec` but from an explicit per-rank
    tuple.  The DLB rebalancing driver uses this to re-run a world
    whose rank ``r`` was handed ``c_r`` CPUs: the effective factor is
    the rank's imbalance factor divided by its capacity, so lending
    ranks slow down and the borrowing bottleneck speeds up.
    """

    rank_factors: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.rank_factors:
            raise SimMpiError("need at least one rank factor")
        if any(f <= 0.0 for f in self.rank_factors):
            raise SimMpiError("rank factors must be positive")

    @property
    def uniform(self) -> bool:
        return all(f == 1.0 for f in self.rank_factors)

    def factors(self, size: int) -> tuple[float, ...]:
        if size != len(self.rank_factors):
            raise SimMpiError(
                f"spec holds {len(self.rank_factors)} rank factors, "
                f"world size is {size}"
            )
        return self.rank_factors

    def workloads_for(
        self, size: int, base: Workload | None = None
    ) -> list[Workload]:
        return _scaled_workloads(base, self.factors(size))
