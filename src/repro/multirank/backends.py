"""Parallel execution backends for the rank scheduler.

Ranks are embarrassingly parallel — no shared mutable state, no
cross-rank messages during execution (synchronisation is attributed by
the reducer afterwards) — so the backend interface is a single
``map_ranks(built, tasks)``.

Three implementations ship:

* :class:`SerialBackend` — in-process loop, deterministic and
  dependency-free; the default.
* :class:`MultiprocessingBackend` — a ``multiprocessing`` pool using
  the ``fork`` start method where available.  Fork keeps the parent's
  interpreter state (including the per-process ``str`` hash salt), so
  worker executions are bit-identical to serial in-process runs; the
  BuiltApp is shipped once per worker through the pool initializer
  rather than once per task.  On platforms without ``fork`` the pool
  falls back to the default start method and *warns* that the
  bit-identical guarantee no longer holds (spawned workers draw a fresh
  hash salt).
* :class:`SupervisedBackend` — a fault-tolerant wrapper around either
  of the above: per-rank deadlines, async result collection (submitted
  futures instead of ``pool.map``, so one failure cannot sink the
  batch), payload integrity checks, bounded retry with exponential
  backoff + deterministic jitter, worker respawn after pool death, and
  a per-rank :class:`~repro.multirank.faults.RankHealth` record.

All backends funnel every rank through the same
:func:`~repro.multirank.scheduler.execute_rank`, so they can only
differ in wall-clock time and fault handling, never in healthy-path
results.
"""

from __future__ import annotations

import heapq
import math
import multiprocessing
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace

from repro._util import rng_for
from repro.errors import CapiError, RankFailedError, RankTimeoutError
from repro.multirank.faults import RankHealth, check_rank_result
from repro.multirank.scheduler import RankResult, RankTask, execute_rank

#: BuiltApp of the current worker process (set by the pool initializer)
_WORKER_APP = None


def _init_worker(built) -> None:
    global _WORKER_APP
    _WORKER_APP = built


def _run_in_worker(task: RankTask) -> RankResult:
    if _WORKER_APP is None:
        # explicit error (not an assert: must survive ``python -O``) so
        # an uninitialised-worker bug surfaces identically in optimized
        # runs, and carries the rank id for supervision/attribution
        raise CapiError(
            f"pool worker executed rank {task.rank} before the BuiltApp "
            f"initializer ran; the pool must be created with "
            f"initializer=_init_worker"
        )
    return execute_rank(_WORKER_APP, task)


class SerialBackend:
    """Run ranks one after another in the calling process."""

    name = "serial"

    def map_ranks(self, built, tasks: list[RankTask]) -> list[RankResult]:
        return [execute_rank(built, task) for task in tasks]


class MultiprocessingBackend:
    """Run ranks across a process pool (paper-scale sweeps use all cores)."""

    name = "multiprocessing"

    def __init__(self, processes: int | None = None):
        if processes is not None and processes < 1:
            raise CapiError(f"processes must be >= 1, got {processes}")
        self.processes = processes

    def map_ranks(self, built, tasks: list[RankTask]) -> list[RankResult]:
        if not tasks:
            return []
        if len(tasks) == 1:
            # nothing to parallelise; skip the pool entirely
            return [execute_rank(built, tasks[0])]
        ctx = self._context()
        workers = self.processes or min(len(tasks), os.cpu_count() or 1)
        with ctx.Pool(
            processes=min(workers, len(tasks)),
            initializer=_init_worker,
            initargs=(built,),
        ) as pool:
            return pool.map(_run_in_worker, tasks, chunksize=1)

    @staticmethod
    def _context():
        """The pool context: ``fork`` where available, else an explicit,
        *warned-about* fallback.

        The module contract promises bit-identical-to-serial results,
        which relies on forked workers inheriting the parent's
        interpreter state (notably the per-process ``str`` hash salt).
        A spawn/forkserver fallback starts fresh interpreters, so the
        guarantee would silently degrade — make the degradation loud
        instead of quiet.
        """
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        fallback = multiprocessing.get_start_method(allow_none=False)
        warnings.warn(
            f"the 'fork' start method is unavailable on this platform; "
            f"falling back to {fallback!r}.  Spawned workers start fresh "
            f"interpreters (fresh str hash salt), so the "
            f"bit-identical-to-serial guarantee of MultiprocessingBackend "
            f"no longer holds — set PYTHONHASHSEED or use the serial "
            f"backend for reproducible reductions",
            RuntimeWarning,
            stacklevel=3,
        )
        return multiprocessing.get_context()


class _RankState:
    """Mutable per-rank supervision bookkeeping (internal)."""

    __slots__ = ("task", "attempts", "failures", "first_start", "latency")

    def __init__(self, task: RankTask):
        self.task = task
        self.attempts = 0
        self.failures: list[str] = []
        self.first_start: float | None = None
        self.latency = 0.0


class SupervisedBackend:
    """Fault-tolerant supervisor around the serial or mp backend.

    Every rank attempt runs under a per-rank ``deadline_seconds`` and
    its payload passes the :func:`~repro.multirank.faults.check_rank_result`
    integrity gate before being accepted.  A failed attempt (crash,
    deadline overrun, corrupt payload, worker death) is retried up to
    ``max_attempts`` times with exponential backoff and deterministic
    jitter (seeded per rank and attempt, so retry schedules reproduce).
    On the pooled path, a hard worker death (``BrokenProcessPool``) is
    survived by respawning the executor; only the culprit rank — the
    one whose injected fault plan scheduled the death — is charged a
    failed attempt, collateral ranks are resubmitted at their *same*
    attempt number so the fault schedule stays deterministic.

    ``map_ranks`` returns results for every rank whose retries
    succeeded (possibly a partial set) and records one
    :class:`~repro.multirank.faults.RankHealth` per rank in
    :attr:`last_health`; the degradation *policy* (accept or forbid a
    partial world) belongs to the scheduler, not the backend.
    """

    name = "supervised"

    def __init__(
        self,
        inner: str = "serial",
        *,
        processes: int | None = None,
        deadline_seconds: float | None = 30.0,
        max_attempts: int = 3,
        backoff_base_seconds: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_jitter: float = 0.25,
        seed: int = 7,
    ):
        inner_name = inner.lower() if isinstance(inner, str) else None
        if inner_name in ("mp", "multiprocessing", "parallel"):
            self.inner = "multiprocessing"
        elif inner_name == "auto":
            cores = os.cpu_count() or 1
            self.inner = "multiprocessing" if cores > 1 else "serial"
        elif inner_name == "serial":
            self.inner = "serial"
        else:
            raise CapiError(
                f"SupervisedBackend inner must be 'serial', 'mp' or "
                f"'auto', got {inner!r}"
            )
        if processes is not None and processes < 1:
            raise CapiError(f"processes must be >= 1, got {processes}")
        if max_attempts < 1:
            raise CapiError(f"max_attempts must be >= 1, got {max_attempts}")
        if deadline_seconds is not None and deadline_seconds <= 0.0:
            raise CapiError("deadline_seconds must be positive (or None)")
        self.processes = processes
        self.deadline_seconds = deadline_seconds
        self.max_attempts = max_attempts
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_factor = backoff_factor
        self.backoff_jitter = backoff_jitter
        self.seed = seed
        #: RankHealth per rank (rank order) of the most recent map_ranks
        self.last_health: tuple[RankHealth, ...] = ()

    # -- shared machinery -------------------------------------------------------

    def _backoff_delay(self, rank: int, attempt: int) -> float:
        """Backoff before (re)submitting ``attempt`` (1-based retries).

        Exponential in the retry count, with deterministic jitter drawn
        from a (seed, rank, attempt)-keyed stream: two runs of the same
        chaos scenario back off identically, but concurrent retries of
        different ranks still decorrelate (no thundering herd).
        """
        jitter = float(
            rng_for(self.seed, "supervised-backoff", rank, attempt).random()
        )
        return (
            self.backoff_base_seconds
            * self.backoff_factor ** (attempt - 1)
            * (1.0 + self.backoff_jitter * jitter)
        )

    def _record_failure(self, state: _RankState, attempt: int, exc: Exception):
        state.failures.append(
            f"attempt {attempt + 1}: {type(exc).__name__}: {exc}"
        )

    def _finish(self, state: _RankState, *, ok: bool) -> RankHealth:
        return RankHealth(
            rank=state.task.rank,
            outcome="ok" if ok else "lost",
            attempts=state.attempts,
            latency_seconds=state.latency,
            failures=tuple(state.failures),
        )

    def map_ranks(self, built, tasks: list[RankTask]) -> list[RankResult]:
        if not tasks:
            self.last_health = ()
            return []
        if self.inner == "multiprocessing" and len(tasks) > 1:
            results, health = self._map_pooled(built, tasks)
        else:
            results, health = self._map_serial(built, tasks)
        self.last_health = tuple(sorted(health, key=lambda h: h.rank))
        return results

    # -- in-process path --------------------------------------------------------

    def _map_serial(self, built, tasks):
        results: list[RankResult] = []
        health: list[RankHealth] = []
        for task in tasks:
            state = _RankState(
                replace(task, deadline_seconds=self.deadline_seconds)
            )
            start = time.monotonic()
            ok = False
            for attempt in range(self.max_attempts):
                if attempt > 0:
                    time.sleep(self._backoff_delay(task.rank, attempt))
                state.attempts = attempt + 1
                t0 = time.monotonic()
                try:
                    rank_result = execute_rank(
                        built, replace(state.task, attempt=attempt)
                    )
                    elapsed = time.monotonic() - t0
                    if (
                        self.deadline_seconds is not None
                        and elapsed > self.deadline_seconds
                    ):
                        raise RankTimeoutError(
                            f"rank {task.rank} attempt {attempt + 1} took "
                            f"{elapsed:.3f}s, past the "
                            f"{self.deadline_seconds:.3f}s deadline",
                            rank=task.rank,
                        )
                    check_rank_result(rank_result, tracing=task.tracing)
                except Exception as exc:  # noqa: BLE001 — supervision boundary
                    self._record_failure(state, attempt, exc)
                    continue
                results.append(rank_result)
                ok = True
                break
            state.latency = time.monotonic() - start
            health.append(self._finish(state, ok=ok))
        return results, health

    # -- pooled path ------------------------------------------------------------

    def _spawn_executor(self, built, task_count: int) -> ProcessPoolExecutor:
        workers = self.processes or min(task_count, os.cpu_count() or 1)
        return ProcessPoolExecutor(
            max_workers=min(workers, task_count),
            mp_context=MultiprocessingBackend._context(),
            initializer=_init_worker,
            initargs=(built,),
        )

    def _map_pooled(self, built, tasks):
        deadline = self.deadline_seconds
        states = {
            task.rank: _RankState(
                replace(task, in_child=True, deadline_seconds=deadline)
            )
            for task in tasks
        }
        workers = min(
            self.processes or min(len(tasks), os.cpu_count() or 1), len(tasks)
        )
        executor = self._spawn_executor(built, len(tasks))

        # Submission is throttled to the true worker count: a future is
        # only handed to the executor when a slot is genuinely free, so
        # its submit time IS its start time and the per-rank deadline
        # clocks execution, never queue wait (an executor's own queue
        # would mark one extra buffered future as running and a rank
        # stuck behind a hung sibling would falsely time out).  A timed
        # out future is abandoned but its worker stays busy until the
        # (bounded) overrun ends — it occupies a slot as a *zombie*
        # until then.
        pending: dict = {}  # our live futures -> (rank, attempt, start)
        zombies: set = set()  # abandoned futures still holding a worker
        ready: list[tuple[int, int]] = []  # (rank, attempt) awaiting a slot
        retry_heap: list[tuple[float, int, int]] = []  # (due, rank, attempt)
        results: dict[int, RankResult] = {}
        lost: set[int] = set()

        def submit(rank: int, attempt: int) -> None:
            state = states[rank]
            now = time.monotonic()
            if state.first_start is None:
                state.first_start = now
            state.attempts = max(state.attempts, attempt + 1)
            fut = executor.submit(
                _run_in_worker, replace(state.task, attempt=attempt)
            )
            pending[fut] = (rank, attempt, now)

        def fail(rank: int, attempt: int, exc: Exception) -> None:
            """Charge a failed attempt; queue a retry or declare loss."""
            state = states[rank]
            self._record_failure(state, attempt, exc)
            if attempt + 1 < self.max_attempts:
                due = time.monotonic() + self._backoff_delay(rank, attempt + 1)
                heapq.heappush(retry_heap, (due, rank, attempt + 1))
            else:
                lost.add(rank)
                state.latency = time.monotonic() - (state.first_start or 0.0)

        try:
            ready = [(task.rank, 0) for task in tasks]
            while pending or zombies or retry_heap or ready:
                now = time.monotonic()
                while retry_heap and retry_heap[0][0] <= now:
                    _, rank, attempt = heapq.heappop(retry_heap)
                    ready.append((rank, attempt))
                while ready and len(pending) + len(zombies) < workers:
                    rank, attempt = ready.pop(0)
                    submit(rank, attempt)
                if not pending and not zombies:
                    # nothing in flight: only a future retry remains
                    if retry_heap:
                        time.sleep(
                            max(0.0, retry_heap[0][0] - time.monotonic())
                        )
                    continue

                next_event = math.inf
                if deadline is not None and pending:
                    next_event = min(
                        start + deadline for (_, _, start) in pending.values()
                    )
                if retry_heap:
                    next_event = min(next_event, retry_heap[0][0])
                timeout = (
                    None
                    if math.isinf(next_event)
                    else max(0.0, next_event - time.monotonic())
                )
                done, _ = futures_wait(
                    set(pending) | zombies,
                    timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )

                broken: list[tuple[int, int]] = []
                pool_broke = False
                for fut in done:
                    if fut in zombies:
                        # a hung worker came back: its stale result (or
                        # error) is discarded, the slot is free again
                        zombies.discard(fut)
                        if isinstance(fut.exception(), BrokenProcessPool):
                            pool_broke = True
                        continue
                    rank, attempt, _start = pending.pop(fut)
                    try:
                        rank_result = fut.result()
                        check_rank_result(
                            rank_result, tracing=states[rank].task.tracing
                        )
                    except BrokenProcessPool:
                        pool_broke = True
                        broken.append((rank, attempt))
                    except Exception as exc:  # noqa: BLE001
                        fail(rank, attempt, exc)
                    else:
                        results[rank] = rank_result
                        state = states[rank]
                        state.latency = time.monotonic() - (
                            state.first_start or 0.0
                        )

                if pool_broke:
                    # the whole pool is gone: every in-flight future is
                    # doomed — respawn and resubmit the survivors
                    for rank, attempt, _start in pending.values():
                        broken.append((rank, attempt))
                    pending.clear()
                    zombies.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = self._spawn_executor(built, len(tasks))
                    culprits = {
                        rank
                        for rank, attempt in broken
                        if states[rank].task.fault is not None
                        and states[rank].task.fault.active_kind(attempt)
                        == "die"
                    }
                    if not culprits:
                        # a real (uninjected) death: no way to attribute,
                        # charge everyone a failed attempt (still safe —
                        # at worst innocents burn one retry)
                        culprits = {rank for rank, _ in broken}
                    for rank, attempt in broken:
                        if rank in culprits:
                            fail(
                                rank,
                                attempt,
                                RankFailedError(
                                    f"worker process executing rank {rank} "
                                    f"died (attempt {attempt + 1})",
                                    rank=rank,
                                ),
                            )
                        else:
                            # collateral damage: resubmitted at the SAME
                            # attempt number so the deterministic fault
                            # schedule is unaffected by pool timing
                            ready.append((rank, attempt))

                if deadline is not None:
                    now = time.monotonic()
                    for fut in list(pending):
                        rank, attempt, start = pending[fut]
                        if now - start > deadline and not fut.done():
                            del pending[fut]
                            if not fut.cancel():
                                zombies.add(fut)
                            fail(
                                rank,
                                attempt,
                                RankTimeoutError(
                                    f"rank {rank} attempt {attempt + 1} "
                                    f"exceeded the {deadline:.3f}s deadline",
                                    rank=rank,
                                ),
                            )
        finally:
            executor.shutdown(wait=False)

        health = [
            self._finish(states[task.rank], ok=task.rank in results)
            for task in tasks
        ]
        ordered = [results[t.rank] for t in tasks if t.rank in results]
        return ordered, health


def resolve_backend(
    backend: "str | object", processes: int | None = None
):
    """Accept a backend instance or a spelled-out name.

    Names take an optional ``:N`` worker-count suffix (``"mp:4"``), and
    ``"supervised"`` an optional inner backend (``"supervised:mp"``,
    ``"supervised:mp:4"``).  The ``processes`` kwarg is the programmatic
    spelling of the same knob; passing both (or either with an already
    constructed instance) is a conflict and raises.
    """
    if not isinstance(backend, str):
        if not hasattr(backend, "map_ranks"):
            raise CapiError(f"object {backend!r} is not a rank backend")
        if processes is not None:
            raise CapiError(
                "processes= cannot override an already constructed backend "
                "instance; construct it with the desired worker count"
            )
        return backend

    name, _, suffix = backend.lower().partition(":")
    inner: str | None = None
    suffix_processes: int | None = None
    for part in filter(None, suffix.split(":")):
        if part.isdigit():
            if suffix_processes is not None:
                raise CapiError(f"duplicate worker count in {backend!r}")
            suffix_processes = int(part)
        elif inner is None and name == "supervised":
            inner = part
        else:
            raise CapiError(f"unrecognised backend suffix in {backend!r}")
    if suffix_processes is not None and processes is not None:
        if suffix_processes != processes:
            raise CapiError(
                f"conflicting worker counts: backend={backend!r} but "
                f"processes={processes}"
            )
    processes = processes if processes is not None else suffix_processes

    if name == "serial":
        if processes is not None:
            raise CapiError("the serial backend takes no worker count")
        return SerialBackend()
    if name in ("multiprocessing", "mp", "parallel"):
        return MultiprocessingBackend(processes=processes)
    if name == "supervised":
        return SupervisedBackend(inner or "serial", processes=processes)
    if name == "auto":
        cores = os.cpu_count() or 1
        if cores > 1:
            return MultiprocessingBackend(processes=processes)
        if processes is not None and processes > 1:
            return MultiprocessingBackend(processes=processes)
        return SerialBackend()
    raise CapiError(
        f"unknown rank backend {backend!r}; expected 'serial', "
        f"'multiprocessing', 'supervised' or 'auto'"
    )
