"""Parallel execution backends for the rank scheduler.

Ranks are embarrassingly parallel — no shared mutable state, no
cross-rank messages during execution (synchronisation is attributed by
the reducer afterwards) — so the backend interface is a single
``map_ranks(built, tasks)``.

Two implementations ship:

* :class:`SerialBackend` — in-process loop, deterministic and
  dependency-free; the default.
* :class:`MultiprocessingBackend` — a ``multiprocessing`` pool using
  the ``fork`` start method where available.  Fork keeps the parent's
  interpreter state (including the per-process ``str`` hash salt), so
  worker executions are bit-identical to serial in-process runs; the
  BuiltApp is shipped once per worker through the pool initializer
  rather than once per task.  On platforms without ``fork`` the pool
  falls back to the default start method and *warns* that the
  bit-identical guarantee no longer holds (spawned workers draw a fresh
  hash salt).

Both backends funnel every rank through the same
:func:`~repro.multirank.scheduler.execute_rank`, so they can only
differ in wall-clock time, never in results.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings

from repro.errors import CapiError
from repro.multirank.scheduler import RankResult, RankTask, execute_rank

#: BuiltApp of the current worker process (set by the pool initializer)
_WORKER_APP = None


def _init_worker(built) -> None:
    global _WORKER_APP
    _WORKER_APP = built


def _run_in_worker(task: RankTask) -> RankResult:
    assert _WORKER_APP is not None, "pool worker used before initialisation"
    return execute_rank(_WORKER_APP, task)


class SerialBackend:
    """Run ranks one after another in the calling process."""

    name = "serial"

    def map_ranks(self, built, tasks: list[RankTask]) -> list[RankResult]:
        return [execute_rank(built, task) for task in tasks]


class MultiprocessingBackend:
    """Run ranks across a process pool (paper-scale sweeps use all cores)."""

    name = "multiprocessing"

    def __init__(self, processes: int | None = None):
        self.processes = processes

    def map_ranks(self, built, tasks: list[RankTask]) -> list[RankResult]:
        if not tasks:
            return []
        if len(tasks) == 1:
            # nothing to parallelise; skip the pool entirely
            return [execute_rank(built, tasks[0])]
        ctx = self._context()
        workers = self.processes or min(len(tasks), os.cpu_count() or 1)
        with ctx.Pool(
            processes=min(workers, len(tasks)),
            initializer=_init_worker,
            initargs=(built,),
        ) as pool:
            return pool.map(_run_in_worker, tasks, chunksize=1)

    @staticmethod
    def _context():
        """The pool context: ``fork`` where available, else an explicit,
        *warned-about* fallback.

        The module contract promises bit-identical-to-serial results,
        which relies on forked workers inheriting the parent's
        interpreter state (notably the per-process ``str`` hash salt).
        A spawn/forkserver fallback starts fresh interpreters, so the
        guarantee would silently degrade — make the degradation loud
        instead of quiet.
        """
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        fallback = multiprocessing.get_start_method(allow_none=False)
        warnings.warn(
            f"the 'fork' start method is unavailable on this platform; "
            f"falling back to {fallback!r}.  Spawned workers start fresh "
            f"interpreters (fresh str hash salt), so the "
            f"bit-identical-to-serial guarantee of MultiprocessingBackend "
            f"no longer holds — set PYTHONHASHSEED or use the serial "
            f"backend for reproducible reductions",
            RuntimeWarning,
            stacklevel=3,
        )
        return multiprocessing.get_context()


def resolve_backend(backend: "str | object"):
    """Accept a backend instance or one of the spelled-out names."""
    if not isinstance(backend, str):
        if not hasattr(backend, "map_ranks"):
            raise CapiError(f"object {backend!r} is not a rank backend")
        return backend
    name = backend.lower()
    if name == "serial":
        return SerialBackend()
    if name in ("multiprocessing", "mp", "parallel"):
        return MultiprocessingBackend()
    if name == "auto":
        cores = os.cpu_count() or 1
        return MultiprocessingBackend() if cores > 1 else SerialBackend()
    raise CapiError(
        f"unknown rank backend {backend!r}; expected 'serial', "
        f"'multiprocessing' or 'auto'"
    )
