"""Cross-rank reduction: merged Score-P profiles and real POP metrics.

After N per-rank executions the scheduler holds N independent result
sets.  This module folds them into the artefacts an analyst actually
reads:

* :func:`merge_profiles` — one aggregated call-path profile with
  Score-P-style per-node statistics (min/max/avg/sum across ranks, a
  missing call path on some rank counting as zero there, exactly like
  a Cube aggregation over processes);
* :func:`build_pop_report` — the POP hierarchy (parallel efficiency,
  load balance, communication efficiency) computed from *measured*
  per-rank timings, with inter-rank synchronisation wait attributed to
  MPI time via :func:`repro.simmpi.world.finalize_wait`.

All reductions iterate ranks in rank order and children in sorted name
order, so a serial and a multiprocessing execution of the same task
list reduce to bit-identical artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro._util import pinned_mean
from repro.execution.clock import CYCLES_PER_SECOND
from repro.simmpi.world import finalize_wait
from repro.talp.pop import PopMetrics, compute_pop_from_ranks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.multirank.scheduler import RankResult


@dataclass(frozen=True)
class RankStat:
    """Cross-rank aggregate of one per-rank quantity."""

    sum: float
    min: float
    max: float
    avg: float

    @classmethod
    def of(cls, values: "np.ndarray | list[float]") -> "RankStat":
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one rank")
        return cls(
            sum=float(arr.sum()),
            min=float(arr.min()),
            max=float(arr.max()),
            avg=pinned_mean(arr),
        )


@dataclass
class MergedProfileNode:
    """One call path of the merged profile with cross-rank statistics."""

    name: str
    visits: RankStat
    inclusive_cycles: RankStat
    children: dict[str, "MergedProfileNode"] = field(default_factory=dict)
    #: the per-rank values behind the stats (rank order); kept so flat
    #: views can re-aggregate per rank before taking min/max
    visits_by_rank: tuple[float, ...] = ()
    cycles_by_rank: tuple[float, ...] = ()

    def walk(self) -> Iterator["MergedProfileNode"]:
        """Depth-first iteration over this subtree (self included)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def child(self, name: str) -> "MergedProfileNode":
        return self.children[name]


def _values_of_children(
    per_rank: list[dict], name: str, ranks: int, key: str, default: float
) -> np.ndarray:
    values = np.full(ranks, default, dtype=float)
    for i, children in enumerate(per_rank):
        node = children.get(name)
        if node is not None:
            values[i] = node.get(key, default)
    return values


def merge_profiles(per_rank_profiles: list[dict | None]) -> MergedProfileNode | None:
    """Merge per-rank call-path profiles (``profile_io.to_dict`` form).

    The merged tree spans the union of call paths over all ranks; a
    rank without a given path contributes zero visits/cycles to that
    path's statistics, so ``visits.sum`` is the world-wide visit count
    and ``inclusive_cycles.max`` the bottleneck rank's time — the same
    convention Cube uses when aggregating a Score-P experiment over
    processes.  Returns ``None`` when no rank produced a profile.
    """
    profiles = [p for p in per_rank_profiles if p is not None]
    if not profiles:
        return None
    if len(profiles) != len(per_rank_profiles):
        raise ValueError("either every rank or no rank produces a profile")
    ranks = len(profiles)
    zeros = np.zeros(ranks)
    root = MergedProfileNode(
        name=profiles[0]["name"],
        visits=RankStat.of(zeros),
        inclusive_cycles=RankStat.of(zeros),
        visits_by_rank=tuple(zeros),
        cycles_by_rank=tuple(zeros),
    )
    # (merged node, per-rank child-name -> child-dict maps)
    stack: list[tuple[MergedProfileNode, list[dict]]] = [
        (root, [{c["name"]: c for c in p.get("children", ())} for p in profiles])
    ]
    while stack:
        merged, child_maps = stack.pop()
        names = sorted(set().union(*(m.keys() for m in child_maps)))
        for name in names:
            visits = _values_of_children(child_maps, name, ranks, "visits", 0.0)
            cycles = _values_of_children(
                child_maps, name, ranks, "inclusive_cycles", 0.0
            )
            node = MergedProfileNode(
                name=name,
                visits=RankStat.of(visits),
                inclusive_cycles=RankStat.of(cycles),
                visits_by_rank=tuple(float(v) for v in visits),
                cycles_by_rank=tuple(float(c) for c in cycles),
            )
            merged.children[name] = node
            stack.append(
                (
                    node,
                    [
                        {
                            c["name"]: c
                            for c in child_maps[i].get(name, {}).get("children", ())
                        }
                        if name in child_maps[i]
                        else {}
                        for i in range(ranks)
                    ],
                )
            )
    return root


def flatten_merged(
    root: MergedProfileNode,
) -> dict[str, tuple[RankStat, RankStat]]:
    """Per-region ``(visits, inclusive_cycles)`` stats over call-path sums.

    Each *rank's* profile is flattened first — a region's totals summed
    over every call path it appears in on that rank — and the cross-rank
    statistics are then computed from those per-rank totals.  (Summing
    the merged per-path statistics component-wise instead would be wrong
    for ``min``/``max``: the sum of per-path minima is not the minimum
    of per-rank sums when the rank skew differs between paths.)  Unlike
    :func:`repro.scorep.regions.flatten` no recursion de-duplication is
    attempted.  Only trees produced by :func:`merge_profiles` (which
    populates the per-rank value columns) can be flattened.
    """
    sums: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for node in root.walk():
        if node is root:
            continue
        acc = sums.get(node.name)
        if acc is None:
            sums[node.name] = (
                np.asarray(node.visits_by_rank, dtype=float).copy(),
                np.asarray(node.cycles_by_rank, dtype=float).copy(),
            )
        else:
            visits_acc, cycles_acc = acc
            visits_acc += np.asarray(node.visits_by_rank, dtype=float)
            cycles_acc += np.asarray(node.cycles_by_rank, dtype=float)
    return {
        name: (RankStat.of(visits), RankStat.of(cycles))
        for name, (visits, cycles) in sums.items()
    }


@dataclass
class PopReport:
    """POP efficiency metrics of one multi-rank run.

    ``app`` covers the whole execution (per-rank ``t_total`` and useful
    time from the engine); ``regions`` holds one entry per TALP
    monitoring region when the run used the ``talp`` tool.
    """

    world_size: int
    app: PopMetrics
    regions: list[PopMetrics] = field(default_factory=list)
    #: per-rank synchronisation wait at the closing barrier (cycles)
    rank_wait_cycles: tuple[float, ...] = ()
    #: ranks of the intended world that produced no measurement; all
    #: metrics describe only the surviving ranks when non-empty
    missing_ranks: tuple[int, ...] = ()

    @property
    def degraded(self) -> bool:
        return bool(self.missing_ranks)

    @property
    def coverage(self) -> float:
        """Fraction of the intended world the metrics actually cover."""
        if self.world_size == 0:
            return 0.0
        return (self.world_size - len(self.missing_ranks)) / self.world_size

    def region(self, name: str) -> PopMetrics | None:
        for m in self.regions:
            if m.region == name:
                return m
        return None

    def render(self) -> str:
        lines = [
            "=" * 64,
            f"POP efficiency — {self.world_size} MPI ranks (measured per rank)",
            "=" * 64,
        ]
        if self.degraded:
            lines.append(
                f"!!! DEGRADED: coverage {self.coverage:.1%} — rank(s) "
                f"{list(self.missing_ranks)} produced no measurement; "
                f"metrics describe the surviving ranks only"
            )
        for m in [self.app, *sorted(self.regions, key=lambda m: -m.elapsed_seconds)]:
            lines += [
                f"### Region: {m.region}",
                f"    Elapsed time              : {m.elapsed_seconds:.6f} s",
                f"    Useful time (avg/max)     : "
                f"{m.avg_useful_seconds:.6f} / {m.max_useful_seconds:.6f} s",
                f"    MPI time (avg, incl wait) : {m.mpi_seconds:.6f} s",
                f"    Load balance              : {m.load_balance:6.2%}",
                f"    Communication efficiency  : {m.communication_efficiency:6.2%}",
                f"    Parallel efficiency       : {m.parallel_efficiency:6.2%}",
            ]
        return "\n".join(lines)


def build_pop_report(
    per_rank: "list[RankResult]",
    *,
    frequency: float = CYCLES_PER_SECOND,
    missing_ranks: "tuple[int, ...]" = (),
) -> PopReport:
    """Compute the POP hierarchy from measured per-rank executions.

    The ``application`` region covers the main phase (``t_app_cycles``)
    — the span real TALP monitors between ``MPI_Init`` and
    ``MPI_Finalize`` — so startup/patching time (``t_init``) does not
    drown communication efficiency.  Instrumentation overhead *inside*
    the run still counts as non-useful time, exactly as it does on real
    hardware.

    ``missing_ranks`` names ranks of the intended world that produced
    no measurement (lost under a ``degraded="allow"`` policy): the
    metrics are then computed from the survivors only, the report's
    ``world_size`` still counts the full world, and the report renders
    with an explicit coverage annotation — a degraded POP table can
    never masquerade as a full one.
    """
    if not per_rank:
        raise ValueError("need at least one rank result")
    totals = np.array([r.result.t_app_cycles for r in per_rank])
    useful = np.array([r.result.useful_cycles for r in per_rank])
    mpi = np.array([float(r.result.mpi_cycles) for r in per_rank])
    waits = finalize_wait(totals)
    elapsed = np.full(len(per_rank), totals.max())
    app = compute_pop_from_ranks(
        "application",
        visits=1,
        useful_cycles=useful,
        elapsed_cycles=elapsed,
        mpi_cycles=mpi + waits,
        frequency=frequency,
    )
    report = PopReport(
        world_size=len(per_rank) + len(missing_ranks),
        app=app,
        rank_wait_cycles=tuple(float(w) for w in waits),
        missing_ranks=tuple(missing_ranks),
    )
    # per-region metrics (talp tool): union of region names over ranks,
    # a rank that never entered a region contributing zeros
    names = sorted({s.name for r in per_rank for s in r.talp_regions})
    for name in names:
        by_rank = [
            next((s for s in r.talp_regions if s.name == name), None)
            for r in per_rank
        ]
        region_elapsed = np.array(
            [s.elapsed_cycles if s else 0.0 for s in by_rank]
        )
        # synchronisation wait is attributed only to ranks that actually
        # entered the region — a rank the region never ran on was not
        # blocked at its trailing collective
        visited = np.array([s is not None for s in by_rank])
        region_wait = np.where(visited, finalize_wait(region_elapsed), 0.0)
        report.regions.append(
            compute_pop_from_ranks(
                name,
                visits=int(sum(s.visits for s in by_rank if s)),
                useful_cycles=np.array(
                    [s.useful_cycles if s else 0.0 for s in by_rank]
                ),
                elapsed_cycles=region_elapsed,
                mpi_cycles=np.array(
                    [s.mpi_cycles if s else 0.0 for s in by_rank]
                )
                + region_wait,
                frequency=frequency,
            )
        )
    return report
