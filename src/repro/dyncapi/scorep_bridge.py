"""DynCaPI → Score-P bridge with symbol injection (paper §V-C.1).

Score-P's generic interface receives addresses and resolves names by
mapping the executable — it "is unable to resolve addresses from shared
objects".  DynCaPI's *symbol injection* examines the virtual memory
layout, loads each object's local symbol addresses (``nm``), translates
them to their mapped location, and supplies the result to the Score-P
runtime, restoring DSO resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dyncapi.symbols import collect_object_symbols
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.program.loader import DynamicLoader
from repro.scorep.measurement import ScorePMeasurement
from repro.scorep.resolution import AddressResolver
from repro.scorep.tracing import ScorePTracer
from repro.xray.ids import PackedId
from repro.xray.runtime import XRayRuntime
from repro.xray.trampoline import EventType


@dataclass
class ScorePBridge:
    """Adapts XRay events to Score-P region events by address."""

    runtime: XRayRuntime
    loader: DynamicLoader
    measurement: ScorePMeasurement
    clock: VirtualClock
    cost_model: CostModel = field(default_factory=CostModel)
    resolver: AddressResolver | None = None
    #: optional event tracer (Score-P tracing mode)
    tracer: ScorePTracer | None = None
    #: events whose address could not be named (recorded as UNKNOWN@...)
    unresolved_events: int = 0

    def __post_init__(self) -> None:
        if self.resolver is None:
            exe = next(
                lo.binary.name
                for lo in self.loader.loaded.values()
                if not lo.binary.is_dso
            )
            self.resolver = AddressResolver(self.loader, exe)

    # -- symbol injection -------------------------------------------------------

    def inject_dso_symbols(self) -> int:
        """Feed translated DSO symbol addresses to the resolver.

        Returns the number of injected symbols.  Without this call,
        every DSO event resolves to an UNKNOWN placeholder — the
        pre-injection Score-P behaviour.
        """
        assert self.resolver is not None
        count = 0
        for lo in self.loader.loaded.values():
            if not lo.binary.is_dso:
                continue
            triples = [
                (t.name, t.address, t.size) for t in collect_object_symbols(lo)
            ]
            self.resolver.inject_symbols(triples)
            count += len(triples)
        return count

    # -- event handler --------------------------------------------------------------

    def handler(self, packed: PackedId, event: EventType) -> None:
        self.clock.advance(self.cost_model.cyg_shim)
        address = self.runtime.function_address(packed)
        assert self.resolver is not None
        name = self.resolver.resolve(address)
        if name is None:
            self.unresolved_events += 1
            name = f"UNKNOWN@{address:#x}"
        if event is EventType.ENTRY:
            self.measurement.region_enter(name)
            if self.tracer is not None:
                self.tracer.enter(name)
        else:
            self.measurement.region_exit(name)
            if self.tracer is not None:
                self.tracer.leave(name)

    def finalize(self) -> None:
        self.measurement.finalize()
