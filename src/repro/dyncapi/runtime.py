"""The DynCaPI runtime: startup patching according to the IC (paper §IV).

"During runtime, the DynCaPI library is responsible for directing the
dynamic instrumentation.  Patching is done at startup according to the
IC file passed via an environment variable.  DynCaPI also provides an
interface between the XRay events and the measurement tool."

Startup sequence (all charged to the virtual clock → Tinit):

1. initialise the main executable with the XRay runtime,
2. register every loaded DSO through the xray-dso runtime,
3. collect symbols and build the function-id → name mapping
   (cross-checked via ``__xray_function_address``),
4. load and parse the IC (from ``CAPI_FILTER_FILE`` or given directly),
5. patch the sleds of every IC function whose id could be named, and
6. install the measurement bridge as the XRay event handler.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.ic import IC_ENV_VAR, InstrumentationConfig
from repro.dyncapi.symbols import IdNameMap, build_id_name_map, collect_all_symbols
from repro.errors import PatchingError
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.program.loader import DynamicLoader, LoadedObject
from repro.xray.dso import XRayDsoRuntime
from repro.xray.ids import PackedId
from repro.xray.runtime import XRayRuntime
from repro.xray.trampoline import Handler


@dataclass
class StartupReport:
    """What happened during DynCaPI startup (feeds §VI-B analyses)."""

    patched_functions: int = 0
    patched_sleds: int = 0
    skipped_not_in_ic: int = 0
    #: function ids that could not be named (hidden symbols, §VI-B(a))
    unresolved_ids: int = 0
    #: IC entries naming functions without sleds anywhere (e.g. fully
    #: inlined functions whose symbol survived — the §V-E caveat)
    missing_in_binary: list[str] = field(default_factory=list)
    registered_dsos: int = 0
    init_cycles: float = 0.0


@dataclass
class DynCapi:
    """Process-wide DynCaPI state."""

    xray: XRayRuntime
    loader: DynamicLoader
    clock: VirtualClock
    cost_model: CostModel = field(default_factory=CostModel)
    dso_runtime: XRayDsoRuntime = field(init=False)
    id_names: IdNameMap = field(default_factory=IdNameMap)

    def __post_init__(self) -> None:
        self.dso_runtime = XRayDsoRuntime(self.xray)

    # -- startup ------------------------------------------------------------------

    def startup(
        self,
        *,
        ic: InstrumentationConfig | None = None,
        handler: Handler | None = None,
        tool_init_cycles: float = 0.0,
    ) -> StartupReport:
        """Run the full startup sequence; returns the report.

        ``ic=None`` reproduces XRay's legacy mode: patch every sled
        ("xray full" in Table II).  If ``ic`` is None and the
        ``CAPI_FILTER_FILE`` environment variable points at a filter
        file, the IC is loaded from there, mirroring the paper's
        workflow.
        """
        report = StartupReport()
        start = self.clock.now()
        self.clock.advance(tool_init_cycles)

        self._register_objects(report)
        self._build_id_map(report)

        if ic is None and os.environ.get(IC_ENV_VAR):
            ic = InstrumentationConfig.load_filter(os.environ[IC_ENV_VAR])
        if ic is not None:
            self.clock.advance(self.cost_model.ic_parse_entry * len(ic))

        self._patch(ic, report)
        if handler is not None:
            self.xray.set_handler(handler)
        report.init_cycles = self.clock.now() - start
        return report

    def startup_inactive(self) -> StartupReport:
        """Plain XRay startup: objects register, nothing is patched.

        This is Table II's "xray inactive" configuration: sleds stay
        NOPs, no measurement library is initialised, no symbols are
        collected.  The whole point is that this costs almost nothing.
        """
        report = StartupReport()
        start = self.clock.now()
        self._register_objects(report)
        report.init_cycles = self.clock.now() - start
        return report

    # -- steps -----------------------------------------------------------------------

    def _register_objects(self, report: StartupReport) -> None:
        exe: LoadedObject | None = None
        dsos: list[LoadedObject] = []
        for lo in self.loader.loaded.values():
            if lo.binary.is_dso:
                dsos.append(lo)
            else:
                exe = lo
        if exe is None:
            raise PatchingError("no executable loaded")
        self.xray.init_main_executable(
            exe.binary.name,
            exe.base,
            list(exe.binary.sled_records),
            dict(exe.binary.function_ids),
        )
        for lo in dsos:
            self.dso_runtime.on_load(lo)
            self.clock.advance(self.cost_model.dso_register)
            report.registered_dsos += 1

    def _build_id_map(self, report: StartupReport) -> None:
        n_symbols = sum(
            len(triples) for triples in collect_all_symbols(self.loader).values()
        )
        self.clock.advance(self.cost_model.symbol_collect * n_symbols)
        self.id_names = build_id_name_map(self.xray, self.loader)
        n_ids = len(self.id_names.names) + len(self.id_names.unresolved)
        self.clock.advance(self.cost_model.id_translate * n_ids)
        report.unresolved_ids = self.id_names.unresolved_count

    def _patch(
        self, ic: InstrumentationConfig | None, report: StartupReport
    ) -> None:
        matched: set[str] = set()
        for packed in self.xray.packed_ids():
            name = self.id_names.name_of(packed)
            if name is None:
                # unresolved (hidden) functions can never be matched
                # against the IC, hence are never patched (§VI-B(a))
                continue
            if ic is not None and name not in ic:
                report.skipped_not_in_ic += 1
                continue
            matched.add(name)
            sleds = self.xray.patch_function(packed)
            report.patched_functions += 1
            report.patched_sleds += sleds
            self.clock.advance(self.cost_model.patch_sled * sleds)
        if ic is not None:
            report.missing_in_binary = sorted(ic.functions - matched)

    # -- runtime adjustment (the paper's headline feature) ------------------------------

    def repatch(self, new_ic: InstrumentationConfig) -> StartupReport:
        """Apply a different IC without recompilation or restart.

        Unpatches everything, then patches the new selection — the
        "substantial improvement of turnaround time" of §VII-A/§VIII.
        """
        report = StartupReport()
        start = self.clock.now()
        self.xray.unpatch_all()
        self.clock.advance(self.cost_model.ic_parse_entry * len(new_ic))
        self._patch(new_ic, report)
        report.init_cycles = self.clock.now() - start
        return report

    def dlopen_dso(self, lo: LoadedObject, ic: InstrumentationConfig | None) -> int:
        """Register and patch a DSO loaded after startup (dlopen path)."""
        object_id = self.dso_runtime.on_load(lo)
        self.clock.advance(self.cost_model.dso_register)
        self.id_names = build_id_name_map(self.xray, self.loader)
        for fid in sorted(lo.binary.function_ids):
            packed = PackedId(object_id, fid)
            name = self.id_names.name_of(packed)
            if name is None:
                continue
            if ic is not None and name not in ic:
                continue
            sleds = self.xray.patch_function(packed)
            self.clock.advance(self.cost_model.patch_sled * sleds)
        return object_id
