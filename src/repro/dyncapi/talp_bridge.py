"""DynCaPI → TALP bridge (paper §V-C.2, Listing 2).

"A monitoring region map is maintained that stores the handle and other
region information.  On entry and exit events, the corresponding region
information is retrieved and, if necessary, registered in TALP, before
the start/stop function is invoked."

Two measured anomalies of §VI-B(b) surface here:

* regions first entered before ``MPI_Init`` cannot be registered (DLB
  returns an invalid handle) and are simply not recorded;
* at very high registered-region counts, starting some regions fails
  (the TALP region-map bug) — counted as unique failed region entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dyncapi.symbols import IdNameMap
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.talp.dlb import DLB_INVALID_HANDLE, DLB_SUCCESS, DlbLibrary
from repro.xray.ids import PackedId
from repro.xray.trampoline import EventType


@dataclass
class _RegionInfo:
    handle: int = DLB_INVALID_HANDLE
    registered: bool = False


@dataclass
class TalpBridge:
    """Adapts XRay events to DLB monitoring-region start/stop calls."""

    dlb: DlbLibrary
    id_names: IdNameMap
    clock: VirtualClock
    cost_model: CostModel = field(default_factory=CostModel)
    #: per-name region info (the paper's "monitoring region map")
    regions: dict[str, _RegionInfo] = field(default_factory=dict)
    #: regions whose registration failed (entered before MPI_Init)
    failed_registrations: set[str] = field(default_factory=set)
    #: unique regions whose start call failed (TALP region-map bug)
    failed_entries: set[str] = field(default_factory=set)
    #: events for functions whose id has no name (hidden symbols)
    unnamed_events: int = 0

    def handler(self, packed: PackedId, event: EventType) -> None:
        self.clock.advance(
            self.cost_model.cyg_shim + self.cost_model.talp_event
        )
        name = self.id_names.name_of(packed)
        if name is None:
            self.unnamed_events += 1
            return
        if event is EventType.ENTRY:
            self._enter(name)
        else:
            self._exit(name)

    # -- internals ------------------------------------------------------------

    def _enter(self, name: str) -> None:
        info = self.regions.setdefault(name, _RegionInfo())
        if not info.registered:
            handle = self.dlb.MonitoringRegionRegister(name)
            if handle == DLB_INVALID_HANDLE:
                # entered before MPI_Init: not recorded (paper §VI-B)
                self.failed_registrations.add(name)
                return
            info.handle = handle
            info.registered = True
            self.failed_registrations.discard(name)
        if self.dlb.MonitoringRegionStart(info.handle) != DLB_SUCCESS:
            self.failed_entries.add(name)

    def _exit(self, name: str) -> None:
        info = self.regions.get(name)
        if info is None or not info.registered:
            return
        self.dlb.MonitoringRegionStop(info.handle)

    # -- statistics --------------------------------------------------------------

    @property
    def registered_count(self) -> int:
        return sum(1 for info in self.regions.values() if info.registered)
