"""The generic ``-finstrument-functions``-compatible interface (§V-C).

DynCaPI's default event interface mimics GCC's
``__cyg_profile_func_enter`` / ``__cyg_profile_func_exit``: the
measurement side receives only the *address* of the instrumented
function (plus a call-site address we do not model) and must resolve
names itself — the root of the Score-P DSO-resolution limitation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.xray.ids import PackedId
from repro.xray.runtime import XRayRuntime
from repro.xray.trampoline import EventType

#: ``__cyg_profile_func_enter(void* fn, void* callsite)`` analogue
CygCallback = Callable[[int], None]


@dataclass
class CygProfileDispatcher:
    """Translate XRay events into address-based cyg_profile callbacks."""

    runtime: XRayRuntime
    clock: VirtualClock
    cost_model: CostModel = field(default_factory=CostModel)
    on_enter: CygCallback | None = None
    on_exit: CygCallback | None = None
    events: int = 0

    def handler(self, packed: PackedId, event: EventType) -> None:
        """Install this as the XRay handler (``__xray_set_handler``)."""
        self.events += 1
        self.clock.advance(self.cost_model.cyg_shim)
        address = self.runtime.function_address(packed)
        if event is EventType.ENTRY:
            if self.on_enter is not None:
                self.on_enter(address)
        else:
            if self.on_exit is not None:
                self.on_exit(address)
