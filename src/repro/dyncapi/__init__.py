"""DynCaPI: startup patching per IC + measurement-tool bridges."""

from repro.dyncapi.handlers import CygProfileDispatcher
from repro.dyncapi.runtime import DynCapi, StartupReport
from repro.dyncapi.scorep_bridge import ScorePBridge
from repro.dyncapi.symbols import (
    IdNameMap,
    SymbolTriple,
    build_id_name_map,
    collect_all_symbols,
    collect_object_symbols,
)
from repro.dyncapi.talp_bridge import TalpBridge

__all__ = [
    "CygProfileDispatcher",
    "DynCapi",
    "IdNameMap",
    "ScorePBridge",
    "StartupReport",
    "SymbolTriple",
    "TalpBridge",
    "build_id_name_map",
    "collect_all_symbols",
    "collect_object_symbols",
]
