"""Symbol collection and XRay-id→name mapping (paper §V-C.1, §VI-B(a)).

DynCaPI must translate XRay function ids into names to match them
against the IC.  The paper's method: collect symbol addresses per object
(``nm`` on the object file), translate them by the object's load address
(from the process memory map), then cross-check against
``__xray_function_address``.

Hidden-visibility symbols in DSOs defeat this: they are not present in
the loader-visible (dynamic) symbol table, so their ids cannot be
named — the 1,444 unresolvable OpenFOAM functions.  The main executable
is exempt (its on-disk symbol table is fully readable).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.loader import DynamicLoader, LoadedObject
from repro.xray.ids import PackedId
from repro.xray.runtime import XRayRuntime


@dataclass(frozen=True)
class SymbolTriple:
    name: str
    address: int
    size: int


def collect_object_symbols(lo: LoadedObject) -> list[SymbolTriple]:
    """nm-style collection translated to runtime addresses.

    For DSOs only dynamic (non-hidden) symbols are usable; for the
    executable the full symbol table is readable from disk.
    """
    binary = lo.binary
    symbols = binary.nm_symbols() if not binary.is_dso else binary.dynamic_symbols()
    return [
        SymbolTriple(sym.name, lo.base + sym.offset, sym.size) for sym in symbols
    ]


def collect_all_symbols(loader: DynamicLoader) -> dict[str, list[SymbolTriple]]:
    """Per-object symbol triples for every loaded object."""
    return {
        name: collect_object_symbols(lo) for name, lo in loader.loaded.items()
    }


@dataclass
class IdNameMap:
    """Bidirectional packed-id ↔ name mapping with unresolved tracking."""

    names: dict[PackedId, str] = field(default_factory=dict)
    ids: dict[str, PackedId] = field(default_factory=dict)
    #: packed ids whose sled address matched no collected symbol
    unresolved: list[PackedId] = field(default_factory=list)

    def name_of(self, packed: PackedId) -> str | None:
        return self.names.get(packed)

    def id_of(self, name: str) -> PackedId | None:
        return self.ids.get(name)

    @property
    def unresolved_count(self) -> int:
        return len(self.unresolved)


def build_id_name_map(
    runtime: XRayRuntime, loader: DynamicLoader
) -> IdNameMap:
    """Cross-check XRay function addresses against collected symbols.

    For every registered object and function id, query
    ``__xray_function_address`` and find the covering symbol.  Functions
    without a matching symbol (hidden in a DSO) land in ``unresolved``.
    """
    out = IdNameMap()
    per_object = {
        name: sorted(triples, key=lambda t: t.address)
        for name, triples in collect_all_symbols(loader).items()
    }
    for obj in runtime.objects():
        triples = per_object.get(obj.name, [])
        for fid in sorted(obj.function_names):
            packed = PackedId(obj.object_id, fid)
            address = runtime.function_address(packed)
            symbol = _covering(triples, address)
            if symbol is None:
                out.unresolved.append(packed)
                continue
            out.names[packed] = symbol.name
            out.ids[symbol.name] = packed
    return out


def _covering(
    triples: list[SymbolTriple], address: int
) -> SymbolTriple | None:
    """Binary search for the symbol whose range covers ``address``."""
    lo, hi = 0, len(triples)
    while lo < hi:
        mid = (lo + hi) // 2
        if triples[mid].address <= address:
            lo = mid + 1
        else:
            hi = mid
    if lo == 0:
        return None
    cand = triples[lo - 1]
    if cand.address <= address < cand.address + max(cand.size, 1):
        return cand
    return None
