"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError` so
callers can catch everything coming out of the toolchain with a single
``except`` clause, while still being able to discriminate the layer that
failed (program model, XRay runtime, CaPI selection, measurement, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Program model / compiler / linker
# ---------------------------------------------------------------------------


class ProgramModelError(ReproError):
    """Malformed program IR (duplicate functions, dangling call sites...)."""


class CompilationError(ReproError):
    """The compiler pipeline could not lower a program."""


class LinkError(ReproError):
    """Linking failed (duplicate strong symbols, unresolved references)."""


class LoaderError(ReproError):
    """The dynamic loader could not map or relocate an object."""


class SegmentationFault(ReproError):
    """A write hit a non-writable virtual page.

    Raised by the memory model when patching is attempted without the
    copy-on-write ``mprotect`` step, or when a non-position-independent
    trampoline is used from a relocated DSO.
    """


# ---------------------------------------------------------------------------
# Call graph
# ---------------------------------------------------------------------------


class CallGraphError(ReproError):
    """Structural problem in a call graph."""


class MergeConflictError(CallGraphError):
    """Conflicting metadata while merging translation-unit call graphs."""


# ---------------------------------------------------------------------------
# XRay
# ---------------------------------------------------------------------------


class XRayError(ReproError):
    """Generic XRay runtime error."""


class PackedIdError(XRayError):
    """Object or function id outside the packed-id bit ranges."""


class ObjectRegistrationError(XRayError):
    """DSO registration failed (limit exceeded, duplicate, unloaded...)."""


class PatchingError(XRayError):
    """A sled could not be (un)patched."""


class TrampolineRelocationError(XRayError):
    """A non-PIC trampoline was invoked from a relocated shared object."""


# ---------------------------------------------------------------------------
# CaPI / selection DSL
# ---------------------------------------------------------------------------


class CapiError(ReproError):
    """Generic CaPI driver error."""


class SpecSyntaxError(CapiError):
    """Lexical or syntactic error in a ``.capi`` specification."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class SpecSemanticError(CapiError):
    """Semantic error: unknown selector, bad arity, unresolved reference."""


class ImportResolutionError(CapiError):
    """A ``!import(...)`` directive could not be resolved."""


class SelectionError(CapiError):
    """Selector evaluation failed at runtime."""


class ServiceError(CapiError):
    """Selection-service error (unknown graph key, closed service, …)."""


class ServiceClosedError(ServiceError):
    """The selection service no longer accepts requests."""


class BatchMismatchError(ServiceError):
    """A batched result differed from its sequential evaluation.

    Raised only in verification mode — batched and sequential evaluation
    are bit-identical by construction, so this firing means a selector
    broke purity (mutated state or depended on evaluation order).
    """


class ServiceTimeoutError(ServiceError):
    """A service request ran out of time.

    Raised to the client when :meth:`SelectionService.select` times out
    (the request is cancelled and its admission slot released), and set
    on a request's future when the shard supervisor rescued it from a
    dead or wedged worker after its retry budget was exhausted.
    """


class QuarantinedSpecError(ServiceError):
    """The spec's structural key is quarantined on this graph.

    A spec whose evaluation failed ``quarantine_threshold`` consecutive
    times trips a per-``(graph, cache key)`` circuit breaker: further
    requests fail fast with this error instead of burning a worker on a
    known-poison query, until a half-open probe succeeds after the
    cooldown.
    """


class InjectedServiceFaultError(ServiceError):
    """A deterministic service chaos fault fired (see service.faults).

    Always *transient*: the worker treats it as retryable, so a bounded
    retry budget heals every finite fault schedule.
    """


# ---------------------------------------------------------------------------
# Measurement substrates
# ---------------------------------------------------------------------------


class MeasurementError(ReproError):
    """Generic measurement-system error."""


class ScorePError(MeasurementError):
    """Score-P substrate error."""


class FilterFormatError(ScorePError):
    """Malformed Score-P filter file."""


class TalpError(MeasurementError):
    """TALP/DLB substrate error."""


class MpiNotInitializedError(TalpError):
    """A TALP region operation happened before ``MPI_Init``.

    The paper (section VI-B) observes that regions entered before
    ``MPI_Init`` cannot be registered and are silently dropped by
    DynCaPI; the raw DLB API reports this condition as an error.
    """


class SimMpiError(ReproError):
    """Simulated-MPI misuse (rank out of range, mismatched collective...)."""


# ---------------------------------------------------------------------------
# Execution engine
# ---------------------------------------------------------------------------


class ExecutionError(ReproError):
    """The virtual-clock execution engine hit an inconsistent state."""


# ---------------------------------------------------------------------------
# Multi-rank fault tolerance
# ---------------------------------------------------------------------------


class RankExecutionError(ReproError):
    """One rank's execution attempt failed under supervision.

    Carries the failing rank id so supervisors and health reports can
    attribute the failure without parsing the message.  Subclasses
    discriminate the failure mode (crash vs. deadline overrun).  The
    exception survives the multiprocessing pickle boundary with the
    rank attribute intact (``__reduce__``).
    """

    def __init__(self, message: str, rank: "int | None" = None):
        super().__init__(message)
        self.rank = rank

    def __reduce__(self):
        return (type(self), (self.args[0] if self.args else "", self.rank))


class RankFailedError(RankExecutionError):
    """A rank attempt raised, died, or returned a corrupt payload."""


class RankTimeoutError(RankExecutionError):
    """A rank attempt overran its per-rank deadline (hung worker)."""


class InjectedFaultError(RankFailedError):
    """A deterministic chaos-injection fault fired (see multirank.faults)."""


class DegradedResultError(ReproError):
    """Ranks were lost and the degradation policy forbids partial results.

    Raised by the multi-rank reducer path when supervision exhausted its
    retries on one or more ranks and the caller ran with
    ``degraded="forbid"`` (the default).  ``missing_ranks`` names the
    ranks that produced no result.
    """

    def __init__(self, message: str, missing_ranks: "tuple[int, ...]" = ()):
        super().__init__(message)
        self.missing_ranks = tuple(missing_ranks)

    def __reduce__(self):
        return (
            type(self),
            (self.args[0] if self.args else "", self.missing_ranks),
        )
