"""Simulated MPI operations with a simple latency/bandwidth cost model.

Each operation charges the virtual clock: a fixed software latency plus
a size-dependent transfer term, with collectives paying a ``log2(P)``
tree factor.  The values only matter relative to compute costs; they are
chosen so MPI time is a visible but not dominant fraction of the
synthetic workloads, as in the paper's test cases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimMpiError
from repro.simmpi.world import MpiWorld

#: MPI operation classes with distinct cost behaviour.
POINT_TO_POINT = {"MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv", "MPI_Wait"}
COLLECTIVES = {
    "MPI_Barrier",
    "MPI_Bcast",
    "MPI_Reduce",
    "MPI_Allreduce",
    "MPI_Gather",
    "MPI_Allgather",
    "MPI_Scatter",
    "MPI_Alltoall",
}
LIFECYCLE = {"MPI_Init", "MPI_Finalize"}

#: collectives with all-to-all completion semantics: no rank leaves the
#: operation before every rank has entered it.  The cross-rank profile
#: reducer uses this classification to attribute inter-rank wait time
#: (fast ranks blocking for the bottleneck) to MPI rather than compute.
SYNCHRONIZING = {"MPI_Barrier", "MPI_Allreduce", "MPI_Allgather", "MPI_Alltoall"}

KNOWN_OPS = POINT_TO_POINT | COLLECTIVES | LIFECYCLE | {"MPI_Comm_rank", "MPI_Comm_size"}


@dataclass(frozen=True)
class CommCosts:
    """Virtual-cycle costs of the simulated interconnect."""

    latency: float = 600.0
    cycles_per_byte: float = 0.4
    #: per-hop factor for tree-based collectives
    collective_tree_factor: float = 1.0
    query_cost: float = 20.0  # MPI_Comm_rank / size
    lifecycle_cost: float = 5_000.0


class SimComm:
    """Issue simulated MPI operations against a world."""

    def __init__(self, world: MpiWorld, costs: CommCosts | None = None):
        self.world = world
        self.costs = costs or CommCosts()

    def cost_of(self, op: str, *, message_bytes: int = 8192) -> float:
        """Virtual-cycle cost of one MPI operation on the calling rank."""
        c = self.costs
        if op in LIFECYCLE:
            return c.lifecycle_cost
        if op in ("MPI_Comm_rank", "MPI_Comm_size"):
            return c.query_cost
        if op == "MPI_Barrier":
            # a barrier carries no payload: it pays the tree of
            # latencies only, never the bandwidth term
            message_bytes = 0
        transfer = c.latency + message_bytes * c.cycles_per_byte
        if op in COLLECTIVES:
            hops = max(1.0, math.log2(max(self.world.size, 2)))
            return transfer * hops * c.collective_tree_factor
        if op in POINT_TO_POINT:
            return transfer
        raise SimMpiError(f"unknown MPI operation {op!r}")

    def is_mpi_op(self, name: str) -> bool:
        return name in KNOWN_OPS or name.startswith("MPI_")

    def is_synchronizing(self, name: str) -> bool:
        """True for operations no rank can exit before all ranks enter."""
        return name in SYNCHRONIZING
