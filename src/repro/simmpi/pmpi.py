"""PMPI interception layer.

Real TALP monitors applications exclusively through the MPI profiling
interface: every ``MPI_X`` resolves to a wrapper that notifies the tool
before forwarding to ``PMPI_X``.  The simulated layer does the same —
the execution engine routes every MPI machine function through
:class:`PmpiLayer`, which notifies registered interceptors with the
operation name and its cost.

Interceptors may return extra virtual cycles (their own bookkeeping
cost); the engine charges those to the clock, which is how TALP's
per-open-region update cost enters the overhead model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from repro.simmpi.comm import SimComm
from repro.simmpi.world import MpiWorld


class MpiInterceptor(Protocol):
    """The hook contract: called around every MPI operation."""

    def on_mpi_call(self, op: str, cost_cycles: float) -> float:
        """Notification; returns the interceptor's own added cycles."""
        ...


@dataclass
class PmpiLayer:
    """Dispatch MPI calls to the simulated library plus interceptors."""

    comm: SimComm
    interceptors: list[MpiInterceptor] = field(default_factory=list)
    #: optional callbacks fired on MPI_Init / MPI_Finalize
    on_init: list[Callable[[], None]] = field(default_factory=list)
    on_finalize: list[Callable[[], None]] = field(default_factory=list)

    @property
    def world(self) -> MpiWorld:
        return self.comm.world

    def register(self, interceptor: MpiInterceptor) -> None:
        self.interceptors.append(interceptor)

    def call(self, op: str, *, message_bytes: int = 8192) -> float:
        """Execute one MPI operation; returns total virtual cycles.

        The returned cost includes the operation itself plus whatever
        the interceptors report as their own overhead.
        """
        if op == "MPI_Init":
            self.world.init()
            for cb in self.on_init:
                cb()
        elif op == "MPI_Finalize":
            for cb in self.on_finalize:
                cb()
            self.world.finalize()
        base = self.comm.cost_of(op, message_bytes=message_bytes)
        extra = 0.0
        for interceptor in self.interceptors:
            extra += interceptor.on_mpi_call(op, base)
        self.world.record_mpi(base)
        return base + extra
