"""Simulated MPI world: ranks, lifecycle, and load-imbalance model.

The reproduction executes the target program once (the bottleneck
rank's perspective) and *synthesises* the other ranks analytically:
rank ``r`` performs the same computation scaled by a deterministic
per-rank factor ``s_r <= 1`` (rank 0 is the slowest, ``s_0 = 1``), and
all ranks synchronise at collectives.  This is sufficient for TALP's
POP metrics — load balance and communication efficiency are functions
of the per-rank useful times and the synchronised elapsed time — while
keeping the engine single-pass and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro._util import rng_for
from repro.errors import SimMpiError


@dataclass
class MpiWorld:
    """One simulated ``MPI_COMM_WORLD``.

    ``imbalance`` is the maximum fractional reduction of compute load on
    the fastest rank; per-rank factors are drawn deterministically from
    ``seed``.
    """

    size: int = 4
    imbalance: float = 0.2
    seed: int = 7
    initialized: bool = False
    finalized: bool = False
    #: virtual cycles spent inside MPI calls (bottleneck rank)
    mpi_cycles: float = 0.0
    #: number of MPI operations issued
    mpi_calls: int = 0
    _factors: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise SimMpiError(f"world size must be >= 1, got {self.size}")
        if not 0.0 <= self.imbalance < 1.0:
            raise SimMpiError("imbalance must be in [0, 1)")

    # -- lifecycle -----------------------------------------------------------

    def init(self) -> None:
        """``MPI_Init``: gate for TALP region registration."""
        if self.initialized:
            raise SimMpiError("MPI_Init called twice")
        if self.finalized:
            raise SimMpiError("MPI_Init after MPI_Finalize")
        self.initialized = True

    def finalize(self) -> None:
        if not self.initialized:
            raise SimMpiError("MPI_Finalize before MPI_Init")
        if self.finalized:
            raise SimMpiError("MPI_Finalize called twice")
        self.finalized = True

    # -- imbalance model --------------------------------------------------------

    @property
    def compute_factors(self) -> np.ndarray:
        """Per-rank compute scale factors, rank 0 always the slowest (1.0)."""
        if self._factors is None:
            rng = rng_for(self.seed, "mpi-imbalance", self.size)
            jitter = rng.uniform(0.0, self.imbalance, size=self.size)
            factors = 1.0 - jitter
            factors[0] = 1.0
            self._factors = factors
        return self._factors

    def load_balance(self) -> float:
        """Ideal LB coefficient of the pure application (no overhead)."""
        f = self.compute_factors
        return float(f.mean() / f.max())

    def record_mpi(self, cycles: float) -> None:
        self.mpi_calls += 1
        self.mpi_cycles += cycles


def finalize_wait(per_rank_total_cycles: "Iterable[float]") -> np.ndarray:
    """Synchronisation wait each rank spends at the closing barrier.

    ``MPI_Finalize`` (and any trailing synchronizing collective) holds
    every rank until the slowest one arrives, so a rank that finishes
    its local work early blocks for ``max_r(total_r) - total_r`` extra
    cycles.  The cross-rank reducer attributes that wait to MPI time —
    the same attribution TALP makes when a PMPI-intercepted collective
    stalls — so per-rank accounting closes: ``elapsed = local_total +
    wait`` for every rank.
    """
    totals = np.asarray(list(per_rank_total_cycles), dtype=float)
    if totals.size == 0:
        return totals
    if (totals < 0).any():
        raise SimMpiError("per-rank totals must be non-negative")
    return totals.max() - totals
