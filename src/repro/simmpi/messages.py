"""Point-to-point message matching for trace-based wait-state analysis.

Scalasca labels a point-to-point wait *late sender* (receiver blocked
for a message not yet sent) or *late receiver* (sender blocked in a
synchronous send for a receiver not yet posted) by replaying matched
send/recv pairs out of the trace.  Matching needs message identity; a
real MPI gets it from (communicator, tag, source, dest) envelope order.

Our simulated apps are SPMD ring exchanges: every rank issues the same
point-to-point sequence, and message k sent by rank r is received as
message k by rank ``(r + 1) % world``.  That makes identity simple and
deterministic: the k-th send on a rank and the k-th receive on a rank
pair across the ring.  :class:`MessageMatcher` hands out those
sequence numbers as the ``mid`` stamped into MPI trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: point-to-point ops that originate a message
SEND_OPS = frozenset({"MPI_Send", "MPI_Isend"})
#: point-to-point ops that complete a message
RECV_OPS = frozenset({"MPI_Recv", "MPI_Irecv"})


def ring_partner(rank: int, world: int) -> int:
    """The rank whose sends this rank receives (SPMD ring neighbour)."""
    return (rank - 1) % world


@dataclass
class MessageMatcher:
    """Per-rank send/recv sequence counters.

    ``next_id(op)`` returns the message id for a point-to-point trace
    event (``None`` for anything else): sends count up one sequence,
    receives another.  The ids are per-rank-local but globally
    matchable through the ring rule — send ``k`` on rank ``r`` pairs
    with recv ``k`` on rank ``(r + 1) % world``.
    """

    sends: int = field(default=0)
    recvs: int = field(default=0)

    def next_id(self, op: str) -> int | None:
        if op in SEND_OPS:
            mid = self.sends
            self.sends += 1
            return mid
        if op in RECV_OPS:
            mid = self.recvs
            self.recvs += 1
            return mid
        return None
