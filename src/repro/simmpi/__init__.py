"""Simulated MPI substrate: world, communicator cost model, PMPI layer."""

from repro.simmpi.world import MpiWorld
from repro.simmpi.comm import CommCosts, SimComm
from repro.simmpi.pmpi import MpiInterceptor, PmpiLayer

__all__ = ["CommCosts", "MpiInterceptor", "MpiWorld", "PmpiLayer", "SimComm"]
