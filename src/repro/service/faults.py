"""Deterministic fault injection for the selection service.

The selection service only earns its "supervised" name if the
supervision is *proven*: this module is the service-side twin of
:mod:`repro.multirank.faults`.  A :class:`ServiceFaultSpec` is a pure
function of its fields and a seed; it compiles per worker shard into one
:class:`ServiceFaultInjector`, so the same spec driven by the same
request sequence breaks the same operations on any machine.

Five fault kinds are injected inside the shard worker loop:

* **compile error** — a compile attempt raises
  :class:`~repro.errors.InjectedServiceFaultError` (transient: the
  request is re-enqueued with seeded backoff and heals on retry);
* **eval crash** — an evaluation pass (group or isolated) raises the
  same transient error, exercising both the retry path and the batch
  blast-radius containment (a failed group is re-run query by query);
* **hang** — the worker sleeps past the supervisor's shard deadline
  (bounded: ``deadline + hang_excess_seconds``); the supervisor must
  depose the wedged worker, rescue its in-flight batch and respawn;
* **death** — the worker thread raises outside every per-request guard
  and dies; the supervisor must notice the corpse and respawn;
* **cancel race** — one gathered request's future is cancelled just
  before processing, reproducing a client timing out in ``select()``
  while the worker resolves: the guarded resolution paths must survive
  and the admission slot must still be released exactly once.

Separately, **poison specs** model a query that is *deterministically*
broken: every evaluation attempt of a spec whose name or source contains
a poison marker fails with :class:`~repro.errors.SelectionError` for its
first ``poison_times`` attempts.  Poison failures are **not** transient
— they are attributed to the spec's structural key and drive the
per-graph quarantine circuit breaker (open after K consecutive
failures, half-open probe after a cooldown).

Disruptive kinds (hang/death/cancel) are drawn over a small
``disrupt_window`` of early processing rounds so a short drill is
guaranteed to hit them; per-operation kinds (compile/eval) draw over
``window`` operations.  Any finite schedule is recoverable by a
supervisor with enough retries — the chaos acceptance contract is that
every preset in :data:`SERVICE_FAULT_SCENARIOS` heals with answers
bit-identical to a fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import rng_for
from repro.errors import InjectedServiceFaultError, SelectionError, ServiceError

#: per-operation fault kinds (one op = one compile / one evaluate call)
OP_KINDS = ("compile", "eval")
#: per-round fault kinds (one op = one non-empty worker processing round)
ROUND_KINDS = ("hang", "death", "cancel")
FAULT_KINDS = OP_KINDS + ROUND_KINDS


@dataclass(frozen=True)
class ServiceFaultSpec:
    """Deterministic fault assignment for the service worker shards.

    ``compile_errors``/``eval_crashes`` count injected transient
    failures per shard, drawn over the first ``window`` operations of
    that kind; ``hangs``/``deaths``/``cancel_races`` count disruptive
    events per shard, drawn over the first ``disrupt_window`` processing
    rounds.  ``poison_specs`` name markers (matched against a spec's
    name or source); each marker's first ``poison_times`` evaluation
    attempts fail deterministically, driving the quarantine breaker.
    ``only_shards`` restricts injection to the named shard indices
    (empty = every shard), which lets isolation tests wedge one shard
    while proving its neighbours keep serving.
    """

    seed: int = 7
    window: int = 32
    disrupt_window: int = 4
    compile_errors: int = 0
    eval_crashes: int = 0
    hangs: int = 0
    hang_excess_seconds: float = 0.25
    deaths: int = 0
    cancel_races: int = 0
    poison_specs: tuple[str, ...] = ()
    poison_times: int = 3
    only_shards: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "compile_errors", "eval_crashes", "hangs", "deaths", "cancel_races"
        ):
            if getattr(self, name) < 0:
                raise ServiceError(f"{name} must be non-negative")
        if self.window < 1 or self.disrupt_window < 1:
            raise ServiceError("fault windows must be >= 1")
        if self.compile_errors > self.window or self.eval_crashes > self.window:
            raise ServiceError(
                f"per-op fault counts cannot exceed window={self.window}"
            )
        disruptions = max(self.hangs, self.deaths, self.cancel_races)
        if disruptions > self.disrupt_window:
            raise ServiceError(
                f"per-round fault counts cannot exceed "
                f"disrupt_window={self.disrupt_window}"
            )
        if self.poison_times < 1:
            raise ServiceError("poison_times must be >= 1")
        if self.hang_excess_seconds <= 0.0:
            raise ServiceError("hang_excess_seconds must be positive")

    @property
    def quiet(self) -> bool:
        """True when the spec injects nothing at all."""
        return (
            self.compile_errors == 0
            and self.eval_crashes == 0
            and self.hangs == 0
            and self.deaths == 0
            and self.cancel_races == 0
            and not self.poison_specs
        )

    def plan(self, shard_index: int) -> dict[str, frozenset[int]]:
        """Afflicted operation indices per kind for one shard.

        Deterministic in ``(seed, shard_index, kind)``: the same spec
        breaks the same ops of the same shard on every run and machine.
        A shard excluded by ``only_shards`` gets an empty plan.
        """
        if self.only_shards and shard_index not in self.only_shards:
            return {kind: frozenset() for kind in FAULT_KINDS}
        counts = {
            "compile": (self.compile_errors, self.window),
            "eval": (self.eval_crashes, self.window),
            "hang": (self.hangs, self.disrupt_window),
            "death": (self.deaths, self.disrupt_window),
            "cancel": (self.cancel_races, self.disrupt_window),
        }
        plan: dict[str, frozenset[int]] = {}
        for kind, (count, window) in counts.items():
            if count == 0:
                plan[kind] = frozenset()
                continue
            perm = rng_for(
                self.seed, "service-faults", shard_index, kind
            ).permutation(window)
            plan[kind] = frozenset(int(i) for i in perm[:count])
        return plan


class ServiceFaultInjector:
    """One shard's live injection state (owned by that shard's worker).

    Counts operations per kind and fires when the counter lands on a
    planned index.  Poison state is per marker: :meth:`poisoned` peeks
    (used to fail a whole batch group, which the containment pass then
    isolates), :meth:`consume_poison` burns one of the marker's
    ``poison_times`` on an isolated evaluation attempt.

    A replacement worker spawned after a death or depose inherits the
    shard's injector, so the surviving schedule carries across restarts
    — exactly like attempt-window fault plans in the multirank layer.
    """

    def __init__(self, spec: ServiceFaultSpec, shard_index: int):
        self.spec = spec
        self.shard_index = shard_index
        self._plan = spec.plan(shard_index)
        self._ops = {kind: 0 for kind in FAULT_KINDS}
        active = not spec.only_shards or shard_index in spec.only_shards
        self._poison_left = {
            marker: spec.poison_times if active else 0
            for marker in spec.poison_specs
        }

    def fires(self, kind: str) -> bool:
        """Advance the kind's op counter; True when this op is afflicted."""
        index = self._ops[kind]
        self._ops[kind] = index + 1
        return index in self._plan[kind]

    def poison_marker(self, spec_name: str, source: str) -> str | None:
        """The still-active poison marker matching this spec, if any."""
        for marker, left in self._poison_left.items():
            if left > 0 and (marker in spec_name or marker in source):
                return marker
        return None

    def consume_poison(self, marker: str) -> None:
        """Burn one poisoned evaluation attempt of ``marker``."""
        self._poison_left[marker] -= 1

    def injected_so_far(self) -> dict[str, int]:
        """Ops already afflicted per kind (diagnostics / tests)."""
        return {
            kind: sum(1 for i in self._plan[kind] if i < self._ops[kind])
            for kind in FAULT_KINDS
        }


def poison_error(marker: str, spec_name: str, shard_index: int) -> SelectionError:
    """The deterministic evaluation failure a poisoned spec raises."""
    return SelectionError(
        f"injected poison evaluation failure for spec "
        f"{spec_name or marker!r} (marker {marker!r}, shard {shard_index})"
    )


#: named chaos presets the ``serve --check-faults`` drill and the chaos
#: acceptance tests iterate: every preset must heal (all futures
#: resolve, the service keeps serving, recovered answers bit-identical
#: to a fault-free run).  Counts stay below the drill's retry budget so
#: healing is guaranteed, not probabilistic.
SERVICE_FAULT_SCENARIOS: dict[str, ServiceFaultSpec] = {
    "compile-error": ServiceFaultSpec(compile_errors=2),
    "eval-crash": ServiceFaultSpec(eval_crashes=2),
    "worker-hang": ServiceFaultSpec(hangs=1, hang_excess_seconds=0.25),
    "worker-death": ServiceFaultSpec(deaths=1),
    "cancel-race": ServiceFaultSpec(cancel_races=2),
    "poison-spec": ServiceFaultSpec(
        poison_specs=("hot-reachable",), poison_times=4
    ),
}


def resolve_service_faults(
    faults: "ServiceFaultSpec | str | None",
) -> ServiceFaultSpec | None:
    """Accept a spec instance, a preset name, or None."""
    if faults is None or isinstance(faults, ServiceFaultSpec):
        return faults
    if isinstance(faults, str):
        try:
            return SERVICE_FAULT_SCENARIOS[faults]
        except KeyError:
            raise ServiceError(
                f"unknown service fault preset {faults!r}; available: "
                f"{sorted(SERVICE_FAULT_SCENARIOS)}"
            ) from None
    raise ServiceError(f"object {faults!r} is not a ServiceFaultSpec")
