"""Worker shards: the service's unit of serialisation *and* of failure.

Each :class:`ServiceShard` owns a disjoint hash-slice of graph keys
(:func:`shard_of` over the process-stable FNV hash), with its own
per-tenant queues, adaptive micro-batch window and worker thread.
Because a graph key maps to exactly one shard, the PR 8 contract — a
graph's edits are serialised with its evaluations — is preserved
per-shard while unrelated graphs proceed in parallel, and a wedged or
crashed shard cannot take its siblings down.

The worker loop is written for supervision:

* **heartbeat / deadline** — the shard stamps ``busy_since`` when a
  processing round starts and clears it when the round ends; the
  service's supervisor deposes a shard whose round overruns the shard
  deadline.
* **generation depose** — every spawned worker carries its generation.
  The supervisor bumps ``generation`` when it deposes a shard, so a
  zombie worker waking from a hang sees a newer generation and exits
  without touching a single request; its rescued batch is already on
  the retry path.  (If a *legitimately slow* round is deposed, the old
  worker may still finish its requests — resolution is exactly-once by
  the request's ``done`` flag, retries of already-resolved requests are
  dropped at dispatch, and by selector purity either resolution carries
  the same answer.)
* **guarded resolution** — every future resolution and every admission
  slot release goes through the service's atomic finish helpers; a
  client cancelling mid-flight can no longer raise ``InvalidStateError``
  inside the loop (the PR 8 worker-killing bug).
* **blast-radius containment** — a failed group evaluation re-runs each
  of the group's queries individually, so only the culprit fails (and
  only *its* structural key takes a quarantine strike).
* **fault injection** — a :class:`~repro.service.faults.\
ServiceFaultInjector` plugged into the loop fires seeded compile
  errors, evaluation crashes, hangs, deaths and cancellation races; the
  injector lives on the shard, not the worker, so a replacement worker
  inherits the remaining schedule across respawns.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Iterator

from repro._util import stable_hash
from repro.core.pipeline import CompiledSpec
from repro.errors import (
    InjectedServiceFaultError,
    QuarantinedSpecError,
    ServiceError,
)
from repro.service.faults import ServiceFaultInjector, poison_error

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.service import SelectionService, _Edit, _Request


def shard_of(graph_key: str, shards: int) -> int:
    """The shard index owning ``graph_key`` — a stable partition.

    Deterministic in the key alone (process-stable FNV-1a, not the
    salted builtin ``hash``), so routing is reproducible across runs
    and machines and every key belongs to exactly one shard.
    """
    if shards < 1:
        raise ServiceError("shard count must be at least 1")
    if shards == 1:
        return 0
    return stable_hash(graph_key) % shards


class ServiceShard:
    """One worker shard: queues, window, worker thread, injection state."""

    def __init__(self, service: "SelectionService", index: int) -> None:
        self.service = service
        self.index = index
        self._cond = threading.Condition()
        self._queues: dict[str, deque["_Request"]] = {}
        self._edits: deque["_Edit"] = deque()
        #: current adaptive micro-batch window (see ``_adapt_window``)
        self._window = service.window_seconds
        #: bumped by the supervisor to depose the current worker
        self.generation = 0
        self.heartbeat = time.monotonic()
        #: start of the in-progress processing round (None when idle) —
        #: the supervisor's deadline clock
        self.busy_since: float | None = None
        #: work owned by the in-progress round, rescuable on depose
        self.active_batch: list["_Request"] = []
        self.active_edits: list["_Edit"] = []
        #: survives worker respawns: the fault schedule carries across
        self.injector: ServiceFaultInjector | None = None
        #: set by a worker exiting the clean close-drain path
        self.drained = False
        self.restarts = 0
        self.worker: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------------

    def spawn(self) -> None:
        """Start a (replacement) worker at a fresh generation."""
        with self._cond:
            self.generation += 1
            generation = self.generation
            self._cond.notify_all()
        worker = threading.Thread(
            target=self._run,
            args=(generation,),
            name=f"selection-shard-{self.index}",
            daemon=True,
        )
        self.worker = worker
        worker.start()

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def enqueue(self, request: "_Request") -> None:
        with self._cond:
            self._queues.setdefault(request.tenant, deque()).append(request)
            self._cond.notify_all()

    def enqueue_edit(self, edit: "_Edit") -> None:
        with self._cond:
            self._edits.append(edit)
            self._cond.notify_all()

    # -- worker loop -------------------------------------------------------------

    def _run(self, generation: int) -> None:
        service = self.service
        while True:
            gathered = self._gather(generation)
            if gathered is None:
                return  # deposed (zombie) or closed-and-drained
            batch, edits = gathered
            if not batch and not edits:
                continue
            if self.injector is not None and not self._survive_disruption(
                generation, batch
            ):
                return  # injected death, or deposed while hanging
            for edit in edits:
                self._apply_edit(edit)
            groups: dict[str, list["_Request"]] = {}
            for request in batch:
                if service._discard_cancelled(request):
                    continue
                groups.setdefault(request.graph_key, []).append(request)
            for graph_key, requests in groups.items():
                self._process_group(graph_key, requests)
            with self._cond:
                self.active_batch = []
                self.active_edits = []
                self.busy_since = None
                self.heartbeat = time.monotonic()

    def _gather(
        self, generation: int
    ) -> "tuple[list[_Request], list[_Edit]] | None":
        """Wait for work, honour the window, drain fairly, stamp the round.

        Returns ``None`` when this worker must exit: deposed (a newer
        generation exists) or the service is closing with this shard's
        queues drained (``drained`` is set so the supervisor knows the
        exit was clean).
        """
        service = self.service
        with self._cond:
            while (
                generation == self.generation
                and not service._closing
                and not self.pending()
                and not self._edits
            ):
                self.heartbeat = time.monotonic()
                self._cond.wait(timeout=0.5)
            if generation != self.generation:
                return None
            if service._closing and not self.pending() and not self._edits:
                self.drained = True
                return None
            windowed = False
            if self.pending():
                windowed = True
                deadline = time.monotonic() + self._window
                while (
                    self.pending() < service.max_batch
                    and not service._closing
                    and generation == self.generation
                ):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                if generation != self.generation:
                    return None
            edits = list(self._edits)
            self._edits.clear()
            batch = [
                request
                for request in self._drain_round_robin(service.max_batch)
                if not service._discard_cancelled(request)
            ]
            if windowed and service.window_seconds > 0:
                self._adapt_window(len(batch))
            # register the round under the lock so a supervisor rescue
            # sees exactly the work this round owns
            self.active_batch = list(batch)
            self.active_edits = list(edits)
            self.busy_since = (
                time.monotonic() if (batch or edits) else None
            )
            self.heartbeat = time.monotonic()
            return batch, edits

    def _adapt_window(self, gathered: int) -> None:
        """Track the arrival rate: shrink on solo gathers, widen on burst.

        A full window that still gathers one request means coalescing
        buys nothing but latency, so the wait halves (floored at 1/64 of
        the configured window rather than zero, keeping a step back up
        once traffic returns).  A gather at or past half of ``max_batch``
        means requests queue faster than the window drains them, so it
        doubles back toward the configured cap.
        """
        service = self.service
        if gathered <= 1:
            self._window = max(service.window_seconds / 64, self._window / 2)
        elif gathered >= max(2, service.max_batch // 2):
            self._window = min(service.window_seconds, self._window * 2)

    def _drain_round_robin(self, limit: int) -> Iterator["_Request"]:
        """Pop up to ``limit`` requests, one per tenant per round."""
        taken = 0
        while taken < limit:
            progressed = False
            for tenant in sorted(self._queues):
                queue = self._queues[tenant]
                if queue and taken < limit:
                    yield queue.popleft()
                    taken += 1
                    progressed = True
            if not progressed:
                return

    def _survive_disruption(
        self, generation: int, batch: "list[_Request]"
    ) -> bool:
        """Fire round-scoped injections; False means this worker exits.

        * **hang** — sleep past the shard deadline (bounded by the
          spec's ``hang_excess_seconds``); the supervisor deposes and
          rescues mid-sleep, so the woken zombie sees a newer
          generation and exits before touching any request.
        * **death** — the worker exits mid-round with its active batch
          registered, modelling an unexpected loop-killing exception;
          the supervisor notices the corpse and respawns.
        * **cancel** — cancel one gathered request's future,
          reproducing a client timing out in ``select()`` exactly when
          the worker starts its round; the guarded finish paths must
          survive and release the admission slot exactly once.
        """
        injector = self.injector
        assert injector is not None
        if injector.fires("cancel") and batch:
            batch[0].future.cancel()
        if injector.fires("death"):
            return False
        if injector.fires("hang"):
            deadline = self.service.shard_deadline_seconds
            time.sleep(deadline + injector.spec.hang_excess_seconds)
            with self._cond:
                if generation != self.generation:
                    return False  # deposed while asleep: exit untouched
        return True

    # -- processing --------------------------------------------------------------

    def _apply_edit(self, edit: "_Edit") -> None:
        service = self.service
        try:
            graph = service.store.graph(edit.graph_key)
            edit.mutate(graph)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the client
            service._finish_edit(edit, error=exc)
            return
        service._finish_edit(edit, version=graph.version)

    def _compile_op(self, request: "_Request") -> CompiledSpec:
        if self.injector is not None and self.injector.fires("compile"):
            raise InjectedServiceFaultError(
                f"injected compile error (shard {self.index})"
            )
        return self.service._compile(request)

    def _process_group(
        self, graph_key: str, requests: "list[_Request]"
    ) -> None:
        """Compile, gate through quarantine, evaluate the group in one pass."""
        service = self.service
        specs: list[CompiledSpec] = []
        kept: list[tuple["_Request", str]] = []
        for request in requests:
            try:
                compiled = self._compile_op(request)
            except InjectedServiceFaultError as exc:
                service._retry_or_fail(request, self.index, exc)
                continue
            except BaseException as exc:  # noqa: BLE001 - client error
                service._finish_error(request, exc)
                continue
            spec_key = compiled.cache_key or f"src:{request.source}"
            verdict = service._admit_spec(graph_key, spec_key)
            if verdict == "fast_fail":
                service._finish_error(
                    request,
                    QuarantinedSpecError(
                        f"spec {request.spec_name or spec_key!r} is "
                        f"quarantined on graph {graph_key!r} "
                        f"(cooldown pending)"
                    ),
                )
                continue
            specs.append(compiled)
            kept.append((request, spec_key))
        if not kept:
            return
        try:
            outcome = self._evaluate_group(graph_key, specs, kept)
        except BaseException:  # noqa: BLE001 - contained below
            # blast-radius containment: re-run each query individually
            # so only the culprit fails / takes a quarantine strike
            with service._lock:
                service.stats.contained_groups += 1
            for (request, spec_key), spec in zip(kept, specs):
                self._process_isolated(graph_key, request, spec, spec_key)
            return
        now = time.monotonic()
        with service._lock:
            stats = service.stats
            stats.batches += 1
            stats.batched_requests += len(kept)
            stats.max_batch_size = max(stats.max_batch_size, len(kept))
            stats.deduped += outcome.deduped
            stats.unique_evaluated += outcome.unique_evaluated
            stats.cross_hits += outcome.cross_hits
        for (request, spec_key), result in zip(kept, outcome.results):
            service._record_spec_success(graph_key, spec_key)
            service._finish_response(
                request, result, graph_key, outcome.graph_version, now
            )

    def _evaluate_group(
        self,
        graph_key: str,
        specs: list[CompiledSpec],
        kept: "list[tuple[_Request, str]]",
    ):
        """One batched pass; injected faults strike the *group* attempt."""
        service = self.service
        injector = self.injector
        if injector is not None:
            if injector.fires("eval"):
                raise InjectedServiceFaultError(
                    f"injected group evaluation crash (shard {self.index})"
                )
            for request, _ in kept:
                marker = injector.poison_marker(
                    request.spec_name, request.source
                )
                if marker is not None:
                    # peek only: the isolated re-run consumes the attempt
                    raise poison_error(
                        marker, request.spec_name, self.index
                    )
        entry = service.store.entry(graph_key)
        return service._evaluator.evaluate(specs, entry)

    def _process_isolated(
        self,
        graph_key: str,
        request: "_Request",
        spec: CompiledSpec,
        spec_key: str,
    ) -> None:
        """Containment re-run of one query after its group failed.

        Quarantine admission already happened at group build, so this
        path only *reports* outcomes to the breaker: a non-service
        failure is a strike against the spec's structural key, success
        clears it (closing a half-open probe).
        """
        service = self.service
        if service._discard_cancelled(request):
            return
        injector = self.injector
        try:
            if injector is not None:
                marker = injector.poison_marker(
                    request.spec_name, request.source
                )
                if marker is not None:
                    injector.consume_poison(marker)
                    raise poison_error(marker, request.spec_name, self.index)
                if injector.fires("eval"):
                    raise InjectedServiceFaultError(
                        f"injected evaluation crash "
                        f"(shard {self.index}, isolated)"
                    )
            entry = service.store.entry(graph_key)
            outcome = service._evaluator.evaluate([spec], entry)
        except InjectedServiceFaultError as exc:
            service._retry_or_fail(request, self.index, exc)
            return
        except BaseException as exc:  # noqa: BLE001 - client error
            service._record_spec_failure(graph_key, spec_key, request, exc)
            return
        with service._lock:
            service.stats.isolated_reruns += 1
            service.stats.batches += 1
            service.stats.batched_requests += 1
            service.stats.deduped += outcome.deduped
            service.stats.unique_evaluated += outcome.unique_evaluated
            service.stats.cross_hits += outcome.cross_hits
        service._record_spec_success(graph_key, spec_key)
        service._finish_response(
            request,
            outcome.results[0],
            graph_key,
            outcome.graph_version,
            time.monotonic(),
        )
