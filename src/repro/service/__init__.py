"""Selection-as-a-service: warm graph store, batching, multi-tenant queries.

The one-shot pipeline (build app → compile spec → select → run) serves
the paper's experiments; this package serves *traffic*.  The unit of
work is a selection query — ``(tenant, graph key, spec source)`` — and
the architecture amortises everything a query would otherwise pay for:

* :class:`GraphStore` keeps many call graphs warm: one frozen
  :class:`~repro.cg.csr.CsrSnapshot` plus one bound
  :class:`~repro.core.selectors.base.CrossRunCache` per graph, with LRU
  eviction by bytes and version-keyed invalidation on mutation.
* :class:`BatchEvaluator` evaluates N compiled specs over one snapshot
  in a single pass, deduplicating whole queries and shared
  sub-expressions by structural key — each unique selector expression
  runs once per graph version.
* :class:`SelectionService` is the front door: bounded async admission,
  a micro-batching window, per-tenant FIFO queues drained round-robin,
  serialised graph edits, and request/latency/hit-rate statistics.
* **Supervision** (PR 10): the worker is sharded per graph key
  (:func:`~repro.service.shard.shard_of`, ``shards=N``), each shard
  heartbeats to a supervisor that deposes wedged workers and respawns
  dead ones with seeded-backoff retries; failed batch groups are re-run
  query by query (blast-radius containment) and repeatedly-failing
  structural keys are quarantined behind a
  :class:`~repro.service.health.QuarantineBreaker`.  Deterministic
  chaos (:class:`~repro.service.faults.ServiceFaultSpec`) proves every
  finite fault schedule heals.

Batched results are bit-identical to sequential one-shot evaluation
(selector purity); ``verify=True`` re-derives and asserts it per batch.
See ``docs/service.md`` for the architecture and semantics.
"""

from repro.service.batch import BatchEvaluator, BatchOutcome
from repro.service.faults import (
    SERVICE_FAULT_SCENARIOS,
    ServiceFaultInjector,
    ServiceFaultSpec,
    resolve_service_faults,
)
from repro.service.health import (
    QuarantineBreaker,
    ServiceHealth,
)
from repro.service.service import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_IN_FLIGHT,
    DEFAULT_SHARD_DEADLINE,
    DEFAULT_WINDOW_SECONDS,
    SelectionService,
    ServiceResponse,
    ServiceStats,
)
from repro.service.shard import ServiceShard, shard_of
from repro.service.store import (
    DEFAULT_MAX_BYTES,
    GraphEntry,
    GraphStore,
    StoreStats,
)

__all__ = [
    "BatchEvaluator",
    "BatchOutcome",
    "DEFAULT_MAX_BATCH",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_IN_FLIGHT",
    "DEFAULT_SHARD_DEADLINE",
    "DEFAULT_WINDOW_SECONDS",
    "GraphEntry",
    "GraphStore",
    "QuarantineBreaker",
    "SERVICE_FAULT_SCENARIOS",
    "SelectionService",
    "ServiceFaultInjector",
    "ServiceFaultSpec",
    "ServiceHealth",
    "ServiceResponse",
    "ServiceShard",
    "ServiceStats",
    "StoreStats",
    "resolve_service_faults",
    "shard_of",
]
