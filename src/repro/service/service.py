"""Multi-tenant selection service: supervised, sharded admission front door.

The service turns the one-shot pipeline (build → compile → select) into
a long-lived query front door:

* **admission** — :meth:`SelectionService.submit` enqueues a
  ``(tenant, graph key, spec source)`` request and returns a
  :class:`concurrent.futures.Future`.  Admission is bounded
  (``max_in_flight``): past the bound, submitters block — backpressure
  instead of unbounded queue growth.  A client that stops waiting
  cancels its future (``select`` does this on timeout) and the slot is
  reclaimed when the worker next sees the request.
* **sharding** — ``shards=N`` splits the worker into N
  :class:`~repro.service.shard.ServiceShard` threads, each owning a
  disjoint hash-slice of graph keys with its own per-tenant queues and
  adaptive micro-batch window.  A graph's edits stay serialised with
  its evaluations (same key → same shard) while unrelated graphs
  proceed in parallel — and a wedged or crashed shard cannot take its
  siblings down.  The default of one shard preserves the PR 8 single
  worker exactly.
* **supervision** — a supervisor thread heartbeats every shard:
  a dead worker is respawned, a worker that overruns
  ``shard_deadline_seconds`` mid-round is deposed (generation bump; the
  zombie exits on wake) and respawned, and the interrupted round's
  requests are re-enqueued with seeded backoff up to ``max_attempts``
  before failing fast with :class:`~repro.errors.ServiceTimeoutError`.
  Incidents land in a :class:`~repro.service.health.ServiceHealth`
  record — surfaced via ``stats_snapshot()["health"]`` and emitted as
  :class:`~repro.trace.alerts.Alert` records (optionally appended to an
  ``alerts_path`` JSONL file the PR 7 watchdog tooling can ingest).
* **containment** — a failed group evaluation is re-run query by query
  so only the culprit fails, and a spec whose structural key fails
  ``quarantine_threshold`` consecutive times on a graph is quarantined
  behind a circuit breaker (fail fast with
  :class:`~repro.errors.QuarantinedSpecError`, half-open probe after
  ``quarantine_cooldown_seconds``).
* **micro-batching / edits / observability** — as in PR 8: per-tenant
  FIFO queues drained round-robin, an adaptive coalescing window per
  shard, serialised graph edits via :meth:`submit_edit`, and
  :meth:`stats_snapshot` for counters.

Compilation is amortised through a per-service LRU of spec source →
:class:`~repro.core.pipeline.CompiledSpec` (compiled specs are
graph-independent and immutable, so one entry serves every tenant and
every shard); the cache and its hit counters live under the service
lock so concurrent shards never tear them.

Deterministic chaos (seeded compile errors, evaluation crashes, worker
hangs/deaths, cancellation races, poison specs) plugs in via
``faults=`` — a :class:`~repro.service.faults.ServiceFaultSpec` or a
preset name — and requires ``supervised=True``; the chaos acceptance
contract is that every finite schedule heals with answers bit-identical
to a fault-free run.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
from concurrent.futures import Future, InvalidStateError
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Callable

from repro._util import rng_for
from repro.cg.graph import CallGraph
from repro.core.pipeline import CompiledSpec, SelectionResult, compile_spec
from repro.errors import (
    ServiceClosedError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.service.batch import BatchEvaluator
from repro.service.faults import ServiceFaultInjector, resolve_service_faults
from repro.service.health import (
    DEFAULT_QUARANTINE_COOLDOWN,
    DEFAULT_QUARANTINE_THRESHOLD,
    QuarantineBreaker,
    ServiceHealth,
)
from repro.service.shard import ServiceShard, shard_of
from repro.service.store import GraphStore
from repro.trace.alerts import Alert

#: default micro-batch window: long enough to coalesce a burst of
#: concurrent clients, short enough to stay invisible at human scale
DEFAULT_WINDOW_SECONDS = 0.002
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_IN_FLIGHT = 1024
DEFAULT_COMPILE_CACHE = 256
#: a worker round (one batch + its edits) overrunning this is wedged
DEFAULT_SHARD_DEADLINE = 10.0
#: supervisor tick: heartbeat checks + due-retry dispatch
DEFAULT_SUPERVISE_INTERVAL = 0.05
#: total attempts per request before the supervisor gives up on it
DEFAULT_MAX_ATTEMPTS = 3
#: first-retry backoff; doubles per attempt, jittered, capped
BACKOFF_BASE_SECONDS = 0.01
BACKOFF_CAP_SECONDS = 0.25


@dataclass(frozen=True)
class ServiceResponse:
    """One answered selection query."""

    selection: SelectionResult
    graph_key: str
    #: graph version the result was computed at (mutations bump it)
    graph_version: int
    tenant: str


@dataclass
class _Request:
    tenant: str
    graph_key: str
    source: str
    spec_name: str
    future: Future
    enqueued_at: float
    #: failed attempts so far (transient faults + supervisor rescues)
    attempts: int = 0
    #: exactly-once completion: whichever path sets ``done`` first owns
    #: the resolution and the single admission-slot release
    lock: threading.Lock = field(default_factory=threading.Lock)
    done: bool = False


@dataclass
class _Edit:
    graph_key: str
    mutate: Callable[[CallGraph], object]
    future: Future
    done: bool = False
    lock: threading.Lock = field(default_factory=threading.Lock)


@dataclass
class ServiceStats:
    """Mutable counters; :meth:`SelectionService.stats_snapshot` reads them."""

    requests: int = 0
    responses: int = 0
    failures: int = 0
    edits: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    deduped: int = 0
    unique_evaluated: int = 0
    cross_hits: int = 0
    compile_hits: int = 0
    compile_misses: int = 0
    #: requests whose future the client cancelled before resolution
    cancelled: int = 0
    #: retries scheduled (transient faults + rescued in-flight work)
    retried: int = 0
    #: group evaluations that failed and were re-run query by query
    contained_groups: int = 0
    #: individual containment re-runs that produced an answer
    isolated_reruns: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0
    per_tenant: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.responses if self.responses else 0.0


class SelectionService:
    """Long-lived, batched, supervised selection service over a GraphStore."""

    def __init__(
        self,
        store: GraphStore | None = None,
        *,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        compile_cache_entries: int = DEFAULT_COMPILE_CACHE,
        verify: bool = False,
        shards: int = 1,
        supervised: bool = True,
        faults: "object | str | None" = None,
        seed: int = 0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        shard_deadline_seconds: float = DEFAULT_SHARD_DEADLINE,
        supervise_interval: float = DEFAULT_SUPERVISE_INTERVAL,
        quarantine_threshold: int = DEFAULT_QUARANTINE_THRESHOLD,
        quarantine_cooldown_seconds: float = DEFAULT_QUARANTINE_COOLDOWN,
        alerts_path: "str | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if max_in_flight < 1:
            raise ServiceError("max_in_flight must be at least 1")
        if shards < 1:
            raise ServiceError("shards must be at least 1")
        if max_attempts < 1:
            raise ServiceError("max_attempts must be at least 1")
        if shard_deadline_seconds <= 0.0:
            raise ServiceError("shard_deadline_seconds must be positive")
        if supervise_interval <= 0.0:
            raise ServiceError("supervise_interval must be positive")
        fault_spec = resolve_service_faults(faults)
        if fault_spec is not None and not fault_spec.quiet and not supervised:
            raise ServiceError(
                "fault injection requires supervised=True: an unsupervised "
                "service has no one to heal the faults"
            )
        self.store = store if store is not None else GraphStore()
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.verify = verify
        self.seed = seed
        self.supervised = supervised
        self.max_attempts = max_attempts
        self.shard_deadline_seconds = shard_deadline_seconds
        self.supervise_interval = supervise_interval
        self._evaluator = BatchEvaluator(verify=verify)
        self._compile_cache: dict[str, CompiledSpec] = {}
        self._compile_cap = compile_cache_entries
        #: guards stats, the compile LRU and the retry heap.  Ordering:
        #: a shard's condition may be held while taking this lock,
        #: never the reverse.
        self._lock = threading.Lock()
        self._in_flight = threading.BoundedSemaphore(max_in_flight)
        self._closing = False
        self._started_at = time.monotonic()
        self.stats = ServiceStats()
        self._alerts_path = alerts_path
        self._alerts_lock = threading.Lock()
        self._health = ServiceHealth(
            sink=self._append_alert if alerts_path else None
        )
        self._breaker: QuarantineBreaker | None = (
            QuarantineBreaker(
                threshold=quarantine_threshold,
                cooldown_seconds=quarantine_cooldown_seconds,
            )
            if supervised
            else None
        )
        #: seeded-backoff retry queue: (due, tiebreak, request)
        self._retry_heap: list[tuple[float, int, _Request]] = []
        self._retry_seq = 0
        #: deposed worker threads still sleeping off a bounded hang
        self._zombies: list[threading.Thread] = []
        self._shards = [ServiceShard(self, i) for i in range(shards)]
        if fault_spec is not None:
            for shard in self._shards:
                shard.injector = ServiceFaultInjector(fault_spec, shard.index)
        for shard in self._shards:
            shard.spawn()
        self._supervisor_stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        if supervised:
            self._supervisor = threading.Thread(
                target=self._supervise,
                name="selection-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # -- client surface ----------------------------------------------------------

    def admit(self, key: str, graph: CallGraph) -> None:
        """Register a call graph so queries can target it by key."""
        self.store.admit(key, graph)

    def _shard_for(self, graph_key: str) -> ServiceShard:
        return self._shards[shard_of(graph_key, len(self._shards))]

    def submit(
        self,
        graph_key: str,
        spec_source: str,
        *,
        tenant: str = "default",
        spec_name: str = "",
    ) -> "Future[ServiceResponse]":
        """Enqueue one selection query; resolves to a :class:`ServiceResponse`.

        Blocks for admission once ``max_in_flight`` requests are
        pending (backpressure).  Raises :class:`ServiceClosedError`
        after :meth:`close`.  Cancelling the returned future before it
        resolves is honoured: the worker discards the request and
        releases its admission slot.
        """
        if self._closing:
            raise ServiceClosedError("selection service is closed")
        self._in_flight.acquire()
        if self._closing:
            self._in_flight.release()
            raise ServiceClosedError("selection service is closed")
        request = _Request(
            tenant=tenant,
            graph_key=graph_key,
            source=spec_source,
            spec_name=spec_name,
            future=Future(),
            enqueued_at=time.monotonic(),
        )
        with self._lock:
            self.stats.requests += 1
            self.stats.per_tenant[tenant] = (
                self.stats.per_tenant.get(tenant, 0) + 1
            )
        self._shard_for(graph_key).enqueue(request)
        return request.future

    def select(
        self,
        graph_key: str,
        spec_source: str,
        *,
        tenant: str = "default",
        spec_name: str = "",
        timeout: float | None = 30.0,
    ) -> ServiceResponse:
        """Synchronous :meth:`submit`; cancels its request on timeout.

        A timed-out request no longer leaks its ``max_in_flight`` slot:
        the future is cancelled, the worker discards the request at the
        next gather (or the guarded resolution drops the late answer),
        and the slot is released exactly once either way.
        """
        future = self.submit(
            graph_key, spec_source, tenant=tenant, spec_name=spec_name
        )
        try:
            return future.result(timeout=timeout)
        except (FuturesTimeoutError, TimeoutError):
            if future.cancel():
                raise ServiceTimeoutError(
                    f"selection on graph {graph_key!r} timed out after "
                    f"{timeout}s (request cancelled, slot reclaimed)"
                ) from None
            # resolved in the race window between timeout and cancel
            return future.result(timeout=0)

    def submit_edit(
        self, graph_key: str, mutate: Callable[[CallGraph], object]
    ) -> "Future[int]":
        """Apply ``mutate(graph)`` serialised with the graph's evaluation.

        The callable runs in the owning shard's worker thread between
        batches — never concurrently with a batch over that graph.  The
        future resolves to the graph's post-edit version.
        """
        if self._closing:
            raise ServiceClosedError("selection service is closed")
        edit = _Edit(graph_key=graph_key, mutate=mutate, future=Future())
        self._shard_for(graph_key).enqueue_edit(edit)
        return edit.future

    def edit(
        self,
        graph_key: str,
        mutate: Callable[[CallGraph], object],
        *,
        timeout: float | None = 30.0,
    ) -> int:
        return self.submit_edit(graph_key, mutate).result(timeout=timeout)

    def stats_snapshot(self) -> dict:
        """Point-in-time service + store + supervision statistics.

        Per-shard window/queue figures are read without the shards'
        locks — they are single-word reads of floats/ints (atomic in
        CPython), and the snapshot is a monitoring view, not a barrier.
        """
        with self._lock:
            s = self.stats
            elapsed = time.monotonic() - self._started_at
            snapshot = {
                "requests": s.requests,
                "responses": s.responses,
                "failures": s.failures,
                "edits": s.edits,
                "batches": s.batches,
                "mean_batch_size": s.mean_batch_size,
                "max_batch_size": s.max_batch_size,
                "deduped": s.deduped,
                "unique_evaluated": s.unique_evaluated,
                "cross_hits": s.cross_hits,
                "compile_hits": s.compile_hits,
                "compile_misses": s.compile_misses,
                "cancelled": s.cancelled,
                "retried": s.retried,
                "contained_groups": s.contained_groups,
                "isolated_reruns": s.isolated_reruns,
                "mean_latency_seconds": s.mean_latency,
                "max_latency_seconds": s.latency_max,
                "requests_per_second": s.responses / elapsed if elapsed else 0.0,
                "per_tenant": dict(s.per_tenant),
            }
        snapshot["window"] = {
            "configured_seconds": self.window_seconds,
            "current_seconds": self._shards[0]._window,
            "per_shard_seconds": [shard._window for shard in self._shards],
        }
        snapshot["store"] = self.store.stats.as_dict()
        snapshot["uptime_seconds"] = elapsed
        snapshot["health"] = self._health_snapshot()
        return snapshot

    def _health_snapshot(self) -> dict:
        with self._lock:
            self._zombies = [t for t in self._zombies if t.is_alive()]
            zombies = len(self._zombies)
        injected: dict[str, int] = {}
        shards = []
        for shard in self._shards:
            worker = shard.worker
            shards.append(
                {
                    "index": shard.index,
                    "restarts": shard.restarts,
                    "generation": shard.generation,
                    "queued": shard.pending(),
                    "busy": shard.busy_since is not None,
                    "alive": worker is not None and worker.is_alive(),
                }
            )
            if shard.injector is not None:
                for kind, count in shard.injector.injected_so_far().items():
                    injected[kind] = injected.get(kind, 0) + count
        with self._lock:
            retry_depth = len(self._retry_heap)
        return {
            **self._health.counters(),
            "zombies": zombies,
            "supervised": self.supervised,
            "shard_count": len(self._shards),
            "shards": shards,
            "retry_queue_depth": retry_depth,
            "quarantine": (
                self._breaker.snapshot() if self._breaker is not None else None
            ),
            "injected": injected,
        }

    def health_alerts(self) -> list[Alert]:
        """Structured alerts emitted so far (restart/quarantine/loss)."""
        return self._health.alerts()

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop admission, drain queued work, stop workers + supervisor."""
        with self._lock:
            already = self._closing
            self._closing = True
            pending_retries = [item[2] for item in self._retry_heap]
            self._retry_heap.clear()
        # retries still waiting out their backoff are failed, not
        # re-enqueued: a drained shard will never gather them, and a
        # typed failure beats a future that never resolves
        for request in pending_retries:
            if not self._discard_cancelled(request):
                self._finish_error(
                    request,
                    ServiceTimeoutError(
                        "service closed while the request awaited its retry"
                    ),
                )
        for shard in self._shards:
            with shard._cond:
                shard._cond.notify_all()
        deadline = time.monotonic() + (timeout if timeout is not None else 0.0)
        for shard in self._shards:
            # the supervisor may swap in replacement workers while we
            # drain, so poll the drained flag instead of one thread
            while not shard.drained:
                worker = shard.worker
                if worker is None:  # pragma: no cover - defensive
                    break
                remaining = deadline - time.monotonic()
                if timeout is not None and remaining <= 0:
                    break
                worker.join(
                    timeout=min(0.05, remaining) if timeout is not None else 0.05
                )
                if not worker.is_alive() and worker is shard.worker:
                    if shard.drained or not self.supervised:
                        break
        if self._supervisor is not None:
            self._supervisor_stop.set()
            self._supervisor.join(timeout=timeout)
        if already:
            return
        for shard in self._shards:
            worker = shard.worker
            if worker is not None and worker.is_alive() and not shard.drained:
                raise ServiceError(
                    f"selection shard {shard.index} failed to stop"
                )

    def __enter__(self) -> "SelectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- completion (exactly-once, cancellation-safe) ----------------------------

    def _claim(self, request: _Request) -> bool:
        """Atomically claim the right to resolve ``request``.

        The winner must resolve the future (guarded) and release the
        admission slot; every later claimant backs off.  This is what
        makes client cancellation, zombie workers and retry dispatch
        coexist without double-resolution or slot leaks.
        """
        with request.lock:
            if request.done:
                return False
            request.done = True
            return True

    def _discard_cancelled(self, request: _Request) -> bool:
        """Drop a client-cancelled request; True when it must be skipped."""
        if not request.future.cancelled():
            return False
        if self._claim(request):
            self._in_flight.release()
            with self._lock:
                self.stats.cancelled += 1
        return True

    def _finish_response(
        self,
        request: _Request,
        result: SelectionResult,
        graph_key: str,
        graph_version: int,
        now: float,
    ) -> None:
        if not self._claim(request):
            return
        latency = now - request.enqueued_at
        with self._lock:
            self.stats.responses += 1
            self.stats.latency_sum += latency
            self.stats.latency_max = max(self.stats.latency_max, latency)
        try:
            request.future.set_result(
                ServiceResponse(
                    selection=result,
                    graph_key=graph_key,
                    graph_version=graph_version,
                    tenant=request.tenant,
                )
            )
        except InvalidStateError:
            # client cancelled between the gather-time check and now;
            # the answer is dropped but the slot is still released once
            with self._lock:
                self.stats.responses -= 1
                self.stats.latency_sum -= latency
                self.stats.cancelled += 1
        self._in_flight.release()

    def _finish_error(self, request: _Request, exc: BaseException) -> None:
        if not self._claim(request):
            return
        with self._lock:
            self.stats.failures += 1
        try:
            request.future.set_exception(exc)
        except InvalidStateError:
            with self._lock:
                self.stats.failures -= 1
                self.stats.cancelled += 1
        self._in_flight.release()

    def _finish_edit(
        self,
        edit: _Edit,
        *,
        version: "int | None" = None,
        error: "BaseException | None" = None,
    ) -> None:
        with edit.lock:
            if edit.done:
                return
            edit.done = True
        try:
            if error is not None:
                edit.future.set_exception(error)
            else:
                with self._lock:
                    self.stats.edits += 1
                edit.future.set_result(version)
        except InvalidStateError:  # pragma: no cover - client cancelled
            pass

    # -- retry / quarantine plumbing ---------------------------------------------

    def _backoff_delay(self, shard_index: int, attempts: int) -> float:
        base = min(
            BACKOFF_CAP_SECONDS, BACKOFF_BASE_SECONDS * (2 ** (attempts - 1))
        )
        jitter = rng_for(
            self.seed, "service-backoff", shard_index, attempts
        ).random()
        return base * (0.5 + 0.5 * jitter)

    def _retry_or_fail(
        self, request: _Request, shard_index: int, exc: BaseException
    ) -> None:
        """Schedule one more attempt, or fail the request for good.

        Used for transient injected faults and for requests rescued
        from a dead/wedged shard.  Retries go through the seeded
        backoff heap; the supervisor dispatches them when due.  On a
        closing, unsupervised, or exhausted service the request fails
        with the triggering error instead.
        """
        if self._discard_cancelled(request):
            return
        request.attempts += 1
        if (
            request.attempts >= self.max_attempts
            or not self.supervised
        ):
            self._health.record_lost(
                shard_index,
                f"request on graph {request.graph_key!r} failed after "
                f"{request.attempts} attempts: {exc}",
            )
            self._finish_error(request, exc)
            return
        with self._lock:
            self.stats.retried += 1
        self._health.record_rescued(1)
        if self._closing:
            # the backoff heap stops draining into shards at close; the
            # caller is (or just respawned) the shard's worker, so a
            # direct re-enqueue is still gathered before the drain ends
            self._shard_for(request.graph_key).enqueue(request)
            return
        due = time.monotonic() + self._backoff_delay(
            shard_index, request.attempts
        )
        with self._lock:
            self._retry_seq += 1
            heapq.heappush(self._retry_heap, (due, self._retry_seq, request))

    def _admit_spec(self, graph_key: str, spec_key: str) -> str:
        if self._breaker is None:
            return "ok"
        return self._breaker.admit(graph_key, spec_key)

    def _record_spec_success(self, graph_key: str, spec_key: str) -> None:
        if self._breaker is not None:
            self._breaker.record_success(graph_key, spec_key)

    def _record_spec_failure(
        self,
        graph_key: str,
        spec_key: str,
        request: _Request,
        exc: BaseException,
    ) -> None:
        """Fail the request; non-service errors strike the quarantine key.

        :class:`ServiceError` subtypes (unknown graph key, closed
        service, …) describe the *service's* state, not the spec's, so
        they never quarantine a spec.
        """
        if self._breaker is not None and not isinstance(exc, ServiceError):
            opened = self._breaker.record_failure(graph_key, spec_key)
            if opened:
                self._health.record_quarantine(
                    graph_key,
                    spec_key,
                    f"opened after {self._breaker.threshold} consecutive "
                    f"failures; last: {exc}",
                )
        self._finish_error(request, exc)

    def _append_alert(self, alert: Alert) -> None:
        with self._alerts_lock:
            with open(self._alerts_path, "a", encoding="utf-8") as fh:
                fh.write(alert.to_json() + "\n")

    # -- compile cache (shared across shards, under the service lock) ------------

    def _compile(self, request: _Request) -> CompiledSpec:
        with self._lock:
            compiled = self._compile_cache.pop(request.source, None)
            if compiled is not None:
                self._compile_cache[request.source] = compiled  # LRU touch
                self.stats.compile_hits += 1
                return compiled
        # compile outside the lock: a concurrent duplicate compile is
        # benign (specs are immutable), a serialised one is a stall
        compiled = compile_spec(request.source, spec_name=request.spec_name)
        with self._lock:
            self.stats.compile_misses += 1
            self._compile_cache[request.source] = compiled
            while len(self._compile_cache) > self._compile_cap:
                self._compile_cache.pop(next(iter(self._compile_cache)))
        return compiled

    # -- supervisor --------------------------------------------------------------

    def _supervise(self) -> None:
        while not self._supervisor_stop.wait(self.supervise_interval):
            try:
                self._supervise_once()
            except Exception as exc:  # pragma: no cover - must not die
                self._health.emit(
                    Alert(
                        code="service-supervisor-error",
                        severity="critical",
                        detail=f"supervisor pass failed: {exc!r}",
                    )
                )
        # one final pass so retries that raced close()'s flush still
        # resolve their futures (with a typed error) instead of hanging
        self._dispatch_due_retries(flush=True)

    def _supervise_once(self) -> None:
        self._dispatch_due_retries()
        now = time.monotonic()
        for shard in self._shards:
            self._check_shard(shard, now)

    def _dispatch_due_retries(self, flush: bool = False) -> None:
        now = time.monotonic()
        due: list[_Request] = []
        with self._lock:
            while self._retry_heap and (
                flush or self._retry_heap[0][0] <= now
            ):
                due.append(heapq.heappop(self._retry_heap)[2])
        for request in due:
            if self._discard_cancelled(request):
                continue
            if flush:
                self._finish_error(
                    request,
                    ServiceTimeoutError(
                        "service closed while the request awaited its retry"
                    ),
                )
            else:
                self._shard_for(request.graph_key).enqueue(request)

    def _check_shard(self, shard: ServiceShard, now: float) -> None:
        """Depose a wedged worker / replace a dead one, rescue its round."""
        rescued_requests: list[_Request] = []
        rescued_edits: list[_Edit] = []
        wedged = False
        with shard._cond:
            worker = shard.worker
            dead = (
                worker is not None
                and not worker.is_alive()
                and not shard.drained
            )
            wedged = (
                not dead
                and shard.busy_since is not None
                and now - shard.busy_since > self.shard_deadline_seconds
            )
            if not dead and not wedged:
                return
            rescued_requests = list(shard.active_batch)
            rescued_edits = list(shard.active_edits)
            shard.active_batch = []
            shard.active_edits = []
            shard.busy_since = None
            shard.restarts += 1
            if wedged and worker is not None:
                with self._lock:
                    self._zombies.append(worker)
        detail = (
            f"round overran the {self.shard_deadline_seconds:.3g}s deadline"
            if wedged
            else "worker thread died mid-service"
        )
        self._health.record_restart(shard.index, wedged=wedged, detail=detail)
        for edit in rescued_edits:
            self._finish_edit(
                edit,
                error=ServiceTimeoutError(
                    f"edit on graph {edit.graph_key!r} was in flight on "
                    f"shard {shard.index} when it {detail}"
                ),
            )
        rescue_error = ServiceTimeoutError(
            f"request was in flight on shard {shard.index} when it {detail}"
        )
        for request in rescued_requests:
            self._retry_or_fail(request, shard.index, rescue_error)
        shard.spawn()  # generation bump deposes any zombie
