"""Multi-tenant selection service: async admission over warm graphs.

The service turns the one-shot pipeline (build → compile → select) into
a long-lived query front door:

* **admission** — :meth:`SelectionService.submit` enqueues a
  ``(tenant, graph key, spec source)`` request and returns a
  :class:`concurrent.futures.Future`.  Admission is bounded
  (``max_in_flight``): past the bound, submitters block — backpressure
  instead of unbounded queue growth.
* **micro-batching** — a single worker thread gathers requests across
  per-tenant FIFO queues (round-robin, so one chatty tenant cannot
  starve the rest) until ``max_batch`` requests are queued or the
  micro-batch window closes, then evaluates each graph's group in one
  :class:`~repro.service.batch.BatchEvaluator` pass over the warm store
  entry.  The window is *adaptive*: ``window_seconds`` caps it, but
  lone-request gathers halve it (an idle queue should not pay latency
  for coalescing that never happens) and near-full gathers double it
  back toward the cap — ``stats_snapshot()`` exposes the current value.
* **graph edits** — :meth:`submit_edit` runs a mutation against an
  admitted graph *inside the worker loop*, serialised with evaluation:
  an edit never races a batch, and the version bump invalidates exactly
  that graph's warm state on next access.
* **observability** — :meth:`stats` snapshots request/latency counters,
  batching effectiveness (dedup, cross-run hits, batch sizes) and the
  store's warm/cold hit rates.

Compilation is amortised through a per-service LRU of spec source →
:class:`~repro.core.pipeline.CompiledSpec` (compiled specs are
graph-independent and immutable, so one entry serves every tenant).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cg.graph import CallGraph
from repro.core.pipeline import CompiledSpec, SelectionResult, compile_spec
from repro.errors import ServiceClosedError, ServiceError
from repro.service.batch import BatchEvaluator
from repro.service.store import GraphStore

#: default micro-batch window: long enough to coalesce a burst of
#: concurrent clients, short enough to stay invisible at human scale
DEFAULT_WINDOW_SECONDS = 0.002
DEFAULT_MAX_BATCH = 64
DEFAULT_MAX_IN_FLIGHT = 1024
DEFAULT_COMPILE_CACHE = 256


@dataclass(frozen=True)
class ServiceResponse:
    """One answered selection query."""

    selection: SelectionResult
    graph_key: str
    #: graph version the result was computed at (mutations bump it)
    graph_version: int
    tenant: str


@dataclass
class _Request:
    tenant: str
    graph_key: str
    source: str
    spec_name: str
    future: Future
    enqueued_at: float


@dataclass
class _Edit:
    graph_key: str
    mutate: Callable[[CallGraph], object]
    future: Future


@dataclass
class ServiceStats:
    """Mutable counters; :meth:`SelectionService.stats` snapshots them."""

    requests: int = 0
    responses: int = 0
    failures: int = 0
    edits: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch_size: int = 0
    deduped: int = 0
    unique_evaluated: int = 0
    cross_hits: int = 0
    compile_hits: int = 0
    compile_misses: int = 0
    latency_sum: float = 0.0
    latency_max: float = 0.0
    per_tenant: dict[str, int] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def mean_latency(self) -> float:
        return self.latency_sum / self.responses if self.responses else 0.0


class SelectionService:
    """Long-lived, batched selection query service over a GraphStore."""

    def __init__(
        self,
        store: GraphStore | None = None,
        *,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        compile_cache_entries: int = DEFAULT_COMPILE_CACHE,
        verify: bool = False,
    ) -> None:
        if max_batch < 1:
            raise ServiceError("max_batch must be at least 1")
        if max_in_flight < 1:
            raise ServiceError("max_in_flight must be at least 1")
        self.store = store if store is not None else GraphStore()
        self.window_seconds = window_seconds
        #: current adaptive window, bounded by ``(window_seconds / 64,
        #: window_seconds]`` — shrinks while gathers come up solo,
        #: widens again under burst
        self._window = window_seconds
        self.max_batch = max_batch
        self.verify = verify
        self._evaluator = BatchEvaluator(verify=verify)
        self._compile_cache: dict[str, CompiledSpec] = {}
        self._compile_cap = compile_cache_entries
        self._cond = threading.Condition()
        self._queues: dict[str, deque[_Request]] = {}
        self._edits: deque[_Edit] = deque()
        self._in_flight = threading.BoundedSemaphore(max_in_flight)
        self._closing = False
        self._started_at = time.monotonic()
        self.stats = ServiceStats()
        self._worker = threading.Thread(
            target=self._run, name="selection-service", daemon=True
        )
        self._worker.start()

    # -- client surface ----------------------------------------------------------

    def admit(self, key: str, graph: CallGraph) -> None:
        """Register a call graph so queries can target it by key."""
        self.store.admit(key, graph)

    def submit(
        self,
        graph_key: str,
        spec_source: str,
        *,
        tenant: str = "default",
        spec_name: str = "",
    ) -> "Future[ServiceResponse]":
        """Enqueue one selection query; resolves to a :class:`ServiceResponse`.

        Blocks for admission once ``max_in_flight`` requests are
        pending (backpressure).  Raises :class:`ServiceClosedError`
        after :meth:`close`.
        """
        if self._closing:
            raise ServiceClosedError("selection service is closed")
        self._in_flight.acquire()
        request = _Request(
            tenant=tenant,
            graph_key=graph_key,
            source=spec_source,
            spec_name=spec_name,
            future=Future(),
            enqueued_at=time.monotonic(),
        )
        with self._cond:
            if self._closing:
                self._in_flight.release()
                raise ServiceClosedError("selection service is closed")
            self._queues.setdefault(tenant, deque()).append(request)
            self.stats.requests += 1
            self.stats.per_tenant[tenant] = (
                self.stats.per_tenant.get(tenant, 0) + 1
            )
            self._cond.notify_all()
        return request.future

    def select(
        self,
        graph_key: str,
        spec_source: str,
        *,
        tenant: str = "default",
        spec_name: str = "",
        timeout: float | None = 30.0,
    ) -> ServiceResponse:
        """Synchronous :meth:`submit` convenience."""
        return self.submit(
            graph_key, spec_source, tenant=tenant, spec_name=spec_name
        ).result(timeout=timeout)

    def submit_edit(
        self, graph_key: str, mutate: Callable[[CallGraph], object]
    ) -> "Future[int]":
        """Apply ``mutate(graph)`` serialised with evaluation.

        The callable runs in the worker thread between batches — never
        concurrently with a batch over any graph.  The future resolves
        to the graph's post-edit version.
        """
        if self._closing:
            raise ServiceClosedError("selection service is closed")
        edit = _Edit(graph_key=graph_key, mutate=mutate, future=Future())
        with self._cond:
            if self._closing:
                raise ServiceClosedError("selection service is closed")
            self._edits.append(edit)
            self._cond.notify_all()
        return edit.future

    def edit(
        self,
        graph_key: str,
        mutate: Callable[[CallGraph], object],
        *,
        timeout: float | None = 30.0,
    ) -> int:
        return self.submit_edit(graph_key, mutate).result(timeout=timeout)

    def stats_snapshot(self) -> dict:
        """Point-in-time service + store statistics."""
        with self._cond:
            s = self.stats
            elapsed = time.monotonic() - self._started_at
            return {
                "requests": s.requests,
                "responses": s.responses,
                "failures": s.failures,
                "edits": s.edits,
                "batches": s.batches,
                "mean_batch_size": s.mean_batch_size,
                "max_batch_size": s.max_batch_size,
                "deduped": s.deduped,
                "unique_evaluated": s.unique_evaluated,
                "cross_hits": s.cross_hits,
                "compile_hits": s.compile_hits,
                "compile_misses": s.compile_misses,
                "mean_latency_seconds": s.mean_latency,
                "max_latency_seconds": s.latency_max,
                "requests_per_second": s.responses / elapsed if elapsed else 0.0,
                "per_tenant": dict(s.per_tenant),
                "window": {
                    "configured_seconds": self.window_seconds,
                    "current_seconds": self._window,
                },
                "store": self.store.stats.as_dict(),
                "uptime_seconds": elapsed,
            }

    def close(self, timeout: float | None = 30.0) -> None:
        """Stop admission, drain queued work, stop the worker."""
        with self._cond:
            if self._closing:
                self._cond.notify_all()
            self._closing = True
            self._cond.notify_all()
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():  # pragma: no cover - defensive
            raise ServiceError("selection service worker failed to stop")

    def __enter__(self) -> "SelectionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker ------------------------------------------------------------------

    def _pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def _run(self) -> None:
        while True:
            batch, edits = self._gather()
            if batch is None and not edits:
                return
            for edit in edits:
                self._apply_edit(edit)
            if batch:
                self._process(batch)

    def _gather(self) -> tuple[list[_Request] | None, list[_Edit]]:
        """Wait for work, honour the micro-batch window, drain fairly."""
        with self._cond:
            while not self._closing and not self._pending() and not self._edits:
                self._cond.wait()
            if self._closing and not self._pending() and not self._edits:
                return None, []
            # the window opens at the first observed request; more
            # requests coalesce until it closes or max_batch is reached
            windowed = False
            if self._pending():
                windowed = True
                deadline = time.monotonic() + self._window
                while self._pending() < self.max_batch and not self._closing:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
            edits = list(self._edits)
            self._edits.clear()
            batch = list(self._drain_round_robin(self.max_batch))
            if windowed and self.window_seconds > 0:
                self._adapt_window(len(batch))
            return batch, edits

    def _adapt_window(self, gathered: int) -> None:
        """Track the arrival rate: shrink on solo gathers, widen on burst.

        A full window that still gathers one request means coalescing
        buys nothing but latency, so the wait halves (floored at 1/64 of
        the configured window rather than zero, keeping a step back up
        once traffic returns).  A gather at or past half of ``max_batch``
        means requests queue faster than the window drains them, so it
        doubles back toward the configured cap.
        """
        if gathered <= 1:
            self._window = max(self.window_seconds / 64, self._window / 2)
        elif gathered >= max(2, self.max_batch // 2):
            self._window = min(self.window_seconds, self._window * 2)

    def _drain_round_robin(self, limit: int) -> Iterator[_Request]:
        """Pop up to ``limit`` requests, one per tenant per round."""
        taken = 0
        while taken < limit:
            progressed = False
            for tenant in sorted(self._queues):
                queue = self._queues[tenant]
                if queue and taken < limit:
                    yield queue.popleft()
                    taken += 1
                    progressed = True
            if not progressed:
                return

    def _apply_edit(self, edit: _Edit) -> None:
        try:
            graph = self.store.graph(edit.graph_key)
            edit.mutate(graph)
        except BaseException as exc:  # noqa: BLE001 - forwarded to the client
            edit.future.set_exception(exc)
            return
        with self._cond:
            self.stats.edits += 1
        edit.future.set_result(graph.version)

    def _compile(self, request: _Request) -> CompiledSpec:
        cache = self._compile_cache
        compiled = cache.pop(request.source, None)
        if compiled is not None:
            cache[request.source] = compiled  # LRU touch
            self.stats.compile_hits += 1
            return compiled
        compiled = compile_spec(request.source, spec_name=request.spec_name)
        self.stats.compile_misses += 1
        cache[request.source] = compiled
        while len(cache) > self._compile_cap:
            cache.pop(next(iter(cache)))
        return compiled

    def _process(self, batch: list[_Request]) -> None:
        """Compile, group by graph, evaluate each group in one pass."""
        groups: dict[str, list[_Request]] = {}
        for request in batch:
            groups.setdefault(request.graph_key, []).append(request)
        completed_at = time.monotonic
        for graph_key, requests in groups.items():
            specs: list[CompiledSpec] = []
            compiled_requests: list[_Request] = []
            for request in requests:
                try:
                    specs.append(self._compile(request))
                except BaseException as exc:  # noqa: BLE001 - client error
                    self._fail(request, exc)
                    continue
                compiled_requests.append(request)
            if not compiled_requests:
                continue
            try:
                entry = self.store.entry(graph_key)
                outcome = self._evaluator.evaluate(specs, entry)
            except BaseException as exc:  # noqa: BLE001 - client error
                for request in compiled_requests:
                    self._fail(request, exc)
                continue
            now = completed_at()
            with self._cond:
                self.stats.batches += 1
                self.stats.batched_requests += len(compiled_requests)
                self.stats.max_batch_size = max(
                    self.stats.max_batch_size, len(compiled_requests)
                )
                self.stats.deduped += outcome.deduped
                self.stats.unique_evaluated += outcome.unique_evaluated
                self.stats.cross_hits += outcome.cross_hits
            for request, result in zip(compiled_requests, outcome.results):
                latency = now - request.enqueued_at
                with self._cond:
                    self.stats.responses += 1
                    self.stats.latency_sum += latency
                    self.stats.latency_max = max(
                        self.stats.latency_max, latency
                    )
                request.future.set_result(
                    ServiceResponse(
                        selection=result,
                        graph_key=graph_key,
                        graph_version=outcome.graph_version,
                        tenant=request.tenant,
                    )
                )
                self._in_flight.release()

    def _fail(self, request: _Request, exc: BaseException) -> None:
        with self._cond:
            self.stats.failures += 1
        request.future.set_exception(exc)
        self._in_flight.release()
