"""Service health: quarantine circuit breakers and supervision records.

Two concerns live here, both surfaced through
``SelectionService.stats_snapshot()["health"]`` and emitted as
structured :class:`~repro.trace.alerts.Alert` records (the PR 7 JSONL
schema, so the trace watchdog's collectors ingest service incidents
unchanged):

* :class:`QuarantineBreaker` — a per-``(graph key, structural cache
  key)`` circuit breaker.  A spec whose evaluation fails
  ``threshold`` *consecutive* times on one graph is quarantined: further
  requests fail fast with
  :class:`~repro.errors.QuarantinedSpecError` instead of burning a
  worker pass on a known-poison query.  After ``cooldown_seconds`` the
  breaker goes **half-open**: exactly one probe request is let through
  per cooldown window — success closes the breaker (and resets the
  failure count), failure re-opens it.  The clock is injectable so the
  state machine is unit-testable without sleeping.

* :class:`ServiceHealth` — the aggregate supervision record: shard
  restarts (worker death or deadline-wedge depose), live zombie count
  (deposed workers still sleeping off a bounded hang), rescue/retry
  counters and a bounded log of emitted alerts.

Alert codes (stable, kebab-case, ``service-`` prefixed so watchdog
rules can route on them):

* ``service-shard-death`` — a shard worker thread died; respawned.
* ``service-shard-wedged`` — a shard overran its processing deadline;
  deposed and respawned (the old thread lingers as a zombie until its
  bounded overrun ends).
* ``service-spec-quarantined`` — a structural key tripped the breaker.
* ``service-request-lost`` — a rescued request exhausted its retry
  budget and was failed with a typed error.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.trace.alerts import Alert

#: consecutive evaluation failures of one (graph, key) before it opens
DEFAULT_QUARANTINE_THRESHOLD = 3
#: seconds a breaker stays open before allowing a half-open probe
DEFAULT_QUARANTINE_COOLDOWN = 30.0
#: bounded in-memory alert log (the JSONL sink, when configured, gets all)
ALERT_LOG_MAX = 256


@dataclass
class _BreakerState:
    """One quarantined (graph, key)'s live state (under the breaker lock)."""

    failures: int = 0
    state: str = "closed"  # "closed" | "open" | "half_open"
    opened_at: float = 0.0
    #: a probe is in flight; further requests fail fast until it lands
    probing: bool = False
    opened_times: int = 0


class QuarantineBreaker:
    """Per-(graph key, structural key) circuit breaker for poison specs."""

    def __init__(
        self,
        *,
        threshold: int = DEFAULT_QUARANTINE_THRESHOLD,
        cooldown_seconds: float = DEFAULT_QUARANTINE_COOLDOWN,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("quarantine threshold must be >= 1")
        if cooldown_seconds < 0.0:
            raise ValueError("quarantine cooldown must be non-negative")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        #: only keys with at least one recorded failure have state
        self._states: dict[tuple[str, str], _BreakerState] = {}
        self.opened_total = 0
        self.fast_fails = 0

    def admit(self, graph_key: str, spec_key: str) -> str:
        """Gate one request: ``"ok"`` | ``"probe"`` | ``"fast_fail"``.

        ``"probe"`` is granted to exactly one request per half-open
        window; its outcome must be reported back through
        :meth:`record_success` / :meth:`record_failure`.

        Healthy fast path: the state table only holds keys with at
        least one recorded failure, so when it is empty (the steady
        state of a healthy service) admission is a lock-free truthiness
        check.  The unlocked read is benign: entries are only *added*
        under the lock by a failure that has already been counted, and
        a request racing that first failure would have been admitted
        either way.
        """
        if not self._states:
            return "ok"
        with self._lock:
            state = self._states.get((graph_key, spec_key))
            if state is None or state.state == "closed":
                return "ok"
            if state.state == "open":
                if self._clock() - state.opened_at >= self.cooldown_seconds:
                    state.state = "half_open"
                    state.probing = True
                    return "probe"
                self.fast_fails += 1
                return "fast_fail"
            # half-open: one probe at a time
            if not state.probing:
                state.probing = True
                return "probe"
            self.fast_fails += 1
            return "fast_fail"

    def record_success(self, graph_key: str, spec_key: str) -> None:
        """A (possibly probing) evaluation succeeded: close and forget."""
        if not self._states:  # lock-free healthy fast path (see admit)
            return
        with self._lock:
            self._states.pop((graph_key, spec_key), None)

    def record_failure(self, graph_key: str, spec_key: str) -> bool:
        """An evaluation failed; True when this failure *opened* the breaker.

        A failing half-open probe re-opens immediately (the cooldown
        restarts); a closed key opens once ``threshold`` consecutive
        failures accumulate.
        """
        with self._lock:
            state = self._states.setdefault(
                (graph_key, spec_key), _BreakerState()
            )
            state.failures += 1
            state.probing = False
            if state.state == "closed" and state.failures < self.threshold:
                return False
            opened = state.state != "open"
            state.state = "open"
            state.opened_at = self._clock()
            if opened:
                state.opened_times += 1
                self.opened_total += 1
            return opened

    def is_open(self, graph_key: str, spec_key: str) -> bool:
        with self._lock:
            state = self._states.get((graph_key, spec_key))
            return state is not None and state.state != "closed"

    def snapshot(self) -> dict:
        """Point-in-time breaker table for ``stats_snapshot()``."""
        with self._lock:
            return {
                "threshold": self.threshold,
                "cooldown_seconds": self.cooldown_seconds,
                "opened_total": self.opened_total,
                "fast_fails": self.fast_fails,
                "open": sorted(
                    f"{graph}:{key}"
                    for (graph, key), s in self._states.items()
                    if s.state == "open"
                ),
                "half_open": sorted(
                    f"{graph}:{key}"
                    for (graph, key), s in self._states.items()
                    if s.state == "half_open"
                ),
                "tracked": len(self._states),
            }


class ServiceHealth:
    """Aggregate supervision record of one :class:`SelectionService`.

    Mutations come from the supervisor thread and the worker shards;
    everything is guarded by one lock.  ``emit`` both logs the alert
    (bounded deque) and forwards it to the optional sink — the service
    wires the sink to an ``alerts_path`` JSONL appender, keeping the
    on-disk stream schema-compatible with the trace watchdog's.
    """

    def __init__(self, sink: Callable[[Alert], None] | None = None) -> None:
        self._lock = threading.Lock()
        self._sink = sink
        self._alerts: deque[Alert] = deque(maxlen=ALERT_LOG_MAX)
        self.restarts = 0
        #: restarts caused by a deadline overrun (subset of ``restarts``)
        self.wedges = 0
        #: requests rescued from a dead/wedged shard and re-enqueued
        self.rescued = 0
        #: requests failed after exhausting their retry budget
        self.lost = 0

    def emit(self, alert: Alert) -> None:
        with self._lock:
            self._alerts.append(alert)
            sink = self._sink
        if sink is not None:
            sink(alert)

    def record_restart(
        self, shard_index: int, *, wedged: bool, detail: str
    ) -> None:
        with self._lock:
            self.restarts += 1
            if wedged:
                self.wedges += 1
        self.emit(
            Alert(
                code="service-shard-wedged" if wedged else "service-shard-death",
                severity="warning",
                rank=shard_index,
                detail=detail,
            )
        )

    def record_rescued(self, count: int) -> None:
        with self._lock:
            self.rescued += count

    def record_lost(self, shard_index: int, detail: str) -> None:
        with self._lock:
            self.lost += 1
        self.emit(
            Alert(
                code="service-request-lost",
                severity="critical",
                rank=shard_index,
                detail=detail,
            )
        )

    def record_quarantine(self, graph_key: str, spec_key: str, detail: str):
        self.emit(
            Alert(
                code="service-spec-quarantined",
                severity="warning",
                region=f"{graph_key}:{spec_key[:48]}",
                detail=detail,
            )
        )

    def alerts(self) -> list[Alert]:
        """The bounded in-memory alert log, oldest first."""
        with self._lock:
            return list(self._alerts)

    def counters(self) -> dict:
        with self._lock:
            return {
                "restarts": self.restarts,
                "wedges": self.wedges,
                "rescued": self.rescued,
                "lost": self.lost,
                "alerts": len(self._alerts),
            }
