"""Batched evaluation: N compiled specs over one snapshot in one pass.

A batch evaluates every query against the *same* warm
``(CsrSnapshot, CrossRunCache)`` pair (one :class:`~repro.service.store.
GraphEntry`), deduplicating work at two levels:

* **whole-query dedup** — queries whose compiled entry selectors share a
  structural :attr:`~repro.core.pipeline.CompiledSpec.cache_key` are
  evaluated once; the rest of the group reuses the result (reported as
  ``deduped``).
* **sub-expression dedup** — distinct queries still share structurally
  identical *sub*-pipelines through the entry's cross-run cache, so each
  unique selector expression runs once per graph version, across the
  whole batch and across batches.

Selectors are pure functions of ``(expression, graph version)``, so both
levels preserve bit-identical results; ``verify=True`` re-derives every
unique query sequentially (fresh context, no caches) and raises
:class:`~repro.errors.BatchMismatchError` on any difference — the
``serve --check`` / CI guarantee.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.pipeline import CompiledSpec, SelectionResult, evaluate_pipeline
from repro.core.selectors.base import EvalContext
from repro.errors import BatchMismatchError
from repro.service.store import GraphEntry


@dataclass
class BatchOutcome:
    """Results of one batch pass, parallel to the submitted specs."""

    results: list[SelectionResult]
    graph_version: int
    #: structurally distinct queries actually evaluated
    unique_evaluated: int
    #: queries served by another query's evaluation in this batch
    deduped: int
    #: structural-key hits served from the warm cross-run cache
    cross_hits: int
    #: every unique result re-derived sequentially and compared
    verified: bool = False


class BatchEvaluator:
    """Evaluate batches of compiled specs over warm graph entries."""

    def __init__(self, *, verify: bool = False) -> None:
        self.verify = verify

    def evaluate(
        self, specs: Sequence[CompiledSpec], entry: GraphEntry
    ) -> BatchOutcome:
        """One single-pass evaluation of ``specs`` over ``entry``.

        The entry must be current (the store re-checks versions on
        access); a graph that mutated since the entry was taken raises
        via the snapshot freshness check rather than mixing versions.
        """
        graph = entry.snapshot.graph  # freshness-checked
        if entry.version != graph.version:
            raise BatchMismatchError(
                f"stale graph entry {entry.key!r}: version {entry.version} "
                f"!= graph version {graph.version}"
            )
        ctx = EvalContext.with_cross_run(graph, entry.cache)
        hits_before = entry.cache.hits
        results: list[SelectionResult | None] = [None] * len(specs)
        first_by_key: dict[str, int] = {}
        deduped = 0
        for i, spec in enumerate(specs):
            key = spec.cache_key
            if key is not None:
                j = first_by_key.get(key)
                if j is not None:
                    first = results[j]
                    assert first is not None
                    results[i] = SelectionResult(
                        selected=first.selected,
                        duration_seconds=0.0,
                        graph_size=first.graph_size,
                        trace=list(first.trace),
                    )
                    deduped += 1
                    continue
                first_by_key[key] = i
            start = time.perf_counter()
            trace_start = len(ctx.trace)
            selected = ctx.evaluate(spec.entry)
            results[i] = SelectionResult(
                selected=selected,
                duration_seconds=time.perf_counter() - start,
                graph_size=len(graph),
                trace=ctx.trace[trace_start:],
            )
        outcome = BatchOutcome(
            results=results,  # type: ignore[arg-type]
            graph_version=entry.version,
            unique_evaluated=len(specs) - deduped,
            deduped=deduped,
            cross_hits=entry.cache.hits - hits_before,
        )
        if self.verify:
            self._verify(specs, entry, outcome)
            outcome.verified = True
        return outcome

    def _verify(
        self,
        specs: Sequence[CompiledSpec],
        entry: GraphEntry,
        outcome: BatchOutcome,
    ) -> None:
        """Re-derive every query sequentially; raise on any difference."""
        graph = entry.snapshot.graph
        for spec, batched in zip(specs, outcome.results):
            sequential = evaluate_pipeline(spec.entry, graph)
            if sequential.selected != batched.selected:
                diff = sequential.selected ^ batched.selected
                raise BatchMismatchError(
                    f"batched result for {spec.spec_name or spec.cache_key!r} "
                    f"differs from its sequential evaluation on "
                    f"{len(diff)} function(s)"
                )
