"""Warm call-graph store: keyed snapshots + bound cross-run caches.

The selection service holds many call graphs *warm*: for each admitted
graph the store keeps the frozen :class:`~repro.cg.csr.CsrSnapshot` of
its current version together with one
:class:`~repro.core.selectors.base.CrossRunCache` bound to that graph —
the pair every query over the graph evaluates against
(:func:`repro.core.pipeline.evaluate_compiled`).

* **Version-keyed invalidation** — :meth:`GraphStore.entry` re-checks
  the graph's mutation ``version`` on every access; a bumped version
  rebuilds the snapshot and the bound cache drops its results wholesale
  on next bind (the :class:`CrossRunCache` contract).  Other graphs'
  warm state is untouched: one tenant editing its graph never
  invalidates a neighbour's cache.
* **LRU eviction by bytes** — warm entries are kept in recency order
  and evicted least-recently-used once the summed snapshot bytes exceed
  ``max_bytes``.  Eviction releases the store's references (snapshot +
  result cache); the graph itself stays admitted and re-warms cold — by
  selector purity, with bit-identical results — on next access.  (The
  graph object additionally caches its latest snapshot internally; the
  store budget governs service-held state.)

The store serves *concurrent* evaluation traffic: the selection
service's worker shards each own a disjoint slice of graph keys and hit
the store in parallel.  Warm hits and all bookkeeping run under one
global lock; the expensive build path (snapshot + cache bind) runs
under a *per-key* build lock with the global lock released, so one
shard's big cold build never stalls its siblings' warm hits.  Per-graph
consistency needs no store-level help: a graph's edits and evaluations
are serialised by its owning shard (a graph object admitted under two
different keys would break that premise and is unsupported).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.cg.csr import CsrSnapshot
from repro.cg.graph import CallGraph
from repro.core.selectors.base import DEFAULT_CACHE_ENTRIES, CrossRunCache
from repro.errors import ServiceError

#: default warm-set budget: at int32 CSR widths this holds dozens of
#: 10^5-node graphs — far above the test/bench scale, so eviction only
#: engages when explicitly configured tighter
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


@dataclass
class StoreStats:
    """Counters describing warm-store effectiveness."""

    admitted: int = 0
    #: accesses served by a warm, version-current entry
    warm_hits: int = 0
    #: accesses that (re)built a snapshot: cold admits, re-admissions
    #: after eviction, and version-bump invalidations
    cold_builds: int = 0
    #: subset of ``cold_builds`` caused by a graph mutation
    invalidations: int = 0
    #: subset of ``invalidations`` where the snapshot was repaired
    #: through the mutation journal instead of rebuilt from scratch
    delta_refreshes: int = 0
    #: cross-run results that survived delta-based invalidations
    cache_retained: int = 0
    #: cross-run results dropped by delta-based invalidations
    cache_dropped: int = 0
    #: warm entries dropped by the byte-budget LRU
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.warm_hits + self.cold_builds
        return self.warm_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "warm_hits": self.warm_hits,
            "cold_builds": self.cold_builds,
            "invalidations": self.invalidations,
            "delta_refreshes": self.delta_refreshes,
            "cache_retained": self.cache_retained,
            "cache_dropped": self.cache_dropped,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass
class GraphEntry:
    """One warm graph: snapshot + bound cross-run cache at one version."""

    key: str
    graph: CallGraph
    snapshot: CsrSnapshot
    cache: CrossRunCache
    version: int

    @property
    def nbytes(self) -> int:
        return self.snapshot.nbytes


class GraphStore:
    """Keyed store of warm call graphs for the selection service."""

    def __init__(
        self,
        *,
        max_bytes: int = DEFAULT_MAX_BYTES,
        cache_entries: int = DEFAULT_CACHE_ENTRIES,
    ) -> None:
        if max_bytes < 1:
            raise ServiceError("max_bytes must be positive")
        self.max_bytes = max_bytes
        self.cache_entries = cache_entries
        self._graphs: dict[str, CallGraph] = {}
        #: warm entries in recency order (oldest first — dict order)
        self._warm: dict[str, GraphEntry] = {}
        self._lock = threading.RLock()
        #: per-key build serialisation: cold builds drop the global
        #: lock, so two shards racing different keys build in parallel
        #: while two racing the *same* key build exactly once
        self._build_locks: dict[str, threading.Lock] = {}
        self.stats = StoreStats()

    # -- admission ---------------------------------------------------------------

    def admit(self, key: str, graph: CallGraph) -> None:
        """Register ``graph`` under ``key`` (idempotent for same object).

        Re-admitting a different graph under an existing key replaces it
        and drops any warm state of the old graph.
        """
        with self._lock:
            previous = self._graphs.get(key)
            if previous is graph:
                return
            if previous is not None:
                self._warm.pop(key, None)
            self._graphs[key] = graph
            self.stats.admitted += 1

    def graph(self, key: str) -> CallGraph:
        with self._lock:
            try:
                return self._graphs[key]
            except KeyError:
                raise ServiceError(
                    f"unknown graph key {key!r}; admitted: {sorted(self._graphs)}"
                ) from None

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._graphs)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._graphs

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    # -- warm access -------------------------------------------------------------

    def entry(self, key: str) -> GraphEntry:
        """The warm ``(snapshot, cache)`` entry for ``key``'s current version.

        Warm and current → LRU-touched and returned.  Stale (graph
        mutated) → snapshot refreshed through the mutation journal when
        it can answer (falling back to a from-scratch rebuild), and the
        same cache object re-bound — it consults the same journal to
        keep results the delta provably left alone.  Absent (cold or
        previously evicted) → built fresh.  Either build path runs
        byte-budget eviction afterwards, and ``StoreStats`` reports how
        much warmth survived (``delta_refreshes``, ``cache_retained`` /
        ``cache_dropped``).
        """
        entry = self._warm_hit(key)
        if entry is not None:
            return entry
        with self._lock:
            build_lock = self._build_locks.setdefault(key, threading.Lock())
        with build_lock:
            # re-check: the shard we queued behind may have built it
            entry = self._warm_hit(key)
            if entry is not None:
                return entry
            with self._lock:
                graph = self.graph(key)
                stale = self._warm.pop(key, None)
                if stale is not None:
                    self.stats.invalidations += 1
                    cache = stale.cache  # keeps identity across re-binds
                else:
                    cache = CrossRunCache(self.cache_entries)
            retained, dropped = cache.retained, cache.dropped
            # bind (delta-aware retention while the journal still
            # covers the stale version) and snapshot outside the global
            # lock: the expensive part of a cold build must not stall
            # other shards' warm hits
            cache.store_for(graph)
            snapshot = graph.csr()
            with self._lock:
                self.stats.cache_retained += cache.retained - retained
                self.stats.cache_dropped += cache.dropped - dropped
                if stale is not None and snapshot.refreshed_from is not None:
                    self.stats.delta_refreshes += 1
                entry = GraphEntry(
                    key=key,
                    graph=graph,
                    snapshot=snapshot,
                    cache=cache,
                    version=graph.version,
                )
                self.stats.cold_builds += 1
                self._warm[key] = entry
                self._evict()
                return entry

    def _warm_hit(self, key: str) -> GraphEntry | None:
        """LRU-touch and return the warm, version-current entry, if any."""
        with self._lock:
            graph = self.graph(key)
            entry = self._warm.get(key)
            if entry is not None and entry.version == graph.version:
                self._warm.pop(key)
                self._warm[key] = entry  # re-insert: most recently used
                self.stats.warm_hits += 1
                return entry
            return None

    def peek(self, key: str) -> GraphEntry | None:
        """The warm entry if present — no LRU touch, no build (tests)."""
        with self._lock:
            return self._warm.get(key)

    def warm_keys(self) -> list[str]:
        """Warm keys in LRU order (least recently used first)."""
        with self._lock:
            return list(self._warm)

    def total_bytes(self) -> int:
        with self._lock:
            return sum(entry.nbytes for entry in self._warm.values())

    def _evict(self) -> None:
        # never evict the most recently used entry: a single oversized
        # graph must still be servable
        while len(self._warm) > 1 and (
            sum(entry.nbytes for entry in self._warm.values()) > self.max_bytes
        ):
            self._warm.pop(next(iter(self._warm)))
            self.stats.evictions += 1
