"""Continuous trace/bench watchdog: scan run directories, emit alerts.

The monitoring loop the ROADMAP asked for (zeus-monitor shape, minus
the email theatrics): tail a directory tree of trace archives, apply
integrity + supervision + wait-state-regression rules, and emit one
structured JSONL :class:`~repro.trace.alerts.Alert` per finding.

Rules per run directory:

* ``trace-missing-definitions`` — location files exist but the global
  definitions were never published (the run died before close).
* ``trace-truncated`` — a location file fails the strict read (missing
  or count-mismatched footer, undecodable line).
* ``trace-event-count`` — a location's event count disagrees with the
  definitions table.
* ``trace-orphan-location`` — a location file the definitions don't
  list (a zombie attempt published after the archive closed).
* ``trace-<issue-code>`` — any streaming-validate defect in the merged
  timeline (``trace-merge-order``, ``trace-unclosed-region``, ...).
* ``retried`` / ``lost`` / ``degraded`` — straight from ``health.json``
  via :func:`~repro.trace.alerts.health_alerts`.
* ``wait-regression`` — the archive's collective-wait fraction
  (sum of rank offsets over ranks × elapsed) exceeds its budget: the
  ``trace_pipeline.healthy_wait_fraction`` baseline in
  ``BENCH_selection.json`` scaled by ``--wait-slack``, or an absolute
  default when no baseline is available.

Healthy archives stay silent — that is asserted in CI.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TextIO

from repro.trace.alerts import Alert, health_alerts
from repro.trace.store import (
    DEFINITIONS_NAME,
    TraceStoreError,
    discover_ranks,
    iter_location_file,
    location_path,
    read_definitions,
    read_health_record,
)
from repro.trace.streaming import open_merged_trace

#: wait fraction allowed when no bench baseline exists: below 0.9 even
#: a heavily imbalanced run passes, while a hang-shaped trace (one rank
#: parked at a collective for nearly the whole timeline) trips it
DEFAULT_WAIT_FRACTION_LIMIT = 0.9


@dataclass(frozen=True)
class WatchConfig:
    """Knobs for one watchdog scan."""

    #: BENCH_selection.json path (optional baseline source)
    baseline_path: str | None = None
    #: multiplier on the baseline healthy wait fraction
    wait_slack: float = 2.0
    #: absolute fallback when no baseline record exists
    wait_fraction_limit: float = DEFAULT_WAIT_FRACTION_LIMIT


def _load_baseline_wait_fraction(config: WatchConfig) -> "float | None":
    if not config.baseline_path:
        return None
    path = Path(config.baseline_path)
    if not path.exists():
        return None
    try:
        record = json.loads(path.read_text())
    except json.JSONDecodeError:
        return None
    fraction = record.get("trace_pipeline", {}).get("healthy_wait_fraction")
    return float(fraction) if fraction is not None else None


def scan_run(run_dir: str | Path, *, config: WatchConfig | None = None) -> list[Alert]:
    """Apply every watchdog rule to one trace archive directory."""
    config = config or WatchConfig()
    run_dir = Path(run_dir)
    source = str(run_dir)
    alerts: list[Alert] = []
    present = discover_ranks(run_dir)

    try:
        defs = read_definitions(run_dir)
    except TraceStoreError as exc:
        alerts.append(
            Alert(
                code="trace-missing-definitions",
                severity="critical",
                source=source,
                detail=str(exc),
            )
        )
        defs = None

    # integrity per location: strict read + event-count cross-check
    broken: set[int] = set()
    expected = dict(
        zip(defs.locations, defs.events_per_location)
    ) if defs else {}
    for rank in present:
        path = location_path(run_dir, rank)
        try:
            count = count_strict(path)
        except TraceStoreError as exc:
            alerts.append(
                Alert(
                    code="trace-truncated",
                    severity="critical",
                    rank=rank,
                    source=source,
                    detail=str(exc),
                )
            )
            broken.add(rank)
            continue
        if defs is not None and rank not in expected:
            alerts.append(
                Alert(
                    code="trace-orphan-location",
                    severity="warning",
                    rank=rank,
                    source=source,
                    detail=f"location file not listed in {DEFINITIONS_NAME}",
                )
            )
        elif defs is not None and count != expected[rank]:
            alerts.append(
                Alert(
                    code="trace-event-count",
                    severity="critical",
                    rank=rank,
                    source=source,
                    measured=float(count),
                    threshold=float(expected[rank]),
                    detail=(
                        f"definitions declare {expected[rank]} event(s), "
                        f"file holds {count}"
                    ),
                )
            )
            broken.add(rank)
    if defs is not None:
        for rank in defs.locations:
            if rank not in present:
                alerts.append(
                    Alert(
                        code="trace-missing-location",
                        severity="critical",
                        rank=rank,
                        source=source,
                        detail="definitions list the location but no file exists",
                    )
                )
                broken.add(rank)

    # merged-timeline consistency + wait regression over intact ranks
    intact = [r for r in present if r not in broken]
    if intact:
        try:
            trace = open_merged_trace(run_dir, rank_ids=intact)
        except (TraceStoreError, ValueError) as exc:
            alerts.append(
                Alert(
                    code="trace-unmergeable",
                    severity="critical",
                    source=source,
                    detail=str(exc),
                )
            )
        else:
            for issue in trace.validate():
                alerts.append(
                    Alert(
                        code=f"trace-{issue.code}",
                        severity="critical",
                        rank=issue.rank,
                        region=issue.region,
                        source=source,
                        detail=issue.detail,
                    )
                )
            alerts.extend(
                _wait_regression_alerts(trace, config, source)
            )

    # supervision records ride along with the archive
    try:
        health = read_health_record(run_dir)
    except TraceStoreError as exc:
        alerts.append(
            Alert(
                code="health-unreadable",
                severity="warning",
                source=source,
                detail=str(exc),
            )
        )
    else:
        for alert in health_alerts(health):
            alerts.append(_with_source(alert, source))
    return alerts


def count_strict(path: Path) -> int:
    """Strict event count of one location file (raises on truncation)."""
    n = 0
    for _ in iter_location_file(path, strict=True):
        n += 1
    return n


def _with_source(alert: Alert, source: str) -> Alert:
    return replace(alert, source=source)


def _wait_regression_alerts(
    trace, config: WatchConfig, source: str
) -> list[Alert]:
    elapsed = trace.elapsed_cycles
    if elapsed <= 0.0 or trace.ranks == 0:
        return []
    fraction = sum(trace.rank_offsets) / (trace.ranks * elapsed)
    baseline = _load_baseline_wait_fraction(config)
    if baseline is not None:
        limit = baseline * config.wait_slack
        basis = f"baseline {baseline:.4f} × slack {config.wait_slack:g}"
    else:
        limit = config.wait_fraction_limit
        basis = "absolute default"
    if fraction <= limit:
        return []
    return [
        Alert(
            code="wait-regression",
            severity="warning",
            source=source,
            measured=fraction,
            threshold=limit,
            detail=(
                f"collective-wait fraction {fraction:.1%} exceeds "
                f"budget {limit:.1%} ({basis})"
            ),
        )
    ]


# -- the watch loop --------------------------------------------------------------


def discover_run_dirs(root: str | Path) -> list[Path]:
    """Directories under ``root`` that look like trace archives."""
    root = Path(root)
    if not root.exists():
        return []
    candidates: set[Path] = set()
    for marker in root.rglob(DEFINITIONS_NAME):
        candidates.add(marker.parent)
    for marker in root.rglob("rank-*.evt"):
        candidates.add(marker.parent)
    return sorted(candidates)


def _fingerprint(run_dir: Path) -> tuple:
    """Change detector: (name, mtime, size) of every archive file."""
    entries = []
    for entry in sorted(run_dir.iterdir()):
        if entry.is_file():
            stat = entry.stat()
            entries.append((entry.name, stat.st_mtime_ns, stat.st_size))
    return tuple(entries)


@dataclass
class WatchState:
    """Per-directory fingerprints so unchanged archives scan once."""

    seen: dict = field(default_factory=dict)

    def changed(self, run_dir: Path) -> bool:
        fp = _fingerprint(run_dir)
        if self.seen.get(run_dir) == fp:
            return False
        self.seen[run_dir] = fp
        return True


def watch(
    root: str | Path,
    *,
    once: bool = False,
    interval: float = 5.0,
    config: WatchConfig | None = None,
    alerts_file: str | None = None,
    stdout: TextIO | None = None,
    stderr: TextIO | None = None,
    max_cycles: "int | None" = None,
) -> int:
    """Tail ``root`` for trace archives and emit JSONL alerts.

    Stdout carries *only* the JSONL alert stream (one
    :class:`Alert` per line) so it pipes cleanly into collectors; the
    human summary goes to stderr.  Returns the number of alerts
    emitted over the whole watch — the CLI maps that to an exit code.
    """
    stdout = stdout if stdout is not None else sys.stdout
    stderr = stderr if stderr is not None else sys.stderr
    config = config or WatchConfig()
    state = WatchState()
    total = 0
    cycles = 0
    sink = open(alerts_file, "a") if alerts_file else None
    try:
        while True:
            cycles += 1
            scanned = 0
            for run_dir in discover_run_dirs(root):
                if not state.changed(run_dir):
                    continue
                scanned += 1
                for alert in scan_run(run_dir, config=config):
                    line = alert.to_json()
                    print(line, file=stdout)
                    if sink is not None:
                        sink.write(line + "\n")
                    print(alert.render(), file=stderr)
                    total += 1
            if sink is not None:
                sink.flush()
            print(
                f"watchdog: cycle {cycles}, {scanned} archive(s) scanned, "
                f"{total} alert(s) total",
                file=stderr,
            )
            if once or (max_cycles is not None and cycles >= max_cycles):
                break
            time.sleep(interval)
    finally:
        if sink is not None:
            sink.close()
    return total
