"""Durable trace pipeline: OTF2-shaped on-disk store, streaming merge,
wait-state classification, and the structured-alert watchdog.

Layered like the real tool stack (paper §I): Score-P writes OTF2
archives (one event file per *location* plus global definitions),
Vampir/Scalasca stream-merge them, Scalasca classifies wait states,
and a monitoring loop watches for regressions.  The submodules mirror
that: :mod:`.store` (archive layout), :mod:`.streaming` (bounded-memory
merge), :mod:`.waitstates` (late-sender / late-receiver / collective
imbalance), :mod:`.alerts` + :mod:`.watchdog` (structured JSONL alerts).
"""

from repro.trace.alerts import Alert, health_alerts
from repro.trace.store import (
    LocationMeta,
    TraceDefinitions,
    TraceStoreError,
    TraceWriter,
    discover_ranks,
    iter_location,
    load_location,
    load_location_file,
    location_path,
    read_definitions,
    read_health_record,
    write_definitions,
    write_health_record,
)
from repro.trace.streaming import StreamingTrace, open_merged_trace
from repro.trace.waitstates import (
    ClassifiedWait,
    classify_wait_states,
    render_wait_state_report,
    summarize_by_rank,
    summarize_by_region,
)
from repro.trace.watchdog import WatchConfig, scan_run, watch

__all__ = [
    "Alert",
    "ClassifiedWait",
    "LocationMeta",
    "StreamingTrace",
    "TraceDefinitions",
    "TraceStoreError",
    "TraceWriter",
    "WatchConfig",
    "classify_wait_states",
    "discover_ranks",
    "health_alerts",
    "iter_location",
    "load_location",
    "load_location_file",
    "location_path",
    "open_merged_trace",
    "read_definitions",
    "read_health_record",
    "render_wait_state_report",
    "scan_run",
    "summarize_by_rank",
    "summarize_by_region",
    "watch",
    "write_definitions",
    "write_health_record",
]
