"""Scalasca-style wait-state classification over merged traces.

Three wait patterns (Scalasca's classic taxonomy, paper §I's "automatic
analysis" tool family):

* **imbalance-at-collective** — a rank reached a synchronizing
  collective early and blocked for the latest arriver ("Wait at
  Barrier / NxN").  Detected from the alignment sync points.
* **late-sender** — a receive was posted before the matching send:
  the receiver blocks from its recv until the send appears.
* **late-receiver** — the matching receive was posted *after* a
  (synchronous) send: the sender blocks from its send until the
  receive appears.

Point-to-point matching uses the message ids stamped by
:class:`repro.simmpi.messages.MessageMatcher` (SPMD ring pairing:
send ``k`` on rank ``r`` ↔ recv ``k`` on rank ``(r+1) % world``), all
in aligned logical time so cross-rank comparisons are meaningful.
Works over :class:`~repro.multirank.tracing.MergedTrace` and
:class:`~repro.trace.streaming.StreamingTrace` alike — the walk is a
single pass per rank stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.scorep.tracing import RankedTraceEvent, TraceEventKind
from repro.simmpi.messages import RECV_OPS, SEND_OPS, ring_partner

#: classification kinds, stable for CI assertions
LATE_SENDER = "late-sender"
LATE_RECEIVER = "late-receiver"
COLLECTIVE_IMBALANCE = "imbalance-at-collective"


@dataclass(frozen=True)
class ClassifiedWait:
    """One classified wait interval, in aligned time."""

    kind: str
    #: the waiting rank
    rank: int
    op: str
    begin_cycles: float
    end_cycles: float
    #: enclosing source region on the waiting rank (None at top level)
    region: str | None = None
    #: peer rank for point-to-point waits
    partner_rank: int | None = None
    #: matched message id for point-to-point waits
    message_id: int | None = None
    #: sync-point index for collective waits
    sync_index: int | None = None

    @property
    def wait_cycles(self) -> float:
        return self.end_cycles - self.begin_cycles


@dataclass(frozen=True)
class _P2PEvent:
    rank: int
    mid: int
    op: str
    aligned_cycles: float
    region: str | None


def _walk_rank(
    rank: int, events: Iterable[RankedTraceEvent]
) -> tuple[list[_P2PEvent], list[_P2PEvent], dict[tuple[int, float, str], str | None]]:
    """One pass over a rank's aligned stream.

    Collects its sends, its receives, and the enclosing region of each
    synchronisation event keyed by ``(rank, aligned time, op)`` — by
    the alignment rule a rank's anchor event lands exactly at the sync
    point's aligned timestamp, so the key is exact, not fuzzy.
    """
    sends: list[_P2PEvent] = []
    recvs: list[_P2PEvent] = []
    sync_regions: dict[tuple[int, float, str], str | None] = {}
    stack: list[str] = []
    for ev in events:
        if ev.kind is TraceEventKind.ENTER:
            stack.append(ev.region)
        elif ev.kind is TraceEventKind.LEAVE:
            if stack and stack[-1] == ev.region:
                stack.pop()
            elif ev.region in stack:
                while stack and stack[-1] != ev.region:
                    stack.pop()
                if stack:
                    stack.pop()
        elif ev.kind is TraceEventKind.MPI:
            region = stack[-1] if stack else None
            if ev.mid is not None and ev.region in SEND_OPS:
                sends.append(
                    _P2PEvent(rank, ev.mid, ev.region, ev.timestamp_cycles, region)
                )
            elif ev.mid is not None and ev.region in RECV_OPS:
                recvs.append(
                    _P2PEvent(rank, ev.mid, ev.region, ev.timestamp_cycles, region)
                )
            else:
                sync_regions[(rank, ev.timestamp_cycles, ev.region)] = region
    return sends, recvs, sync_regions


def classify_wait_states(
    trace,
    *,
    min_wait_cycles: float = 0.0,
    world_ranks: int | None = None,
) -> list[ClassifiedWait]:
    """Classify every wait in a merged trace, largest first.

    ``trace`` is a :class:`MergedTrace` or :class:`StreamingTrace`
    (anything with ``rank_labels``, ``sync_points``, ``wait_states()``
    and per-rank aligned streams).  ``world_ranks`` names the original
    world size for degraded runs so ring partners resolve to true rank
    ids; defaults to ``max(rank_labels) + 1``.
    """
    labels = tuple(trace.rank_labels)
    if world_ranks is None:
        world_ranks = (max(labels) + 1) if labels else 0
    present = set(labels)

    sends_by_key: dict[tuple[int, int], _P2PEvent] = {}
    recvs_by_key: dict[tuple[int, int], _P2PEvent] = {}
    sync_regions: dict[tuple[int, float, str], str | None] = {}
    for pos, rank in enumerate(labels):
        stream = _rank_stream(trace, pos)
        sends, recvs, regions = _walk_rank(rank, stream)
        for s in sends:
            sends_by_key[(s.rank, s.mid)] = s
        for r in recvs:
            recvs_by_key[(r.rank, r.mid)] = r
        sync_regions.update(regions)

    waits: list[ClassifiedWait] = []

    # collective imbalance: straight from the alignment sync points
    for w in trace.wait_states(min_wait_cycles=min_wait_cycles):
        waits.append(
            ClassifiedWait(
                kind=COLLECTIVE_IMBALANCE,
                rank=w.rank,
                op=w.op,
                begin_cycles=w.begin_cycles,
                end_cycles=w.end_cycles,
                region=sync_regions.get((w.rank, w.end_cycles, w.op)),
                sync_index=w.sync_index,
            )
        )

    # point-to-point: pair recv k on rank r with send k on its ring
    # neighbour; whoever acted first waits for the other
    for (rank, mid), recv in recvs_by_key.items():
        sender = ring_partner(rank, world_ranks)
        if sender not in present:
            continue  # degraded world: the partner's trace is gone
        send = sends_by_key.get((sender, mid))
        if send is None:
            continue  # ragged tail: send never happened
        if send.aligned_cycles > recv.aligned_cycles + min_wait_cycles:
            waits.append(
                ClassifiedWait(
                    kind=LATE_SENDER,
                    rank=rank,
                    op=recv.op,
                    begin_cycles=recv.aligned_cycles,
                    end_cycles=send.aligned_cycles,
                    region=recv.region,
                    partner_rank=sender,
                    message_id=mid,
                )
            )
        elif recv.aligned_cycles > send.aligned_cycles + min_wait_cycles:
            waits.append(
                ClassifiedWait(
                    kind=LATE_RECEIVER,
                    rank=sender,
                    op=send.op,
                    begin_cycles=send.aligned_cycles,
                    end_cycles=recv.aligned_cycles,
                    region=send.region,
                    partner_rank=rank,
                    message_id=mid,
                )
            )

    waits.sort(
        key=lambda w: (-w.wait_cycles, w.rank, w.begin_cycles, w.kind)
    )
    return waits


def _rank_stream(trace, pos: int) -> Iterable[RankedTraceEvent]:
    """Positional aligned stream from either trace flavour."""
    rank_stream = getattr(trace, "rank_stream", None)
    if rank_stream is not None:
        return rank_stream(pos)
    return trace.per_rank[pos]


# -- summaries -------------------------------------------------------------------


def summarize_by_rank(waits: Iterable[ClassifiedWait]) -> dict[int, dict[str, float]]:
    """Total wait cycles per rank per kind."""
    out: dict[int, dict[str, float]] = {}
    for w in waits:
        acc = out.setdefault(w.rank, {})
        acc[w.kind] = acc.get(w.kind, 0.0) + w.wait_cycles
    return out


def summarize_by_region(
    waits: Iterable[ClassifiedWait],
) -> dict[str, dict[str, float]]:
    """Total wait cycles per enclosing source region per kind."""
    out: dict[str, dict[str, float]] = {}
    for w in waits:
        acc = out.setdefault(w.region or "<top>", {})
        acc[w.kind] = acc.get(w.kind, 0.0) + w.wait_cycles
    return out


def render_wait_state_report(
    waits: list[ClassifiedWait], *, max_rows: int = 12
) -> str:
    """Human rendering: top waits plus per-rank and per-region totals."""
    lines = [
        "=" * 64,
        f"Wait-state classification — {len(waits)} wait(s)",
        "=" * 64,
    ]
    for w in waits[:max_rows]:
        where = f" in {w.region}" if w.region else ""
        peer = f" partner=rank {w.partner_rank}" if w.partner_rank is not None else ""
        lines.append(
            f"  {w.kind:<26} rank {w.rank} at {w.op}{where}: "
            f"{w.wait_cycles:.0f} cycles{peer}"
        )
    by_rank = summarize_by_rank(waits)
    if by_rank:
        lines.append("  totals by rank:")
        for rank in sorted(by_rank):
            parts = ", ".join(
                f"{kind}={cycles:.0f}"
                for kind, cycles in sorted(by_rank[rank].items())
            )
            lines.append(f"    rank {rank}: {parts}")
    by_region = summarize_by_region(waits)
    if by_region:
        lines.append("  totals by region:")
        for region in sorted(by_region):
            parts = ", ".join(
                f"{kind}={cycles:.0f}"
                for kind, cycles in sorted(by_region[region].items())
            )
            lines.append(f"    {region}: {parts}")
    return "\n".join(lines)
