"""OTF2-shaped on-disk trace store.

An OTF2 archive is a directory of per-*location* event files (one per
rank/thread) plus global definition tables (region names, location
ids, clock properties).  We mirror that shape:

    <trace_dir>/
        definitions.json     global tables: ranks, regions, clock, meta
        rank-00000.evt       location 0 event stream (JSON-lines)
        rank-00001.evt       location 1 event stream
        health.json          optional supervision record (fault PRs)

Each ``.evt`` file is append-only JSON-lines; every line is one small
JSON array so the reader never needs the whole file in memory:

    ["H", 1, rank]            header: format version + location id
    ["D", region_id, name]    region definition, interned at first use
    [kind, region_id, t]      event (kind 0=ENTER 1=LEAVE 2=MPI)
    [kind, region_id, t, mid] event carrying a matched message id
    ["F", n_events]           footer: clean-close marker + event count

The footer doubles as a truncation detector: a crashed or corrupted
writer leaves no footer (or a count that disagrees), which strict
readers surface as :class:`TraceStoreError` and the watchdog turns
into a ``trace-truncated`` alert.

Writers are crash-consistent: they stream to a pid-suffixed ``.wip``
file and ``os.replace`` it into place on close.  That also makes the
zombie-worker race benign — a hung attempt the supervisor abandoned
may finish late and publish concurrently with its retry, but both
produce identical deterministic content and each replace is atomic,
so last-wins never exposes a torn file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import CapiError
from repro.scorep.tracing import TraceEvent, TraceEventKind

FORMAT_VERSION = 1

_KIND_CODE = {
    TraceEventKind.ENTER: 0,
    TraceEventKind.LEAVE: 1,
    TraceEventKind.MPI: 2,
}
_CODE_KIND = {code: kind for kind, code in _KIND_CODE.items()}

DEFINITIONS_NAME = "definitions.json"
HEALTH_NAME = "health.json"


class TraceStoreError(CapiError):
    """Raised for malformed, truncated, or missing on-disk traces."""


def location_path(trace_dir: str | Path, rank: int) -> Path:
    return Path(trace_dir) / f"rank-{rank:05d}.evt"


def discover_ranks(trace_dir: str | Path) -> list[int]:
    """Ranks with a published location file, ascending."""
    ranks = []
    for entry in Path(trace_dir).glob("rank-*.evt"):
        stem = entry.stem[len("rank-"):]
        if stem.isdigit():
            ranks.append(int(stem))
    return sorted(ranks)


# -- location writer -------------------------------------------------------------


@dataclass(frozen=True)
class LocationMeta:
    """Summary of one closed location file (picklable across workers)."""

    rank: int
    path: str
    events: int
    flushes: int
    regions: tuple[str, ...]


class TraceWriter:
    """Append-only writer for one location's event stream.

    Buffers at most ``buffer_events`` encoded lines before writing
    them out, so tracer memory stays O(buffer) regardless of trace
    length.  Satisfies the duck-type ``ScorePTracer.writer`` expects:
    ``write_events(events)`` and ``close() -> LocationMeta``.
    """

    def __init__(
        self,
        trace_dir: str | Path,
        rank: int,
        *,
        buffer_events: int = 4096,
    ) -> None:
        if rank < 0:
            raise TraceStoreError(f"location rank must be >= 0, got {rank}")
        if buffer_events < 1:
            raise TraceStoreError("buffer_events must be >= 1")
        self.trace_dir = Path(trace_dir)
        self.rank = rank
        self.buffer_events = buffer_events
        self.path = location_path(self.trace_dir, rank)
        self.trace_dir.mkdir(parents=True, exist_ok=True)
        # pid suffix: an abandoned zombie attempt and its retry may
        # write concurrently; distinct wip names keep them from
        # clobbering each other mid-stream
        self._wip = self.path.with_name(f"{self.path.name}.wip-{os.getpid()}")
        self._fh = open(self._wip, "w")
        self._pending: list[str] = []
        self._regions: dict[str, int] = {}
        self.events_written = 0
        self.flushes = 0
        self.closed = False
        self._emit(json.dumps(["H", FORMAT_VERSION, rank]))

    def _emit(self, line: str) -> None:
        self._pending.append(line)
        if len(self._pending) >= self.buffer_events:
            self.flush()

    def _region_id(self, name: str) -> int:
        region_id = self._regions.get(name)
        if region_id is None:
            region_id = len(self._regions)
            self._regions[name] = region_id
            self._emit(json.dumps(["D", region_id, name]))
        return region_id

    def write(self, event: TraceEvent) -> None:
        if self.closed:
            raise TraceStoreError(f"writer for rank {self.rank} already closed")
        record: list = [
            _KIND_CODE[event.kind],
            self._region_id(event.region),
            event.timestamp_cycles,
        ]
        if event.mid is not None:
            record.append(event.mid)
        self._emit(json.dumps(record))
        self.events_written += 1

    def write_events(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.write(event)

    def flush(self) -> None:
        if self._pending:
            self._fh.write("\n".join(self._pending) + "\n")
            self._pending.clear()
            self.flushes += 1

    def close(self) -> LocationMeta:
        if self.closed:
            raise TraceStoreError(f"writer for rank {self.rank} already closed")
        self._emit(json.dumps(["F", self.events_written]))
        self.flush()
        self._fh.close()
        os.replace(self._wip, self.path)
        self.closed = True
        return LocationMeta(
            rank=self.rank,
            path=str(self.path),
            events=self.events_written,
            flushes=self.flushes,
            regions=tuple(self._regions),
        )

    def abort(self) -> None:
        """Discard the in-progress file without publishing it."""
        if not self.closed:
            self._fh.close()
            self._wip.unlink(missing_ok=True)
            self.closed = True


# -- location readers ------------------------------------------------------------


def iter_location_file(
    path: str | Path, *, strict: bool = True
) -> Iterator[TraceEvent]:
    """Stream one location file back as :class:`TraceEvent`s.

    Line-at-a-time: memory stays O(1) in trace length.  With
    ``strict=True`` a missing or count-mismatched footer raises
    :class:`TraceStoreError` once the stream is exhausted (events
    before the truncation point are still yielded first, so callers
    can salvage a prefix by catching the error).
    """
    path = Path(path)
    if not path.exists():
        raise TraceStoreError(f"missing location file {path}")
    regions: dict[int, str] = {}
    count = 0
    footer_count: int | None = None
    saw_header = False
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if strict:
                    raise TraceStoreError(
                        f"{path}:{lineno}: undecodable line ({exc})"
                    ) from exc
                break
            tag = record[0]
            if tag == "H":
                if record[1] != FORMAT_VERSION:
                    raise TraceStoreError(
                        f"{path}: unsupported format version {record[1]}"
                    )
                saw_header = True
            elif tag == "D":
                regions[record[1]] = record[2]
            elif tag == "F":
                footer_count = record[1]
            else:
                mid = record[3] if len(record) > 3 else None
                try:
                    region = regions[record[1]]
                    kind = _CODE_KIND[tag]
                except KeyError as exc:
                    raise TraceStoreError(
                        f"{path}:{lineno}: undefined region or kind {record!r}"
                    ) from exc
                count += 1
                yield TraceEvent(kind, region, record[2], mid)
    if strict:
        if not saw_header:
            raise TraceStoreError(f"{path}: missing header line")
        if footer_count is None:
            raise TraceStoreError(
                f"{path}: missing footer (truncated write?) after "
                f"{count} event(s)"
            )
        if footer_count != count:
            raise TraceStoreError(
                f"{path}: footer declares {footer_count} event(s) "
                f"but {count} were read"
            )


def iter_location(
    trace_dir: str | Path, rank: int, *, strict: bool = True
) -> Iterator[TraceEvent]:
    return iter_location_file(location_path(trace_dir, rank), strict=strict)


def load_location(
    trace_dir: str | Path, rank: int, *, strict: bool = True
) -> list[TraceEvent]:
    return list(iter_location(trace_dir, rank, strict=strict))


def load_location_file(
    path: str | Path, *, strict: bool = True
) -> list[TraceEvent]:
    return list(iter_location_file(path, strict=strict))


def count_location_events(path: str | Path) -> int:
    """Event count of a location file (streaming, lenient)."""
    n = 0
    for _ in iter_location_file(path, strict=False):
        n += 1
    return n


# -- global definitions ----------------------------------------------------------


@dataclass(frozen=True)
class TraceDefinitions:
    """Global definition tables for one archive (OTF2 GlobalDefs)."""

    world_ranks: int
    locations: tuple[int, ...]
    events_per_location: tuple[int, ...]
    frequency: float
    meta: dict = field(default_factory=dict)

    @property
    def degraded(self) -> bool:
        return len(self.locations) < self.world_ranks


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(f"{path.name}.wip-{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


def write_definitions(
    trace_dir: str | Path,
    *,
    world_ranks: int,
    locations: Iterable[LocationMeta],
    frequency: float,
    meta: dict | None = None,
) -> Path:
    """Publish the archive's global definitions file (atomic)."""
    locations = sorted(locations, key=lambda m: m.rank)
    path = Path(trace_dir) / DEFINITIONS_NAME
    payload = {
        "format_version": FORMAT_VERSION,
        "world_ranks": world_ranks,
        "locations": [
            {
                "rank": m.rank,
                "file": Path(m.path).name,
                "events": m.events,
                "flushes": m.flushes,
                "regions": list(m.regions),
            }
            for m in locations
        ],
        "clock": {"frequency": frequency, "unit": "cycles"},
        "meta": dict(meta or {}),
    }
    _atomic_write_json(path, payload)
    return path


def read_definitions(trace_dir: str | Path) -> TraceDefinitions:
    path = Path(trace_dir) / DEFINITIONS_NAME
    if not path.exists():
        raise TraceStoreError(f"missing {DEFINITIONS_NAME} in {trace_dir}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceStoreError(f"{path}: undecodable definitions") from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise TraceStoreError(
            f"{path}: unsupported format version "
            f"{payload.get('format_version')!r}"
        )
    locations = payload.get("locations", [])
    return TraceDefinitions(
        world_ranks=payload["world_ranks"],
        locations=tuple(loc["rank"] for loc in locations),
        events_per_location=tuple(loc["events"] for loc in locations),
        frequency=payload.get("clock", {}).get("frequency", 0.0),
        meta=payload.get("meta", {}),
    )


# -- supervision record ----------------------------------------------------------


def write_health_record(
    trace_dir: str | Path, health, *, extra: dict | None = None
) -> Path:
    """Persist a :class:`~repro.multirank.faults.HealthReport` next to
    the trace so the watchdog can alert on retries/losses after the
    run is gone."""
    per_rank = None
    if health.per_rank is not None:
        per_rank = [
            {
                "rank": h.rank,
                "outcome": h.outcome,
                "attempts": h.attempts,
                "latency_seconds": h.latency_seconds,
                "failures": list(h.failures),
            }
            for h in health.per_rank
        ]
    payload = {
        "ranks": health.ranks,
        "missing_ranks": list(health.missing_ranks),
        "per_rank": per_rank,
        **(extra or {}),
    }
    path = Path(trace_dir) / HEALTH_NAME
    _atomic_write_json(path, payload)
    return path


def read_health_record(trace_dir: str | Path):
    """Load ``health.json`` back into a ``HealthReport`` (or ``None``)."""
    path = Path(trace_dir) / HEALTH_NAME
    if not path.exists():
        return None
    from repro.multirank.faults import HealthReport, RankHealth

    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TraceStoreError(f"{path}: undecodable health record") from exc
    per_rank = payload.get("per_rank")
    if per_rank is not None:
        per_rank = tuple(
            RankHealth(
                rank=h["rank"],
                outcome=h["outcome"],
                attempts=h["attempts"],
                latency_seconds=h["latency_seconds"],
                failures=tuple(h.get("failures", ())),
            )
            for h in per_rank
        )
    return HealthReport(
        ranks=payload["ranks"],
        per_rank=per_rank,
        missing_ranks=tuple(payload.get("missing_ranks", ())),
    )
