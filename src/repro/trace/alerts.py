"""Structured alert records shared by health rendering and the watchdog.

One record type for every alerting surface: the supervision health
alerts (``render_health_alerts``), the trace watchdog, and the bench
regression rules.  Text rendering is a *view* over the record
(``Alert.render()``), and the JSONL serialisation is schema-stable so
CI and downstream collectors can assert on ``code`` instead of
grepping message text.

JSONL schema (one object per line; absent optionals serialise as
``null`` so every line has every key):

    {"code": str,        stable alert identifier, kebab-case
     "severity": str,    "info" | "warning" | "critical"
     "rank": int|null,   offending rank, when rank-scoped
     "region": str|null, offending source region, when region-scoped
     "measured": float|null,   the observed value, for threshold rules
     "threshold": float|null,  the limit it was compared against
     "source": str|null, originating run/trace directory
     "detail": str}      human-readable specifics
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Alert:
    """One structured alert (the unit both alerting paths emit)."""

    code: str
    severity: str
    detail: str
    rank: int | None = None
    region: str | None = None
    measured: float | None = None
    threshold: float | None = None
    source: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def render(self) -> str:
        """The human-readable ``ALERT ...`` line (legacy view).

        The field order reproduces the pre-structured health-alert
        strings byte-for-byte: code, then rank, then the detail tail;
        region and measured/threshold appear only for watchdog rules
        that set them.
        """
        parts = [f"ALERT {self.code}"]
        if self.rank is not None:
            parts.append(f"rank={self.rank}")
        if self.region is not None:
            parts.append(f"region={self.region}")
        if self.measured is not None and self.threshold is not None:
            parts.append(
                f"measured={self.measured:.6g} threshold={self.threshold:.6g}"
            )
        if self.detail:
            parts.append(self.detail)
        return " ".join(parts)

    def to_json(self) -> str:
        """One JSONL line, every schema key present."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "Alert":
        data = json.loads(line)
        return cls(
            code=data["code"],
            severity=data["severity"],
            detail=data["detail"],
            rank=data.get("rank"),
            region=data.get("region"),
            measured=data.get("measured"),
            threshold=data.get("threshold"),
            source=data.get("source"),
        )


def health_alerts(health) -> list[Alert]:
    """Structured alerts for a run's supervision records.

    One alert per retried rank (recovered, but only after failures —
    warning), per lost rank (retries exhausted — critical), and one
    for degraded POP coverage (critical).  Empty list means the run
    was perfectly healthy; ``render_health_alerts`` in
    :mod:`repro.experiments.anomalies` is the text view over this.
    """
    if health is None:
        return []
    alerts: list[Alert] = []
    by_rank = {h.rank: h for h in health.per_rank or ()}
    for rank in health.retried_ranks:
        h = by_rank[rank]
        alerts.append(
            Alert(
                code="retried",
                severity="warning",
                rank=rank,
                detail=f"attempts={h.attempts} last_failure={h.failures[-1]!r}",
            )
        )
    for rank in health.lost_ranks:
        h = by_rank.get(rank)
        detail = (
            f"attempts={h.attempts} last_failure={h.failures[-1]!r}"
            if h is not None and h.failures
            else "no supervision record"
        )
        alerts.append(
            Alert(code="lost", severity="critical", rank=rank, detail=detail)
        )
    if health.degraded:
        alerts.append(
            Alert(
                code="degraded",
                severity="critical",
                measured=health.coverage,
                threshold=1.0,
                detail=(
                    f"coverage={health.coverage:.1%} "
                    f"missing_ranks={list(health.missing_ranks)}"
                ),
            )
        )
    return alerts
