"""Streaming k-way merge over an on-disk trace archive.

``merge_rank_traces`` materialises every rank's event list; fine for a
test run, fatal for a fleet.  This module produces the *same*
rank-tagged, collective-aligned timeline (property-tested
bit-identical) while holding O(ranks × buffer) memory:

1. **Alignment pass** — each location file is scanned once, streaming,
   collecting only its synchronisation-event sequence plus an event
   count and last timestamp.  :func:`compute_alignment` then solves
   the logical clocks exactly as the in-memory merge does.
2. **Merge pass** — ``heapq.merge`` over per-location readers wrapped
   in :func:`align_stream`, keyed ``(timestamp, rank)``.  At any
   moment each reader holds one decoded event plus its file buffer.

Analyses (:meth:`StreamingTrace.wait_states`,
:meth:`StreamingTrace.critical_path`, :meth:`StreamingTrace.validate`)
run off sync points and single-pass generator walks — no full
materialisation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from repro.multirank.tracing import (
    SYNC_OPS,
    MergedTrace,
    SyncPoint,
    WaitInterval,
    _offset_at,
    _top_regions_by_segment,
    align_stream,
    compute_alignment,
    merge_rank_traces,
    resolve_rank_ids,
    segment_windows,
    validate_merge_order,
    validate_rank_stream,
)
from repro.scorep.tracing import (
    RankedTraceEvent,
    TraceEventKind,
    TraceIssue,
)
from repro.trace.store import (
    TraceStoreError,
    discover_ranks,
    iter_location,
    read_definitions,
)


def _scan_location(
    trace_dir: str | Path, rank: int, *, strict: bool
) -> tuple[list[tuple[str, float]], int, float]:
    """One streaming pass: (sync sequence, event count, last timestamp)."""
    sync_seq: list[tuple[str, float]] = []
    count = 0
    last_t = 0.0
    for ev in iter_location(trace_dir, rank, strict=strict):
        count += 1
        last_t = ev.timestamp_cycles
        if ev.kind is TraceEventKind.MPI and ev.region in SYNC_OPS:
            sync_seq.append((ev.region, ev.timestamp_cycles))
    return sync_seq, count, last_t


@dataclass
class StreamingTrace:
    """Lazy view of an on-disk multi-rank trace archive.

    Mirrors the :class:`~repro.multirank.tracing.MergedTrace` surface —
    same ``sync_points`` / ``rank_offsets`` / analyses — but ``events()``
    is a generator re-reading the location files on every call, so the
    resident set stays bounded by the readers' buffers.
    """

    trace_dir: str
    ranks: int
    rank_ids: tuple[int, ...]
    sync_points: list[SyncPoint]
    #: final per-rank logical-clock offset == total synchronisation wait
    rank_offsets: tuple[float, ...]
    events_per_rank: tuple[int, ...]
    #: aligned timestamp of each rank's final event
    last_aligned: tuple[float, ...]
    #: per-rank alignment shift schedules (compute_alignment output)
    schedule: list[list[tuple[float, float]]] = field(repr=False)
    strict: bool = True

    # -- stream access ---------------------------------------------------------

    @property
    def rank_labels(self) -> tuple[int, ...]:
        return self.rank_ids

    @property
    def rank_wait_cycles(self) -> tuple[float, ...]:
        return self.rank_offsets

    @property
    def elapsed_cycles(self) -> float:
        return max(self.last_aligned, default=0.0)

    def rank_stream(self, pos: int) -> Iterator[RankedTraceEvent]:
        """Rank at position ``pos``, aligned and tagged, streamed."""
        return align_stream(
            self.rank_ids[pos],
            iter_location(self.trace_dir, self.rank_ids[pos], strict=self.strict),
            self.schedule[pos],
        )

    def events(self) -> Iterator[RankedTraceEvent]:
        """The merged global timeline, streamed in ``(t, rank)`` order."""
        return heapq.merge(
            *(self.rank_stream(pos) for pos in range(self.ranks)),
            key=lambda ev: (ev.timestamp_cycles, ev.rank),
        )

    def materialize(self) -> MergedTrace:
        """Load everything and build the in-memory equivalent."""
        return merge_rank_traces(
            [
                list(iter_location(self.trace_dir, rank, strict=self.strict))
                for rank in self.rank_ids
            ],
            rank_ids=self.rank_ids,
        )

    # -- consistency -----------------------------------------------------------

    def validate(self) -> list[TraceIssue]:
        """Same checks as :meth:`MergedTrace.validate`, bounded memory."""
        issues = list(validate_merge_order(self.events()))
        for pos, rank in enumerate(self.rank_ids):
            issues.extend(
                validate_rank_stream(
                    rank,
                    iter_location(self.trace_dir, rank, strict=self.strict),
                )
            )
        return issues

    # -- analyses --------------------------------------------------------------

    def wait_states(self, *, min_wait_cycles: float = 0.0) -> list[WaitInterval]:
        """Per-rank wait intervals at collectives, largest first.

        Sync points were fixed by the alignment pass, so this needs no
        event access at all — identical to the in-memory analysis.
        """
        labels = self.rank_labels
        intervals = [
            WaitInterval(
                rank=labels[pos],
                sync_index=sp.index,
                op=sp.op,
                begin_cycles=sp.aligned_cycles - wait,
                end_cycles=sp.aligned_cycles,
            )
            for sp in self.sync_points
            for pos, wait in enumerate(sp.wait_cycles)
            if wait > min_wait_cycles
        ]
        intervals.sort(key=lambda w: (-w.wait_cycles, w.sync_index, w.rank))
        return intervals

    def critical_path(self):
        """Critical-path walk; one streamed pass per rank.

        Same segment rule as :meth:`MergedTrace.critical_path` — the
        per-rank top-region attribution consumes each rank's aligned
        stream as a generator.
        """
        from repro.multirank.tracing import CriticalSegment

        if not any(self.events_per_rank):
            return []
        windows = segment_windows(self.sync_points, self.last_aligned)
        tops = [
            _top_regions_by_segment(
                self.rank_stream(pos),
                [windows[seg][pos] for seg in range(len(windows))],
            )
            for pos in range(self.ranks)
        ]
        ops = ["start", *[sp.op for sp in self.sync_points], "end"]
        labels = self.rank_labels
        segments = []
        for seg in range(len(ops) - 1):
            durations = [end - begin for begin, end in windows[seg]]
            pos = max(range(self.ranks), key=lambda r: (durations[r], -r))
            segments.append(
                CriticalSegment(
                    index=seg,
                    begin_op=ops[seg],
                    end_op=ops[seg + 1],
                    rank=labels[pos],
                    duration_cycles=durations[pos],
                    top_region=tops[pos][seg],
                )
            )
        return segments


def open_merged_trace(
    trace_dir: str | Path,
    *,
    rank_ids: "Sequence[int] | None" = None,
    strict: bool = True,
) -> StreamingTrace:
    """Open an on-disk archive as a streaming merged trace.

    ``rank_ids`` defaults to the archive's definitions file (or, absent
    one, the discovered location files) — pass it explicitly to merge a
    subset.  The alignment pass runs here; event access stays lazy.
    """
    trace_dir = Path(trace_dir)
    if rank_ids is None:
        try:
            rank_ids = list(read_definitions(trace_dir).locations)
        except TraceStoreError:
            rank_ids = discover_ranks(trace_dir)
    if not rank_ids:
        raise TraceStoreError(f"no trace locations found in {trace_dir}")
    ids = resolve_rank_ids(len(rank_ids), rank_ids)

    sync_seqs: list[list[tuple[str, float]]] = []
    counts: list[int] = []
    last_locals: list[float] = []
    for rank in ids:
        sync_seq, count, last_t = _scan_location(trace_dir, rank, strict=strict)
        sync_seqs.append(sync_seq)
        counts.append(count)
        last_locals.append(last_t)

    sync_points, offsets, schedule = compute_alignment(sync_seqs)
    last_aligned = tuple(
        last_locals[pos] + _offset_at(schedule[pos], last_locals[pos])
        for pos in range(len(ids))
    )
    return StreamingTrace(
        trace_dir=str(trace_dir),
        ranks=len(ids),
        rank_ids=ids,
        sync_points=sync_points,
        rank_offsets=offsets,
        events_per_rank=tuple(counts),
        last_aligned=last_aligned,
        schedule=schedule,
        strict=strict,
    )
