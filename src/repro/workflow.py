"""End-to-end workflow facade: build, load, instrument, run, measure.

This is the public API most users want: it wires the substrates into
the paper's Fig. 3 pipeline.

* :func:`build_app` — compile + link a :class:`SourceProgram` (and
  construct its MetaCG whole-program call graph).
* :func:`run_app` — execute one configuration: ``vanilla`` (no sleds),
  ``inactive`` (sleds, nothing patched), ``full`` (all sleds patched) or
  an IC-driven selective instrumentation, under the ``none``/``scorep``/
  ``talp`` measurement tool.
* :func:`serve_selection` — stand up a long-lived
  :class:`~repro.service.SelectionService` over one or many built apps:
  their call graphs are admitted into a warm
  :class:`~repro.service.GraphStore` and selection queries from many
  tenants are answered batched (see :mod:`repro.service`).

Each call returns a :class:`RunOutcome` carrying the timing result
(Table II's Tinit/Ttotal), the DynCaPI startup report (§VI-B anomalies)
and the tool artefacts (Score-P profile / TALP report).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Literal

from repro.cg.graph import CallGraph
from repro.cg.merge import build_whole_program_cg
from repro.core.ic import InstrumentationConfig
from repro.dyncapi.handlers import CygProfileDispatcher
from repro.dyncapi.runtime import DynCapi, StartupReport
from repro.dyncapi.scorep_bridge import ScorePBridge
from repro.dyncapi.talp_bridge import TalpBridge
from repro.errors import CapiError
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.execution.engine import ExecutionEngine
from repro.execution.result import RunResult
from repro.execution.workload import Workload
from repro.program.compiler import Compiler, CompilerConfig
from repro.program.ir import SourceProgram
from repro.program.linker import LinkedProgram, Linker
from repro.program.loader import DynamicLoader
from repro.scorep.measurement import ScorePMeasurement
from repro.scorep.regions import CallTreeNode
from repro.scorep.tracing import TRACE_EVENT_EXTRA, ScorePTracer
from repro.simmpi.comm import SimComm
from repro.simmpi.messages import MessageMatcher
from repro.simmpi.pmpi import PmpiLayer
from repro.simmpi.world import MpiWorld
from repro.talp.dlb import DlbLibrary
from repro.talp.monitor import TalpMonitor
from repro.talp.report import TalpReport, build_report
from repro.xray.runtime import XRayRuntime

if TYPE_CHECKING:  # service imports stay lazy: serving is optional
    from repro.service import SelectionService

Mode = Literal["vanilla", "inactive", "full", "ic"]
Tool = Literal["none", "scorep", "talp"]


@dataclass
class _MpiTraceMarker:
    """PMPI interceptor writing MPI markers into the event trace."""

    tracer: ScorePTracer
    #: stamps ring-matchable message ids onto point-to-point markers so
    #: the wait-state classifier can pair sends with receives
    matcher: MessageMatcher = field(default_factory=MessageMatcher)

    def on_mpi_call(self, op: str, cost_cycles: float) -> float:
        # tracer.mpi() advances the clock by TRACE_EVENT_EXTRA itself,
        # so no additional cycles are reported here (no double charge)
        self.tracer.mpi(op, mid=self.matcher.next_id(op))
        return 0.0

    def estimate_extra(self) -> float:
        """Per-MPI-call overhead estimate for analytic charging.

        Must mirror what the walked path actually costs: every traced
        MPI event advances the clock by ``TRACE_EVENT_EXTRA`` inside
        ``tracer.mpi()``.  Returning 0.0 here (the old behaviour) made
        every overhead prediction built on interceptor estimates
        undercount tracing cost on the analytically charged residual.
        """
        return TRACE_EVENT_EXTRA


@dataclass
class BuiltApp:
    """A compiled + linked application with its whole-program call graph."""

    program: SourceProgram
    linked: LinkedProgram
    graph: CallGraph

    @property
    def name(self) -> str:
        return self.program.name


def build_app(
    program: SourceProgram,
    *,
    xray: bool = True,
    compiler_config: CompilerConfig | None = None,
    graph: CallGraph | None = None,
) -> BuiltApp:
    """Compile and link; ``xray=False`` produces the vanilla build."""
    config = compiler_config or CompilerConfig()
    if not xray:
        from dataclasses import replace

        config = replace(config, xray_instruction_threshold=2**31)
    compiled = Compiler(config).compile(program)
    linked = Linker().link(compiled)
    if graph is None:
        graph = build_whole_program_cg(program)
    return BuiltApp(program=program, linked=linked, graph=graph)


def serve_selection(
    apps: "BuiltApp | Mapping[str, BuiltApp] | Iterable[BuiltApp]",
    *,
    max_bytes: int | None = None,
    cache_entries: int | None = None,
    window_seconds: float | None = None,
    max_batch: int | None = None,
    max_in_flight: int | None = None,
    verify: bool = False,
    **service_kwargs,
) -> "SelectionService":
    """Start a selection service over one or many built applications.

    Each app's whole-program call graph is admitted into a warm
    :class:`~repro.service.GraphStore` under the app's name (pass a
    mapping to choose keys); the returned
    :class:`~repro.service.SelectionService` answers
    ``(tenant, graph key, spec source)`` queries batched, with results
    bit-identical to one-shot :meth:`~repro.core.capi.Capi.select`
    evaluation.  ``verify=True`` re-derives every batch sequentially and
    asserts that identity (the ``serve --check`` mode).  Extra keyword
    arguments pass straight through to
    :class:`~repro.service.SelectionService` — e.g. ``shards=4`` for a
    sharded worker pool, ``faults="worker-hang"`` for a supervised chaos
    drill, or ``supervised=False`` for the bare PR 8 worker.  Close the
    service when done (it is a context manager).
    """
    from repro.service import GraphStore, SelectionService
    from repro.service.service import (
        DEFAULT_MAX_BATCH,
        DEFAULT_MAX_IN_FLIGHT,
        DEFAULT_WINDOW_SECONDS,
    )
    from repro.service.store import DEFAULT_MAX_BYTES

    if isinstance(apps, BuiltApp):
        keyed = {apps.name: apps}
    elif isinstance(apps, Mapping):
        keyed = dict(apps)
    else:
        keyed = {app.name: app for app in apps}
    if not keyed:
        raise CapiError("serve_selection needs at least one built app")
    store_kwargs: dict = {}
    if max_bytes is not None:
        store_kwargs["max_bytes"] = max_bytes
    else:
        store_kwargs["max_bytes"] = DEFAULT_MAX_BYTES
    if cache_entries is not None:
        store_kwargs["cache_entries"] = cache_entries
    store = GraphStore(**store_kwargs)
    service = SelectionService(
        store,
        window_seconds=(
            DEFAULT_WINDOW_SECONDS if window_seconds is None else window_seconds
        ),
        max_batch=DEFAULT_MAX_BATCH if max_batch is None else max_batch,
        max_in_flight=(
            DEFAULT_MAX_IN_FLIGHT if max_in_flight is None else max_in_flight
        ),
        verify=verify,
        **service_kwargs,
    )
    for key, app in keyed.items():
        service.admit(key, app.graph)
    return service


@dataclass
class RunOutcome:
    """Everything one configured run produced."""

    result: RunResult
    startup: StartupReport | None = None
    scorep_profile: CallTreeNode | None = None
    talp_report: TalpReport | None = None
    #: the tool bridge (ScorePBridge / TalpBridge / CygProfileDispatcher)
    bridge: object | None = None
    measurement: ScorePMeasurement | None = None
    monitor: TalpMonitor | None = None
    world: MpiWorld | None = None
    #: present when ``tracing=True`` was requested with the scorep tool
    tracer: ScorePTracer | None = None
    #: rank-tagged, collective-aligned timeline (MergedTrace) — set when
    #: ``tracing=True`` was requested on the multi-rank path
    merged_trace: "object | None" = None
    #: multi-rank artefacts — set only when ``imbalance=`` was passed;
    #: ``result`` then carries the bottleneck rank's RunResult, so
    #: ``result.t_total`` is the synchronised elapsed time of the world
    multirank: "object | None" = None
    merged_profile: "object | None" = None
    pop: "object | None" = None
    #: DLB rebalancing history (RebalanceOutcome) — set when ``dlb=`` was
    #: passed; ``multirank``/``pop``/``result`` then describe the *final*
    #: (best) rebalanced iteration
    rebalance: "object | None" = None
    #: per-rank supervision records + world coverage (HealthReport) —
    #: set on the multi-rank path; carries missing-rank information when
    #: the run completed degraded (``degraded="allow"``)
    health: "object | None" = None
    #: summary of the on-disk location file written for this run
    #: (LocationMeta) — set when ``trace_dir=`` was passed on the
    #: single-rank path
    trace_meta: "object | None" = None


def run_app(
    built: BuiltApp,
    *,
    mode: Mode = "ic",
    tool: Tool = "none",
    ic: InstrumentationConfig | None = None,
    ranks: int = 4,
    workload: Workload | None = None,
    cost_model: CostModel | None = None,
    symbol_injection: bool = True,
    emulate_talp_bug: bool = True,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    tracing: bool = False,
    config_name: str = "",
    imbalance: "object | None" = None,
    backend: "str | object" = "serial",
    processes: int | None = None,
    dlb: "object | None" = None,
    dlb_max_iterations: int = 8,
    faults: "object | None" = None,
    degraded: str = "forbid",
    trace_dir: "str | None" = None,
    trace_location: int = 0,
    trace_standalone: bool = True,
) -> RunOutcome:
    """Execute one instrumentation/measurement configuration.

    ``tracing=True`` (scorep tool only) attaches an event tracer next to
    the profile: every region enter/leave and MPI operation lands in
    ``outcome.tracer`` with timestamps, at extra per-event cost.

    ``trace_dir=`` (requires ``tracing=True``) persists the event
    stream to an OTF2-shaped archive instead of memory: the tracer
    spills full buffers to a per-location file under ``trace_dir`` (see
    :mod:`repro.trace.store`) and ``outcome.trace_meta`` summarises the
    closed location.  On the single-rank path the event list is then
    only on disk (``outcome.tracer.all_events()`` raises; read it back
    with :func:`repro.trace.store.load_location`).  ``trace_location``
    names the location (rank) id; ``trace_standalone=False`` suppresses
    the global definitions write for callers (the rank scheduler) that
    publish their own archive-level tables.  On the multi-rank path
    every rank writes its own location file from inside its worker —
    trace payloads never travel through result pickles — and the parent
    publishes definitions plus a ``health.json`` supervision record.

    Passing ``imbalance=ImbalanceSpec(...)`` switches to the multi-rank
    path (``ImbalanceSpec()`` is a uniform world): the app executes once
    per rank (workloads perturbed by the spec, dispatched through
    ``backend`` — ``"serial"``, ``"multiprocessing"`` or a backend
    instance; without ``imbalance`` the ``backend`` argument has no
    effect) and the outcome carries
    the cross-rank artefacts: ``outcome.merged_profile`` (Score-P-style
    min/max/avg/sum aggregation), ``outcome.pop`` (measured POP metrics)
    and ``outcome.multirank`` (per-rank results).  ``outcome.result`` is
    the bottleneck rank's result, so ``t_total`` reads as the
    synchronised elapsed time.  With ``tracing=True`` each rank records
    its own event trace and the streams are merged into one rank-tagged
    timeline with logical clocks aligned at MPI collectives
    (``outcome.merged_trace``, a
    :class:`~repro.multirank.tracing.MergedTrace`) carrying wait-state
    and critical-path analyses.

    Passing additionally ``dlb=DlbPolicy(...)`` closes the paper's §VI
    DLB loop: the world runs, the LeWI policy lends CPU capacity from
    waiting ranks to the bottleneck, and the world re-runs (at most
    ``dlb_max_iterations`` times) until the POP efficiency converges.
    ``outcome.rebalance`` then carries the full iteration history and
    ``outcome.multirank``/``outcome.pop``/``outcome.result`` describe
    the final (best) rebalanced state.

    Fault tolerance (multi-rank path only): ``faults=`` injects a
    deterministic chaos scenario (a
    :class:`~repro.multirank.faults.FaultSpec` or the name of a preset
    in :data:`repro.apps.FAULT_SCENARIOS`), ``backend="supervised"``
    (or ``"supervised:mp"``) survives it via per-rank deadlines and
    retries, ``degraded=`` ("forbid"/"allow") decides whether lost
    ranks abort the run or yield a coverage-annotated partial result,
    ``processes=`` pins the worker count, and ``outcome.health``
    reports per-rank attempts/outcomes/latencies.
    """
    if dlb is not None and imbalance is None:
        raise CapiError(
            "dlb rebalancing needs the multi-rank path; pass imbalance= "
            "(ImbalanceSpec() for a uniform world)"
        )
    if faults is not None and imbalance is None:
        raise CapiError(
            "fault injection needs the multi-rank path; pass imbalance= "
            "(ImbalanceSpec() for a uniform world)"
        )
    if isinstance(faults, str):
        from repro.apps import fault_scenario

        faults = fault_scenario(faults)
    if tracing:
        from repro.multirank.tracing import validate_tracing

        validate_tracing(tool, mode)
    if trace_dir is not None and not tracing:
        raise CapiError("trace_dir= requires tracing=True")
    if trace_dir is not None and dlb is not None:
        raise CapiError(
            "trace_dir= cannot be combined with dlb rebalancing: every "
            "iteration re-runs the world and would rewrite the archive"
        )
    if imbalance is not None:
        return _run_app_multirank(
            built,
            mode=mode,
            tool=tool,
            ic=ic,
            ranks=ranks,
            imbalance=imbalance,
            backend=backend,
            workload=workload,
            cost_model=cost_model,
            symbol_injection=symbol_injection,
            emulate_talp_bug=emulate_talp_bug,
            talp_bug_threshold=talp_bug_threshold,
            talp_bug_modulus=talp_bug_modulus,
            config_name=config_name,
            tracing=tracing,
            dlb=dlb,
            dlb_max_iterations=dlb_max_iterations,
            faults=faults,
            degraded=degraded,
            processes=processes,
            trace_dir=trace_dir,
        )
    if mode == "ic" and ic is None:
        raise CapiError("mode='ic' requires an instrumentation configuration")
    if mode != "ic" and ic is not None:
        raise CapiError(f"mode={mode!r} does not take an IC")

    cm = cost_model or CostModel()
    clock = VirtualClock()
    workload = workload or Workload()
    loader = DynamicLoader()
    loaded = loader.load_program(built.linked)

    world = MpiWorld(size=ranks)
    pmpi = PmpiLayer(SimComm(world))

    outcome = RunOutcome(result=RunResult(built.name, tool, config_name), world=world)
    xray_rt: XRayRuntime | None = None
    startup: StartupReport | None = None
    engine_tool = "none"

    trace_writer = None
    if trace_dir is not None:
        from repro.trace.store import TraceWriter

        trace_writer = TraceWriter(trace_dir, trace_location)

    if mode != "vanilla":
        xray_rt = XRayRuntime(loader.image)
        dyn = DynCapi(xray=xray_rt, loader=loader, clock=clock, cost_model=cm)
        if mode == "inactive":
            startup = dyn.startup_inactive()
        else:
            tool_init = {
                "none": 0.0,
                "scorep": cm.scorep_init_base,
                "talp": cm.talp_init_base,
            }[tool]
            startup = dyn.startup(
                ic=ic if mode == "ic" else None,
                handler=None,
                tool_init_cycles=tool_init,
            )
            engine_tool = tool
            _install_tool(
                outcome,
                tool,
                tracing=tracing,
                dyn=dyn,
                loader=loader,
                clock=clock,
                cm=cm,
                world=world,
                pmpi=pmpi,
                xray_rt=xray_rt,
                symbol_injection=symbol_injection,
                emulate_talp_bug=emulate_talp_bug,
                talp_bug_threshold=talp_bug_threshold,
                talp_bug_modulus=talp_bug_modulus,
                trace_writer=trace_writer,
            )

    engine = ExecutionEngine(
        linked=built.linked,
        loaded=loaded,
        tool=engine_tool,
        xray_runtime=xray_rt,
        pmpi=pmpi,
        cost_model=cm,
        workload=workload,
        clock=clock,
        # the tracer charges TRACE_EVENT_EXTRA inside the handler on
        # every patched enter/leave; the analytic residual must match
        handler_extra=(
            TRACE_EVENT_EXTRA
            if tracing and engine_tool == "scorep" and outcome.tracer is not None
            else 0.0
        ),
    )
    result = engine.run(config_name=config_name)
    result.t_init_cycles = startup.init_cycles if startup else 0.0
    outcome.result = result
    outcome.startup = startup

    if outcome.measurement is not None:
        outcome.measurement.finalize()
        outcome.scorep_profile = outcome.measurement.profile()
    if outcome.tracer is not None and trace_writer is not None:
        meta = outcome.tracer.close_writer()
        outcome.trace_meta = meta
        if trace_standalone:
            from repro.trace.store import write_definitions

            write_definitions(
                trace_dir,
                world_ranks=1,
                locations=[meta],
                frequency=clock.frequency,
                meta={"app": built.name, "config": config_name, "tool": tool},
            )
    if outcome.monitor is not None:
        outcome.monitor.stop_all_open()
        failed_reg = (
            len(outcome.bridge.failed_registrations)
            if isinstance(outcome.bridge, TalpBridge)
            else 0
        )
        outcome.talp_report = build_report(
            outcome.monitor,
            world,
            frequency=clock.frequency,
            failed_registrations=failed_reg,
        )
    return outcome


def _run_app_multirank(
    built: BuiltApp,
    *,
    mode: Mode,
    tool: Tool,
    ic: InstrumentationConfig | None,
    ranks: int,
    imbalance,
    backend,
    workload: Workload | None,
    cost_model: CostModel | None,
    symbol_injection: bool,
    emulate_talp_bug: bool,
    talp_bug_threshold: int | None,
    talp_bug_modulus: int | None,
    config_name: str,
    tracing: bool = False,
    dlb: "object | None" = None,
    dlb_max_iterations: int = 8,
    faults: "object | None" = None,
    degraded: str = "forbid",
    processes: int | None = None,
    trace_dir: "str | None" = None,
) -> RunOutcome:
    """Dispatch to the multirank subsystem and fold into a RunOutcome."""
    from repro.multirank import run_multirank, run_rebalanced

    common = dict(
        ranks=ranks,
        backend=backend,
        mode=mode,
        tool=tool,
        ic=ic,
        workload=workload,
        cost_model=cost_model,
        symbol_injection=symbol_injection,
        emulate_talp_bug=emulate_talp_bug,
        talp_bug_threshold=talp_bug_threshold,
        talp_bug_modulus=talp_bug_modulus,
        config_name=config_name,
        tracing=tracing,
        faults=faults,
        degraded=degraded,
        processes=processes,
        trace_dir=trace_dir,
    )
    rebalance = None
    if dlb is not None:
        rebalance = run_rebalanced(
            built,
            imbalance=imbalance,
            dlb=dlb,
            max_iterations=dlb_max_iterations,
            **common,
        )
        mr = rebalance.final.outcome
    else:
        mr = run_multirank(built, imbalance=imbalance, **common)
    return RunOutcome(
        result=mr.bottleneck.result,
        multirank=mr,
        merged_profile=mr.merged_profile,
        pop=mr.pop,
        merged_trace=mr.merged_trace,
        rebalance=rebalance,
        health=mr.health,
    )


def _install_tool(
    outcome: RunOutcome,
    tool: Tool,
    *,
    dyn: DynCapi,
    loader: DynamicLoader,
    clock: VirtualClock,
    cm: CostModel,
    world: MpiWorld,
    pmpi: PmpiLayer,
    xray_rt: XRayRuntime,
    symbol_injection: bool,
    emulate_talp_bug: bool,
    talp_bug_threshold: int | None = None,
    talp_bug_modulus: int | None = None,
    tracing: bool = False,
    trace_writer: "object | None" = None,
) -> None:
    """Wire the measurement bridge and install it as the XRay handler."""
    if tool == "scorep":
        measurement = ScorePMeasurement(clock=clock, cost_model=cm)
        tracer = (
            ScorePTracer(clock=clock, writer=trace_writer) if tracing else None
        )
        bridge = ScorePBridge(
            runtime=xray_rt,
            loader=loader,
            measurement=measurement,
            clock=clock,
            cost_model=cm,
            tracer=tracer,
        )
        if symbol_injection:
            bridge.inject_dso_symbols()
        pmpi.register(measurement)
        if tracer is not None:
            pmpi.register(_MpiTraceMarker(tracer))
            outcome.tracer = tracer
        xray_rt.set_handler(bridge.handler)
        outcome.bridge = bridge
        outcome.measurement = measurement
    elif tool == "talp":
        monitor = TalpMonitor(
            clock=clock,
            world=world,
            cost_model=cm,
            emulate_region_bug=emulate_talp_bug,
        )
        if talp_bug_threshold is not None:
            monitor.bug_threshold = talp_bug_threshold
        if talp_bug_modulus is not None:
            monitor.bug_modulus = talp_bug_modulus
        bridge = TalpBridge(
            dlb=DlbLibrary(monitor),
            id_names=dyn.id_names,
            clock=clock,
            cost_model=cm,
        )
        pmpi.register(monitor)
        pmpi.on_finalize.append(monitor.stop_all_open)
        xray_rt.set_handler(bridge.handler)
        outcome.bridge = bridge
        outcome.monitor = monitor
    else:
        dispatcher = CygProfileDispatcher(
            runtime=xray_rt, clock=clock, cost_model=cm
        )
        xray_rt.set_handler(dispatcher.handler)
        outcome.bridge = dispatcher
