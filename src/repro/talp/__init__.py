"""TALP/DLB substrate: monitoring regions, POP metrics, text report."""

from repro.talp.dlb import (
    DLB_ERR_INIT,
    DLB_ERR_NOINIT,
    DLB_ERR_PERM,
    DLB_ERR_UNKNOWN,
    DLB_INVALID_HANDLE,
    DLB_NOUPDT,
    DLB_SUCCESS,
    CpuPool,
    DlbLibrary,
)
from repro.talp.monitor import MonitoringRegion, TalpMonitor
from repro.talp.pop import PopMetrics, compute_pop
from repro.talp.report import TalpReport, build_report
from repro.talp.api import RegionSnapshot, TalpRuntimeApi

__all__ = [
    "RegionSnapshot",
    "TalpRuntimeApi",
    "CpuPool",
    "DLB_ERR_INIT",
    "DLB_ERR_NOINIT",
    "DLB_ERR_PERM",
    "DLB_ERR_UNKNOWN",
    "DLB_INVALID_HANDLE",
    "DLB_NOUPDT",
    "DLB_SUCCESS",
    "DlbLibrary",
    "MonitoringRegion",
    "PopMetrics",
    "TalpMonitor",
    "TalpReport",
    "build_report",
    "compute_pop",
]
