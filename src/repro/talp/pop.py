"""POP parallel efficiency metrics (paper §III-B, ref [23]).

TALP reports the POP hierarchy for each monitoring region:

* **Load Balance (LB)** — average over ranks of useful compute time
  divided by the maximum: ``avg_r(useful_r) / max_r(useful_r)``.
* **Communication Efficiency (CommEff)** — the fraction of the
  bottleneck rank's elapsed time that is useful:
  ``max_r(useful_r) / elapsed``.
* **Parallel Efficiency (PE)** — ``LB × CommEff``.

Two code paths feed these formulas:

* :func:`compute_pop` — the single-run shortcut: the bottleneck rank is
  executed and the other ranks' useful times are *synthesised* from the
  world's deterministic imbalance factors (the seed behaviour).
* :func:`compute_pop_from_ranks` — the multi-rank path: every rank was
  actually executed (see :mod:`repro.multirank`) and the per-rank
  useful/elapsed/MPI times are real measurements; the region's elapsed
  time is the slowest rank's, because the trailing synchronizing
  collective holds everyone until it arrives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import pinned_mean
from repro.simmpi.world import MpiWorld
from repro.talp.monitor import MonitoringRegion


@dataclass(frozen=True)
class PopMetrics:
    """POP efficiency metrics of one region across the MPI world."""

    region: str
    visits: int
    elapsed_seconds: float
    avg_useful_seconds: float
    max_useful_seconds: float
    mpi_seconds: float

    @property
    def load_balance(self) -> float:
        if self.max_useful_seconds <= 0:
            return 1.0
        return self.avg_useful_seconds / self.max_useful_seconds

    @property
    def communication_efficiency(self) -> float:
        if self.elapsed_seconds <= 0:
            return 1.0
        return min(1.0, self.max_useful_seconds / self.elapsed_seconds)

    @property
    def parallel_efficiency(self) -> float:
        return self.load_balance * self.communication_efficiency


def compute_pop_from_ranks(
    region: str,
    *,
    visits: int,
    useful_cycles: "np.ndarray | list[float]",
    elapsed_cycles: "np.ndarray | list[float]",
    mpi_cycles: "np.ndarray | list[float]",
    frequency: float,
) -> PopMetrics:
    """POP metrics from *measured* per-rank timings (multi-rank path).

    ``elapsed`` is the maximum over ranks — ranks synchronise at the
    region's trailing collective, so the slowest rank sets the region's
    wall time for everyone.  ``mpi_seconds`` reports the cross-rank
    mean, including each rank's share of synchronisation wait if the
    caller folded it in (see :func:`repro.simmpi.world.finalize_wait`).

    When every rank reports the same useful time the average is pinned
    to the maximum exactly, so a uniform workload yields a load balance
    of exactly 1.0 instead of accumulating float summation error.
    """
    useful = np.asarray(useful_cycles, dtype=float)
    elapsed = np.asarray(elapsed_cycles, dtype=float)
    mpi = np.asarray(mpi_cycles, dtype=float)
    if not (useful.size == elapsed.size == mpi.size) or useful.size == 0:
        raise ValueError("per-rank arrays must be non-empty and equal length")
    return PopMetrics(
        region=region,
        visits=visits,
        elapsed_seconds=float(elapsed.max()) / frequency,
        avg_useful_seconds=pinned_mean(useful) / frequency,
        max_useful_seconds=float(useful.max()) / frequency,
        mpi_seconds=pinned_mean(mpi) / frequency,
    )


def compute_pop(
    region: MonitoringRegion, world: MpiWorld, *, frequency: float
) -> PopMetrics:
    """Synthesise cross-rank POP metrics from the bottleneck-rank run."""
    factors = world.compute_factors
    useful = region.useful_cycles
    useful_per_rank = useful * factors
    return PopMetrics(
        region=region.name,
        visits=region.visits,
        elapsed_seconds=region.elapsed_cycles / frequency,
        avg_useful_seconds=float(np.mean(useful_per_rank)) / frequency,
        max_useful_seconds=float(np.max(useful_per_rank)) / frequency,
        mpi_seconds=region.mpi_cycles / frequency,
    )
