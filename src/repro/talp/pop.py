"""POP parallel efficiency metrics (paper §III-B, ref [23]).

TALP reports the POP hierarchy for each monitoring region:

* **Load Balance (LB)** — average over ranks of useful compute time
  divided by the maximum: ``avg_r(useful_r) / max_r(useful_r)``.
* **Communication Efficiency (CommEff)** — the fraction of the
  bottleneck rank's elapsed time that is useful:
  ``max_r(useful_r) / elapsed``.
* **Parallel Efficiency (PE)** — ``LB × CommEff``.

The reproduction executes the bottleneck rank (factor 1.0) and scales
useful time for the remaining ranks by the world's deterministic
imbalance factors; all ranks share the region's elapsed time because
collectives synchronise them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simmpi.world import MpiWorld
from repro.talp.monitor import MonitoringRegion


@dataclass(frozen=True)
class PopMetrics:
    """POP efficiency metrics of one region across the MPI world."""

    region: str
    visits: int
    elapsed_seconds: float
    avg_useful_seconds: float
    max_useful_seconds: float
    mpi_seconds: float

    @property
    def load_balance(self) -> float:
        if self.max_useful_seconds <= 0:
            return 1.0
        return self.avg_useful_seconds / self.max_useful_seconds

    @property
    def communication_efficiency(self) -> float:
        if self.elapsed_seconds <= 0:
            return 1.0
        return min(1.0, self.max_useful_seconds / self.elapsed_seconds)

    @property
    def parallel_efficiency(self) -> float:
        return self.load_balance * self.communication_efficiency


def compute_pop(
    region: MonitoringRegion, world: MpiWorld, *, frequency: float
) -> PopMetrics:
    """Synthesise cross-rank POP metrics from the bottleneck-rank run."""
    factors = world.compute_factors
    useful = region.useful_cycles
    useful_per_rank = useful * factors
    return PopMetrics(
        region=region.name,
        visits=region.visits,
        elapsed_seconds=region.elapsed_cycles / frequency,
        avg_useful_seconds=float(np.mean(useful_per_rank)) / frequency,
        max_useful_seconds=float(np.max(useful_per_rank)) / frequency,
        mpi_seconds=region.mpi_cycles / frequency,
    )
