"""TALP's runtime metrics-collection API (paper §III-B).

"TALP allows the application or an external entity (job scheduler,
resource manager or other software) to gather the metrics at runtime,
thus enabling the application or an external resource manager software
to make decisions during the execution."

:class:`TalpRuntimeApi` provides that external view: non-destructive
snapshots of any monitoring region *while it is still running*, either
by handle or for the whole region set.  Open regions contribute their
elapsed-so-far interval, so a scheduler polling mid-run sees current
numbers rather than the last closed instance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TalpError
from repro.simmpi.world import MpiWorld
from repro.talp.monitor import MonitoringRegion, TalpMonitor
from repro.talp.pop import PopMetrics, compute_pop


@dataclass(frozen=True)
class RegionSnapshot:
    """Point-in-time view of one monitoring region."""

    name: str
    visits: int
    open_now: bool
    elapsed_cycles: float
    mpi_cycles: float
    useful_cycles: float
    pop: PopMetrics


@dataclass
class TalpRuntimeApi:
    """External-entity access to live TALP metrics."""

    monitor: TalpMonitor
    world: MpiWorld

    def snapshot(self, handle: int) -> RegionSnapshot:
        """``DLB_TALP_CollectPOPMetrics`` analogue for one region."""
        region = self.monitor.regions.get(handle)
        if region is None:
            raise TalpError(f"unknown region handle {handle}")
        live = self._live_view(region)
        pop = compute_pop(live, self.world, frequency=self.monitor.clock.frequency)
        return RegionSnapshot(
            name=region.name,
            visits=region.visits,
            open_now=region.open_depth > 0,
            elapsed_cycles=live.elapsed_cycles,
            mpi_cycles=live.mpi_cycles,
            useful_cycles=live.useful_cycles,
            pop=pop,
        )

    def snapshot_by_name(self, name: str) -> RegionSnapshot:
        region = self.monitor.region_by_name(name)
        if region is None:
            raise TalpError(f"unknown region {name!r}")
        return self.snapshot(region.handle)

    def snapshot_all(self) -> list[RegionSnapshot]:
        return [self.snapshot(h) for h in sorted(self.monitor.regions)]

    def global_parallel_efficiency(self) -> float:
        """Aggregate PE over all regions, elapsed-time weighted.

        This is the single number a resource manager would act on
        (e.g. DROM shrinking a poorly-scaling job).
        """
        snaps = [s for s in self.snapshot_all() if s.elapsed_cycles > 0]
        if not snaps:
            return 1.0
        total = sum(s.elapsed_cycles for s in snaps)
        return sum(
            s.pop.parallel_efficiency * s.elapsed_cycles for s in snaps
        ) / total

    # -- internals ------------------------------------------------------------

    def _live_view(self, region: MonitoringRegion) -> MonitoringRegion:
        """A copy with the currently-open interval folded in."""
        live = MonitoringRegion(name=region.name, handle=region.handle)
        live.visits = region.visits
        live.elapsed_cycles = region.elapsed_cycles
        live.mpi_cycles = region.mpi_cycles
        if region.open_depth > 0:
            live.elapsed_cycles += self.monitor.clock.now() - region._started_at
            live.mpi_cycles += (
                self.monitor._global_mpi_cycles() - region._mpi_at_start
            )
        return live
