"""TALP monitoring regions (paper §III-B, §V-C.2).

TALP tracks user-defined regions: registered by name, started/stopped
around code of interest, possibly nested or overlapping.  Per region it
accumulates elapsed time, MPI time (attributed via PMPI interception to
*every currently open region*), and derives useful computation time.

Two behaviours from the paper's evaluation are reproduced faithfully:

* regions cannot be registered before ``MPI_Init``
  (:class:`~repro.errors.MpiNotInitializedError`), and
* at high registered-region counts, starting some previously registered
  regions fails sporadically — the unexplained bug of §VI-B(b).  We
  model it as a deterministic hash-collision in the region map so runs
  are reproducible: it only triggers beyond ``REGION_BUG_THRESHOLD``
  registered regions, "correlated with the high number of registered
  regions" like the original observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import stable_hash
from repro.errors import MpiNotInitializedError, TalpError
from repro.execution.clock import VirtualClock
from repro.execution.costs import CostModel
from repro.simmpi.world import MpiWorld

#: registered-region count beyond which the start-failure bug can trigger
REGION_BUG_THRESHOLD = 8192
#: one in this many names (by hash) is affected once over the threshold
REGION_BUG_MODULUS = 701


@dataclass
class MonitoringRegion:
    """Accumulated measurements of one registered region."""

    name: str
    handle: int
    visits: int = 0
    elapsed_cycles: float = 0.0
    mpi_cycles: float = 0.0
    #: number of times the region is currently open (regions may nest
    #: into themselves recursively)
    open_depth: int = 0
    _started_at: float = 0.0
    _mpi_at_start: float = 0.0

    @property
    def useful_cycles(self) -> float:
        """Elapsed time not spent inside MPI."""
        return max(0.0, self.elapsed_cycles - self.mpi_cycles)


@dataclass
class TalpMonitor:
    """Region bookkeeping plus the PMPI interceptor."""

    clock: VirtualClock
    world: MpiWorld
    cost_model: CostModel = field(default_factory=CostModel)
    regions: dict[int, MonitoringRegion] = field(default_factory=dict)
    _by_name: dict[str, int] = field(default_factory=dict)
    _open: list[int] = field(default_factory=list)
    _next_handle: int = 1
    #: names whose start failed due to the high-region-count bug
    failed_starts: set[str] = field(default_factory=set)
    #: emulate the paper's region-map bug (on by default, like reality)
    emulate_region_bug: bool = True
    #: registered-region count beyond which the bug can trigger; the
    #: default matches the full-scale TALP build — experiments on
    #: scaled-down applications may scale it down proportionally
    bug_threshold: int = REGION_BUG_THRESHOLD
    #: one in ``bug_modulus`` names (by hash) is affected once over the
    #: threshold (the paper saw 24 of 16,956 ≈ 1/700)
    bug_modulus: int = REGION_BUG_MODULUS

    # -- DLB API ---------------------------------------------------------------

    def register(self, name: str) -> int:
        """``DLB_MonitoringRegionRegister``; returns the region handle."""
        if not self.world.initialized:
            raise MpiNotInitializedError(
                f"cannot register region {name!r} before MPI_Init"
            )
        existing = self._by_name.get(name)
        if existing is not None:
            return existing
        handle = self._next_handle
        self._next_handle += 1
        self.regions[handle] = MonitoringRegion(name=name, handle=handle)
        self._by_name[name] = handle
        return handle

    def start(self, handle: int) -> None:
        """``DLB_MonitoringRegionStart``."""
        if not self.world.initialized:
            raise MpiNotInitializedError(
                f"cannot start region handle {handle} before MPI_Init"
            )
        region = self._region(handle)
        if (
            self.emulate_region_bug
            and len(self.regions) > self.bug_threshold
            and stable_hash(region.name) % self.bug_modulus == 0
        ):
            self.failed_starts.add(region.name)
            raise TalpError(
                f"region {region.name!r}: start failed (region-map bug at "
                f"{len(self.regions)} registered regions)"
            )
        if region.open_depth == 0:
            region._started_at = self.clock.now()
            region._mpi_at_start = self._global_mpi_cycles()
            self._open.append(handle)
        region.open_depth += 1
        region.visits += 1

    def stop(self, handle: int) -> None:
        """``DLB_MonitoringRegionStop``."""
        if not self.world.initialized:
            raise MpiNotInitializedError(
                f"cannot stop region handle {handle} before MPI_Init"
            )
        region = self._region(handle)
        if region.open_depth == 0:
            raise TalpError(f"region {region.name!r} stopped but not started")
        region.open_depth -= 1
        if region.open_depth == 0:
            region.elapsed_cycles += self.clock.now() - region._started_at
            mpi_delta = self._global_mpi_cycles() - region._mpi_at_start
            region.mpi_cycles += mpi_delta
            if mpi_delta > 0:
                # POP accounting: MPI happened inside this instance, so
                # the stop path updates the efficiency counters — the
                # expensive exit that §VI-C's mpi-IC asymmetry rests on
                self.clock.advance(self.cost_model.talp_mpi_region_update)
            self._open.remove(handle)

    def stop_all_open(self) -> None:
        """Close any regions still open at MPI_Finalize."""
        for handle in list(reversed(self._open)):
            region = self.regions[handle]
            while region.open_depth > 0:
                self.stop(handle)

    # -- PMPI interceptor ------------------------------------------------------

    def on_mpi_call(self, op: str, cost_cycles: float) -> float:
        """Attribute MPI time; pay bookkeeping per open region.

        The returned extra cycles model TALP's PMPI wrapper plus the
        per-open-region counter updates on each MPI call.
        """
        self._mpi_cycles_total = self._global_mpi_cycles() + cost_cycles
        return (
            self.cost_model.talp_pmpi_base
            + self.cost_model.talp_mpi_per_open_region * len(self._open)
        )

    def estimate_extra(self) -> float:
        """Per-MPI-call overhead estimate for analytic charging."""
        return (
            self.cost_model.talp_pmpi_base
            + self.cost_model.talp_mpi_per_open_region * len(self._open)
        )

    # -- queries ------------------------------------------------------------------

    def region_by_name(self, name: str) -> MonitoringRegion | None:
        handle = self._by_name.get(name)
        return self.regions.get(handle) if handle is not None else None

    def open_region_count(self) -> int:
        return len(self._open)

    def registered_count(self) -> int:
        return len(self.regions)

    # -- internals -------------------------------------------------------------------

    _mpi_cycles_total: float = 0.0

    def _global_mpi_cycles(self) -> float:
        return self._mpi_cycles_total

    def _region(self, handle: int) -> MonitoringRegion:
        try:
            return self.regions[handle]
        except KeyError:
            raise TalpError(f"unknown region handle {handle}") from None
