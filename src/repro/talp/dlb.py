"""The DLB library facade (paper Listing 2).

DLB bundles LeWI, DROM and TALP; this reproduction implements the TALP
module behind the exact C API names the paper shows::

    dlb_monitor_t* handle = DLB_MonitoringRegionRegister("foo");
    DLB_MonitoringRegionStart(handle);
    ...
    DLB_MonitoringRegionStop(handle);

Return codes mirror DLB: ``DLB_SUCCESS`` (0) or ``DLB_ERR_NOINIT`` when
MPI (and hence DLB's PMPI hooks) is not initialised yet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MpiNotInitializedError, TalpError
from repro.talp.monitor import TalpMonitor

DLB_SUCCESS = 0
DLB_ERR_NOINIT = -2
DLB_ERR_UNKNOWN = -1

#: sentinel returned instead of a handle when registration fails
DLB_INVALID_HANDLE = -1


@dataclass
class DlbLibrary:
    """Process-wide DLB entry points backed by a TALP monitor."""

    talp: TalpMonitor

    def MonitoringRegionRegister(self, name: str) -> int:
        """Returns a region handle, or ``DLB_INVALID_HANDLE`` on error."""
        try:
            return self.talp.register(name)
        except MpiNotInitializedError:
            return DLB_INVALID_HANDLE

    def MonitoringRegionStart(self, handle: int) -> int:
        try:
            self.talp.start(handle)
            return DLB_SUCCESS
        except TalpError:
            return DLB_ERR_UNKNOWN

    def MonitoringRegionStop(self, handle: int) -> int:
        try:
            self.talp.stop(handle)
            return DLB_SUCCESS
        except TalpError:
            return DLB_ERR_UNKNOWN
