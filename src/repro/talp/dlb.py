"""The DLB library facade (paper Listing 2 and §VI).

DLB bundles LeWI, DROM and TALP; this reproduction implements the TALP
module behind the exact C API names the paper shows::

    dlb_monitor_t* handle = DLB_MonitoringRegionRegister("foo");
    DLB_MonitoringRegionStart(handle);
    ...
    DLB_MonitoringRegionStop(handle);

plus the LeWI/DROM entry points the paper's §VI deployment closes the
loop with: ``DLB_Init``/``DLB_Finalize``, ``DLB_Lend``/``DLB_Borrow``/
``DLB_Reclaim`` moving fractional CPU capacity through a shared
:class:`CpuPool`, and ``DLB_PollDROM`` reading back the process's
current capacity.

Return codes mirror DLB's ``dlb_errors.h``: ``DLB_SUCCESS`` (0),
``DLB_NOUPDT`` (2) when a request changed nothing, ``DLB_ERR_NOINIT``
(-2) when MPI (and hence DLB's PMPI hooks) or DLB itself is not
initialised yet, ``DLB_ERR_INIT`` (-3) on double initialisation and
``DLB_ERR_PERM`` (-8) for lending capacity the process does not own.
Pre-``MPI_Init`` monitoring-region calls report ``DLB_ERR_NOINIT``,
never the generic ``DLB_ERR_UNKNOWN``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MpiNotInitializedError, TalpError
from repro.talp.monitor import TalpMonitor

DLB_SUCCESS = 0
#: the call was valid but changed nothing (e.g. borrow from an empty pool)
DLB_NOUPDT = 2
DLB_ERR_UNKNOWN = -1
DLB_ERR_NOINIT = -2
#: ``DLB_Init`` called twice
DLB_ERR_INIT = -3
#: lending/borrowing capacity the process does not own
DLB_ERR_PERM = -8

#: sentinel returned instead of a handle when registration fails
DLB_INVALID_HANDLE = -1


@dataclass
class CpuPool:
    """Shared LeWI lending pool of fractional CPU capacity.

    One pool spans the whole world: ``capacities[rank]`` is the CPU
    share rank currently runs on (1.0 each initially), lent capacity
    sits in the pool until borrowed, and the invariant
    ``sum(capacities) + available == total`` holds through any sequence
    of operations.  Borrowing drains lenders in ascending rank order so
    the pool state is deterministic regardless of caller timing.
    """

    total: float
    capacities: dict[int, float] = field(default_factory=dict)
    #: lent but not yet borrowed capacity, per lending rank
    outstanding: dict[int, float] = field(default_factory=dict)

    @classmethod
    def of_world(cls, size: int) -> "CpuPool":
        """One full CPU per rank."""
        if size < 1:
            raise TalpError(f"CPU pool needs at least one rank, got {size}")
        return cls(total=float(size), capacities={r: 1.0 for r in range(size)})

    @property
    def available(self) -> float:
        """Capacity currently lent and waiting to be borrowed."""
        return sum(self.outstanding.values())

    def capacity_of(self, rank: int) -> float:
        try:
            return self.capacities[rank]
        except KeyError:
            raise TalpError(f"rank {rank} is not in the CPU pool") from None

    def lend(self, rank: int, amount: float) -> None:
        """Move ``amount`` of ``rank``'s capacity into the pool."""
        capacity = self.capacity_of(rank)
        if not 0.0 < amount <= capacity:
            raise TalpError(
                f"rank {rank} cannot lend {amount} of its {capacity} CPUs"
            )
        self.capacities[rank] = capacity - amount
        self.outstanding[rank] = self.outstanding.get(rank, 0.0) + amount

    def borrow(self, rank: int, amount: float) -> float:
        """Grant up to ``amount`` from the pool; returns what was granted."""
        self.capacity_of(rank)
        if amount <= 0.0:
            raise TalpError(f"rank {rank} cannot borrow {amount} CPUs")
        granted = 0.0
        for lender in sorted(self.outstanding):
            if granted >= amount:
                break
            take = min(self.outstanding[lender], amount - granted)
            self.outstanding[lender] -= take
            if self.outstanding[lender] <= 0.0:
                del self.outstanding[lender]
            granted += take
        self.capacities[rank] += granted
        return granted

    def reclaim(self, rank: int) -> float:
        """Take back ``rank``'s lent capacity that nobody borrowed."""
        self.capacity_of(rank)
        returned = self.outstanding.pop(rank, 0.0)
        self.capacities[rank] += returned
        return returned


@dataclass
class DlbLibrary:
    """Process-wide DLB entry points backed by a TALP monitor.

    The LeWI calls operate on a :class:`CpuPool` shared across the
    world's :class:`DlbLibrary` instances; without an explicit pool,
    ``Init`` creates a private single-rank pool so the API stays usable
    in single-process deployments.
    """

    talp: TalpMonitor
    pool: CpuPool | None = None
    rank: int = 0
    _dlb_initialized: bool = False

    # -- TALP module -----------------------------------------------------------

    def MonitoringRegionRegister(self, name: str) -> int:
        """Returns a region handle, or ``DLB_INVALID_HANDLE`` on error."""
        try:
            return self.talp.register(name)
        except MpiNotInitializedError:
            return DLB_INVALID_HANDLE

    def MonitoringRegionStart(self, handle: int) -> int:
        try:
            self.talp.start(handle)
            return DLB_SUCCESS
        except MpiNotInitializedError:
            return DLB_ERR_NOINIT
        except TalpError:
            return DLB_ERR_UNKNOWN

    def MonitoringRegionStop(self, handle: int) -> int:
        try:
            self.talp.stop(handle)
            return DLB_SUCCESS
        except MpiNotInitializedError:
            return DLB_ERR_NOINIT
        except TalpError:
            return DLB_ERR_UNKNOWN

    # -- lifecycle -------------------------------------------------------------

    def Init(self) -> int:
        """``DLB_Init``: attach to the shared pool; needs MPI up first."""
        if not self.talp.world.initialized:
            return DLB_ERR_NOINIT
        if self._dlb_initialized:
            return DLB_ERR_INIT
        if self.pool is None:
            self.pool = CpuPool.of_world(1)
            self.rank = 0
        if self.rank not in self.pool.capacities:
            return DLB_ERR_PERM
        self._dlb_initialized = True
        return DLB_SUCCESS

    def Finalize(self) -> int:
        """``DLB_Finalize``: detach; lent-but-unborrowed capacity returns."""
        if not self._dlb_initialized:
            return DLB_ERR_NOINIT
        self.pool.reclaim(self.rank)
        self._dlb_initialized = False
        return DLB_SUCCESS

    # -- LeWI ------------------------------------------------------------------

    def Lend(self, cpus: float) -> int:
        """``DLB_LendCpus``-style: put ``cpus`` of own capacity in the pool."""
        if not self._dlb_initialized:
            return DLB_ERR_NOINIT
        if not 0.0 < cpus <= self.pool.capacity_of(self.rank):
            return DLB_ERR_PERM
        self.pool.lend(self.rank, cpus)
        return DLB_SUCCESS

    def Borrow(self, cpus: float) -> int:
        """``DLB_BorrowCpus``-style: take up to ``cpus`` from the pool.

        Returns ``DLB_NOUPDT`` when the pool had nothing to give; the
        granted capacity shows up in :meth:`PollDROM`, exactly like the
        real API surfaces it through the DROM mask.
        """
        if not self._dlb_initialized:
            return DLB_ERR_NOINIT
        if cpus <= 0.0:
            return DLB_ERR_PERM
        granted = self.pool.borrow(self.rank, cpus)
        return DLB_SUCCESS if granted > 0.0 else DLB_NOUPDT

    def Reclaim(self) -> int:
        """``DLB_Reclaim``-style: take back own lent, unborrowed capacity."""
        if not self._dlb_initialized:
            return DLB_ERR_NOINIT
        returned = self.pool.reclaim(self.rank)
        return DLB_SUCCESS if returned > 0.0 else DLB_NOUPDT

    def PollDROM(self) -> tuple[int, float]:
        """``DLB_PollDROM``-style: ``(return code, current capacity)``."""
        if not self._dlb_initialized:
            return DLB_ERR_NOINIT, 0.0
        return DLB_SUCCESS, self.pool.capacity_of(self.rank)
