"""TALP end-of-run text report.

"TALP outputs a text-based summary of the parallel efficiency metrics of
each monitoring region at the end of the execution" (paper §III-B).
The layout loosely follows DLB's ``TALP Report`` blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.clock import CYCLES_PER_SECOND
from repro.simmpi.world import MpiWorld
from repro.talp.monitor import TalpMonitor
from repro.talp.pop import PopMetrics, compute_pop


@dataclass
class TalpReport:
    """Computed report: one POP block per monitored region."""

    world_size: int
    metrics: list[PopMetrics] = field(default_factory=list)
    failed_registrations: int = 0
    failed_starts: int = 0

    def render(self) -> str:
        lines = [
            "=" * 64,
            f"TALP Report — {self.world_size} MPI ranks",
            "=" * 64,
        ]
        for m in sorted(self.metrics, key=lambda m: -m.elapsed_seconds):
            lines += [
                f"### Region: {m.region}",
                f"    Visits                    : {m.visits}",
                f"    Elapsed time              : {m.elapsed_seconds:.6f} s",
                f"    Useful time (avg/max)     : "
                f"{m.avg_useful_seconds:.6f} / {m.max_useful_seconds:.6f} s",
                f"    MPI time                  : {m.mpi_seconds:.6f} s",
                f"    Load balance              : {m.load_balance:6.2%}",
                f"    Communication efficiency  : {m.communication_efficiency:6.2%}",
                f"    Parallel efficiency       : {m.parallel_efficiency:6.2%}",
            ]
        if self.failed_registrations or self.failed_starts:
            lines += [
                "-" * 64,
                f"WARNING: {self.failed_registrations} regions could not be "
                f"registered (entered before MPI_Init)",
                f"WARNING: {self.failed_starts} unique region entries failed",
            ]
        return "\n".join(lines)


def build_report(
    monitor: TalpMonitor,
    world: MpiWorld,
    *,
    frequency: float = CYCLES_PER_SECOND,
    failed_registrations: int = 0,
) -> TalpReport:
    report = TalpReport(
        world_size=world.size,
        failed_registrations=failed_registrations,
        failed_starts=len(monitor.failed_starts),
    )
    for region in monitor.regions.values():
        report.metrics.append(compute_pop(region, world, frequency=frequency))
    return report
