"""Small shared helpers: deterministic RNG, comparison operators, text tables.

Everything in the repro toolchain must be deterministic for a given seed,
so random structure generation always goes through :func:`rng_for` rather
than the global NumPy RNG.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

#: Comparison operators accepted by metric selectors in the CaPI DSL
#: (e.g. ``flops(">=", 10, %%)``).
COMPARE_OPS: Mapping[str, Callable[[float, float], bool]] = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
    "==": operator.eq,
    "!=": operator.ne,
}


def compare(op: str, lhs: float, rhs: float) -> bool:
    """Apply a DSL comparison operator string.

    Raises ``KeyError``-free :class:`ValueError` on unknown operators so
    DSL-level errors surface with a readable message.
    """
    try:
        fn = COMPARE_OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown comparison operator {op!r}; expected one of "
            f"{sorted(COMPARE_OPS)}"
        ) from None
    return fn(lhs, rhs)


def rng_for(seed: int, *stream: object) -> np.random.Generator:
    """Return a deterministic generator for ``(seed, *stream)``.

    ``stream`` components (strings/ints) decorrelate sub-streams so that
    e.g. the lulesh generator and the openfoam generator with the same
    user seed do not produce identical draws.
    """
    ss = np.random.SeedSequence(
        [seed & 0xFFFFFFFF] + [stable_hash(repr(s)) & 0xFFFFFFFF for s in stream]
    )
    return np.random.default_rng(ss)


def stable_hash(text: str) -> int:
    """A process-stable 64-bit FNV-1a hash (``hash()`` is salted)."""
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def pinned_mean(values: np.ndarray) -> float:
    """Mean that is *exact* for all-equal inputs.

    ``sum([x]*n)/n`` accumulates binary rounding error, so a uniform
    multi-rank world would report ``avg != max`` and a load balance
    just below 1.0.  Cross-rank reducers therefore pin the mean to the
    common value whenever ``min == max``.
    """
    arr = np.asarray(values, dtype=float)
    lo = float(arr.min())
    hi = float(arr.max())
    return hi if lo == hi else float(arr.sum()) / arr.size


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a plain-text table in the style of the paper's tables."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def percent(part: int, whole: int) -> str:
    """Format ``part`` as a percentage of ``whole`` like the paper: (4.1%)."""
    if whole <= 0:
        return "(0.0%)"
    return f"({100.0 * part / whole:.1f}%)"
