"""repro — reproduction of "Runtime-Adaptable Selective Performance
Instrumentation" (Kreutzer et al., 2023, arXiv:2303.11110).

The package models the paper's full toolchain in pure Python:

* :mod:`repro.program` — program IR, compiler pipeline, linker, loader,
  page-protected process memory (the C++/Clang/ELF substitute),
* :mod:`repro.cg` — MetaCG-style whole-program call graphs,
* :mod:`repro.xray` — the XRay runtime with the paper's DSO extension
  (packed ids, xray-dso registration, PIC trampolines, patching),
* :mod:`repro.core` — CaPI: selection DSL, selector pipeline, ICs,
  coarse selector, inlining compensation, static workflow,
* :mod:`repro.dyncapi` — the DynCaPI runtime and tool bridges,
* :mod:`repro.scorep` / :mod:`repro.talp` — measurement substrates,
* :mod:`repro.simmpi` / :mod:`repro.execution` — simulated MPI and the
  deterministic virtual-clock execution engine,
* :mod:`repro.apps` — synthetic LULESH/OpenFOAM-like workloads,
* :mod:`repro.experiments` — regenerate the paper's tables.

Quickstart::

    from repro.apps import build_lulesh, PAPER_SPECS
    from repro.core import Capi
    from repro.workflow import build_app, run_app

    app = build_app(build_lulesh())
    capi = Capi(graph=app.graph, app_name=app.name)
    outcome = capi.select(PAPER_SPECS["kernels"], linked=app.linked)
    run = run_app(app, mode="ic", ic=outcome.ic, tool="scorep")
    print(run.result.t_total)
"""

from repro.multirank.backends import SupervisedBackend
from repro.multirank.dlb import DlbPolicy
from repro.multirank.faults import FaultSpec
from repro.multirank.imbalance import ImbalanceSpec
from repro.workflow import BuiltApp, RunOutcome, build_app, run_app

__version__ = "1.3.0"

__all__ = [
    "BuiltApp",
    "DlbPolicy",
    "FaultSpec",
    "ImbalanceSpec",
    "RunOutcome",
    "SupervisedBackend",
    "__version__",
    "build_app",
    "run_app",
]
