"""Shared building blocks for the synthetic target applications.

Both generators (lulesh-like and openfoam-like) assemble their programs
from the same deterministic primitives: pools of small utility functions
(templates/system headers/inline helpers), deep pass-through wrapper
chains (the coarse selector's target), compute kernels with flops and
loops, and MPI communication wrappers.  Everything derives from a seed
so selections and runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.program.builder import ProgramBuilder

#: MPI operations the generators may reference.
MPI_OPS = (
    "MPI_Init",
    "MPI_Finalize",
    "MPI_Comm_rank",
    "MPI_Comm_size",
    "MPI_Allreduce",
    "MPI_Barrier",
    "MPI_Isend",
    "MPI_Irecv",
    "MPI_Wait",
    "MPI_Bcast",
)


def add_mpi_stubs(b: ProgramBuilder) -> None:
    """Declare the MPI library surface (system-header stubs)."""
    for op in MPI_OPS:
        b.mpi_function(op)


@dataclass
class UtilityPool:
    """A batch of generated leaf/utility functions."""

    names: list[str]
    hidden_names: list[str]

    def visible(self) -> list[str]:
        hidden = set(self.hidden_names)
        return [n for n in self.names if n not in hidden]


def add_utility_pool(
    b: ProgramBuilder,
    prefix: str,
    count: int,
    rng: np.random.Generator,
    *,
    system_frac: float = 0.3,
    inline_frac: float = 0.3,
    hidden_frac: float = 0.0,
    statements_low: int = 1,
    statements_high: int = 6,
    source_path: str = "",
) -> UtilityPool:
    """Generate ``count`` small utility functions.

    Sizes are drawn uniformly from ``[statements_low, statements_high]``;
    small ones get auto-inlined by the compiler model, which is what
    produces the paper's large pre→post selection drop on OpenFOAM.
    """
    names: list[str] = []
    hidden_names: list[str] = []
    system = rng.random(count) < system_frac
    inline = rng.random(count) < inline_frac
    hidden = rng.random(count) < hidden_frac
    statements = rng.integers(statements_low, statements_high + 1, size=count)
    for i in range(count):
        name = f"{prefix}_{i:05d}"
        b.function(
            name,
            statements=int(statements[i]),
            flops=int(statements[i]) if rng.random() < 0.2 else 0,
            inline_marked=bool(inline[i]),
            in_system_header=bool(system[i]),
            hidden=bool(hidden[i]),
            source_path=source_path
            or ("/usr/include/c++/bits/" + prefix if system[i] else ""),
        )
        names.append(name)
        if hidden[i]:
            hidden_names.append(name)
    return UtilityPool(names, hidden_names)


def add_wrapper_chain(
    b: ProgramBuilder,
    names: list[str],
    *,
    statements: int = 2,
    count: int = 1,
) -> None:
    """A pass-through chain ``names[0] -> names[1] -> ...``.

    Each function "performs very little work beside calling the next
    function in the chain" (paper Listing 3 discussion).  Functions are
    created if missing, then wired with the given multiplicity.
    """
    for name in names:
        if not b.has_function(name):
            b.function(name, statements=statements)
    b.chain(names, count=count)


def add_kernel(
    b: ProgramBuilder,
    name: str,
    rng: np.random.Generator,
    *,
    flops_low: int = 20,
    flops_high: int = 400,
    loop_depth: int = 2,
) -> str:
    """A compute kernel: enough flops and loops for the kernels spec."""
    b.function(
        name,
        statements=int(rng.integers(8, 40)),
        flops=int(rng.integers(flops_low, flops_high + 1)),
        loop_depth=loop_depth,
    )
    return name


def sprinkle_calls(
    b: ProgramBuilder,
    callers: list[str],
    callees: list[str],
    rng: np.random.Generator,
    *,
    avg_out: float = 2.0,
    count_low: int = 1,
    count_high: int = 4,
) -> None:
    """Randomly wire callers to callees (deterministic given the rng).

    Each caller receives a Poisson-distributed number of callees; this
    creates the caller-sharing that keeps the coarse selector from
    collapsing everything.
    """
    if not callers or not callees:
        return
    out_degrees = rng.poisson(avg_out, size=len(callers))
    for caller, degree in zip(callers, out_degrees):
        if degree == 0:
            continue
        picked = rng.choice(len(callees), size=min(degree, len(callees)), replace=False)
        for idx in picked:
            b.call(
                caller,
                callees[int(idx)],
                count=int(rng.integers(count_low, count_high + 1)),
            )
