"""The four evaluation specifications of the paper (§VI).

* ``mpi`` — "functions that are on a call path to an MPI operation,
  excluding functions marked as inlined and those defined in system
  headers",
* ``kernels`` — "functions that are on a call path to a function that
  contains at least 10 flops and a loop", same exclusions,
* ``mpi coarse`` / ``kernels coarse`` — "like mpi/kernels, with a coarse
  selector applied at the end".

The coarse variants keep the hot compute kernels as critical functions
so region sets still cover the main hotspots (paper §V-D: "functions
selected by this instance will be retained in all cases").
"""

from __future__ import annotations

MPI_SPEC = """
!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
mpi_targets = byName("MPI_.*", %%)
subtract(onCallPathTo(%mpi_targets), %excluded)
"""

KERNELS_SPEC = """
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
subtract(onCallPathTo(%kernels), %excluded)
"""

MPI_COARSE_SPEC = """
!import("mpi.capi")
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
mpi_targets = byName("MPI_.*", %%)
critical = flops(">=", 100, loopDepth(">=", 1, %%))
coarse(subtract(onCallPathTo(%mpi_targets), %excluded), %critical)
"""

KERNELS_COARSE_SPEC = """
excluded = join(inSystemHeader(%%), inlineSpecified(%%))
kernels = flops(">=", 10, loopDepth(">=", 1, %%))
critical = flops(">=", 100, loopDepth(">=", 1, %%))
coarse(subtract(onCallPathTo(%kernels), %excluded), %critical)
"""

#: name → spec source, in the paper's Table I/II row order
PAPER_SPECS: dict[str, str] = {
    "mpi": MPI_SPEC,
    "mpi coarse": MPI_COARSE_SPEC,
    "kernels": KERNELS_SPEC,
    "kernels coarse": KERNELS_COARSE_SPEC,
}
