"""LULESH-like proxy application (paper §VI test case 1).

Structural facts reproduced from the paper:

* "approx. 5,000 lines of code ... relatively small application with no
  shared library dependencies",
* "the MetaCG call graph for LULESH consists of 3,360 function nodes",
* a handful of hot hydrodynamics kernels driven by a timestep loop,
* MPI halo-exchange wrappers on a narrow call path (the ``mpi`` spec
  selects well under 1% of functions),
* most nodes are small system-header/template utilities irrelevant to
  both specs.
"""

from __future__ import annotations

from repro._util import rng_for
from repro.apps.synth import (
    add_kernel,
    add_mpi_stubs,
    add_utility_pool,
    add_wrapper_chain,
    sprinkle_calls,
)
from repro.program.builder import ProgramBuilder
from repro.program.ir import SourceProgram

#: paper scale: MetaCG node count of LULESH
PAPER_NODE_COUNT = 3360

#: the hot hydrodynamics kernels of LULESH 2.0 (names from the code)
KERNELS = (
    "CalcElemShapeFunctionDerivatives",
    "CalcElemVelocityGradient",
    "CalcKinematicsForElems",
    "CalcFBHourglassForceForElems",
    "CalcHourglassControlForElems",
    "CalcVolumeForceForElems",
    "CalcPressureForElems",
    "CalcEnergyForElems",
    "CalcSoundSpeedForElems",
    "EvalEOSForElems",
    "CalcQForElems",
    "CalcMonotonicQGradientsForElems",
)


def build_lulesh(
    *, seed: int = 42, target_nodes: int = PAPER_NODE_COUNT
) -> SourceProgram:
    """Generate the LULESH-like program (single executable, no DSOs)."""
    rng = rng_for(seed, "lulesh", target_nodes)
    b = ProgramBuilder("lulesh")
    b.tu("lulesh.cc")
    add_mpi_stubs(b)

    # driver skeleton ------------------------------------------------------
    b.function("main", statements=40)
    b.function("TimeIncrement", statements=12)
    b.function("LagrangeLeapFrog", statements=10)
    b.function("LagrangeNodal", statements=14)
    b.function("LagrangeElements", statements=14)
    b.function("CalcTimeConstraintsForElems", statements=18, flops=30, loop_depth=1)
    b.call("main", "MPI_Init")
    b.call("main", "MPI_Comm_rank")
    b.call("main", "MPI_Comm_size")
    b.call("main", "TimeIncrement", count=30)  # timestep loop
    b.call("TimeIncrement", "LagrangeLeapFrog")
    b.call("TimeIncrement", "MPI_Allreduce")  # dt reduction
    b.call("LagrangeLeapFrog", "LagrangeNodal")
    b.call("LagrangeLeapFrog", "LagrangeElements")
    b.call("LagrangeLeapFrog", "CalcTimeConstraintsForElems")
    b.call("main", "MPI_Finalize")

    # force/EOS kernel layer --------------------------------------------------
    b.function("CalcForceForNodes", statements=10)
    b.call("LagrangeNodal", "CalcForceForNodes")
    # one kernel invocation sweeps the whole local mesh — large flop
    # counts keep the simulated runtime dominated by useful compute,
    # as on the paper's testbed
    for k in KERNELS:
        add_kernel(b, k, rng, flops_low=5_000_000, flops_high=12_000_000, loop_depth=2)
    b.call("CalcForceForNodes", "CalcVolumeForceForElems", count=2)
    b.call("CalcVolumeForceForElems", "CalcHourglassControlForElems")
    b.call("CalcHourglassControlForElems", "CalcFBHourglassForceForElems", count=4)
    b.call("LagrangeElements", "CalcKinematicsForElems", count=4)
    b.call("CalcKinematicsForElems", "CalcElemShapeFunctionDerivatives", count=8)
    b.call("CalcKinematicsForElems", "CalcElemVelocityGradient", count=8)
    b.call("LagrangeElements", "CalcQForElems", count=2)
    b.call("CalcQForElems", "CalcMonotonicQGradientsForElems", count=2)
    b.call("LagrangeElements", "EvalEOSForElems", count=2)
    b.call("EvalEOSForElems", "CalcPressureForElems", count=3)
    b.call("EvalEOSForElems", "CalcEnergyForElems", count=3)
    b.call("CalcEnergyForElems", "CalcSoundSpeedForElems", count=2)

    # MPI halo exchange: the narrow call path the mpi spec captures ------------
    add_wrapper_chain(b, ["LagrangeNodal", "CommSBN"], statements=3)
    add_wrapper_chain(b, ["LagrangeElements", "CommMonoQ"], statements=3)
    b.function("CommSend", statements=8)
    b.function("CommRecv", statements=8)
    b.function("CommSyncPosVel", statements=6)
    for comm in ("CommSBN", "CommMonoQ"):
        b.call(comm, "CommSend", count=2)
        b.call(comm, "CommRecv", count=2)
    b.call("LagrangeNodal", "CommSyncPosVel")
    b.call("CommSyncPosVel", "CommRecv")
    for sender in ("CommSend", "CommRecv"):
        b.call(sender, "MPI_Isend" if sender == "CommSend" else "MPI_Irecv", count=3)
        b.call(sender, "MPI_Wait", count=3)
    # small pack/unpack helpers on the comm path: the compiler inlines
    # them (they are below the auto-inline limit, though *not* marked
    # ``inline``), so the selection pipeline picks them and the post-
    # processing removes them again — the paper's lulesh mpi row drops
    # from 19 pre to 12 selected the same way
    for i in range(7):
        helper = f"CommPackField_{i}"
        b.function(helper, statements=2)
        b.call("CommSend" if i % 2 else "CommRecv", helper, count=2)
        b.call(helper, "MPI_Wait")

    # tiny dispatch wrappers on kernel call paths: auto-inlined by the
    # compiler (unmarked, below the inline limit), so the kernels spec
    # selects them pre and the inlining post-processing drops them —
    # reproducing the paper's lulesh kernels row (38 pre → 10 selected)
    for i, k in enumerate(KERNELS):
        wrapper = f"Dispatch_{k}"
        b.function(wrapper, statements=1)
        b.call("LagrangeLeapFrog" if i % 2 else "LagrangeElements", wrapper)
        b.call(wrapper, k)

    # utility bulk: inline accessors, std:: templates, allocators -------------
    remaining = max(target_nodes - b.function_count(), 0)
    pool = add_utility_pool(
        b,
        "util",
        remaining,
        rng,
        system_frac=0.45,
        inline_frac=0.35,
        statements_low=1,
        statements_high=5,
    )
    # kernels call into the utility bulk with per-element frequencies:
    # these tiny accessors are what makes full instrumentation explode
    sprinkle_calls(
        b,
        list(KERNELS) + ["CalcForceForNodes", "CalcTimeConstraintsForElems"],
        pool.names,
        rng,
        avg_out=8.0,
        count_low=1000,
        count_high=3000,
    )
    # utilities call each other sparsely (keeps most of them multi-caller);
    # heads only call leaves so utility chains stay shallow
    if pool.names:
        split = max(len(pool.names) // 10, 1)
        sprinkle_calls(b, pool.names[:split], pool.names[split:], rng, avg_out=1.2)
    return b.build()
