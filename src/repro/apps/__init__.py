"""Synthetic target applications: lulesh-like and openfoam-like."""

from repro.apps.lulesh import PAPER_NODE_COUNT as LULESH_PAPER_NODES
from repro.apps.lulesh import build_lulesh
from repro.apps.openfoam import (
    DEFAULT_NODE_COUNT as OPENFOAM_DEFAULT_NODES,
)
from repro.apps.openfoam import PAPER_NODE_COUNT as OPENFOAM_PAPER_NODES
from repro.apps.openfoam import build_openfoam
from repro.apps.scenarios import (
    FAULT_SCENARIOS,
    SCENARIOS,
    fault_scenario,
    scenario,
)
from repro.apps.specs import (
    KERNELS_COARSE_SPEC,
    KERNELS_SPEC,
    MPI_COARSE_SPEC,
    MPI_SPEC,
    PAPER_SPECS,
)

__all__ = [
    "FAULT_SCENARIOS",
    "KERNELS_COARSE_SPEC",
    "KERNELS_SPEC",
    "LULESH_PAPER_NODES",
    "MPI_COARSE_SPEC",
    "MPI_SPEC",
    "OPENFOAM_DEFAULT_NODES",
    "OPENFOAM_PAPER_NODES",
    "PAPER_SPECS",
    "SCENARIOS",
    "build_lulesh",
    "build_openfoam",
    "fault_scenario",
    "scenario",
]
