"""Named load-imbalance scenarios for the synthetic applications.

The paper's evaluation apps are bulk-synchronous MPI codes whose real
deployments exhibit characteristic imbalance shapes; these presets make
them expressible in one argument to ``run_app(..., imbalance=...)``:

* ``uniform`` — every rank runs the identical workload (the POP load
  balance of a correct run must be exactly 1.0).
* ``lulesh-imbalanced`` — LULESH-style spatial domain imbalance: the
  Sedov blast wave concentrates work in the subdomains containing the
  shock front, so per-rank element work varies by tens of percent.
* ``openfoam-decomp`` — mesh-decomposition skew: decomposed OpenFOAM
  cases give boundary-layer-heavy partitions more face loops, modelled
  as a moderate jitter plus a linear ramp.
* ``straggler`` — one slow rank (failing node, overloaded NUMA domain)
  running ~60% more iterations than the rest; the classic DLB target.

Two presets exist specifically as DLB rebalancing targets
(``run_app(..., dlb=DlbPolicy(...))``, paper §VI):

* ``straggler-rescue`` — one rank at 2× load: LeWI lends CPU capacity
  from the seven waiting ranks to the straggler until completion times
  equalise (the acceptance scenario for the rebalancing loop).
* ``ramp-flatten`` — a steep linear iteration ramp across ranks, the
  decomposition-gradient shape DLB flattens by shifting capacity from
  the light low ranks toward the heavy tail.

One preset exists specifically for trace-based analysis
(``run_app(..., tracing=True)`` → merged rank-tagged timeline):

* ``trace-straggler`` — one moderately slow rank (1.3×) with no other
  jitter: the clean shape for reading wait states and the critical path
  off a merged timeline — every fast rank shows one crisp wait interval
  at each collective while the straggler owns the critical path, and
  the mild factor keeps per-rank event streams close in length so the
  collective matching is exercised without drowning the report.
"""

from __future__ import annotations

from repro.multirank.imbalance import ImbalanceSpec

SCENARIOS: dict[str, ImbalanceSpec] = {
    "uniform": ImbalanceSpec(),
    "lulesh-imbalanced": ImbalanceSpec(imbalance=0.35, seed=23),
    "openfoam-decomp": ImbalanceSpec(imbalance=0.15, ramp=0.25, seed=29),
    "straggler": ImbalanceSpec(stragglers=1, straggler_factor=1.6, seed=31),
    "straggler-rescue": ImbalanceSpec(stragglers=1, straggler_factor=2.0, seed=31),
    "ramp-flatten": ImbalanceSpec(ramp=0.75, seed=37),
    "trace-straggler": ImbalanceSpec(stragglers=1, straggler_factor=1.3, seed=41),
}


def scenario(name: str) -> ImbalanceSpec:
    """Look up a named imbalance scenario."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
