"""Named load-imbalance scenarios for the synthetic applications.

The paper's evaluation apps are bulk-synchronous MPI codes whose real
deployments exhibit characteristic imbalance shapes; these presets make
them expressible in one argument to ``run_app(..., imbalance=...)``:

* ``uniform`` — every rank runs the identical workload (the POP load
  balance of a correct run must be exactly 1.0).
* ``lulesh-imbalanced`` — LULESH-style spatial domain imbalance: the
  Sedov blast wave concentrates work in the subdomains containing the
  shock front, so per-rank element work varies by tens of percent.
* ``openfoam-decomp`` — mesh-decomposition skew: decomposed OpenFOAM
  cases give boundary-layer-heavy partitions more face loops, modelled
  as a moderate jitter plus a linear ramp.
* ``straggler`` — one slow rank (failing node, overloaded NUMA domain)
  running ~60% more iterations than the rest; the classic DLB target.

Two presets exist specifically as DLB rebalancing targets
(``run_app(..., dlb=DlbPolicy(...))``, paper §VI):

* ``straggler-rescue`` — one rank at 2× load: LeWI lends CPU capacity
  from the seven waiting ranks to the straggler until completion times
  equalise (the acceptance scenario for the rebalancing loop).
* ``ramp-flatten`` — a steep linear iteration ramp across ranks, the
  decomposition-gradient shape DLB flattens by shifting capacity from
  the light low ranks toward the heavy tail.

One preset exists specifically for trace-based analysis
(``run_app(..., tracing=True)`` → merged rank-tagged timeline):

* ``trace-straggler`` — one moderately slow rank (1.3×) with no other
  jitter: the clean shape for reading wait states and the critical path
  off a merged timeline — every fast rank shows one crisp wait interval
  at each collective while the straggler owns the critical path, and
  the mild factor keeps per-rank event streams close in length so the
  collective matching is exercised without drowning the report.

Fault presets (:data:`FAULT_SCENARIOS`) are the chaos counterpart, for
``run_app(..., faults=..., backend="supervised")``:

* ``crash-once`` — one rank fails its first attempt and recovers on
  retry (the transient-crash shape a supervisor must absorb for free);
* ``one-hang`` — one rank's first attempt sleeps past the per-rank
  deadline (stuck I/O, livelocked worker) and succeeds when re-run;
* ``crash-hang`` — one crashing rank *and* one hanging rank in the same
  world: the chaos acceptance scenario — all ranks must complete after
  retries, bit-identical to the fault-free run;
* ``corrupt-profile`` / ``corrupt-trace`` — one rank returns a damaged
  payload (NaN'd profile / truncated event trace) once; the integrity
  gate must catch it and the retry must heal it;
* ``worker-death`` — one rank's first attempt kills its worker process
  outright (``os._exit``), taking the pool down with it; the supervisor
  must respawn the pool and finish the world;
* ``rank-loss`` — one rank crashes on *every* attempt: retries exhaust
  and the world completes only under ``degraded="allow"`` (the
  graceful-degradation scenario; ``degraded="forbid"`` must raise).
"""

from __future__ import annotations

from repro.multirank.faults import FaultSpec
from repro.multirank.imbalance import ImbalanceSpec

SCENARIOS: dict[str, ImbalanceSpec] = {
    "uniform": ImbalanceSpec(),
    "lulesh-imbalanced": ImbalanceSpec(imbalance=0.35, seed=23),
    "openfoam-decomp": ImbalanceSpec(imbalance=0.15, ramp=0.25, seed=29),
    "straggler": ImbalanceSpec(stragglers=1, straggler_factor=1.6, seed=31),
    "straggler-rescue": ImbalanceSpec(stragglers=1, straggler_factor=2.0, seed=31),
    "ramp-flatten": ImbalanceSpec(ramp=0.75, seed=37),
    "trace-straggler": ImbalanceSpec(stragglers=1, straggler_factor=1.3, seed=41),
}

FAULT_SCENARIOS: dict[str, FaultSpec] = {
    "crash-once": FaultSpec(crashes=1, crash_times=1, seed=43),
    "one-hang": FaultSpec(hangs=1, hang_times=1, seed=47),
    "crash-hang": FaultSpec(crashes=1, crash_times=1, hangs=1, hang_times=1, seed=53),
    "corrupt-profile": FaultSpec(
        corruptions=1, corrupt_times=1, corrupt_target="profile", seed=59
    ),
    "corrupt-trace": FaultSpec(
        corruptions=1, corrupt_times=1, corrupt_target="trace", seed=61
    ),
    "worker-death": FaultSpec(deaths=1, death_times=1, seed=67),
    # crash_times outlives any sane retry budget: the rank is lost
    "rank-loss": FaultSpec(crashes=1, crash_times=99, seed=71),
}


def scenario(name: str) -> ImbalanceSpec:
    """Look up a named imbalance scenario."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def fault_scenario(name: str) -> FaultSpec:
    """Look up a named fault-injection scenario."""
    try:
        return FAULT_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault scenario {name!r}; "
            f"available: {sorted(FAULT_SCENARIOS)}"
        ) from None
