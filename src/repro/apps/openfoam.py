"""OpenFOAM/icoFoam-like modular application (paper §VI test case 2).

Structural facts reproduced from the paper:

* the icoFoam solver "links with 6 different patchable DSOs",
* a large MetaCG graph (410,666 nodes at paper scale; the default here
  is scaled down for test speed, ``target_nodes`` restores any size),
* deep nested solver call chains of single-caller pass-through wrappers
  ending in hot kernels like ``Amul`` (Listing 3) — the coarse
  selector's target,
* virtual solver interfaces resolved by over-approximation,
* hidden-visibility static initialisers in the DSOs (1,444 unresolvable
  functions at paper scale — the §VI-B(a) anomaly; scaled
  proportionally here),
* MPI communication funnelled through Pstream-style wrappers that are
  reachable from large parts of the code base (the ``mpi`` spec selects
  ~15% of all functions).
"""

from __future__ import annotations

from repro._util import rng_for
from repro.apps.synth import (
    add_kernel,
    add_mpi_stubs,
    add_utility_pool,
    sprinkle_calls,
)
from repro.program.builder import ProgramBuilder
from repro.program.ir import SourceProgram

#: paper scale: MetaCG node count for icoFoam
PAPER_NODE_COUNT = 410_666
#: default scale for tests/benchmarks (same structure, fewer utilities)
DEFAULT_NODE_COUNT = 20_000

#: the six patchable DSOs the icoFoam executable links against
DSOS = (
    "libOpenFOAM.so",
    "libfiniteVolume.so",
    "libmeshTools.so",
    "liblduSolvers.so",
    "libPstream.so",
    "libtransportModels.so",
)

#: fraction of DSO utility functions with hidden visibility (static
#: initialiser machinery); 1,444 / 410,666 at paper scale
HIDDEN_FRACTION = 1444 / PAPER_NODE_COUNT

#: Listing 3: the nested solver call chain from solve() down to Amul
SOLVER_CHAIN = (
    "solve_dictionary",
    "fvMatrix_solve",
    "solveSegregatedOrCoupled",
    "solveSegregated",
    "lduMatrix_solve",
    "scalarSolve",
)


def build_openfoam(
    *,
    seed: int = 1337,
    target_nodes: int = DEFAULT_NODE_COUNT,
    n_solvers: int = 4,
    time_steps: int = 8,
) -> SourceProgram:
    """Generate the icoFoam-like program with 6 patchable DSOs."""
    rng = rng_for(seed, "openfoam", target_nodes)
    b = ProgramBuilder("icoFoam")

    # -- executable: the solver driver -------------------------------------
    b.tu("icoFoam.cpp")
    add_mpi_stubs(b)
    b.function("main", statements=60)
    b.function("readControls", statements=15)
    b.function("createFields", statements=30)
    b.function("CourantNo", statements=10, flops=20, loop_depth=1)
    b.function("timeLoop", statements=12)
    b.function("momentumPredictor", statements=20)
    b.function("pisoCorrector", statements=25)
    # MPI_Init sits at the bottom of the argList/Pstream construction
    # chain, so every function on it is (a) statically on an MPI call
    # path — the mpi IC instruments it — and (b) *entered* before
    # MPI_Init completes.  These are the regions TALP cannot register
    # (paper §VI-B: 15 of 16,956 regions failed to register).
    startup_chain = [
        "argList_construct",
        "argList_parse",
        "foamVersion_print",
        "jobInfo_write",
        "caseDicts_validate",
        "etcFiles_find",
        "dlLibraryTable_open",
        "functionObjectList_read",
        "Pstream_initCommunicator",
        "UPstream_init",
    ]
    for name in startup_chain:
        b.function(name, statements=6)
    b.chain(["main", *startup_chain])
    b.call("UPstream_init", "MPI_Init")
    b.call("main", "MPI_Comm_rank")
    b.call("main", "readControls")
    b.call("main", "createFields")
    b.call("main", "timeLoop")
    b.call("timeLoop", "CourantNo", count=time_steps)
    b.call("timeLoop", "momentumPredictor", count=time_steps)
    b.call("timeLoop", "pisoCorrector", count=time_steps * 2)
    b.call("main", "MPI_Finalize")

    # -- libPstream.so: MPI wrapper layer -----------------------------------
    b.tu("Pstream.cpp")
    b.function("Pstream_reduce", statements=8)
    b.function("Pstream_gather", statements=8)
    b.function("Pstream_scatter", statements=8)
    b.function("UPstream_allocateTag", statements=3)
    b.call("Pstream_reduce", "MPI_Allreduce")
    b.call("Pstream_gather", "MPI_Isend")
    b.call("Pstream_gather", "MPI_Wait")
    b.call("Pstream_scatter", "MPI_Irecv")
    b.call("Pstream_scatter", "MPI_Wait")
    b.call("Pstream_reduce", "UPstream_allocateTag")
    b.call("CourantNo", "Pstream_reduce")

    # -- liblduSolvers.so: the solver hierarchy (Listing 3) -------------------
    b.tu("lduSolvers.cpp")
    # virtual solver interface with one override per concrete solver
    b.function("lduSolver_solve", statements=4, overrides="lduSolver_solve")
    solver_names = []
    for i in range(n_solvers):
        concrete = f"PCG_solve_{i}" if i % 2 == 0 else f"PBiCG_solve_{i}"
        b.function(concrete, statements=12, overrides="lduSolver_solve")
        solver_names.append(concrete)
    # the deep single-caller pass-through chain
    for name in SOLVER_CHAIN:
        b.function(name, statements=3)
    b.chain(SOLVER_CHAIN)
    b.call("momentumPredictor", SOLVER_CHAIN[0], count=2)
    b.call("pisoCorrector", SOLVER_CHAIN[0], count=3)
    b.virtual_call("scalarSolve", "lduSolver_solve", count=4)
    # hot kernels: Amul and friends — pure local compute, no MPI below
    # them (in OpenFOAM the halo data is exchanged *between* sweeps).
    # One invocation sweeps the whole local mesh, hence the large flop
    # counts; the iteration counts model CG sweeps per solve call.
    amul = add_kernel(b, "Amul", rng, flops_low=30_000, flops_high=80_000, loop_depth=2)
    atmul = add_kernel(b, "ATmul", rng, flops_low=25_000, flops_high=60_000, loop_depth=2)
    smoother = add_kernel(b, "GaussSeidelSmooth", rng, flops_low=20_000, flops_high=50_000, loop_depth=3)
    precond = add_kernel(b, "DICPreconditioner_precondition", rng, flops_low=15_000, flops_high=40_000, loop_depth=2)
    norm = add_kernel(b, "gSumMag", rng, flops_low=4_000, flops_high=10_000, loop_depth=1)
    for concrete in solver_names:
        b.call(concrete, amul, count=100)
        b.call(concrete, precond, count=100)
        b.call(concrete, norm, count=50)
        b.call(concrete, "Pstream_reduce", count=4)  # convergence checks
        if concrete.startswith("PBiCG"):
            b.call(concrete, atmul, count=100)
        else:
            b.call(concrete, smoother, count=25)

    # per-cell arithmetic helpers: tiny, non-inlined, MPI-free, executed
    # tens of millions of times.  They exist in *no* IC except "xray
    # full" — they are exactly the functions whose instrumentation blows
    # up the full configuration in Table II.
    cell_ops = []
    for i in range(40):
        name = f"cellOp_{i:02d}"
        b.function(name, statements=int(rng.integers(4, 7)))
        cell_ops.append(name)
    for kernel in (amul, atmul, smoother, precond, norm):
        picked = rng.choice(len(cell_ops), size=6, replace=False)
        for idx in picked:
            b.call(kernel, cell_ops[int(idx)], count=int(rng.integers(25, 60)))

    # -- libfiniteVolume.so: hot boundary/halo synchronisation ----------------
    # coupled-patch updates run once per CG iteration (from the solvers)
    # and between sweeps at the PISO level.  They form the hot part of
    # the ``mpi`` IC that is disjoint from the kernels IC: deep chains
    # of non-inlined helpers ending in Pstream → MPI, with a monitoring
    # region open around almost every MPI call.
    b.tu("finiteVolume.cpp")
    field_ops = []
    for i in range(24):
        op_name = f"coupledBoundary_update_{i:02d}"
        h1 = f"processorFvPatch_initEvaluate_{i:02d}"
        h2 = f"processorFvPatch_evaluate_{i:02d}"
        h3 = f"lduInterface_updateMatrix_{i:02d}"
        for name in (op_name, h1, h2, h3):
            b.function(name, statements=int(rng.integers(5, 10)))
        b.chain([op_name, h1, h2, h3])
        b.call(h3, "Pstream_reduce" if i % 3 else "Pstream_gather")
        field_ops.append(op_name)
    # halo exchange per CG iteration: the dominant MPI traffic
    for concrete in solver_names:
        picked = rng.choice(len(field_ops), size=6, replace=False)
        for idx in picked:
            b.call(concrete, field_ops[int(idx)], count=int(rng.integers(60, 120)))
    for caller, reps in (
        ("momentumPredictor", 6),
        ("pisoCorrector", 10),
        ("CourantNo", 2),
    ):
        picked = rng.choice(len(field_ops), size=12, replace=False)
        for idx in picked:
            b.call(caller, field_ops[int(idx)], count=int(rng.integers(2, 6)) * reps // 2)

    # -- libfiniteVolume.so: discretisation operators -------------------------
    b.tu("finiteVolume.cpp")
    fv_ops = []
    for op in ("fvmDdt", "fvmDiv", "fvmLaplacian", "fvcGrad", "fvcFlux"):
        b.function(op, statements=10)
        k = add_kernel(b, f"{op}_kernel", rng, flops_low=60, flops_high=300, loop_depth=2)
        b.call(op, k, count=4)
        fv_ops.append(op)
    b.call("momentumPredictor", "fvmDdt")
    b.call("momentumPredictor", "fvmDiv", count=2)
    b.call("momentumPredictor", "fvmLaplacian")
    b.call("pisoCorrector", "fvcGrad", count=2)
    b.call("pisoCorrector", "fvcFlux", count=2)
    b.call("pisoCorrector", "fvmLaplacian", count=2)

    # -- libmeshTools.so / libtransportModels.so / libOpenFOAM.so --------------
    b.tu("meshTools.cpp")
    b.function("polyMesh_update", statements=20)
    b.function("surfaceInterpolate", statements=10, flops=40, loop_depth=1)
    b.call("createFields", "polyMesh_update")
    b.call("fvcFlux", "surfaceInterpolate", count=2)

    b.tu("transportModels.cpp")
    b.function("nu_correct", statements=8, flops=15, loop_depth=1)
    b.call("momentumPredictor", "nu_correct")

    b.tu("OpenFOAM_core.cpp")
    b.function("IOobject_read", statements=18)
    b.function("dictionary_lookup", statements=5)
    b.function("Time_operator_inc", statements=6)
    b.call("readControls", "IOobject_read", count=3)
    b.call("readControls", "dictionary_lookup", count=6)
    b.call("timeLoop", "Time_operator_inc", count=time_steps)

    # -- utility bulk, distributed over the DSO TUs ---------------------------
    skeleton = b.function_count()
    remaining = max(target_nodes - skeleton, 0)
    tu_shares = {
        "OpenFOAM_core.cpp": 0.34,
        "finiteVolume.cpp": 0.26,
        "meshTools.cpp": 0.14,
        "lduSolvers.cpp": 0.10,
        "transportModels.cpp": 0.08,
        "Pstream.cpp": 0.04,
        "icoFoam.cpp": 0.04,
    }
    pools: dict[str, list[str]] = {}
    hidden_utils: list[str] = []
    for tu_name, share in tu_shares.items():
        count = int(remaining * share)
        if count == 0:
            continue
        b.tu(tu_name)
        pool = add_utility_pool(
            b,
            f"u_{tu_name.split('.')[0]}",
            count,
            rng,
            system_frac=0.35,
            inline_frac=0.30,
            hidden_frac=HIDDEN_FRACTION if tu_name != "icoFoam.cpp" else 0.0,
            statements_low=1,
            statements_high=4,
        )
        # hidden utilities model static-initialiser machinery: they are
        # never wired onto MPI call paths, which is why the paper finds
        # none of the unresolvable functions in any evaluated IC
        pools[tu_name] = pool.visible()
        hidden_utils.extend(pool.hidden_names)

    # static initialisers: hidden machinery registering runtime types
    b.tu("OpenFOAM_core.cpp")
    n_inits = max(int(remaining * HIDDEN_FRACTION * 0.5), 2)
    init_names = []
    for i in range(n_inits):
        name = f"static_init_{i:04d}"
        b.function(name, statements=2, hidden=True, is_static_initializer=True)
        init_names.append(name)
    # registration machinery: static initialisers invoke the hidden
    # runtime-type helpers (and nothing else ever does)
    for i, hidden_name in enumerate(hidden_utils):
        b.call(init_names[i % len(init_names)], hidden_name)

    # wire the core skeleton into the utility bulk.  A slice of the
    # utilities reaches MPI through Pstream (that breadth is what makes
    # the ``mpi`` spec select double-digit percentages of the graph),
    # but those MPI-reaching utilities live on *cold* setup/registry
    # paths — the hot compute kernels only touch MPI-free helpers, so
    # MPI time stays a realistic fraction of the total.
    all_utils = [n for names in pools.values() for n in names]
    rng2 = rng_for(seed, "openfoam-wiring", target_nodes)
    mpi_users: list[str] = []
    hot_utils: list[str] = all_utils
    if all_utils:
        n_mpi_users = max(len(all_utils) // 8, 1)
        mpi_user_idx = set(
            int(i)
            for i in rng2.choice(len(all_utils), size=n_mpi_users, replace=False)
        )
        mpi_users = [all_utils[i] for i in sorted(mpi_user_idx)]
        hot_utils = [
            u for i, u in enumerate(all_utils) if i not in mpi_user_idx
        ]
        for user in mpi_users:
            b.call(user, "Pstream_reduce" if rng2.random() < 0.7 else "Pstream_gather")
    hot_callers = [
        amul, atmul, smoother, precond, norm,
        *fv_ops, "createFields", "IOobject_read", "polyMesh_update",
    ]
    sprinkle_calls(b, hot_callers, hot_utils, rng2, avg_out=8.0)
    if all_utils:
        # cold setup paths use the MPI-reaching utilities
        sprinkle_calls(
            b,
            ["createFields", "readControls", "polyMesh_update"],
            mpi_users,
            rng2,
            avg_out=20.0,
            count_low=1,
            count_high=2,
        )
        # utilities also reference the field ops (multi-caller fan-in
        # keeps the coarse selector from collapsing the boundary layer)
        sprinkle_calls(b, mpi_users[:200], field_ops, rng2, avg_out=1.5)
        # utility internal wiring: most utilities have several callers.
        # Heads call only leaf utilities (never other heads) so the
        # utility subgraph stays shallow — deep accidental chains would
        # explode the walked call tree
        heads = hot_utils[: len(hot_utils) // 6]
        leaf_utils = hot_utils[len(hot_utils) // 6 :]
        sprinkle_calls(b, heads, leaf_utils, rng2, avg_out=2.5)
        mpi_heads = mpi_users[: len(mpi_users) // 4]
        sprinkle_calls(b, mpi_heads, mpi_users[len(mpi_users) // 4 :], rng2, avg_out=2.0)
        # make the bulk reachable from main through a few aggregators
        b.tu("OpenFOAM_core.cpp")
        n_aggr = max(len(all_utils) // 400, 1)
        for i in range(n_aggr):
            aggr = f"registry_sweep_{i:03d}"
            b.function(aggr, statements=4)
            b.call("createFields", aggr)
            picked = rng2.choice(len(all_utils), size=min(40, len(all_utils)), replace=False)
            for idx in picked:
                b.call(aggr, all_utils[int(idx)])

    # link layout: everything except icoFoam.cpp goes into the 6 DSOs
    b.library("libOpenFOAM.so", ["OpenFOAM_core.cpp"])
    b.library("libfiniteVolume.so", ["finiteVolume.cpp"])
    b.library("libmeshTools.so", ["meshTools.cpp"])
    b.library("liblduSolvers.so", ["lduSolvers.cpp"])
    b.library("libPstream.so", ["Pstream.cpp"])
    b.library("libtransportModels.so", ["transportModels.cpp"])
    return b.build()
