"""DLB rebalancing comparison — the paper's §VI loop, closed.

For each application and imbalance scenario the harness runs the
multi-rank world unbalanced, then lets the LeWI policy lend CPU
capacity from waiting ranks to the bottleneck
(:func:`repro.multirank.scheduler.run_rebalanced`) and reports the POP
efficiency metrics before vs. after, plus how many iterations the loop
took to converge.  TALP is the measurement half of that deployment, so
the cells run under the ``talp`` tool with the paper's ``mpi``
instrumentation configuration.

Run with ``python -m repro.experiments.dlb``; ``--check`` turns the run
into a convergence smoke test (non-zero exit unless every scenario
improves parallel efficiency and converges), which CI uses.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro._util import format_table
from repro.experiments.runner import (
    DEFAULT_SCALES,
    DEFAULT_WORKLOAD,
    PreparedApp,
    prepare_app,
)
from repro.multirank.dlb import DlbPolicy
from repro.multirank.scheduler import RebalanceOutcome, run_rebalanced

#: scenarios the table compares by default (see ``repro.apps.SCENARIOS``)
DLB_SCENARIOS = ("straggler-rescue", "ramp-flatten")


@dataclass(frozen=True)
class DlbRow:
    app: str
    scenario: str
    ranks: int
    #: (LB, CommEff, PE) of the unbalanced world
    before: tuple[float, float, float]
    #: (LB, CommEff, PE) of the final rebalanced world
    after: tuple[float, float, float]
    iterations: int
    converged: bool

    @property
    def pe_gain(self) -> float:
        return self.after[2] - self.before[2]


def _pop_triple(metrics) -> tuple[float, float, float]:
    return (
        metrics.load_balance,
        metrics.communication_efficiency,
        metrics.parallel_efficiency,
    )


def compute_dlb_row(
    prepared: PreparedApp,
    scenario_name: str,
    *,
    ranks: int = 8,
    policy: DlbPolicy | None = None,
    max_iterations: int = 8,
    backend: str = "serial",
    **extra,
) -> tuple[DlbRow, RebalanceOutcome]:
    """One before/after cell: unbalanced vs. LeWI-rebalanced.

    ``extra`` kwargs (``faults=``, ``degraded=``, ``processes=``) flow
    into :func:`run_rebalanced` — with a fault preset and
    ``backend="supervised"`` the loop runs under chaos and stops early
    if an iteration comes back degraded.
    """
    from repro.apps import scenario

    rebalanced = run_rebalanced(
        prepared.app,
        ranks=ranks,
        imbalance=scenario(scenario_name),
        dlb=policy or DlbPolicy(),
        max_iterations=max_iterations,
        backend=backend,
        mode="ic",
        tool="talp",
        ic=prepared.select("mpi").ic,
        workload=DEFAULT_WORKLOAD,
        config_name=f"dlb-{scenario_name}",
        **extra,
    )
    row = DlbRow(
        app=prepared.name,
        scenario=scenario_name,
        ranks=ranks,
        before=_pop_triple(rebalanced.baseline.pop.app),
        after=_pop_triple(rebalanced.final.pop.app),
        iterations=rebalanced.iterations,
        converged=rebalanced.converged,
    )
    return row, rebalanced


def compute_dlb_table(
    apps: tuple[str, ...] = ("lulesh", "openfoam"),
    *,
    scenarios: tuple[str, ...] = DLB_SCENARIOS,
    scales: dict[str, int] | None = None,
    ranks: int = 8,
    policy: DlbPolicy | None = None,
    max_iterations: int = 8,
    backend: str = "serial",
    **extra,
) -> list[DlbRow]:
    scales = scales or DEFAULT_SCALES
    rows: list[DlbRow] = []
    for app_name in apps:
        prepared = prepare_app(app_name, scales.get(app_name))
        for scenario_name in scenarios:
            row, _ = compute_dlb_row(
                prepared,
                scenario_name,
                ranks=ranks,
                policy=policy,
                max_iterations=max_iterations,
                backend=backend,
                **extra,
            )
            rows.append(row)
    return rows


def render_dlb_table(rows: list[DlbRow]) -> str:
    headers = [
        "app", "scenario", "ranks",
        "LB", "CommEff", "PE",
        "LB'", "CommEff'", "PE'",
        "ΔPE", "iters", "converged",
    ]
    body = [
        (
            r.app,
            r.scenario,
            str(r.ranks),
            *(f"{100 * v:.1f}%" for v in r.before),
            *(f"{100 * v:.1f}%" for v in r.after),
            f"{100 * r.pe_gain:+.1f}%",
            str(r.iterations),
            "yes" if r.converged else "NO",
        )
        for r in rows
    ]
    title = (
        "DLB LeWI REBALANCING — measured POP before (LB/CommEff/PE) vs. "
        "after (primed)"
    )
    return format_table(headers, body, title=title)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--app", choices=["lulesh", "openfoam", "both"], default="both"
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="imbalance scenario to rebalance (repeatable; default "
        f"{', '.join(DLB_SCENARIOS)})",
    )
    parser.add_argument("--ranks", type=int, default=8)
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="override the per-app call-graph size (smoke runs use a "
        "few hundred nodes)",
    )
    parser.add_argument("--max-iterations", type=int, default=8)
    parser.add_argument(
        "--lend-limit", type=float, default=DlbPolicy().lend_limit
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help="rank execution backend: 'serial', 'multiprocessing' (or "
        "'mp:4'), 'auto', or 'supervised[:inner]' for fault-tolerant runs",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker count for multiprocessing-based backends",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="named fault-injection preset (see repro.apps.FAULT_SCENARIOS); "
        "best paired with --backend supervised",
    )
    parser.add_argument(
        "--degraded",
        choices=["forbid", "allow"],
        default="forbid",
        help="policy when ranks are lost under --faults (default: forbid)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every scenario improves PE and converges",
    )
    args = parser.parse_args(argv)
    apps = ("lulesh", "openfoam") if args.app == "both" else (args.app,)
    scales = None
    if args.nodes is not None:
        scales = {name: args.nodes for name in apps}
    extra: dict = {}
    if args.processes is not None:
        extra["processes"] = args.processes
    if args.faults is not None:
        from repro.apps import fault_scenario

        extra["faults"] = fault_scenario(args.faults)
        extra["degraded"] = args.degraded
    rows = compute_dlb_table(
        apps,
        scenarios=tuple(args.scenario) if args.scenario else DLB_SCENARIOS,
        scales=scales,
        ranks=args.ranks,
        policy=DlbPolicy(lend_limit=args.lend_limit),
        max_iterations=args.max_iterations,
        backend=args.backend,
        **extra,
    )
    print(render_dlb_table(rows))
    if args.check:
        bad = [r for r in rows if r.pe_gain <= 0.0 or not r.converged]
        if bad:
            for r in bad:
                print(
                    f"CHECK FAILED: {r.app}/{r.scenario}: "
                    f"ΔPE {100 * r.pe_gain:+.2f}%, "
                    f"converged={r.converged}"
                )
            return 1
        print(
            f"CHECK OK: {len(rows)} scenario(s) improved parallel "
            f"efficiency and converged"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
