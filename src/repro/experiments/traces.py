"""Trace-based multi-rank analysis — the paper's "and tracing" made real.

The paper opens by casting Score-P as "a widely used profiling **and
tracing** infrastructure" (§I).  This harness exercises the trace side
of the reproduction's pipeline end-to-end: run an application across N
ranks with per-rank event tracing (``run_app(..., tracing=True)``),
merge the streams into one rank-tagged timeline with logical clocks
aligned at MPI collectives (:mod:`repro.multirank.tracing`), and render
the two Scalasca-style analyses built on top — per-rank wait states at
collectives and the critical-path walk.

Run with ``python -m repro.experiments.traces``; ``--check`` turns the
run into a consistency smoke test (non-zero exit unless every merged
trace validates clean and its collective-wait attribution agrees with
the profile reducer's ``finalize_wait`` to within one collective
latency), which CI uses.  ``--backend both`` additionally asserts that
the serial and multiprocessing backends produce bit-identical merged
timelines.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from pathlib import Path

from repro._util import format_table
from repro.experiments.runner import (
    DEFAULT_SCALES,
    DEFAULT_WORKLOAD,
    PreparedApp,
    prepare_app,
)
from repro.multirank.tracing import MergedTrace
from repro.simmpi.comm import SimComm
from repro.simmpi.world import MpiWorld
from repro.workflow import RunOutcome, run_app

#: scenarios the report covers by default (see ``repro.apps.SCENARIOS``)
TRACE_SCENARIOS = ("trace-straggler", "straggler")


def collective_latency(ranks: int) -> float:
    """One synchronizing-collective latency at this world size (cycles).

    The agreement tolerance between the trace's wait attribution and the
    profile reducer's: both measure the same blocking, but the trace
    anchors at the collective *marker* while the reducer differences
    whole application phases, so they may disagree by up to one
    collective traversal.
    """
    return SimComm(MpiWorld(size=max(ranks, 2))).cost_of("MPI_Allreduce")


@dataclass(frozen=True)
class TraceRow:
    """One application × scenario cell of the trace report."""

    app: str
    scenario: str
    ranks: int
    backend: str
    events: int
    sync_points: int
    #: largest per-rank collective wait, from the trace (cycles)
    max_wait_cycles: float
    #: largest |trace wait − reducer wait| over ranks (cycles)
    max_divergence_cycles: float
    #: ranks flagged as waiters (wait > one collective latency)
    flagged_ranks: tuple[int, ...]
    #: the same flag set derived from the reducer's attribution
    reducer_flagged_ranks: tuple[int, ...]
    #: TraceIssue records from MergedTrace.validate() (str() for text)
    validation_problems: tuple
    #: the agreement tolerance the flags were derived under (cycles)
    tolerance_cycles: float

    @property
    def waits_agree(self) -> bool:
        """True when trace and reducer tell the same wait story."""
        return (
            self.flagged_ranks == self.reducer_flagged_ranks
            and self.max_divergence_cycles <= self.tolerance_cycles
        )

    @property
    def consistent(self) -> bool:
        return not self.validation_problems and self.waits_agree


def _flagged(waits: "tuple[float, ...]", tolerance: float) -> tuple[int, ...]:
    return tuple(r for r, w in enumerate(waits) if w > tolerance)


def compute_trace_row(
    prepared: PreparedApp,
    scenario_name: str,
    *,
    ranks: int = 4,
    backend: str = "serial",
    workload=None,
    trace_dir: str | None = None,
) -> tuple[TraceRow, RunOutcome]:
    """Run one traced multi-rank cell and derive its consistency row.

    ``trace_dir=`` persists the per-rank streams to an OTF2-shaped
    archive (the merged timeline is then built from disk).
    """
    from repro.apps import scenario

    outcome = run_app(
        prepared.app,
        mode="ic",
        tool="scorep",
        ic=prepared.select("mpi").ic,
        ranks=ranks,
        imbalance=scenario(scenario_name),
        backend=backend,
        tracing=True,
        workload=workload or DEFAULT_WORKLOAD,
        config_name=f"trace-{scenario_name}",
        trace_dir=trace_dir,
    )
    merged: MergedTrace = outcome.merged_trace
    tolerance = collective_latency(ranks)
    trace_waits = merged.rank_wait_cycles
    reducer_waits = outcome.pop.rank_wait_cycles
    divergence = max(
        (abs(t - p) for t, p in zip(trace_waits, reducer_waits)), default=0.0
    )
    row = TraceRow(
        app=prepared.name,
        scenario=scenario_name,
        ranks=ranks,
        backend=backend,
        events=len(merged.events),
        sync_points=len(merged.sync_points),
        max_wait_cycles=max(trace_waits, default=0.0),
        max_divergence_cycles=divergence,
        flagged_ranks=_flagged(trace_waits, tolerance),
        reducer_flagged_ranks=_flagged(reducer_waits, tolerance),
        validation_problems=tuple(merged.validate()),
        tolerance_cycles=tolerance,
    )
    return row, outcome


def compute_trace_table(
    apps: tuple[str, ...] = ("lulesh",),
    *,
    scenarios: tuple[str, ...] = TRACE_SCENARIOS,
    scales: dict[str, int] | None = None,
    ranks: int = 4,
    backend: str = "serial",
    trace_dir: str | None = None,
) -> list[tuple[TraceRow, RunOutcome]]:
    scales = scales or DEFAULT_SCALES
    cells: list[tuple[TraceRow, RunOutcome]] = []
    for app_name in apps:
        prepared = prepare_app(app_name, scales.get(app_name))
        for scenario_name in scenarios:
            cell_dir = None
            if trace_dir is not None:
                # one archive per cell so backends/scenarios never
                # overwrite each other's location files
                cell_dir = str(
                    Path(trace_dir) / f"{app_name}-{scenario_name}-{backend}"
                )
            cells.append(
                compute_trace_row(
                    prepared,
                    scenario_name,
                    ranks=ranks,
                    backend=backend,
                    trace_dir=cell_dir,
                )
            )
    return cells


def render_trace_table(rows: list[TraceRow]) -> str:
    headers = [
        "app", "scenario", "ranks", "backend",
        "events", "syncs", "max wait", "Δ vs reducer", "waiters", "ok",
    ]
    body = [
        (
            r.app,
            r.scenario,
            str(r.ranks),
            r.backend,
            str(r.events),
            str(r.sync_points),
            f"{r.max_wait_cycles:.0f}",
            f"{r.max_divergence_cycles:.0f}",
            ",".join(map(str, r.flagged_ranks)) or "-",
            "yes" if r.consistent else "NO",
        )
        for r in rows
    ]
    title = (
        "MERGED RANK TRACES — collective-aligned timelines vs. the "
        "profile reducer's wait attribution"
    )
    return format_table(headers, body, title=title)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--app", choices=["lulesh", "openfoam", "both"], default="lulesh"
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="imbalance scenario to trace (repeatable; default "
        f"{', '.join(TRACE_SCENARIOS)})",
    )
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="override the per-app call-graph size (smoke runs use a "
        "few hundred nodes)",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        choices=["serial", "multiprocessing", "auto", "both"],
        help="'both' runs serial AND multiprocessing and asserts "
        "bit-identical merged timelines",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="also print each merged trace's wait-state/critical-path view",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every merged trace validates clean and "
        "agrees with the reducer's wait attribution",
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="persist each cell's per-rank streams as an OTF2-shaped "
        "archive under DIR/<app>-<scenario>-<backend>; with --check the "
        "streaming merge from disk must be bit-identical to the "
        "in-memory merge",
    )
    parser.add_argument(
        "--wait-states",
        action="store_true",
        help="also print each cell's classified wait states "
        "(late-sender / late-receiver / imbalance-at-collective)",
    )
    args = parser.parse_args(argv)
    apps = ("lulesh", "openfoam") if args.app == "both" else (args.app,)
    scenarios = tuple(args.scenario) if args.scenario else TRACE_SCENARIOS
    scales = None
    if args.nodes is not None:
        scales = {name: args.nodes for name in apps}
    backends = (
        ("serial", "multiprocessing") if args.backend == "both" else (args.backend,)
    )

    cells: list[tuple[TraceRow, RunOutcome]] = []
    mismatched_backends: list[str] = []
    for backend in backends:
        cells_b = compute_trace_table(
            apps, scenarios=scenarios, scales=scales,
            ranks=args.ranks, backend=backend,
            trace_dir=args.trace_dir,
        )
        if backend == backends[0]:
            reference = cells_b
        else:
            for (row_a, out_a), (row_b, out_b) in zip(reference, cells_b):
                if out_a.merged_trace.events != out_b.merged_trace.events:
                    mismatched_backends.append(f"{row_b.app}/{row_b.scenario}")
        cells.extend(cells_b)

    rows = [row for row, _ in cells]
    print(render_trace_table(rows))
    if args.timeline:
        for row, outcome in cells:
            print(f"\n--- {row.app}/{row.scenario} ({row.backend}) ---")
            print(outcome.merged_trace.render())
    if args.wait_states:
        from repro.trace import classify_wait_states, render_wait_state_report

        for row, outcome in cells:
            waits = classify_wait_states(outcome.merged_trace)
            print(f"\n--- {row.app}/{row.scenario} ({row.backend}) ---")
            print(render_wait_state_report(waits))

    # streaming merge from the on-disk archive must reproduce the
    # in-memory timeline exactly — the durable pipeline's core promise
    streaming_mismatches: list[str] = []
    if args.trace_dir is not None:
        from repro.trace import open_merged_trace

        for row, outcome in cells:
            cell_dir = (
                Path(args.trace_dir)
                / f"{row.app}-{row.scenario}-{row.backend}"
            )
            streamed = open_merged_trace(str(cell_dir))
            if list(streamed.events()) != list(outcome.merged_trace.events):
                streaming_mismatches.append(
                    f"{row.app}/{row.scenario} ({row.backend})"
                )
        for cell in streaming_mismatches:
            print(
                f"STREAMING MISMATCH: {cell}: disk-streamed merge differs "
                f"from the in-memory timeline"
            )
        if args.check and not streaming_mismatches:
            print(
                f"STREAMING OK: {len(cells)} archive(s) stream-merge "
                f"bit-identical to the in-memory timelines"
            )

    # the bit-identity promise of --backend both holds with or without
    # --check: a mismatch is always reported and always fails the run
    for cell in mismatched_backends:
        print(
            f"BACKEND MISMATCH: {cell}: serial and multiprocessing "
            f"merged timelines differ"
        )

    if args.check:
        failures: list[str] = []
        for row in rows:
            if row.validation_problems:
                failures.append(
                    f"{row.app}/{row.scenario} ({row.backend}): trace "
                    f"validation: "
                    f"{'; '.join(str(p) for p in row.validation_problems[:3])}"
                )
            if not row.waits_agree:
                failures.append(
                    f"{row.app}/{row.scenario} ({row.backend}): wait "
                    f"attribution diverges from the reducer by "
                    f"{row.max_divergence_cycles:.0f} cycles "
                    f"(flagged {row.flagged_ranks} vs "
                    f"{row.reducer_flagged_ranks})"
                )
        for failure in failures:
            print(f"CHECK FAILED: {failure}")
        if not failures and not mismatched_backends:
            print(
                f"CHECK OK: {len(rows)} merged trace(s) validate clean and "
                f"match the reducer's synchronisation-wait attribution"
            )
        if failures:
            return 1
    return 1 if (mismatched_backends or streaming_mismatches) else 0


if __name__ == "__main__":
    raise SystemExit(main())
