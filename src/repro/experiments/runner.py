"""Shared experiment plumbing: app preparation, selection, runs.

Both paper tables operate on the same two applications with the same
four specifications, so the preparation (generate → compile → link →
MetaCG → CaPI selection) is centralised and cached per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from repro.apps import PAPER_SPECS, build_lulesh, build_openfoam
from repro.core.capi import Capi, CapiOutcome
from repro.execution.workload import Workload
from repro.workflow import BuiltApp, RunOutcome, build_app, run_app

#: default per-app call-graph sizes (lulesh is paper scale; openfoam is
#: scaled down — use ``scale='paper'`` to restore 410k nodes)
DEFAULT_SCALES = {"lulesh": 3360, "openfoam": 20_000}
PAPER_SCALES = {"lulesh": 3360, "openfoam": 410_666}

#: Table II workload shaping (bounded walking, analytic residual)
DEFAULT_WORKLOAD = Workload(site_cap=2, event_budget=300_000)

#: row order of both tables
SPEC_ORDER = ("mpi", "mpi coarse", "kernels", "kernels coarse")


@dataclass
class PreparedApp:
    """One application, built in both instrumented and vanilla flavours."""

    name: str
    app: BuiltApp
    vanilla: BuiltApp
    capi: Capi = field(init=False)

    def __post_init__(self) -> None:
        self.capi = Capi(graph=self.app.graph, app_name=self.name)

    def select(self, spec_name: str) -> CapiOutcome:
        return self.capi.select(
            PAPER_SPECS[spec_name], spec_name=spec_name, linked=self.app.linked
        )

    def select_all(self) -> dict[str, CapiOutcome]:
        return {name: self.select(name) for name in SPEC_ORDER}


@lru_cache(maxsize=8)
def prepare_app(name: str, target_nodes: int | None = None) -> PreparedApp:
    """Generate, compile and link one of the two paper applications."""
    if name == "lulesh":
        program = build_lulesh(
            target_nodes=target_nodes or DEFAULT_SCALES["lulesh"]
        )
    elif name == "openfoam":
        program = build_openfoam(
            target_nodes=target_nodes or DEFAULT_SCALES["openfoam"]
        )
    else:
        raise ValueError(f"unknown app {name!r}")
    app = build_app(program)
    vanilla = build_app(program, xray=False, graph=app.graph)
    return PreparedApp(name=name, app=app, vanilla=vanilla)


def run_configuration(
    prepared: PreparedApp,
    *,
    mode: str,
    tool: str = "none",
    ic=None,
    workload: Workload | None = None,
    **kwargs,
) -> RunOutcome:
    """Execute one Table II cell."""
    built = prepared.vanilla if mode == "vanilla" else prepared.app
    return run_app(
        built,
        mode=mode,  # type: ignore[arg-type]
        tool=tool,  # type: ignore[arg-type]
        ic=ic,
        workload=workload or DEFAULT_WORKLOAD,
        **kwargs,
    )
