"""Regenerate Table I — selection results (paper §VI-A).

Columns per configuration: selection time, #selected pre (before
post-processing, with percentage of graph nodes), #selected (after
removal of inlined functions), #added (inlining compensation).

Run with ``python -m repro.experiments.table1`` (or ``repro-table1``);
``--scale paper`` restores the paper's 410k-node OpenFOAM graph.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro._util import format_table, percent
from repro.experiments.runner import (
    DEFAULT_SCALES,
    PAPER_SCALES,
    SPEC_ORDER,
    prepare_app,
)


@dataclass(frozen=True)
class Table1Row:
    app: str
    spec: str
    time_seconds: float
    selected_pre: int
    selected: int
    added: int
    graph_nodes: int


def compute_table1(
    apps: tuple[str, ...] = ("lulesh", "openfoam"),
    *,
    scales: dict[str, int] | None = None,
) -> list[Table1Row]:
    scales = scales or DEFAULT_SCALES
    rows: list[Table1Row] = []
    for app_name in apps:
        prepared = prepare_app(app_name, scales.get(app_name))
        n = len(prepared.app.graph)
        for spec_name in SPEC_ORDER:
            outcome = prepared.select(spec_name)
            rows.append(
                Table1Row(
                    app=app_name,
                    spec=spec_name,
                    time_seconds=outcome.ic.provenance.selection_seconds,
                    selected_pre=outcome.selected_pre,
                    selected=outcome.selected_final,
                    added=outcome.added,
                    graph_nodes=n,
                )
            )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    out = []
    for app in dict.fromkeys(r.app for r in rows):
        app_rows = [r for r in rows if r.app == app]
        table = format_table(
            ["", "Time", "#selected pre", "#selected", "#added"],
            [
                (
                    r.spec,
                    f"{r.time_seconds:.2f}s",
                    f"{r.selected_pre} {percent(r.selected_pre, r.graph_nodes)}",
                    f"{r.selected} {percent(r.selected, r.graph_nodes)}",
                    str(r.added),
                )
                for r in app_rows
            ],
            title=f"TABLE I — SELECTION RESULTS — {app} "
            f"({app_rows[0].graph_nodes} CG nodes)",
        )
        out.append(table)
    return "\n\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=["default", "paper"],
        default="default",
        help="call-graph sizes; 'paper' uses 410,666 nodes for openfoam",
    )
    parser.add_argument(
        "--app", choices=["lulesh", "openfoam", "both"], default="both"
    )
    args = parser.parse_args(argv)
    scales = PAPER_SCALES if args.scale == "paper" else DEFAULT_SCALES
    apps = ("lulesh", "openfoam") if args.app == "both" else (args.app,)
    print(render_table1(compute_table1(apps, scales=scales)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
