"""Regenerate Table II — instrumentation overhead (paper §VI-C).

For each application and measurement tool (TALP, Score-P) the harness
runs: vanilla (no sleds), xray inactive (sleds unpatched), xray full
(everything patched) and the four IC-filtered configurations; it prints
Tinit and Ttotal in virtual seconds plus the overhead factor relative
to vanilla.

Run with ``python -m repro.experiments.table2`` (or ``repro-table2``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro._util import format_table
from repro.experiments.runner import (
    DEFAULT_SCALES,
    PAPER_SCALES,
    SPEC_ORDER,
    PreparedApp,
    prepare_app,
    run_configuration,
)


@dataclass(frozen=True)
class Table2Row:
    app: str
    tool: str
    config: str
    t_init: float | None
    t_total: float
    overhead: float  # Ttotal / vanilla Ttotal - 1
    #: measured POP metrics (multi-rank runs only): (LB, CommEff, PE)
    pop: tuple[float, float, float] | None = None


def _pop_of(outcome) -> tuple[float, float, float] | None:
    if outcome.pop is None:
        return None
    m = outcome.pop.app
    return (m.load_balance, m.communication_efficiency, m.parallel_efficiency)


def compute_table2_app(
    prepared: PreparedApp,
    *,
    ranks: int = 4,
    imbalance=None,
    backend: str = "serial",
    **extra,
) -> list[Table2Row]:
    """All Table II rows for one application.

    With ``imbalance`` set, every cell executes across ``ranks`` real
    simulated ranks (the multi-rank subsystem): ``Ttotal`` becomes the
    synchronised elapsed time of the world and each row additionally
    carries measured POP metrics.  ``extra`` kwargs (``faults=``,
    ``degraded=``, ``processes=``) pass straight through to
    :func:`repro.workflow.run_app` for chaos runs under the supervised
    backend.
    """
    rows: list[Table2Row] = []
    app = prepared.name
    mr = dict(ranks=ranks, imbalance=imbalance, backend=backend, **extra)

    van_out = run_configuration(prepared, mode="vanilla", config_name="vanilla", **mr)
    vanilla = van_out.result
    rows.append(
        Table2Row(app, "-", "vanilla", None, vanilla.t_total, 0.0, _pop_of(van_out))
    )

    ics = prepared.select_all()
    inact_out = run_configuration(
        prepared, mode="inactive", config_name="xray inactive", **mr
    )
    inactive = inact_out.result
    for tool in ("talp", "scorep"):
        rows.append(
            Table2Row(
                app,
                tool,
                "xray inactive",
                None,
                inactive.t_total,
                inactive.t_total / vanilla.t_total - 1,
                _pop_of(inact_out),
            )
        )
        full_out = run_configuration(
            prepared, mode="full", tool=tool, config_name="xray full", **mr
        )
        full = full_out.result
        rows.append(
            Table2Row(
                app,
                tool,
                "xray full",
                full.t_init,
                full.t_total,
                full.t_total / vanilla.t_total - 1,
                _pop_of(full_out),
            )
        )
        for spec_name in SPEC_ORDER:
            out = run_configuration(
                prepared,
                mode="ic",
                tool=tool,
                ic=ics[spec_name].ic,
                config_name=spec_name,
                **mr,
            )
            result = out.result
            rows.append(
                Table2Row(
                    app,
                    tool,
                    spec_name,
                    result.t_init,
                    result.t_total,
                    result.t_total / vanilla.t_total - 1,
                    _pop_of(out),
                )
            )
    return rows


def compute_table2(
    apps: tuple[str, ...] = ("lulesh", "openfoam"),
    *,
    scales: dict[str, int] | None = None,
    ranks: int = 4,
    imbalance=None,
    backend: str = "serial",
    **extra,
) -> list[Table2Row]:
    scales = scales or DEFAULT_SCALES
    rows: list[Table2Row] = []
    for app_name in apps:
        prepared = prepare_app(app_name, scales.get(app_name))
        rows.extend(
            compute_table2_app(
                prepared, ranks=ranks, imbalance=imbalance, backend=backend,
                **extra,
            )
        )
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    out = []
    with_pop = any(r.pop is not None for r in rows)
    for app in dict.fromkeys(r.app for r in rows):
        app_rows = [r for r in rows if r.app == app]
        body = []
        for tool in ("-", "talp", "scorep"):
            for r in app_rows:
                if r.tool != tool:
                    continue
                cells = [
                    {"-": "", "talp": "TALP", "scorep": "Score-P"}[tool],
                    r.config,
                    "-" if r.t_init is None else f"{r.t_init:.2f}",
                    f"{r.t_total:.2f}",
                    f"+{100 * r.overhead:.0f}%",
                ]
                if with_pop:
                    if r.pop is None:
                        cells += ["-", "-", "-"]
                    else:
                        cells += [f"{100 * v:.1f}%" for v in r.pop]
                body.append(tuple(cells))
        headers = ["tool", "config", "Tinit", "Ttotal", "overhead"]
        if with_pop:
            headers += ["LB", "CommEff", "PE"]
        title = f"TABLE II — INSTRUMENTATION OVERHEAD — {app} (virtual seconds)"
        if with_pop:
            title += " — multi-rank, measured POP"
        out.append(format_table(headers, body, title=title))
    return "\n\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["default", "paper"], default="default")
    parser.add_argument(
        "--app", choices=["lulesh", "openfoam", "both"], default="both"
    )
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument(
        "--imbalance",
        default=None,
        help="run every cell across --ranks real simulated ranks under a "
        "named imbalance scenario (see repro.apps.SCENARIOS, e.g. "
        "'uniform', 'lulesh-imbalanced', 'straggler')",
    )
    parser.add_argument(
        "--backend",
        default="serial",
        help="rank execution backend for --imbalance runs: 'serial', "
        "'multiprocessing' (or 'mp:4' to pin workers), 'auto', or "
        "'supervised[:inner]' for fault-tolerant execution",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=None,
        help="worker count for multiprocessing-based backends",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="named fault-injection preset (see repro.apps.FAULT_SCENARIOS, "
        "e.g. 'crash-once'); requires --imbalance and is best paired with "
        "--backend supervised",
    )
    parser.add_argument(
        "--degraded",
        choices=["forbid", "allow"],
        default="forbid",
        help="policy when ranks are lost under --faults (default: forbid)",
    )
    args = parser.parse_args(argv)
    if args.backend != "serial" and args.imbalance is None:
        parser.error("--backend only applies to multi-rank runs; add --imbalance "
                     "(use '--imbalance uniform' for a balanced world)")
    if args.faults is not None and args.imbalance is None:
        parser.error("--faults needs the multi-rank path; add --imbalance "
                     "(use '--imbalance uniform' for a balanced world)")
    scales = PAPER_SCALES if args.scale == "paper" else DEFAULT_SCALES
    apps = ("lulesh", "openfoam") if args.app == "both" else (args.app,)
    imbalance = None
    if args.imbalance is not None:
        from repro.apps import scenario

        imbalance = scenario(args.imbalance)
    extra: dict = {}
    if args.processes is not None:
        extra["processes"] = args.processes
    if args.faults is not None:
        extra["faults"] = args.faults
        extra["degraded"] = args.degraded
    print(
        render_table2(
            compute_table2(
                apps,
                scales=scales,
                ranks=args.ranks,
                imbalance=imbalance,
                backend=args.backend,
                **extra,
            )
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
