"""Regenerate Table II — instrumentation overhead (paper §VI-C).

For each application and measurement tool (TALP, Score-P) the harness
runs: vanilla (no sleds), xray inactive (sleds unpatched), xray full
(everything patched) and the four IC-filtered configurations; it prints
Tinit and Ttotal in virtual seconds plus the overhead factor relative
to vanilla.

Run with ``python -m repro.experiments.table2`` (or ``repro-table2``).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro._util import format_table
from repro.experiments.runner import (
    DEFAULT_SCALES,
    PAPER_SCALES,
    SPEC_ORDER,
    PreparedApp,
    prepare_app,
    run_configuration,
)


@dataclass(frozen=True)
class Table2Row:
    app: str
    tool: str
    config: str
    t_init: float | None
    t_total: float
    overhead: float  # Ttotal / vanilla Ttotal - 1


def compute_table2_app(
    prepared: PreparedApp, *, ranks: int = 4
) -> list[Table2Row]:
    """All Table II rows for one application."""
    rows: list[Table2Row] = []
    app = prepared.name

    vanilla = run_configuration(
        prepared, mode="vanilla", ranks=ranks, config_name="vanilla"
    ).result
    rows.append(Table2Row(app, "-", "vanilla", None, vanilla.t_total, 0.0))

    ics = prepared.select_all()
    inactive = run_configuration(
        prepared, mode="inactive", ranks=ranks, config_name="xray inactive"
    ).result
    for tool in ("talp", "scorep"):
        rows.append(
            Table2Row(
                app,
                tool,
                "xray inactive",
                None,
                inactive.t_total,
                inactive.t_total / vanilla.t_total - 1,
            )
        )
        full = run_configuration(
            prepared, mode="full", tool=tool, ranks=ranks, config_name="xray full"
        ).result
        rows.append(
            Table2Row(
                app,
                tool,
                "xray full",
                full.t_init,
                full.t_total,
                full.t_total / vanilla.t_total - 1,
            )
        )
        for spec_name in SPEC_ORDER:
            result = run_configuration(
                prepared,
                mode="ic",
                tool=tool,
                ic=ics[spec_name].ic,
                ranks=ranks,
                config_name=spec_name,
            ).result
            rows.append(
                Table2Row(
                    app,
                    tool,
                    spec_name,
                    result.t_init,
                    result.t_total,
                    result.t_total / vanilla.t_total - 1,
                )
            )
    return rows


def compute_table2(
    apps: tuple[str, ...] = ("lulesh", "openfoam"),
    *,
    scales: dict[str, int] | None = None,
    ranks: int = 4,
) -> list[Table2Row]:
    scales = scales or DEFAULT_SCALES
    rows: list[Table2Row] = []
    for app_name in apps:
        prepared = prepare_app(app_name, scales.get(app_name))
        rows.extend(compute_table2_app(prepared, ranks=ranks))
    return rows


def render_table2(rows: list[Table2Row]) -> str:
    out = []
    for app in dict.fromkeys(r.app for r in rows):
        app_rows = [r for r in rows if r.app == app]
        body = []
        for tool in ("-", "talp", "scorep"):
            for r in app_rows:
                if r.tool != tool:
                    continue
                body.append(
                    (
                        {"-": "", "talp": "TALP", "scorep": "Score-P"}[tool],
                        r.config,
                        "-" if r.t_init is None else f"{r.t_init:.2f}",
                        f"{r.t_total:.2f}",
                        f"+{100 * r.overhead:.0f}%",
                    )
                )
        out.append(
            format_table(
                ["tool", "config", "Tinit", "Ttotal", "overhead"],
                body,
                title=f"TABLE II — INSTRUMENTATION OVERHEAD — {app} "
                f"(virtual seconds)",
            )
        )
    return "\n\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["default", "paper"], default="default")
    parser.add_argument(
        "--app", choices=["lulesh", "openfoam", "both"], default="both"
    )
    parser.add_argument("--ranks", type=int, default=4)
    args = parser.parse_args(argv)
    scales = PAPER_SCALES if args.scale == "paper" else DEFAULT_SCALES
    apps = ("lulesh", "openfoam") if args.app == "both" else (args.app,)
    print(render_table2(compute_table2(apps, scales=scales, ranks=args.ranks)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
