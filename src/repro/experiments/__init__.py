"""Paper-experiment regeneration harness (Tables I and II, anomalies)."""

from repro.experiments.runner import (
    DEFAULT_SCALES,
    DEFAULT_WORKLOAD,
    PAPER_SCALES,
    SPEC_ORDER,
    PreparedApp,
    prepare_app,
    run_configuration,
)
from repro.experiments.table1 import Table1Row, compute_table1, render_table1
from repro.experiments.table2 import Table2Row, compute_table2, render_table2
from repro.experiments.anomalies import AnomalyReport, compute_anomalies
from repro.experiments.dlb import (
    DlbRow,
    compute_dlb_row,
    compute_dlb_table,
    render_dlb_table,
)
from repro.experiments.traces import (
    TraceRow,
    compute_trace_row,
    compute_trace_table,
    render_trace_table,
)

__all__ = [
    "AnomalyReport",
    "DEFAULT_SCALES",
    "DEFAULT_WORKLOAD",
    "DlbRow",
    "PAPER_SCALES",
    "PreparedApp",
    "SPEC_ORDER",
    "Table1Row",
    "Table2Row",
    "TraceRow",
    "compute_anomalies",
    "compute_dlb_row",
    "compute_dlb_table",
    "compute_table1",
    "compute_table2",
    "compute_trace_row",
    "compute_trace_table",
    "prepare_app",
    "render_table1",
    "render_table2",
    "render_trace_table",
    "run_configuration",
]
